//! The naive `fork`-based backtracking engine the paper rejects (§3).
//!
//! "A naive implementation of `sys_guess` and `sys_guess_fail` would
//! simply use the POSIX `fork`, `wait` and `exit` system calls.
//! Sequential depth-first-search exploration … could be implemented by
//! simply issuing a fork before exploring any extension." The paper then
//! lists why this is inappropriate: fork creates a new thread of control,
//! forked processes are not encapsulated, and "the large performance
//! overheads of this naive approach would likely dwarf any benefit".
//!
//! This module implements it anyway — experiments E2/E7 need the real
//! numbers. One process per extension step, DFS order, solutions and fork
//! events reported through a pipe.

use std::io::{self, Read};
use std::os::fd::{FromRawFd, OwnedFd};

/// Outcome of one exploration path (the closure's verdict).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForkOutcome {
    /// The path reached a solution.
    Solution,
    /// The path hit a contradiction.
    Failed,
}

/// The decision interface a forked closure sees.
pub struct ForkCtx {
    event_fd: i32,
}

/// Statistics from a fork-based search (gathered via the event pipe).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForkStats {
    /// Solutions found.
    pub solutions: u64,
    /// `fork(2)` calls performed across the whole tree.
    pub forks: u64,
    /// Failed paths.
    pub failures: u64,
}

impl ForkCtx {
    /// The `sys_guess` equivalent: explores all of `0..n` by forking.
    ///
    /// The calling process becomes the *parent* of `n` children, each of
    /// which returns a distinct value from this function; the parent
    /// waits for all children and then exits (it must not continue the
    /// search itself).
    pub fn guess(&mut self, n: u64) -> u64 {
        assert!(n > 0, "guess domain must be non-empty");
        for i in 0..n {
            self.emit(b'F');
            // SAFETY: plain fork; the child continues with a private copy
            // of the address space and the inherited pipe fd. The search
            // subtree only uses fork/wait/exit/write, all fork-safe.
            let pid = unsafe { libc::fork() };
            match pid {
                0 => {
                    return i; // child: explore extension i
                }
                -1 => {
                    // Fork failure: treat the remaining extensions as
                    // failed paths and stop expanding.
                    self.emit(b'X');
                    break;
                }
                child => {
                    let mut status = 0i32;
                    // SAFETY: waiting for the child we just created.
                    unsafe { libc::waitpid(child, &mut status, 0) };
                }
            }
        }
        // Parent of all extensions: nothing left to do on this path.
        // SAFETY: terminating the search subtree process; `_exit` skips
        // atexit handlers, which must not run in forked children.
        unsafe { libc::_exit(0) };
    }

    fn emit(&self, tag: u8) {
        // SAFETY: writing one byte to the inherited pipe fd; single-byte
        // pipe writes are atomic.
        unsafe {
            libc::write(self.event_fd, &tag as *const u8 as *const libc::c_void, 1);
        }
    }
}

/// Runs `f` under fork-based DFS backtracking, collecting statistics.
///
/// The entire search runs in a forked subtree, so the calling process is
/// never replaced. `f` must be fork-safe: no threads, no held locks, no
/// buffered I/O it expects to keep (the usual `fork` caveats — this being
/// awkward is part of the point the paper makes).
pub fn fork_dfs(f: impl FnOnce(&mut ForkCtx) -> ForkOutcome) -> io::Result<ForkStats> {
    let mut fds = [0i32; 2];
    // SAFETY: creating a pipe; fds are owned below.
    if unsafe { libc::pipe(fds.as_mut_ptr()) } != 0 {
        return Err(io::Error::last_os_error());
    }
    let (read_fd, write_fd) = (fds[0], fds[1]);

    // SAFETY: fork the search root. The child runs the closure and
    // everything it forks; the parent only reads the pipe.
    let pid = unsafe { libc::fork() };
    if pid == -1 {
        // SAFETY: closing fds we own.
        unsafe {
            libc::close(read_fd);
            libc::close(write_fd);
        }
        return Err(io::Error::last_os_error());
    }
    if pid == 0 {
        // Search root (child).
        // SAFETY: closing the read end we do not use.
        unsafe { libc::close(read_fd) };
        let mut ctx = ForkCtx { event_fd: write_fd };
        let outcome = f(&mut ctx);
        ctx.emit(match outcome {
            ForkOutcome::Solution => b'S',
            ForkOutcome::Failed => b'L',
        });
        // SAFETY: leaf process exits without running atexit handlers.
        unsafe { libc::_exit(0) };
    }

    // Parent: close the write end so EOF arrives when the tree finishes.
    // SAFETY: we own write_fd and transfer read_fd to an OwnedFd.
    let mut reader = unsafe {
        libc::close(write_fd);
        std::fs::File::from(OwnedFd::from_raw_fd(read_fd))
    };
    let mut stats = ForkStats::default();
    let mut buf = [0u8; 4096];
    loop {
        match reader.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                for &b in &buf[..n] {
                    match b {
                        b'S' => stats.solutions += 1,
                        b'L' => stats.failures += 1,
                        b'F' => stats.forks += 1,
                        _ => {}
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    let mut status = 0i32;
    // SAFETY: reaping the search root we forked.
    unsafe { libc::waitpid(pid, &mut status, 0) };
    Ok(stats)
}
