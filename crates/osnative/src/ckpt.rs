//! Incremental checkpointing with `mprotect` + `SIGSEGV` (libckpt-style).
//!
//! This is the strongest *userspace* approximation of what the paper's
//! Dune libOS does with nested page tables: take a snapshot by
//! write-protecting the arena (one `mprotect`), then catch the first
//! write to each page in a `SIGSEGV` handler, save its pre-image, and
//! unprotect it. Restoring copies saved pre-images back. The cost model
//! matches the paper's: snapshot is O(1) syscalls, divergence costs one
//! fault + one 4 KiB copy per touched page.
//!
//! Compared to `lwsnap-mem`'s software MMU this buys hardware-speed reads
//! and writes between faults, at the price of signal-handling latency per
//! first touch — exactly the trade-off experiment E2 measures.
//!
//! # Safety model
//!
//! The public API is safe. Internally, the signal handler and the API
//! methods share the arena's bookkeeping through raw pointers. Soundness
//! rests on these invariants:
//!
//! * A fault on an arena page can only be raised by the thread that is
//!   mutating the arena through `&mut self` — the handler therefore runs
//!   *synchronously within* an API call, never concurrently with one.
//! * The save pool's capacity is re-reserved before every snapshot so the
//!   handler never allocates (a page can fault at most once per level).
//! * The registry maps fault addresses to arenas lock-free; unrelated
//!   `SIGSEGV`s are re-raised with default disposition.
//! * `CkptArena` is `!Sync` (interior raw state) and pinned on the heap.

use std::cell::UnsafeCell;
use std::io;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Once;

/// Page size used by the arena (matches the kernel's on x86-64).
pub const PAGE_SIZE: usize = 4096;

const MAX_ARENAS: usize = 64;

/// One saved pre-image: which page, and its bytes at snapshot time.
struct PageSave {
    vpn: usize,
    data: Box<[u8; PAGE_SIZE]>,
}

/// Counters for one arena.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CkptStats {
    /// Write faults taken (= pages CoW-saved).
    pub faults: u64,
    /// Snapshots taken.
    pub snapshots: u64,
    /// Restores performed.
    pub restores: u64,
    /// Bytes copied into pre-images.
    pub bytes_saved: u64,
}

struct ArenaInner {
    base: *mut u8,
    len: usize,
    /// Pre-image pool; capacity is maintained so the handler never
    /// reallocates (see module docs).
    saves: Vec<PageSave>,
    /// `levels[i]` = index into `saves` where snapshot `i` begins.
    levels: Vec<usize>,
    stats: CkptStats,
}

impl ArenaInner {
    /// Handles a write fault at `addr`. Returns `true` if it was ours.
    ///
    /// Runs inside the SIGSEGV handler — must not allocate or lock.
    fn handle_fault(&mut self, addr: usize) -> bool {
        let base = self.base as usize;
        if addr < base || addr >= base + self.len {
            return false;
        }
        if self.levels.is_empty() {
            // No active snapshot; a protection fault here is a real bug.
            return false;
        }
        let vpn = (addr - base) / PAGE_SIZE;
        let page = (base + vpn * PAGE_SIZE) as *mut u8;
        // Save the pre-image. The Box was NOT pre-allocated; but `data`
        // boxes are recycled via `spare` in `reserve_level`, so this push
        // stays within capacity and the Box comes from the spare pool.
        let data = match self.spare_pop() {
            Some(b) => b,
            None => return false, // capacity invariant violated: treat as foreign
        };
        let mut data = data;
        // SAFETY: `page` points at a whole mapped page inside the arena.
        unsafe {
            std::ptr::copy_nonoverlapping(page, data.as_mut_ptr(), PAGE_SIZE);
        }
        self.saves.push(PageSave { vpn, data });
        self.stats.faults += 1;
        self.stats.bytes_saved += PAGE_SIZE as u64;
        // SAFETY: unprotecting one mapped page; mprotect is a plain
        // syscall (no allocation), acceptable in a synchronous handler.
        let rc = unsafe {
            libc::mprotect(
                page as *mut libc::c_void,
                PAGE_SIZE,
                libc::PROT_READ | libc::PROT_WRITE,
            )
        };
        rc == 0
    }

    fn spare_pop(&mut self) -> Option<Box<[u8; PAGE_SIZE]>> {
        SPARE.with_inner(|spare| spare.pop())
    }
}

/// A pool of pre-allocated page buffers shared by all arenas on this
/// thread of control, refilled only from safe (non-handler) context.
struct SparePool(UnsafeCell<Vec<Box<[u8; PAGE_SIZE]>>>);

// SAFETY: the pool is only touched by API calls and by the synchronous
// fault handler running *inside* those API calls on the same thread; the
// process-global registry serialises arena registration separately.
unsafe impl Sync for SparePool {}

impl SparePool {
    fn with_inner<R>(&self, f: impl FnOnce(&mut Vec<Box<[u8; PAGE_SIZE]>>) -> R) -> R {
        // SAFETY: see `SparePool` — exclusive access is guaranteed by the
        // synchronous-handler invariant.
        f(unsafe { &mut *self.0.get() })
    }
}

static SPARE: SparePool = SparePool(UnsafeCell::new(Vec::new()));

/// Lock-free registry of live arenas for the global handler.
static REGISTRY: [AtomicPtr<ArenaInner>; MAX_ARENAS] =
    [const { AtomicPtr::new(std::ptr::null_mut()) }; MAX_ARENAS];
static REGISTERED: AtomicUsize = AtomicUsize::new(0);
static INSTALL: Once = Once::new();

extern "C" fn segv_handler(sig: i32, info: *mut libc::siginfo_t, _ctx: *mut libc::c_void) {
    // SAFETY: reading the fault address from siginfo as provided by the
    // kernel for SIGSEGV with SA_SIGINFO.
    let addr = unsafe { (*info).si_addr() } as usize;
    for slot in &REGISTRY {
        let ptr = slot.load(Ordering::Acquire);
        if ptr.is_null() {
            continue;
        }
        // SAFETY: registry entries point at live, pinned ArenaInner
        // values; they are removed before the arena is dropped.
        let inner = unsafe { &mut *ptr };
        if inner.handle_fault(addr) {
            return; // resolved: the faulting write retries
        }
    }
    // Not ours: restore default disposition and re-raise so the process
    // crashes with a normal SIGSEGV report.
    // SAFETY: resetting a signal disposition is async-signal-safe.
    unsafe {
        let mut sa: libc::sigaction = std::mem::zeroed();
        sa.sa_sigaction = libc::SIG_DFL;
        libc::sigaction(sig, &sa, std::ptr::null_mut());
        libc::raise(sig);
    }
}

fn install_handler() {
    INSTALL.call_once(|| {
        // SAFETY: installing a process-wide SIGSEGV handler with
        // SA_SIGINFO; the handler only touches registered arenas.
        unsafe {
            let mut sa: libc::sigaction = std::mem::zeroed();
            sa.sa_sigaction = segv_handler as *const () as usize;
            sa.sa_flags = libc::SA_SIGINFO;
            libc::sigemptyset(&mut sa.sa_mask);
            libc::sigaction(libc::SIGSEGV, &sa, std::ptr::null_mut());
        }
    });
}

/// An `mmap` arena with mprotect-based incremental checkpointing.
pub struct CkptArena {
    inner: Box<ArenaInner>,
    slot: usize,
}

// SAFETY: the arena may move between threads as a whole (`&mut`-only
// API); it is intentionally !Sync via the raw pointer field.
unsafe impl Send for CkptArena {}

impl CkptArena {
    /// Maps a zeroed arena of `pages` pages.
    pub fn new(pages: usize) -> io::Result<CkptArena> {
        assert!(pages > 0, "arena must have at least one page");
        install_handler();
        let len = pages * PAGE_SIZE;
        // SAFETY: anonymous private mapping of `len` bytes.
        let base = unsafe {
            libc::mmap(
                std::ptr::null_mut(),
                len,
                libc::PROT_READ | libc::PROT_WRITE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS,
                -1,
                0,
            )
        };
        if base == libc::MAP_FAILED {
            return Err(io::Error::last_os_error());
        }
        let mut inner = Box::new(ArenaInner {
            base: base as *mut u8,
            len,
            saves: Vec::with_capacity(pages),
            levels: Vec::new(),
            stats: CkptStats::default(),
        });
        // Find a registry slot.
        let ptr: *mut ArenaInner = &mut *inner;
        let mut slot = usize::MAX;
        for (i, entry) in REGISTRY.iter().enumerate() {
            if entry
                .compare_exchange(
                    std::ptr::null_mut(),
                    ptr,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                slot = i;
                break;
            }
        }
        if slot == usize::MAX {
            // SAFETY: unmapping the region we just mapped.
            unsafe { libc::munmap(base, len) };
            return Err(io::Error::other("too many live arenas"));
        }
        REGISTERED.fetch_add(1, Ordering::Relaxed);
        Ok(CkptArena { inner, slot })
    }

    /// Arena length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len
    }

    /// Returns `true` for a zero-length arena (never constructed).
    pub fn is_empty(&self) -> bool {
        self.inner.len == 0
    }

    /// Counters.
    pub fn stats(&self) -> CkptStats {
        self.inner.stats
    }

    /// Read access to the arena bytes.
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: base..base+len is our live mapping; reads never fault
        // (pages stay PROT_READ even when write-protected).
        unsafe { std::slice::from_raw_parts(self.inner.base, self.inner.len) }
    }

    /// Write access. Writes to protected pages fault once, get their
    /// pre-image saved, and retry transparently.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: exclusive access via &mut self; the fault handler only
        // runs synchronously inside writes made through this slice.
        unsafe { std::slice::from_raw_parts_mut(self.inner.base, self.inner.len) }
    }

    /// Takes a snapshot: one `mprotect` over the arena. Returns the
    /// snapshot level (0-based).
    pub fn snapshot(&mut self) -> io::Result<usize> {
        let pages = self.inner.len / PAGE_SIZE;
        // Refill the spare pool so the handler never allocates: one
        // buffer per page is the worst case for the new level.
        SPARE.with_inner(|spare| {
            while spare.len() < pages {
                spare.push(Box::new([0u8; PAGE_SIZE]));
            }
        });
        self.inner.saves.reserve(pages);
        // SAFETY: protecting our whole mapping read-only.
        let rc = unsafe {
            libc::mprotect(
                self.inner.base as *mut libc::c_void,
                self.inner.len,
                libc::PROT_READ,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        self.inner.levels.push(self.inner.saves.len());
        self.inner.stats.snapshots += 1;
        Ok(self.inner.levels.len() - 1)
    }

    /// Restores the arena to the state captured by snapshot `level`,
    /// which stays active (writes keep being tracked against it).
    pub fn restore(&mut self, level: usize) -> io::Result<()> {
        let start = *self
            .inner
            .levels
            .get(level)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no such snapshot"))?;
        // Make everything writable for the copy-back.
        // SAFETY: unprotecting our whole mapping.
        let rc = unsafe {
            libc::mprotect(
                self.inner.base as *mut libc::c_void,
                self.inner.len,
                libc::PROT_READ | libc::PROT_WRITE,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        // Newest-first so the oldest pre-image of each page wins.
        while self.inner.saves.len() > start {
            let save = self.inner.saves.pop().expect("save entry");
            let dst =
                // SAFETY: vpn is within the arena by construction.
                unsafe { self.inner.base.add(save.vpn * PAGE_SIZE) };
            // SAFETY: copying one page into the mapping.
            unsafe { std::ptr::copy_nonoverlapping(save.data.as_ptr(), dst, PAGE_SIZE) };
            // Recycle the buffer for future faults.
            SPARE.with_inner(|spare| spare.push(save.data));
        }
        self.inner.levels.truncate(level + 1);
        // Re-arm protection for the (still active) snapshot.
        // SAFETY: protecting our whole mapping read-only.
        let rc = unsafe {
            libc::mprotect(
                self.inner.base as *mut libc::c_void,
                self.inner.len,
                libc::PROT_READ,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        self.inner.stats.restores += 1;
        Ok(())
    }

    /// Drops all snapshots, leaving the arena writable with its current
    /// contents.
    pub fn commit(&mut self) -> io::Result<()> {
        // SAFETY: unprotecting our whole mapping.
        let rc = unsafe {
            libc::mprotect(
                self.inner.base as *mut libc::c_void,
                self.inner.len,
                libc::PROT_READ | libc::PROT_WRITE,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        for save in self.inner.saves.drain(..) {
            SPARE.with_inner(|spare| spare.push(save.data));
        }
        self.inner.levels.clear();
        Ok(())
    }

    /// Pages dirtied since snapshot `level` was taken.
    pub fn dirty_pages_since(&self, level: usize) -> usize {
        match self.inner.levels.get(level) {
            Some(&start) => self.inner.saves.len() - start,
            None => 0,
        }
    }
}

impl Drop for CkptArena {
    fn drop(&mut self) {
        REGISTRY[self.slot].store(std::ptr::null_mut(), Ordering::Release);
        REGISTERED.fetch_sub(1, Ordering::Relaxed);
        // SAFETY: unmapping our mapping; the registry entry is already
        // cleared so the handler cannot reach it.
        unsafe { libc::munmap(self.inner.base as *mut libc::c_void, self.inner.len) };
    }
}
