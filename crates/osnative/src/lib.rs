//! # lwsnap-os — Linux-native baselines
//!
//! Two comparison points the paper discusses, implemented for real:
//!
//! * [`forkengine`] — the "naive implementation of `sys_guess` and
//!   `sys_guess_fail` \[that\] would simply use the POSIX `fork`, `wait`
//!   and `exit` system calls" (§3). Experiments E2/E7 measure why the
//!   paper rejects it.
//! * [`ckpt`] — libckpt-style incremental checkpointing: `mprotect` the
//!   arena, catch `SIGSEGV`, save pre-images, restore on demand. The
//!   closest userspace analogue of the paper's hardware-paging snapshots
//!   (and of \[14\] in its related-work section).
//!
//! This is the only crate in the workspace containing `unsafe` code; the
//! public APIs are safe.

#![warn(missing_docs)]

pub mod ckpt;
pub mod forkengine;

pub use ckpt::{CkptArena, CkptStats, PAGE_SIZE};
pub use forkengine::{fork_dfs, ForkCtx, ForkOutcome, ForkStats};
