//! Integration tests for the mprotect+SIGSEGV checkpoint arena.
//!
//! Kept in one serialised test function: the arena relies on a
//! process-global SIGSEGV handler, and exercising it from many parallel
//! test threads would make failures hard to attribute.

use lwsnap_os::{CkptArena, PAGE_SIZE};

#[test]
fn arena_end_to_end() {
    basic_snapshot_restore();
    only_touched_pages_saved();
    nested_snapshots();
    restore_is_repeatable();
    commit_drops_history();
    large_arena_stress();
}

fn basic_snapshot_restore() {
    let mut arena = CkptArena::new(4).unwrap();
    arena.as_mut_slice()[0] = 11;
    arena.as_mut_slice()[PAGE_SIZE] = 22;
    let level = arena.snapshot().unwrap();
    arena.as_mut_slice()[0] = 99;
    arena.as_mut_slice()[PAGE_SIZE] = 88;
    assert_eq!(arena.as_slice()[0], 99);
    arena.restore(level).unwrap();
    assert_eq!(arena.as_slice()[0], 11, "pre-image restored");
    assert_eq!(arena.as_slice()[PAGE_SIZE], 22);
}

fn only_touched_pages_saved() {
    let mut arena = CkptArena::new(64).unwrap();
    let level = arena.snapshot().unwrap();
    let before = arena.stats().faults;
    // Touch exactly 3 pages.
    for page in [5usize, 17, 40] {
        arena.as_mut_slice()[page * PAGE_SIZE] = 1;
    }
    // Second writes to the same pages are free.
    for page in [5usize, 17, 40] {
        arena.as_mut_slice()[page * PAGE_SIZE + 8] = 2;
    }
    assert_eq!(
        arena.stats().faults - before,
        3,
        "one fault per touched page"
    );
    assert_eq!(arena.dirty_pages_since(level), 3);
    arena.restore(level).unwrap();
    for page in [5usize, 17, 40] {
        assert_eq!(arena.as_slice()[page * PAGE_SIZE], 0);
    }
}

fn nested_snapshots() {
    let mut arena = CkptArena::new(2).unwrap();
    arena.as_mut_slice()[0] = 1;
    let l0 = arena.snapshot().unwrap();
    arena.as_mut_slice()[0] = 2;
    let l1 = arena.snapshot().unwrap();
    arena.as_mut_slice()[0] = 3;
    arena.restore(l1).unwrap();
    assert_eq!(arena.as_slice()[0], 2);
    arena.restore(l0).unwrap();
    assert_eq!(arena.as_slice()[0], 1);
}

fn restore_is_repeatable() {
    let mut arena = CkptArena::new(2).unwrap();
    arena.as_mut_slice()[100] = 7;
    let level = arena.snapshot().unwrap();
    for round in 0..5u8 {
        arena.as_mut_slice()[100] = round + 50;
        arena.restore(level).unwrap();
        assert_eq!(arena.as_slice()[100], 7, "round {round}");
    }
    assert_eq!(arena.stats().restores, 5);
}

fn commit_drops_history() {
    let mut arena = CkptArena::new(2).unwrap();
    arena.snapshot().unwrap();
    arena.as_mut_slice()[0] = 42;
    arena.commit().unwrap();
    // Writes after commit don't fault (no active snapshot).
    let faults = arena.stats().faults;
    arena.as_mut_slice()[0] = 43;
    assert_eq!(arena.stats().faults, faults);
    assert_eq!(arena.as_slice()[0], 43);
}

fn large_arena_stress() {
    let pages = 256;
    let mut arena = CkptArena::new(pages).unwrap();
    // Fill with a pattern.
    for p in 0..pages {
        arena.as_mut_slice()[p * PAGE_SIZE] = (p % 251) as u8;
    }
    let level = arena.snapshot().unwrap();
    // Dirty every other page.
    for p in (0..pages).step_by(2) {
        arena.as_mut_slice()[p * PAGE_SIZE] = 0xff;
    }
    assert_eq!(arena.dirty_pages_since(level), pages / 2);
    arena.restore(level).unwrap();
    for p in 0..pages {
        assert_eq!(arena.as_slice()[p * PAGE_SIZE], (p % 251) as u8, "page {p}");
    }
}
