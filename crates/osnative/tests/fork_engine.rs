//! Integration tests for the naive fork-based backtracking engine.
//!
//! One test function: forking from a multi-threaded test harness is the
//! usual fork-safety minefield, so the whole scenario set runs serially
//! from a single thread with fork-safe closures (no allocation after the
//! first guess).

use lwsnap_os::{fork_dfs, ForkOutcome};

#[test]
fn fork_engine_end_to_end() {
    enumerates_binary_tree();
    nqueens_6_by_forking();
    single_path_no_guesses();
}

fn enumerates_binary_tree() {
    // 2^3 = 8 leaves, all solutions; 2 forks per internal node.
    let stats = fork_dfs(|ctx| {
        let mut _acc = 0u64;
        for _ in 0..3 {
            _acc = _acc << 1 | ctx.guess(2);
        }
        ForkOutcome::Solution
    })
    .unwrap();
    assert_eq!(stats.solutions, 8);
    assert_eq!(stats.failures, 0);
    // 7 internal nodes x 2 forks each.
    assert_eq!(stats.forks, 14);
}

fn nqueens_6_by_forking() {
    // Fixed-size arrays: no allocation inside the forked tree.
    let stats = fork_dfs(|ctx| {
        const N: usize = 6;
        let mut col = [false; N];
        let mut d1 = [false; 2 * N];
        let mut d2 = [false; 2 * N];
        for c in 0..N {
            let r = ctx.guess(N as u64) as usize;
            if col[r] || d1[r + c] || d2[N + r - c] {
                return ForkOutcome::Failed;
            }
            col[r] = true;
            d1[r + c] = true;
            d2[N + r - c] = true;
        }
        ForkOutcome::Solution
    })
    .unwrap();
    assert_eq!(stats.solutions, 4, "6-queens has 4 solutions");
    assert!(stats.failures > 0);
    assert!(
        stats.forks > 100,
        "every decision cost a real fork: {}",
        stats.forks
    );
}

fn single_path_no_guesses() {
    let stats = fork_dfs(|_| ForkOutcome::Solution).unwrap();
    assert_eq!(stats.solutions, 1);
    assert_eq!(stats.forks, 0);
}
