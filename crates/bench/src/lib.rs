//! Shared helpers for the lwsnap benchmark and example harness.
//!
//! The real content of this crate lives in `benches/` (one Criterion
//! harness per experiment in `EXPERIMENTS.md`) and in the workspace
//! `examples/` directory, which this package hosts. The
//! [`service_workload`] module is the shared closed-loop workload used
//! by both `examples/service_loadgen.rs` and the `service_throughput`
//! bench, so the numbers they report describe the same traffic.

pub mod service_workload {
    //! A deterministic multi-session workload over a shared problem tree.
    //!
    //! Every session owns a plan: a sequence of solve steps, each
    //! extending a node it created earlier (or the shared base problem)
    //! with a few fresh clauses — the §3.2 traffic shape: mostly
    //! chain-deepening, sometimes branching an old reference
    //! (multi-path). Plans are built up front from a seeded RNG, so the
    //! same workload can be replayed against the sequential service, the
    //! sharded service, and the sharded service under eviction, and the
    //! verdicts compared step for step.

    use std::sync::Arc;
    use std::time::{Duration, Instant};

    use lwsnap_service::{ProblemId, ServiceConfig, ShardedService, SolverBackend, WorkerPool};
    use lwsnap_solver::{model_satisfies, IncrementalFamily, Lit, SolveResult, SolverService};
    use lwsnap_trace::{Histogram, HistogramSnapshot};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// One solve step of a session.
    #[derive(Debug, Clone)]
    pub struct Step {
        /// Which session-local node to extend: 0 is the shared base,
        /// `k > 0` is the result of step `k-1`.
        pub parent: usize,
        /// The incremental constraint.
        pub clauses: Vec<Vec<Lit>>,
    }

    /// A session's full plan.
    #[derive(Debug, Clone)]
    pub struct SessionPlan {
        /// Session id (hashes onto a shard).
        pub session: u64,
        /// The solve steps, in order.
        pub steps: Vec<Step>,
    }

    /// A deterministic closed-loop workload.
    #[derive(Debug, Clone)]
    pub struct Workload {
        /// Variables in the shared 3-SAT base problem.
        pub vars: usize,
        /// The shared base clauses (solved once per shard, then pinned).
        pub base: Vec<Vec<Lit>>,
        /// Per-session plans.
        pub sessions: Vec<SessionPlan>,
    }

    impl Workload {
        /// Builds a workload of `sessions` sessions × `queries` steps
        /// over a shared base of `vars` variables. Deterministic in
        /// `seed`.
        pub fn build(sessions: usize, queries: usize, vars: usize, seed: u64) -> Workload {
            let fam = IncrementalFamily::new(vars, 5, seed);
            let plans = (0..sessions as u64)
                .map(|session| {
                    let mut rng = StdRng::seed_from_u64(seed ^ session.wrapping_mul(0xd1b5));
                    let steps = (0..queries)
                        .map(|step| {
                            // Mostly deepen the newest node; every 4th
                            // step or so branch an older reference.
                            let parent = if step == 0 || rng.gen_bool(0.75) {
                                step
                            } else {
                                rng.gen_range(0..step)
                            };
                            let inc = session * 100_000 + step as u64;
                            Step {
                                parent,
                                clauses: fam.increment(inc),
                            }
                        })
                        .collect();
                    SessionPlan { session, steps }
                })
                .collect();
            Workload {
                vars,
                base: fam.base().clauses,
                sessions: plans,
            }
        }

        /// Total solve queries (excluding the per-shard base solves).
        pub fn total_queries(&self) -> usize {
            self.sessions.iter().map(|s| s.steps.len()).sum()
        }

        /// The full constraint stack of each node of one session:
        /// `stacks[0]` is the base, `stacks[k]` the path of step `k-1`'s
        /// result.
        pub fn stacks(&self, plan: &SessionPlan) -> Vec<Vec<Vec<Lit>>> {
            let mut stacks = vec![self.base.clone()];
            for step in &plan.steps {
                let mut stack = stacks[step.parent].clone();
                stack.extend(step.clauses.iter().cloned());
                stacks.push(stack);
            }
            stacks
        }
    }

    /// Outcome of replaying a workload against some service flavour.
    pub struct RunOutcome {
        /// Per-session, per-step verdicts.
        pub verdicts: Vec<Vec<SolveResult>>,
        /// Wall-clock time for the whole run.
        pub wall: Duration,
        /// Per-query latencies (unordered; the histogram below is the
        /// summarised view — this keeps the raw samples for anyone who
        /// wants exact order statistics).
        pub latencies: Vec<Duration>,
        /// Per-query latency distribution, in the same mergeable
        /// log-linear buckets the service's own `solve_ns` histogram
        /// uses — so a loadgen report and a `/metrics` scrape of the
        /// same run quantise identically.
        pub latency_hist: HistogramSnapshot,
        /// SAT models verified against their constraint path.
        pub verified_models: u64,
    }

    /// Folds raw latency samples into the shared log-linear histogram.
    fn latency_histogram(latencies: &[Duration]) -> HistogramSnapshot {
        let hist = Histogram::new();
        for d in latencies {
            hist.record_duration(*d);
        }
        hist.snapshot()
    }

    impl RunOutcome {
        /// Queries per second over the run.
        pub fn throughput(&self) -> f64 {
            self.latencies.len() as f64 / self.wall.as_secs_f64().max(1e-9)
        }

        /// The `q`-quantile latency (e.g. 0.5, 0.99), read from the
        /// log-linear histogram (bucket upper bound, ≤ ~25% high).
        pub fn latency_quantile(&self, q: f64) -> Duration {
            Duration::from_nanos(self.latency_hist.quantile(q))
        }

        /// Mean latency, from the histogram's exact count and sum.
        pub fn latency_mean(&self) -> Duration {
            Duration::from_nanos(self.latency_hist.mean() as u64)
        }
    }

    /// Replays the workload on a single-threaded [`SolverService`]
    /// (everything in one shard, one caller) — the scaling baseline.
    ///
    /// # Panics
    ///
    /// Panics if any returned model fails verification against its
    /// constraint path.
    pub fn run_sequential(workload: &Workload) -> RunOutcome {
        let started = Instant::now();
        let mut service = SolverService::new();
        let base = service
            .solve(service.root(), &workload.base)
            .expect("root is live");
        let mut verdicts = Vec::with_capacity(workload.sessions.len());
        let mut latencies = Vec::with_capacity(workload.total_queries());
        let mut verified = 0u64;
        for plan in &workload.sessions {
            let stacks = workload.stacks(plan);
            let mut nodes = vec![base.problem];
            let mut session_verdicts = Vec::with_capacity(plan.steps.len());
            for (k, step) in plan.steps.iter().enumerate() {
                let t0 = Instant::now();
                let reply = service
                    .solve(nodes[step.parent], &step.clauses)
                    .expect("plan only references live nodes");
                latencies.push(t0.elapsed());
                if let Some(model) = &reply.model {
                    assert!(
                        model_satisfies(&stacks[k + 1], model),
                        "sequential model failed verification at session {} step {k}",
                        plan.session
                    );
                    verified += 1;
                }
                nodes.push(reply.problem);
                session_verdicts.push(reply.result);
            }
            verdicts.push(session_verdicts);
        }
        RunOutcome {
            verdicts,
            wall: started.elapsed(),
            latency_hist: latency_histogram(&latencies),
            latencies,
            verified_models: verified,
        }
    }

    /// One closed-loop session against any [`SolverBackend`]: replays
    /// the plan from `base`, verifying every SAT model against the
    /// node's full constraint stack. This is the single session loop
    /// every service flavour (in-process, pooled, remote blocking,
    /// remote pipelined) runs — written once against the trait.
    ///
    /// # Panics
    ///
    /// Panics on transport failure, a dead reference, or a model that
    /// fails verification.
    pub fn run_session(
        backend: &dyn SolverBackend,
        workload: &Workload,
        plan: &SessionPlan,
        base: ProblemId,
    ) -> (Vec<SolveResult>, Vec<Duration>, u64) {
        session_loop(backend, workload, plan, base, None)
    }

    /// [`run_session`], optionally pausing twice at one step boundary
    /// (the chaos hook: all sessions rendezvous, the controller acts,
    /// all sessions resume — so membership changes happen with no
    /// request in flight, keeping the closed loop closed).
    fn session_loop(
        backend: &dyn SolverBackend,
        workload: &Workload,
        plan: &SessionPlan,
        base: ProblemId,
        pause: Option<(usize, &std::sync::Barrier)>,
    ) -> (Vec<SolveResult>, Vec<Duration>, u64) {
        let pause = pause.map(|(at, barrier)| (at.min(plan.steps.len()), barrier));
        let stacks = workload.stacks(plan);
        let mut nodes = vec![base];
        let mut verdicts = Vec::with_capacity(plan.steps.len());
        let mut latencies = Vec::with_capacity(plan.steps.len());
        let mut verified = 0u64;
        for (k, step) in plan.steps.iter().enumerate() {
            if let Some((at, barrier)) = pause {
                if k == at {
                    barrier.wait();
                    barrier.wait();
                }
            }
            let t0 = Instant::now();
            let reply = backend
                .solve(nodes[step.parent], step.clauses.clone())
                .expect("backend transport failure")
                .expect("plan only references live nodes");
            latencies.push(t0.elapsed());
            if let Some(model) = &reply.model {
                assert!(
                    model_satisfies(&stacks[k + 1], model),
                    "model failed verification at session {} step {k}",
                    plan.session
                );
                verified += 1;
            }
            nodes.push(reply.problem);
            verdicts.push(reply.result);
        }
        if let Some((at, barrier)) = pause {
            if at == plan.steps.len() {
                barrier.wait();
                barrier.wait();
            }
        }
        (verdicts, latencies, verified)
    }

    /// Replays the whole workload: one concurrent closed-loop thread
    /// per session. `setup(i, plan)` picks the backend and base problem
    /// for session `i` — the knob that distinguishes "shared service",
    /// "one connection per session" and "everyone multiplexed on one
    /// pipelined connection" without touching the session loop.
    ///
    /// # Panics
    ///
    /// See [`run_session`].
    pub fn run_backend<'a>(
        workload: &Workload,
        setup: impl Fn(usize, &SessionPlan) -> (&'a dyn SolverBackend, ProblemId) + Sync,
    ) -> RunOutcome {
        let started = Instant::now();
        let mut outcomes: Vec<(usize, Vec<SolveResult>, Vec<Duration>, u64)> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = workload
                    .sessions
                    .iter()
                    .enumerate()
                    .map(|(i, plan)| {
                        let setup = &setup;
                        let workload = &workload;
                        scope.spawn(move || {
                            let (backend, base) = setup(i, plan);
                            let (v, l, n) = run_session(backend, workload, plan, base);
                            (i, v, l, n)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("session thread panicked"))
                    .collect()
            });
        let wall = started.elapsed();
        outcomes.sort_by_key(|(i, ..)| *i);
        let mut verdicts = Vec::with_capacity(outcomes.len());
        let mut latencies = Vec::new();
        let mut verified = 0;
        for (_, v, l, n) in outcomes {
            verdicts.push(v);
            latencies.extend(l);
            verified += n;
        }
        RunOutcome {
            verdicts,
            wall,
            latency_hist: latency_histogram(&latencies),
            latencies,
            verified_models: verified,
        }
    }

    /// Replays the workload on a [`ShardedService`]: one concurrent
    /// closed-loop client thread per session, solve requests executed by
    /// a `workers`-thread [`WorkerPool`] through the [`SolverBackend`]
    /// trait, base problems pre-solved and pinned per shard. Returns
    /// the outcome plus the service (for stats inspection).
    ///
    /// # Panics
    ///
    /// Panics if any query fails (dead reference) or any returned model
    /// fails verification against its constraint path.
    pub fn run_sharded(
        workload: &Workload,
        shards: usize,
        workers: usize,
        snapshot_capacity: Option<usize>,
    ) -> (
        RunOutcome,
        Arc<ShardedService>,
        Vec<lwsnap_service::WorkerStats>,
    ) {
        let mut config = ServiceConfig::new(shards);
        config.snapshot_capacity = snapshot_capacity;
        let service = Arc::new(ShardedService::new(config));
        // The shared problem tree: solve the base once per shard, pin it
        // so eviction can't drop the hottest node of all.
        let bases: Vec<_> = (0..service.num_shards())
            .map(|shard| {
                let root = service.root(shard).expect("shard exists");
                let reply = service.solve(root, &workload.base).expect("root is live");
                service.pin(reply.problem);
                reply.problem
            })
            .collect();
        let pool = WorkerPool::new(Arc::clone(&service), workers);
        let client = pool.client();
        let outcome = run_backend(workload, |_, plan| {
            (
                &client as &dyn SolverBackend,
                bases[service.session_root(plan.session).shard()],
            )
        });
        let worker_stats = pool.shutdown();
        (outcome, service, worker_stats)
    }

    /// Replays the workload against a remote backend (TCP): every
    /// session solves the shared base from its own session root first
    /// (the wire has no pin, so bases stay per-session), then runs the
    /// standard closed loop.
    ///
    /// # Panics
    ///
    /// See [`run_session`].
    pub fn run_remote(workload: &Workload, backend: &dyn SolverBackend) -> RunOutcome {
        run_backend(workload, |_, plan| {
            let root = backend
                .session_root(plan.session)
                .expect("backend transport failure");
            let base = backend
                .solve(root, workload.base.clone())
                .expect("backend transport failure")
                .expect("root is live")
                .problem;
            (backend, base)
        })
    }

    /// [`run_remote`] with a chaos hook: every session pauses at step
    /// `midpoint_step`, the `midpoint` closure runs (kill a node, join
    /// a node, …) with NO request in flight, and the sessions resume —
    /// their very next solves are the ones that discover the change.
    /// Verdicts and witnesses must still come out bit-identical to an
    /// undisturbed run; the wall clock includes the pause and is not
    /// comparable to [`run_remote`]'s.
    ///
    /// # Panics
    ///
    /// See [`run_session`]; additionally if the midpoint controller
    /// panics.
    pub fn run_remote_with_midpoint(
        workload: &Workload,
        backend: &dyn SolverBackend,
        midpoint_step: usize,
        midpoint: impl FnOnce() + Send,
    ) -> RunOutcome {
        let started = Instant::now();
        let barrier = std::sync::Barrier::new(workload.sessions.len() + 1);
        let mut outcomes: Vec<(usize, Vec<SolveResult>, Vec<Duration>, u64)> =
            std::thread::scope(|scope| {
                let controller = {
                    let barrier = &barrier;
                    scope.spawn(move || {
                        barrier.wait();
                        midpoint();
                        barrier.wait();
                    })
                };
                let handles: Vec<_> = workload
                    .sessions
                    .iter()
                    .enumerate()
                    .map(|(i, plan)| {
                        let barrier = &barrier;
                        scope.spawn(move || {
                            let root = backend
                                .session_root(plan.session)
                                .expect("backend transport failure");
                            let base = backend
                                .solve(root, workload.base.clone())
                                .expect("backend transport failure")
                                .expect("root is live")
                                .problem;
                            let (v, l, n) = session_loop(
                                backend,
                                workload,
                                plan,
                                base,
                                Some((midpoint_step, barrier)),
                            );
                            (i, v, l, n)
                        })
                    })
                    .collect();
                let outcomes = handles
                    .into_iter()
                    .map(|h| h.join().expect("session thread panicked"))
                    .collect();
                controller.join().expect("midpoint controller panicked");
                outcomes
            });
        let wall = started.elapsed();
        outcomes.sort_by_key(|(i, ..)| *i);
        let mut verdicts = Vec::with_capacity(outcomes.len());
        let mut latencies = Vec::new();
        let mut verified = 0;
        for (_, v, l, n) in outcomes {
            verdicts.push(v);
            latencies.extend(l);
            verified += n;
        }
        RunOutcome {
            verdicts,
            wall,
            latency_hist: latency_histogram(&latencies),
            latencies,
            verified_models: verified,
        }
    }
}
