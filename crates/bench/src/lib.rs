//! Shared helpers for the lwsnap benchmark and example harness.
//!
//! The real content of this crate lives in `benches/` (one Criterion
//! harness per experiment in `EXPERIMENTS.md`) and in the workspace
//! `examples/` directory, which this package hosts.
