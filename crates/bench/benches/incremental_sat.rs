//! E4 — incremental SAT: `p` then `p∧q` beats solving both from scratch.
//!
//! Claim (paper §2): "an incremental solver given formula p immediately
//! followed by formula p∧q can solve both in less time than solving p
//! and then solving p∧q from scratch without leveraging the knowledge
//! of p."
//!
//! Expected shape: incremental < scratch; the gap grows with the number
//! of stacked increments (more shared inference to reuse).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwsnap_solver::{IncrementalFamily, Solver, SolverService};

fn bench_incremental(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_incremental_sat");
    group.sample_size(10);
    for increments in [1u64, 4, 8] {
        let fam = IncrementalFamily::new(150, 10, 0xabcd);

        group.bench_with_input(
            BenchmarkId::new("incremental", increments),
            &increments,
            |b, &increments| {
                b.iter(|| {
                    // One solver instance; clauses accumulate, learnt
                    // clauses and activities persist across solves.
                    let mut solver = Solver::new();
                    for clause in &fam.base().clauses {
                        solver.add_clause(clause);
                    }
                    let mut last = solver.solve();
                    for i in 0..increments {
                        for clause in fam.increment(i) {
                            solver.add_clause(&clause);
                        }
                        last = solver.solve();
                    }
                    std::hint::black_box(last);
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("scratch", increments),
            &increments,
            |b, &increments| {
                b.iter(|| {
                    // Re-solve each prefix with a fresh solver.
                    let mut last = None;
                    for upto in 0..=increments {
                        let (result, _) = SolverService::solve_scratch(&fam.combined(upto).clauses);
                        last = Some(result);
                    }
                    std::hint::black_box(last);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_incremental);
criterion_main!(benches);
