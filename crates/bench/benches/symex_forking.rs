//! E6 — symbolic-execution state forking: snapshots vs eager copies (§2).
//!
//! Claim: S2E's software copy-on-write through "multiple (relatively
//! fat) software layers" is the pain; system-level snapshots make the
//! fork of the entire VM state cheap.
//!
//! Measures paths/second exploring a `2^depth`-path symbolic binary tree:
//! * snapshot forking (CoW address space, the paper's design);
//! * eager copy (the whole guest memory is duplicated at every resume —
//!   what naive state duplication costs);
//! * concrete re-execution of all generated inputs (replay baseline,
//!   no constraint solving — the lower bound on per-path work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwsnap_core::{strategy::Dfs, Engine, Exit, Guest, GuestState};
use lwsnap_symex::{
    programs::{branch_tree_source, branch_tree_with_state_source},
    SymExec,
};
use lwsnap_vm::{assemble_source, Interp, Program};

fn explore(program: &Program, eager_copy: bool) -> usize {
    struct EagerCopy(SymExec);
    impl Guest for EagerCopy {
        fn resume(&mut self, st: &mut GuestState) -> Exit {
            st.mem = st.mem.deep_copy();
            self.0.resume(st)
        }
    }
    let mut engine = Engine::new(Dfs::new());
    if eager_copy {
        let mut guest = EagerCopy(SymExec::new());
        engine.run(&mut guest, program.boot().expect("boots"));
        guest.0.cases.len()
    } else {
        let mut guest = SymExec::new();
        engine.run(&mut guest, program.boot().expect("boots"));
        guest.cases.len()
    }
}

fn bench_symex(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_symex_forking");
    group.sample_size(10);
    for depth in [3u64, 5] {
        let program = assemble_source(&branch_tree_source(depth)).expect("assembles");
        let paths = 1usize << depth;

        group.bench_with_input(BenchmarkId::new("snapshot_fork", depth), &depth, |b, _| {
            b.iter(|| assert_eq!(explore(&program, false), paths))
        });

        group.bench_with_input(BenchmarkId::new("eager_copy", depth), &depth, |b, _| {
            b.iter(|| assert_eq!(explore(&program, true), paths))
        });

        // Replay baseline: concretely re-run the program once per path
        // with the inputs symbolic execution generated (no solving).
        let mut seed = SymExec::new();
        Engine::new(Dfs::new()).run(&mut seed, program.boot().expect("boots"));
        let inputs: Vec<Vec<u8>> = seed.cases.iter().map(|c| c.inputs.clone()).collect();
        let data_base = program.symbols["buf"];
        group.bench_with_input(
            BenchmarkId::new("concrete_replay", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    for input in &inputs {
                        let mut st = program.boot().expect("boots");
                        st.mem.write_bytes(data_base, input).unwrap();
                        let mut interp = Interp::new();
                        loop {
                            match interp.resume(&mut st) {
                                Exit::Exit { .. } => break,
                                Exit::Output { .. } => continue,
                                other => panic!("unexpected exit {other:?}"),
                            }
                        }
                    }
                })
            },
        );
    }
    group.finish();

    // The S2E regime: the VM carries fat state (the paper's "address
    // spaces measured in GB", scaled down). CoW forking stays flat in
    // state size; eager copying pays per fork.
    let mut group = c.benchmark_group("e6_symex_fat_state");
    group.sample_size(10);
    for state_pages in [64u64, 512] {
        let program =
            assemble_source(&branch_tree_with_state_source(4, state_pages)).expect("assembles");
        group.bench_with_input(
            BenchmarkId::new("snapshot_fork", state_pages),
            &state_pages,
            |b, _| b.iter(|| assert_eq!(explore(&program, false), 16)),
        );
        group.bench_with_input(
            BenchmarkId::new("eager_copy", state_pages),
            &state_pages,
            |b, _| b.iter(|| assert_eq!(explore(&program, true), 16)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_symex);
criterion_main!(benches);
