//! E5 — the multi-path incremental solver service (paper §3.2).
//!
//! A binary tree of queries shares prefixes: the service forks each
//! child from its parent's solved snapshot; the baseline re-solves each
//! node's full clause stack from scratch.
//!
//! Expected shape: service ≪ scratch, and the gap grows with tree depth
//! (deeper nodes inherit more solved state).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwsnap_solver::{IncrementalFamily, SolveResult, SolverService};

fn run_service(fam: &IncrementalFamily, depth: u64) -> u64 {
    let mut service = SolverService::new();
    let base = service
        .solve(service.root(), &fam.base().clauses)
        .expect("root");
    let mut conflicts = base.conflicts;
    let mut frontier = vec![(base.problem, 0u64)];
    let mut next_inc = 0u64;
    while let Some((parent, level)) = frontier.pop() {
        if level == depth {
            continue;
        }
        for _ in 0..2 {
            let reply = service
                .solve(parent, &fam.increment(next_inc))
                .expect("parent");
            next_inc += 1;
            conflicts += reply.conflicts;
            if reply.result == SolveResult::Sat {
                frontier.push((reply.problem, level + 1));
            }
        }
    }
    conflicts
}

fn run_scratch(fam: &IncrementalFamily, depth: u64) -> u64 {
    let mut conflicts = 0u64;
    let mut next_inc = 0u64;
    let mut frontier: Vec<(u64, Vec<u64>)> = vec![(0, Vec::new())];
    while let Some((level, path)) = frontier.pop() {
        if level == depth {
            continue;
        }
        for _ in 0..2 {
            let inc = next_inc;
            next_inc += 1;
            let mut clauses = fam.base().clauses;
            for &i in &path {
                clauses.extend(fam.increment(i));
            }
            clauses.extend(fam.increment(inc));
            let (result, stats) = SolverService::solve_scratch(&clauses);
            conflicts += stats.conflicts;
            if result == SolveResult::Sat {
                let mut child = path.clone();
                child.push(inc);
                frontier.push((level + 1, child));
            }
        }
    }
    conflicts
}

fn bench_service(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_solver_service");
    group.sample_size(10);
    for depth in [2u64, 4] {
        let fam = IncrementalFamily::new(120, 8, 0x5151);
        group.bench_with_input(BenchmarkId::new("service", depth), &depth, |b, &depth| {
            b.iter(|| std::hint::black_box(run_service(&fam, depth)))
        });
        group.bench_with_input(BenchmarkId::new("scratch", depth), &depth, |b, &depth| {
            b.iter(|| std::hint::black_box(run_scratch(&fam, depth)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service);
criterion_main!(benches);
