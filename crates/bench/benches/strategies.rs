//! E8 — flexible search strategies over one unchanged guest (§3.1).
//!
//! Claim: the search strategy "is implemented separately from the
//! extensions or the partial candidates", so DFS, BFS, A* and SM-A* all
//! schedule the same program. This bench measures the time cost of each
//! scheduler on a fixed exploration (full bit-string tree); the *memory*
//! shapes (frontier and live-snapshot peaks) are asserted in the
//! integration tests and printed by `examples/puzzle_strategies.rs`.
//!
//! Expected shape: DFS fastest (inline fast path, O(depth) memory); BFS
//! and A* pay a restore per extension; SM-A* pays bounding overhead but
//! caps memory.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwsnap_core::strategy::{BestFirst, Bfs, Dfs, SmaStar, Strategy};
use lwsnap_core::{Engine, EngineStats};
use lwsnap_vm::{assemble_source, programs::bitstrings_source, Interp, Program};

fn run(program: &Program, strategy: Box<dyn Strategy>) -> EngineStats {
    struct Boxed(Box<dyn Strategy>);
    impl Strategy for Boxed {
        fn name(&self) -> &'static str {
            self.0.name()
        }
        fn expand(
            &mut self,
            s: lwsnap_core::SnapshotId,
            n: u64,
            h: Option<&lwsnap_core::GuessHint>,
            d: u64,
        ) -> Option<u64> {
            self.0.expand(s, n, h, d)
        }
        fn next(&mut self) -> Option<lwsnap_core::strategy::ExtensionRef> {
            self.0.next()
        }
        fn frontier_len(&self) -> usize {
            self.0.frontier_len()
        }
        fn peak_frontier(&self) -> usize {
            self.0.peak_frontier()
        }
        fn take_dropped(&mut self) -> Vec<lwsnap_core::strategy::ExtensionRef> {
            self.0.take_dropped()
        }
        fn total_dropped(&self) -> u64 {
            self.0.total_dropped()
        }
    }
    let mut engine = Engine::new(Boxed(strategy));
    let mut interp = Interp::new();
    engine
        .run(&mut interp, program.boot().expect("boots"))
        .stats
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_strategies");
    group.sample_size(10);
    let depth = 8u64;
    let program = assemble_source(&bitstrings_source(depth)).expect("assembles");
    let solutions = 1u64 << depth;

    group.bench_function(BenchmarkId::new("dfs", depth), |b| {
        b.iter(|| assert_eq!(run(&program, Box::new(Dfs::new())).solutions, solutions))
    });
    group.bench_function(BenchmarkId::new("bfs", depth), |b| {
        b.iter(|| assert_eq!(run(&program, Box::new(Bfs::new())).solutions, solutions))
    });
    group.bench_function(BenchmarkId::new("astar", depth), |b| {
        b.iter(|| {
            assert_eq!(
                run(&program, Box::new(BestFirst::new())).solutions,
                solutions
            )
        })
    });
    group.bench_function(BenchmarkId::new("sma_star_64", depth), |b| {
        b.iter(|| {
            // Bounded memory drops subtrees: fewer solutions, capped
            // frontier — both asserted.
            let stats = run(&program, Box::new(SmaStar::new(64)));
            assert!(stats.frontier_peak <= 64);
            assert!(stats.solutions <= solutions);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
