//! Fine-grained work-distribution throughput: locked vs lock-free.
//!
//! The acceptance bench for the lock-free work-distribution PR. Two
//! backends run the *same* workloads:
//!
//! * **locked** — the PR-2 design: one `Mutex<VecDeque>` per worker,
//!   LIFO owner pops at the back, FIFO steals at the front, every
//!   operation under the lock (batch pushes amortise to one acquisition,
//!   exactly as the old engine did);
//! * **lockfree** — the Chase–Lev [`lwsnap_core::deque`]: owner pushes
//!   are a store + `Release` publish, owner pops a fence + load, steals
//!   one CAS.
//!
//! Workloads:
//!
//! * `churn/*` — single-owner push/pop bursts (the engine's depth-first
//!   fast path): the pure per-operation cost, no contention at all. This
//!   is the "fine-grained items" regime the ISSUE names: when an item
//!   costs nanoseconds, the distribution layer *is* the run time.
//! * `tree/*/{W}` — W workers cooperatively consuming a synthetic task
//!   tree (every item fans out into two children up to a fixed total),
//!   popping locally and stealing when dry — the parallel engine's
//!   access pattern with the guest work stripped out.
//! * `injector/*` — batch-push + MPMC pop throughput of the PR-2 locked
//!   injector replica vs the lock-free segment-list
//!   [`lwsnap_core::workqueue::Injector`].
//!
//! Throughput is reported in items/s (criterion `Elements`), so the
//! locked/lock-free ratio reads directly off the report. The shim's
//! `BENCH_JSON_DIR` hook additionally records min/median/mean for the
//! perf trajectory.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lwsnap_core::deque::{Deque, Steal};
use lwsnap_core::workqueue::Injector;

// ---------------------------------------------------------------------
// The locked baseline: PR 2's work-distribution layer, verbatim shape.
// ---------------------------------------------------------------------

/// One `Mutex<VecDeque>` per worker: push/extend at the back under the
/// lock, owner pops the back, thieves pop the front.
struct LockedDeques {
    deques: Vec<Mutex<VecDeque<u64>>>,
}

impl LockedDeques {
    fn new(workers: usize) -> Self {
        LockedDeques {
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    fn push_batch(&self, me: usize, items: impl IntoIterator<Item = u64>) {
        let mut deque = self.deques[me].lock().unwrap();
        deque.extend(items);
    }

    fn find_work(&self, me: usize) -> Option<u64> {
        if let Some(item) = self.deques[me].lock().unwrap().pop_back() {
            return Some(item);
        }
        let n = self.deques.len();
        for offset in 1..n {
            let victim = (me + offset) % n;
            if let Some(item) = self.deques[victim].lock().unwrap().pop_front() {
                return Some(item);
            }
        }
        None
    }
}

/// PR 2's Injector: a mutex-protected deque plus condvar, reproduced
/// here as the baseline after the real one went lock-free.
struct LockedInjector {
    inner: Mutex<VecDeque<u64>>,
    ready: Condvar,
}

impl LockedInjector {
    fn new() -> Self {
        LockedInjector {
            inner: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
        }
    }

    fn push_batch(&self, items: impl IntoIterator<Item = u64>) {
        let mut inner = self.inner.lock().unwrap();
        inner.extend(items);
        drop(inner);
        self.ready.notify_all();
    }

    fn try_pop(&self) -> Option<u64> {
        self.inner.lock().unwrap().pop_front()
    }
}

// ---------------------------------------------------------------------
// Workload: cooperative task-tree consumption.
// ---------------------------------------------------------------------

/// Every popped item < `fanout_below` pushes two children; the run ends
/// when `total` items have been processed. Returns items processed.
fn tree_locked(workers: usize, total: usize) -> usize {
    let shared = LockedDeques::new(workers);
    let processed = AtomicUsize::new(0);
    shared.push_batch(0, [1u64]);
    std::thread::scope(|scope| {
        for me in 0..workers {
            let shared = &shared;
            let processed = &processed;
            scope.spawn(move || loop {
                let done = processed.load(Ordering::Relaxed) >= total;
                if done {
                    break;
                }
                match shared.find_work(me) {
                    Some(v) => {
                        processed.fetch_add(1, Ordering::Relaxed);
                        shared.push_batch(me, [v.wrapping_mul(3) + 1, v.wrapping_mul(3) + 2]);
                    }
                    None => std::thread::yield_now(),
                }
            });
        }
    });
    processed.load(Ordering::Relaxed)
}

fn tree_lockfree(workers: usize, total: usize) -> usize {
    let mut deques: Vec<Deque<u64>> = (0..workers).map(|_| Deque::new()).collect();
    let stealers: Vec<_> = deques.iter().map(Deque::stealer).collect();
    let processed = AtomicUsize::new(0);
    deques[0].push(1);
    std::thread::scope(|scope| {
        for (me, mut own) in deques.into_iter().enumerate() {
            let stealers = &stealers;
            let processed = &processed;
            scope.spawn(move || loop {
                if processed.load(Ordering::Relaxed) >= total {
                    break;
                }
                let item = own.pop().or_else(|| {
                    let n = stealers.len();
                    for offset in 1..n {
                        loop {
                            match stealers[(me + offset) % n].steal() {
                                Steal::Success(v) => return Some(v),
                                Steal::Empty => break,
                                Steal::Retry => std::hint::spin_loop(),
                            }
                        }
                    }
                    None
                });
                match item {
                    Some(v) => {
                        processed.fetch_add(1, Ordering::Relaxed);
                        own.push(v.wrapping_mul(3) + 1);
                        own.push(v.wrapping_mul(3) + 2);
                    }
                    None => std::thread::yield_now(),
                }
            });
        }
    });
    processed.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------
// Benches.
// ---------------------------------------------------------------------

/// Single-owner push/pop churn: the engine's inline fast path.
fn bench_churn(c: &mut Criterion) {
    const OPS: usize = 4096; // push+pop pairs per iteration
    let mut group = c.benchmark_group("deque_scaling/churn");
    group.throughput(Throughput::Elements(OPS as u64 * 2));

    group.bench_function("locked", |b| {
        let shared = LockedDeques::new(1);
        b.iter(|| {
            // Sibling batches of 8, like a fan-out-8 guess, then drain.
            for base in 0..(OPS as u64 / 8) {
                shared.push_batch(0, (0..8).map(|i| base * 8 + i));
                for _ in 0..8 {
                    criterion::black_box(shared.find_work(0));
                }
            }
        })
    });

    group.bench_function("lockfree", |b| {
        let mut deque: Deque<u64> = Deque::new();
        b.iter(|| {
            for base in 0..(OPS as u64 / 8) {
                for i in 0..8 {
                    deque.push(base * 8 + i);
                }
                for _ in 0..8 {
                    criterion::black_box(deque.pop());
                }
            }
        })
    });
    group.finish();
}

/// W workers consuming a shared task tree of fine-grained items.
fn bench_tree(c: &mut Criterion) {
    const TOTAL: usize = 50_000;
    let mut group = c.benchmark_group("deque_scaling/tree");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TOTAL as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("locked", workers),
            &workers,
            |b, &workers| b.iter(|| criterion::black_box(tree_locked(workers, TOTAL))),
        );
        group.bench_with_input(
            BenchmarkId::new("lockfree", workers),
            &workers,
            |b, &workers| b.iter(|| criterion::black_box(tree_lockfree(workers, TOTAL))),
        );
    }
    group.finish();
}

/// Injector batch-push + pop throughput (single-threaded op cost; the
/// MPMC correctness side is covered by the stress tests).
fn bench_injector(c: &mut Criterion) {
    const ITEMS: u64 = 4096;
    const BATCH: u64 = 16;
    let mut group = c.benchmark_group("deque_scaling/injector");
    group.throughput(Throughput::Elements(ITEMS));

    group.bench_function("locked", |b| {
        b.iter(|| {
            let q = LockedInjector::new();
            for base in 0..(ITEMS / BATCH) {
                q.push_batch((0..BATCH).map(|i| base * BATCH + i));
            }
            while let Some(v) = q.try_pop() {
                criterion::black_box(v);
            }
        })
    });

    group.bench_function("lockfree", |b| {
        b.iter(|| {
            let q: Injector<u64> = Injector::new();
            for base in 0..(ITEMS / BATCH) {
                q.push_batch((0..BATCH).map(|i| base * BATCH + i));
            }
            while let Some(v) = q.try_pop() {
                criterion::black_box(v);
            }
        })
    });
    group.finish();
}

/// Contended injector: P producers racing C consumers — the regime the
/// lock-free upgrade targets (under a mutex, every op serialises and
/// preempted lock-holders strand everyone behind a futex wait).
fn bench_injector_mpmc(c: &mut Criterion) {
    const ITEMS: u64 = 16_384;
    const BATCH: u64 = 16;
    let mut group = c.benchmark_group("deque_scaling/injector_mpmc");
    group.sample_size(10);
    group.throughput(Throughput::Elements(ITEMS));
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("locked", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let q = LockedInjector::new();
                    let consumed = AtomicUsize::new(0);
                    std::thread::scope(|scope| {
                        for p in 0..threads as u64 {
                            let q = &q;
                            scope.spawn(move || {
                                let per = ITEMS / threads as u64;
                                for base in 0..(per / BATCH) {
                                    q.push_batch((0..BATCH).map(|i| p * per + base * BATCH + i));
                                }
                            });
                        }
                        for _ in 0..threads {
                            let q = &q;
                            let consumed = &consumed;
                            scope.spawn(move || loop {
                                match q.try_pop() {
                                    Some(v) => {
                                        criterion::black_box(v);
                                        consumed.fetch_add(1, Ordering::Relaxed);
                                    }
                                    None => {
                                        if consumed.load(Ordering::Relaxed) >= ITEMS as usize {
                                            break;
                                        }
                                        std::thread::yield_now();
                                    }
                                }
                            });
                        }
                    });
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("lockfree", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let q: Injector<u64> = Injector::new();
                    let consumed = AtomicUsize::new(0);
                    std::thread::scope(|scope| {
                        for p in 0..threads as u64 {
                            let q = &q;
                            scope.spawn(move || {
                                let per = ITEMS / threads as u64;
                                for base in 0..(per / BATCH) {
                                    q.push_batch((0..BATCH).map(|i| p * per + base * BATCH + i));
                                }
                            });
                        }
                        for _ in 0..threads {
                            let q = &q;
                            let consumed = &consumed;
                            scope.spawn(move || loop {
                                match q.try_pop() {
                                    Some(v) => {
                                        criterion::black_box(v);
                                        consumed.fetch_add(1, Ordering::Relaxed);
                                    }
                                    None => {
                                        if consumed.load(Ordering::Relaxed) >= ITEMS as usize {
                                            break;
                                        }
                                        std::thread::yield_now();
                                    }
                                }
                            });
                        }
                    });
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_churn,
    bench_tree,
    bench_injector,
    bench_injector_mpmc
);
criterion_main!(benches);
