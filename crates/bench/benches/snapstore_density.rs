//! Snapshot density — how many resident snapshots one byte budget
//! holds (the tentpole claim of the CoW snapshot store).
//!
//! The service prices its `snapshot_budget_bytes` against the store's
//! `resident_bytes`. The deep-clone baseline pays a full solver image
//! per snapshot; the page-granular CoW store pays one image for the
//! base plus a few dirtied pages per descendant (snapshot normal form
//! keeps the delta small). Under the *same* budget — three full images
//! at ~1500 vars — the CoW store must therefore keep **at least 5×**
//! more snapshots resident on a loadgen-style derivation tree. The
//! claim is asserted in the bench body, so the CI smoke run
//! (`-- --test`) enforces it, not just the full run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwsnap_snapstore::CowStore;
use lwsnap_solver::{random_ksat, DeepCloneStore, Lit, ProblemRef, SnapshotStore, SolverService};

const VARS: usize = 1500;
const TREE: usize = 64;

/// Service over `store`, seeded with one solved ratio-2.0 3-SAT base —
/// big enough (dozens of pages) that a full image dwarfs a delta.
fn seeded(store: Box<dyn SnapshotStore>) -> (SolverService, Vec<ProblemRef>) {
    let mut svc = SolverService::with_store(store);
    let root = svc.root();
    let base = svc
        .solve(root, &random_ksat(VARS, VARS * 2, 3, 9).clauses)
        .expect("base problem solves");
    (svc, vec![base.problem])
}

/// Grows a loadgen-style tree: each step derives from a pseudo-random
/// earlier problem with one small extra constraint.
fn grow_tree(svc: &mut SolverService, probs: &mut Vec<ProblemRef>, steps: usize) {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..steps {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let parent = probs[(state >> 33) as usize % probs.len()];
        let v = (1 + i % (VARS - 2)) as i64;
        let clause = vec![vec![Lit::from_dimacs(v), Lit::from_dimacs(-(v + 1))]];
        if let Some(reply) = svc.solve(parent, &clause) {
            probs.push(reply.problem);
        }
    }
}

type MakeStore = fn() -> Box<dyn SnapshotStore>;

fn resident_after_tree(make: MakeStore, budget: usize) -> usize {
    let (mut svc, mut probs) = seeded(make());
    svc.set_snapshot_budget(Some(budget));
    grow_tree(&mut svc, &mut probs, TREE);
    svc.stats().resident_snapshots
}

fn bench_snapstore_density(c: &mut Criterion) {
    // The budget: three full images, under whichever store's cost
    // model is dearer (they price a lone snapshot differently).
    let (deep_seed, _) = seeded(Box::new(DeepCloneStore::new()));
    let (cow_seed, _) = seeded(Box::new(CowStore::new()));
    let one_full = deep_seed
        .stats()
        .resident_bytes
        .max(cow_seed.stats().resident_bytes);
    drop((deep_seed, cow_seed));
    let budget = 3 * one_full;

    let stores: [(&str, MakeStore); 2] = [
        ("cow-page", || Box::new(CowStore::new())),
        ("deep-clone", || Box::new(DeepCloneStore::new())),
    ];

    let mut group = c.benchmark_group("snapstore_density");
    group.sample_size(10);
    for (name, make) in stores {
        group.bench_with_input(
            BenchmarkId::new("grow_tree_under_budget", name),
            &make,
            |b, &make| b.iter(|| std::hint::black_box(resident_after_tree(make, budget))),
        );
    }
    group.finish();

    // The density claim itself, measured once outside the timing loop.
    let cow = resident_after_tree(stores[0].1, budget);
    let deep = resident_after_tree(stores[1].1, budget);
    assert!(deep >= 1, "baseline holds at least the protected snapshot");
    assert!(
        cow >= 5 * deep,
        "density claim: cow-page holds {cow} snapshots vs deep-clone {deep} \
         under the same {budget}-byte budget (need >= 5x)"
    );
    println!(
        "snapstore_density: budget {budget} bytes -> cow-page {cow} resident, \
         deep-clone {deep} resident ({:.1}x)",
        cow as f64 / deep as f64
    );
}

criterion_group!(benches, bench_snapstore_density);
criterion_main!(benches);
