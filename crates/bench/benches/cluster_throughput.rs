//! Cluster throughput: the same multi-session closed-loop workload
//! (see `lwsnap_bench::service_workload`) against a 1-node vs a 3-node
//! in-process `lwsnapd` cluster, each node a full stack (own sharded
//! service, worker pool and epoll reactor) reached through the
//! consistent-hash `ClusterBackend`.
//!
//! Expected shape: on real multi-core hardware the 3-node cluster
//! approaches 3× the single node once sessions outnumber nodes (the
//! ring partitions sessions, so nodes share *nothing*); on a 1-core CI
//! box the node count mostly measures reactor/connection overhead, so
//! treat the 1-node run as the baseline and the 3-node delta as the
//! cost of distribution. The per-session serial `PipelinedClient` run
//! against a single plain server is included as the no-ring reference.
//!
//! The `many_conns_reactors/{1,2}` legs swap the workload for a wide
//! one — 64 sessions, each on its OWN pipelined connection, driven
//! concurrently — against a single server bound with one vs two
//! `SO_REUSEPORT` reactors, and `cluster_2reactors/3` reruns the
//! 3-node cluster with every node fanned out across two reactors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lwsnap_bench::service_workload::{run_backend, run_remote, Workload};
use lwsnap_service::{Cluster, PipelinedClient, Server, ServiceConfig, SolverBackend};

fn bench_cluster_throughput(c: &mut Criterion) {
    let sessions = 8;
    let queries = 6;
    let workload = Workload::build(sessions, queries, 50, 0xc1a5);
    let total = workload.total_queries() as u64;
    let workers = 2;

    let mut group = c.benchmark_group("cluster_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));

    // No-ring reference: one plain server, one pipelined connection.
    let server = Server::start("127.0.0.1:0", ServiceConfig::new(8), workers).expect("bind");
    group.bench_function("single_server", |b| {
        let client = PipelinedClient::connect(server.local_addr()).expect("connect");
        b.iter(|| std::hint::black_box(run_remote(&workload, &client).verdicts))
    });
    drop(server);

    for nodes in [1usize, 3] {
        let cluster =
            Cluster::start_local(nodes, ServiceConfig::new(8), workers).expect("start cluster");
        group.bench_with_input(BenchmarkId::new("cluster", nodes), &nodes, |b, _| {
            let backend = cluster.connect().expect("connect cluster");
            b.iter(|| std::hint::black_box(run_remote(&workload, &backend).verdicts))
        });
        cluster.shutdown();
    }

    // The 3-node cluster again with every node running two reactors:
    // same ring, same per-node connection, kernel-sharded accepts.
    let cluster =
        Cluster::start_local_with(3, ServiceConfig::new(8), workers, 2).expect("start cluster");
    group.bench_with_input(BenchmarkId::new("cluster_2reactors", 3), &3, |b, _| {
        let backend = cluster.connect().expect("connect cluster");
        b.iter(|| std::hint::black_box(run_remote(&workload, &backend).verdicts))
    });
    cluster.shutdown();

    // Many-connection profile: a wide workload (64 sessions × 2
    // queries), each session on its own pipelined connection, all
    // driven concurrently, against one server bound with one vs two
    // SO_REUSEPORT reactors.
    let wide = Workload::build(64, 2, 40, 0xfa17);
    group.throughput(Throughput::Elements(wide.total_queries() as u64));
    for reactors in [1usize, 2] {
        let server = Server::start_with("127.0.0.1:0", ServiceConfig::new(8), workers, reactors)
            .expect("bind");
        let addr = server.local_addr();
        group.bench_with_input(
            BenchmarkId::new("many_conns_reactors", reactors),
            &reactors,
            |b, _| {
                b.iter(|| {
                    let clients: Vec<PipelinedClient> = (0..64)
                        .map(|_| PipelinedClient::connect(addr).expect("connect"))
                        .collect();
                    let out = run_backend(&wide, |i, plan| {
                        let backend: &dyn SolverBackend = &clients[i];
                        let root = backend.session_root(plan.session).expect("transport");
                        let base = backend
                            .solve(root, wide.base.clone())
                            .expect("transport")
                            .expect("root is live")
                            .problem;
                        (backend, base)
                    });
                    std::hint::black_box(out.verdicts)
                })
            },
        );
        drop(server);
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_throughput);
criterion_main!(benches);
