//! Ablations of the engine's design choices (DESIGN.md §3.2).
//!
//! Two mechanisms make the snapshot engine viable; each is toggled off
//! here to measure its contribution:
//!
//! * **DFS inline fast path** — extension 0 continues in place instead
//!   of capture-then-restore. Ablated via `Dfs::without_inline()`.
//! * **Snapshot reclamation** — a snapshot is freed when its last
//!   pending extension is consumed. Ablated via
//!   `EngineConfig::keep_all_snapshots` (every snapshot pinned), which
//!   trades memory for nothing — the measured point of "rapid creation
//!   (and destruction) of snapshot trees".

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwsnap_core::{strategy::Dfs, Engine, EngineConfig};
use lwsnap_vm::{assemble_source, programs::nqueens_source, Interp};

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_inline_fast_path");
    group.sample_size(10);
    for n in [6u64, 7] {
        let program = assemble_source(&nqueens_source(n, false, true)).expect("assembles");
        group.bench_with_input(BenchmarkId::new("with_inline", n), &n, |b, _| {
            b.iter(|| {
                let mut engine = Engine::new(Dfs::new());
                let result = engine.run(&mut Interp::new(), program.boot().expect("boots"));
                assert!(result.stats.inline_continues > 0);
                std::hint::black_box(result.stats);
            })
        });
        group.bench_with_input(BenchmarkId::new("without_inline", n), &n, |b, _| {
            b.iter(|| {
                let mut engine = Engine::new(Dfs::without_inline());
                let result = engine.run(&mut Interp::new(), program.boot().expect("boots"));
                assert_eq!(result.stats.inline_continues, 0, "fast path ablated");
                std::hint::black_box(result.stats);
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ablation_snapshot_reclamation");
    group.sample_size(10);
    let program = assemble_source(&nqueens_source(7, false, true)).expect("assembles");
    group.bench_function("reclaiming", |b| {
        b.iter(|| {
            let mut engine = Engine::new(Dfs::new());
            let result = engine.run(&mut Interp::new(), program.boot().expect("boots"));
            // DFS + reclamation: O(depth) snapshots alive.
            assert!(result.stats.snapshots_peak <= 8);
            std::hint::black_box(result.stats);
        })
    });
    group.bench_function("keep_all", |b| {
        b.iter(|| {
            let config = EngineConfig {
                keep_all_snapshots: true,
                ..Default::default()
            };
            let mut engine = Engine::with_config(Dfs::new(), config);
            let result = engine.run(&mut Interp::new(), program.boot().expect("boots"));
            // Ablated: every internal node of the search tree stays live.
            assert_eq!(
                result.stats.snapshots_peak as u64,
                result.stats.snapshots_created
            );
            std::hint::black_box(result.stats);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
