//! E3b/§5 — problem granularity: when does system-level backtracking pay?
//!
//! Claim: "problems with a trivial instruction count per extension step
//! (e.g., n-queens) are best implemented by hand-coding … But our
//! motivating examples have address spaces measured in GB [and touch]
//! dozens or even hundreds of 4-KB pages during a single extension step."
//!
//! Two sweeps over the same synthetic search workload (depth-6 binary
//! tree):
//! * instructions per extension step (`work_iters`) — snapshot overhead
//!   amortises as steps get fatter;
//! * pages touched per step with CoW snapshots vs full state copies —
//!   the copy baseline loses as state grows, which is the paper's
//!   crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwsnap_core::{strategy::Dfs, Engine};
use lwsnap_vm::{assemble_source, programs::search_workload_source, Interp};

fn bench_granularity(c: &mut Criterion) {
    // Sweep instruction count per step (4 pages touched each step).
    let mut group = c.benchmark_group("e3b_instructions_per_step");
    group.sample_size(10);
    for work in [0u64, 200, 2000, 20000] {
        let program =
            assemble_source(&search_workload_source(6, 2, work, 4, 64)).expect("assembles");
        group.bench_with_input(BenchmarkId::from_parameter(work), &work, |b, _| {
            b.iter(|| {
                let mut engine = Engine::new(Dfs::new());
                let mut interp = Interp::new();
                let result = engine.run(&mut interp, program.boot().expect("boots"));
                assert_eq!(result.stats.solutions, 64);
            })
        });
    }
    group.finish();

    // Sweep pages touched per step: CoW snapshots (engine) vs an
    // eager-copy engine that deep-copies the whole space at every guess.
    let mut group = c.benchmark_group("e3b_pages_touched_cow_vs_copy");
    group.sample_size(10);
    for touch in [1u64, 16, 128] {
        let buffer_pages = 512u64;
        let program = assemble_source(&search_workload_source(5, 2, 0, touch, buffer_pages))
            .expect("assembles");
        group.bench_with_input(BenchmarkId::new("cow_snapshot", touch), &touch, |b, _| {
            b.iter(|| {
                let mut engine = Engine::new(Dfs::new());
                let mut interp = Interp::new();
                let result = engine.run(&mut interp, program.boot().expect("boots"));
                assert_eq!(result.stats.solutions, 32);
            })
        });
        group.bench_with_input(BenchmarkId::new("eager_copy", touch), &touch, |b, _| {
            b.iter(|| {
                // Same guest, but every resume starts from a full copy of
                // the address space — the "fat software layers" baseline.
                struct EagerCopy(Interp);
                impl lwsnap_core::Guest for EagerCopy {
                    fn resume(&mut self, st: &mut lwsnap_core::GuestState) -> lwsnap_core::Exit {
                        st.mem = st.mem.deep_copy();
                        self.0.resume(st)
                    }
                }
                let mut engine = Engine::new(Dfs::new());
                let mut guest = EagerCopy(Interp::new());
                let result = engine.run(&mut guest, program.boot().expect("boots"));
                assert_eq!(result.stats.solutions, 32);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_granularity);
criterion_main!(benches);
