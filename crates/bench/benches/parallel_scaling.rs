//! Parallel scaling of the work-stealing engine.
//!
//! Measures the wall-clock of an exhaustive n-queens search as worker
//! count grows, against the sequential engine as baseline. The search
//! tree is irregular (failed prefixes die early), which is exactly the
//! load shape work stealing exists for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwsnap_core::{strategy::Dfs, Engine, ParallelEngine};
use lwsnap_vm::{assemble_source, programs::nqueens_source, Interp};

fn bench_parallel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(10);

    let n = 7u64;
    let program = assemble_source(&nqueens_source(n, false, true)).expect("assembles");
    let expected = 40; // 7-queens

    group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, _| {
        b.iter(|| {
            let result = Engine::new(Dfs::new()).run(&mut Interp::new(), program.boot().unwrap());
            assert_eq!(result.stats.solutions, expected);
        })
    });

    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("workers", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let result =
                        ParallelEngine::new(workers).run(Interp::new, program.boot().unwrap());
                    assert_eq!(result.stats.solutions, expected);
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
