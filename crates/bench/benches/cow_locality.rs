//! E3 — CoW cost tracks pages *touched*, not address-space size (§5).
//!
//! Claim: "the execution granularity, complexity of hand-coded logic,
//! and page-level memory locality will each play a role"; the enabling
//! property is that a divergence after a snapshot costs O(pages touched).
//!
//! Sweeps k = pages touched per extension for fixed and growing space
//! sizes M. Expected shape: time and bytes copied scale with k and are
//! flat in M; the full-copy baseline scales with M.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lwsnap_mem::{AddressSpace, Prot, RegionKind, PAGE_SIZE};

const BASE: u64 = 0x10_0000;

fn space_with(pages: u64) -> AddressSpace {
    let mut asp = AddressSpace::new();
    asp.map_fixed(
        BASE,
        pages * PAGE_SIZE as u64,
        Prot::RW,
        RegionKind::Anon,
        "ram",
    )
    .unwrap();
    for p in 0..pages {
        asp.write_u64(BASE + p * PAGE_SIZE as u64, p).unwrap();
    }
    asp
}

fn bench_cow_locality(c: &mut Criterion) {
    // Part 1: fixed M = 4096 pages, sweep k.
    let mut group = c.benchmark_group("e3_cow_touch_k_pages");
    let parent = space_with(4096);
    for k in [1u64, 8, 64, 512] {
        group.throughput(Throughput::Bytes(k * PAGE_SIZE as u64));
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| {
                // Fork a child view and dirty k pages.
                let mut child = parent.snapshot();
                let before = *child.stats();
                for p in 0..k {
                    child
                        .write_u64(BASE + p * PAGE_SIZE as u64, 0xffff)
                        .unwrap();
                }
                let delta = child.stats().delta(&before);
                assert_eq!(delta.cow_page_copies, k, "exactly k pages copied");
                std::hint::black_box(child);
            })
        });
    }
    group.finish();

    // Part 2: fixed k = 8, sweep M — cost must stay flat.
    let mut group = c.benchmark_group("e3_cow_flat_in_space_size");
    for m in [64u64, 1024, 16384] {
        let parent = space_with(m);
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                let mut child = parent.snapshot();
                for p in 0..8 {
                    child
                        .write_u64(BASE + p * PAGE_SIZE as u64, 0xffff)
                        .unwrap();
                }
                std::hint::black_box(child);
            })
        });
    }
    group.finish();

    // Part 3: the full-copy baseline grows with M (crossover partner).
    let mut group = c.benchmark_group("e3_full_copy_grows_with_m");
    group.sample_size(20);
    for m in [64u64, 1024, 16384] {
        let parent = space_with(m);
        group.throughput(Throughput::Bytes(m * PAGE_SIZE as u64));
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| std::hint::black_box(parent.deep_copy()))
        });
    }
    group.finish();

    // Part 4: many-snapshot profile — a whole *family* of n children,
    // each dirtying k = 8 pages of a 4096-page parent, costs n·k page
    // copies total (plus path nodes), never n full images. This is the
    // address-space-level shape of the snapstore_density claim.
    let mut group = c.benchmark_group("e3_many_children_cost_deltas");
    group.sample_size(20);
    let parent = space_with(4096);
    for n in [8u64, 64, 256] {
        group.throughput(Throughput::Bytes(n * 8 * PAGE_SIZE as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let before = *parent.stats();
                let family: Vec<_> = (0..n)
                    .map(|i| {
                        let mut child = parent.snapshot();
                        for p in 0..8 {
                            child
                                .write_u64(BASE + (i * 8 + p) % 4096 * PAGE_SIZE as u64, i)
                                .unwrap();
                        }
                        child
                    })
                    .collect();
                let copied = family
                    .iter()
                    .map(|c| c.stats().delta(&before).cow_page_copies)
                    .sum::<u64>();
                assert_eq!(copied, n * 8, "each child pays exactly its k pages");
                std::hint::black_box(family);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cow_locality);
criterion_main!(benches);
