//! E7 — why not just fork? Per-decision cost of the naive design (§3).
//!
//! Claim: "the large performance overheads of this naive approach would
//! likely dwarf any benefit in most circumstances."
//!
//! Explores the same complete binary decision tree three ways and
//! reports time per tree (divide by 2^depth - 1 decisions for the
//! per-decision figure):
//! * real `fork()`-per-decision DFS (the naive design);
//! * snapshot engine running the equivalent SVM-64 guest;
//! * host-closure replay (re-execution, no snapshots at all).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwsnap_core::{replay_dfs, strategy::Dfs, Engine, Outcome};
use lwsnap_os::{fork_dfs, ForkOutcome};
use lwsnap_vm::{assemble_source, programs::guess_fail_source, Interp};

fn bench_fork_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_fork_baseline");
    group.sample_size(10);
    for depth in [4u64, 6] {
        let leaves = 1u64 << depth;

        group.bench_with_input(
            BenchmarkId::new("fork_per_decision", depth),
            &depth,
            |b, &depth| {
                b.iter(|| {
                    let stats = fork_dfs(move |ctx| {
                        for _ in 0..depth {
                            ctx.guess(2);
                        }
                        ForkOutcome::Failed
                    })
                    .expect("fork tree runs");
                    assert_eq!(stats.failures, leaves);
                })
            },
        );

        let program = assemble_source(&guess_fail_source(depth, 2)).expect("assembles");
        group.bench_with_input(
            BenchmarkId::new("snapshot_engine", depth),
            &depth,
            |b, _| {
                b.iter(|| {
                    let mut engine = Engine::new(Dfs::new());
                    let mut interp = Interp::new();
                    let result = engine.run(&mut interp, program.boot().expect("boots"));
                    assert_eq!(result.stats.failures, leaves);
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("replay", depth), &depth, |b, &depth| {
            b.iter(|| {
                let result = replay_dfs(
                    |ctx| {
                        for _ in 0..depth {
                            ctx.guess(2);
                        }
                        Outcome::Failed
                    },
                    None,
                );
                assert_eq!(result.stats.failures, leaves);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fork_baseline);
criterion_main!(benches);
