//! Service throughput: the sequential `SolverService` vs the sharded,
//! worker-pooled `ShardedService` on the same multi-session closed-loop
//! workload (see `lwsnap_bench::service_workload`).
//!
//! Expected shape: throughput grows with the worker count until the
//! session/shard parallelism is exhausted; the eviction-capped variant
//! trades a little throughput for a 4× smaller resident set. The shim's
//! min/median/stddev report is what makes the comparison meaningful.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lwsnap_bench::service_workload::{run_sequential, run_sharded, Workload};

fn bench_service_throughput(c: &mut Criterion) {
    let sessions = 8;
    let queries = 6;
    let workload = Workload::build(sessions, queries, 50, 0xbe9c);
    let total = workload.total_queries() as u64;

    let mut group = c.benchmark_group("service_throughput");
    group.sample_size(10);
    group.throughput(Throughput::Elements(total));

    group.bench_function("sequential", |b| {
        b.iter(|| std::hint::black_box(run_sequential(&workload).verdicts))
    });
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("sharded", workers),
            &workers,
            |b, &workers| {
                b.iter(|| std::hint::black_box(run_sharded(&workload, 8, workers, None).0.verdicts))
            },
        );
    }
    // The memory-bounded flavour: 25%-ish caps force eviction + replay.
    group.bench_with_input(BenchmarkId::new("sharded_cap2", 4), &4, |b, &workers| {
        b.iter(|| std::hint::black_box(run_sharded(&workload, 8, workers, Some(2)).0.verdicts))
    });
    // Tracing overhead at fixed parallelism: the identical workload
    // with the event recorder on vs off (metrics histograms stay live
    // either way — that is the deal the hot paths make). CI's ≤5% gate
    // runs `examples/trace_overhead.rs`; this pair is the Criterion
    // view of the same question.
    for (label, on) in [("sharded4_traced", true), ("sharded4_untraced", false)] {
        group.bench_function(label, |b| {
            lwsnap_trace::set_enabled(on);
            b.iter(|| std::hint::black_box(run_sharded(&workload, 8, 4, None).0.verdicts));
            lwsnap_trace::set_enabled(true);
            lwsnap_trace::drain();
        });
    }
    group.finish();
}

criterion_group!(benches, bench_service_throughput);
criterion_main!(benches);
