//! E2 — snapshot take/restore vs the OS alternatives (paper §4).
//!
//! Claim (via Dune): "memory protection events and forks can be
//! implemented … with an order of magnitude better performance than
//! corresponding Linux abstractions."
//!
//! Measures, across address-space sizes (resident pages):
//! * lightweight snapshot take + restore (software MMU, O(1));
//! * full deep copy of the space (what naive state copying costs);
//! * mprotect-arena snapshot + restore (userspace page-protection CoW);
//! * real `fork()` + `_exit` + `waitpid` roundtrip (the §3 naive design).
//!
//! Expected shape: snapshot cost is flat in the space size; deep copy and
//! fork grow with it; the snapshot/fork gap is orders of magnitude.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwsnap_mem::{AddressSpace, Prot, RegionKind, PAGE_SIZE};
use lwsnap_os::CkptArena;

const BASE: u64 = 0x10_0000;

fn space_with(pages: u64) -> AddressSpace {
    let mut asp = AddressSpace::new();
    asp.map_fixed(
        BASE,
        pages * PAGE_SIZE as u64,
        Prot::RW,
        RegionKind::Anon,
        "ram",
    )
    .unwrap();
    for p in 0..pages {
        asp.write_u64(BASE + p * PAGE_SIZE as u64, p).unwrap();
    }
    asp
}

fn bench_snapshot_vs_fork(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_snapshot_vs_fork");
    for pages in [16u64, 256, 4096] {
        let asp = space_with(pages);

        // Lightweight snapshot: take + drop (restore is the same clone).
        group.bench_with_input(BenchmarkId::new("lw_snapshot", pages), &pages, |b, _| {
            b.iter(|| {
                let snap = asp.snapshot();
                std::hint::black_box(&snap);
            })
        });

        // Take + restore + one divergent write (the realistic cycle).
        group.bench_with_input(
            BenchmarkId::new("lw_snapshot_cycle", pages),
            &pages,
            |b, _| {
                let mut working = asp.clone();
                b.iter(|| {
                    let snap = working.snapshot();
                    working.write_u64(BASE, 0xdead).unwrap();
                    working = snap.clone(); // restore
                    std::hint::black_box(&working);
                })
            },
        );

        // Full copy baseline.
        group.bench_with_input(BenchmarkId::new("deep_copy", pages), &pages, |b, _| {
            b.iter(|| std::hint::black_box(asp.deep_copy()))
        });

        // mprotect arena: snapshot + dirty one page + restore.
        group.bench_with_input(BenchmarkId::new("mprotect_arena", pages), &pages, |b, _| {
            let mut arena = CkptArena::new(pages as usize).unwrap();
            b.iter(|| {
                let level = arena.snapshot().unwrap();
                arena.as_mut_slice()[0] = 1;
                arena.restore(level).unwrap();
                arena.commit().unwrap();
            })
        });

        // Real fork round-trip over this process (whose RSS includes the
        // populated address spaces above).
        group.bench_with_input(BenchmarkId::new("fork_roundtrip", pages), &pages, |b, _| {
            b.iter(|| {
                // SAFETY: immediate `_exit` in the child; parent reaps it.
                unsafe {
                    let pid = libc::fork();
                    if pid == 0 {
                        libc::_exit(0);
                    }
                    let mut status = 0;
                    libc::waitpid(pid, &mut status, 0);
                }
            })
        });
    }
    group.finish();

    // Many-snapshot profile: taking snapshot N+1 must stay O(1) no
    // matter how many earlier snapshots are still alive — the property
    // the CoW snapshot store leans on when it keeps dozens of solver
    // states resident under one byte budget.
    let mut group = c.benchmark_group("e2_many_live_snapshots");
    let asp = space_with(1024);
    for held in [1usize, 64, 1024] {
        let live: Vec<_> = (0..held).map(|_| asp.snapshot()).collect();
        group.bench_with_input(BenchmarkId::from_parameter(held), &held, |b, _| {
            b.iter(|| std::hint::black_box(asp.snapshot()))
        });
        drop(live);
    }
    group.finish();
}

criterion_group!(benches, bench_snapshot_vs_fork);
criterion_main!(benches);
