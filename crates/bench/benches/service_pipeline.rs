//! Pipelined vs blocking wire throughput against the epoll front end.
//!
//! Both benchmarks push the same stream of independent solve queries
//! through one loopback TCP connection; the only variable is the wire
//! discipline:
//!
//! * `tcp_blocking` — the legacy [`TcpClient`]: one v1 frame out, wait
//!   for the reply, repeat. Every query pays a full round trip plus a
//!   reactor wakeup.
//! * `tcp_pipelined/8` — the [`PipelinedClient`] keeping a depth-8
//!   window of tagged requests in flight: the round trips and reactor
//!   wakeups amortise across the window, and the worker pool sees the
//!   whole window at once instead of one query at a time.
//!
//! Expected shape: pipelined ≥ 1.5× blocking at depth 8 (the win grows
//! with round-trip cost — loopback is the *worst* case for pipelining,
//! any real network makes the gap wider).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lwsnap_service::{PipelinedClient, Response, Server, ServiceConfig, SolverBackend, TcpClient};
use lwsnap_solver::Lit;

const DEPTH: usize = 8;
const WINDOWS: usize = 8;

/// A small satisfiable query, distinct per step so nothing caches.
fn clauses(step: usize) -> Vec<Vec<Lit>> {
    let v = (step % 40 + 1) as i64;
    vec![
        vec![Lit::from_dimacs(v), Lit::from_dimacs(v + 1)],
        vec![Lit::from_dimacs(-v), Lit::from_dimacs(v + 2)],
    ]
}

fn wire_clauses(step: usize) -> Vec<Vec<i64>> {
    clauses(step)
        .iter()
        .map(|c| c.iter().map(|l| l.to_dimacs()).collect())
        .collect()
}

fn bench_service_pipeline(c: &mut Criterion) {
    // Bound residency so the growing problem tree stays cheap; the
    // queries never revisit children, so eviction costs nothing here.
    let config = ServiceConfig::new(8).with_snapshot_capacity(32);
    let server = Server::start("127.0.0.1:0", config, 4).expect("bind loopback");
    let addr = server.local_addr();

    let mut group = c.benchmark_group("service_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements((DEPTH * WINDOWS) as u64));

    group.bench_function("tcp_blocking", |b| {
        let mut client = TcpClient::connect(addr).expect("connect");
        let root = client.session_root(1).expect("root");
        let mut step = 0usize;
        b.iter(|| {
            for _ in 0..DEPTH * WINDOWS {
                let response = client.solve(root, &wire_clauses(step)).expect("solve");
                let Response::Solved { sat: true, .. } = response else {
                    panic!("expected SAT");
                };
                step += 1;
            }
        })
    });

    group.bench_with_input(
        BenchmarkId::new("tcp_pipelined", DEPTH),
        &DEPTH,
        |b, &depth| {
            let client = PipelinedClient::connect(addr).expect("connect");
            let root = client.session_root(2).expect("root");
            let mut step = 0usize;
            b.iter(|| {
                for _ in 0..WINDOWS {
                    let tickets: Vec<_> = (0..depth)
                        .map(|_| {
                            let t = client.submit(root, clauses(step)).expect("submit");
                            step += 1;
                            t
                        })
                        .collect();
                    for ticket in tickets {
                        let reply = client.wait(ticket).expect("wait").expect("live root");
                        assert_eq!(reply.result, lwsnap_solver::SolveResult::Sat);
                    }
                }
            })
        },
    );

    group.finish();
    drop(server);
}

criterion_group!(benches, bench_service_pipeline);
criterion_main!(benches);
