//! Pipelined vs blocking wire throughput against the epoll front end.
//!
//! Both benchmarks push the same stream of independent solve queries
//! through one loopback TCP connection; the only variable is the wire
//! discipline:
//!
//! * `tcp_blocking` — the legacy [`TcpClient`]: one v1 frame out, wait
//!   for the reply, repeat. Every query pays a full round trip plus a
//!   reactor wakeup.
//! * `tcp_pipelined/8` — the [`PipelinedClient`] keeping a depth-8
//!   window of tagged requests in flight: the round trips and reactor
//!   wakeups amortise across the window, and the worker pool sees the
//!   whole window at once instead of one query at a time.
//!
//! Expected shape: pipelined ≥ 1.5× blocking at depth 8 (the win grows
//! with round-trip cost — loopback is the *worst* case for pipelining,
//! any real network makes the gap wider).
//!
//! The `many_conns_reactors/{1,2}` legs measure the reactor fan-out
//! instead: 64 concurrent pipelined connections against the same
//! server bound with one vs two `SO_REUSEPORT` reactors. With
//! `REACTOR_GATE=1` the run additionally asserts the two regression
//! bars from the front-end rework: two reactors ≥ 1.3× one reactor on
//! multi-core hosts (≥ 4 CPUs — kernel accept sharding needs real
//! parallelism to show), and the zero-copy receive path holding on
//! every host: ≤ 64 spilled bytes per request, counted by the
//! per-reactor buffer pools.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lwsnap_service::{PipelinedClient, Response, Server, ServiceConfig, SolverBackend, TcpClient};
use lwsnap_solver::Lit;

const DEPTH: usize = 8;
const WINDOWS: usize = 8;

/// Connections in the reactor fan-out legs: enough that the kernel's
/// `SO_REUSEPORT` sharding has something to spread.
const CONNS: usize = 64;

/// Pipelined queries each fan-out connection issues per run.
const CONN_QUERIES: usize = 4;

/// A small satisfiable query, distinct per step so nothing caches.
fn clauses(step: usize) -> Vec<Vec<Lit>> {
    let v = (step % 40 + 1) as i64;
    vec![
        vec![Lit::from_dimacs(v), Lit::from_dimacs(v + 1)],
        vec![Lit::from_dimacs(-v), Lit::from_dimacs(v + 2)],
    ]
}

fn wire_clauses(step: usize) -> Vec<Vec<i64>> {
    clauses(step)
        .iter()
        .map(|c| c.iter().map(|l| l.to_dimacs()).collect())
        .collect()
}

/// Drives `conns` concurrent pipelined connections (one thread and one
/// session each, `queries` solves pipelined per connection) and returns
/// the wall time for the whole fan-out.
fn run_many(addr: SocketAddr, conns: usize, queries: usize) -> Duration {
    let started = Instant::now();
    std::thread::scope(|scope| {
        for i in 0..conns {
            scope.spawn(move || {
                let client = PipelinedClient::connect(addr).expect("connect");
                let root = client.session_root(1000 + i as u64).expect("root");
                let tickets: Vec<_> = (0..queries)
                    .map(|q| {
                        client
                            .submit(root, clauses(i * queries + q))
                            .expect("submit")
                    })
                    .collect();
                for ticket in tickets {
                    let reply = client.wait(ticket).expect("wait").expect("live root");
                    assert_eq!(reply.result, lwsnap_solver::SolveResult::Sat);
                }
            });
        }
    });
    started.elapsed()
}

/// The front-end regression gate, run when `REACTOR_GATE=1`: measures
/// the 64-connection fan-out against a 1-reactor and a 2-reactor
/// server and asserts (a) two reactors ≥ 1.3× one reactor — on hosts
/// with ≥ 4 CPUs only, kernel accept sharding cannot speed up a single
/// core — and (b) the receive path stayed zero-copy: ≤ 64 spilled
/// bytes per request on average, from the per-reactor pool counters.
fn reactor_gate() {
    if std::env::var_os("REACTOR_GATE").is_none_or(|v| v != "1") {
        return;
    }
    let measure = |reactors: usize| {
        let config = ServiceConfig::new(8).with_snapshot_capacity(32);
        let server = Server::start_with("127.0.0.1:0", config, 4, reactors).expect("bind");
        run_many(server.local_addr(), CONNS, 1); // warm up listeners + pool
        let wall = run_many(server.local_addr(), CONNS, CONN_QUERIES);
        let stats = server.reactor_stats();
        server.shutdown();
        (wall, stats)
    };
    let (one, _) = measure(1);
    let (two, stats) = measure(2);

    // Both runs on the 2-reactor server: each connection sends one
    // session root plus its solves.
    let requests = (CONNS * (2 + 1 + CONN_QUERIES)) as u64;
    let rx_copy: u64 = stats.iter().map(|s| s.rx_copy_bytes).sum();
    assert!(
        rx_copy / requests <= 64,
        "REACTOR_GATE: receive path copied {rx_copy} bytes over {requests} requests \
         ({} B/req) — the zero-copy parse regressed",
        rx_copy / requests,
    );

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores >= 4 {
        let speedup = one.as_secs_f64() / two.as_secs_f64();
        assert!(
            speedup >= 1.3,
            "REACTOR_GATE: 2 reactors only {speedup:.2}× 1 reactor over {CONNS} \
             connections (bar: 1.3×) — 1-reactor {one:?}, 2-reactor {two:?}"
        );
        println!("REACTOR_GATE: 2 reactors = {speedup:.2}× 1 reactor ({CONNS} conns)");
    } else {
        println!("REACTOR_GATE: {cores} CPU(s) < 4, skipping the 1.3× scaling bar");
    }
    println!(
        "REACTOR_GATE: rx copies {rx_copy} B / {requests} requests = {} B/req",
        rx_copy / requests,
    );
}

fn bench_service_pipeline(c: &mut Criterion) {
    // Bound residency so the growing problem tree stays cheap; the
    // queries never revisit children, so eviction costs nothing here.
    let config = ServiceConfig::new(8).with_snapshot_capacity(32);
    let server = Server::start("127.0.0.1:0", config, 4).expect("bind loopback");
    let addr = server.local_addr();

    let mut group = c.benchmark_group("service_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements((DEPTH * WINDOWS) as u64));

    group.bench_function("tcp_blocking", |b| {
        let mut client = TcpClient::connect(addr).expect("connect");
        let root = client.session_root(1).expect("root");
        let mut step = 0usize;
        b.iter(|| {
            for _ in 0..DEPTH * WINDOWS {
                let response = client.solve(root, &wire_clauses(step)).expect("solve");
                let Response::Solved { sat: true, .. } = response else {
                    panic!("expected SAT");
                };
                step += 1;
            }
        })
    });

    group.bench_with_input(
        BenchmarkId::new("tcp_pipelined", DEPTH),
        &DEPTH,
        |b, &depth| {
            let client = PipelinedClient::connect(addr).expect("connect");
            let root = client.session_root(2).expect("root");
            let mut step = 0usize;
            b.iter(|| {
                for _ in 0..WINDOWS {
                    let tickets: Vec<_> = (0..depth)
                        .map(|_| {
                            let t = client.submit(root, clauses(step)).expect("submit");
                            step += 1;
                            t
                        })
                        .collect();
                    for ticket in tickets {
                        let reply = client.wait(ticket).expect("wait").expect("live root");
                        assert_eq!(reply.result, lwsnap_solver::SolveResult::Sat);
                    }
                }
            })
        },
    );

    // The reactor fan-out: the same server config bound with one vs
    // two SO_REUSEPORT reactors, 64 concurrent pipelined connections.
    group.throughput(Throughput::Elements((CONNS * CONN_QUERIES) as u64));
    for reactors in [1usize, 2] {
        let config = ServiceConfig::new(8).with_snapshot_capacity(32);
        let many = Server::start_with("127.0.0.1:0", config, 4, reactors).expect("bind");
        let many_addr = many.local_addr();
        group.bench_with_input(
            BenchmarkId::new("many_conns_reactors", reactors),
            &reactors,
            |b, _| b.iter(|| run_many(many_addr, CONNS, CONN_QUERIES)),
        );
        many.shutdown();
    }

    group.finish();
    drop(server);
    reactor_gate();
}

criterion_group!(benches, bench_service_pipeline);
criterion_main!(benches);
