//! E1 — n-queens ranking (paper §5).
//!
//! Claim: "substantially worse than a hand-coded implementation, but
//! better than a Prolog implementation running on XSB."
//!
//! Reproduce with: `cargo bench --bench nqueens_ranking`
//! Expected shape: hand-coded ≪ snapshot engine < Prolog; the
//! snapshot/Prolog gap widens with N (see EXPERIMENTS.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lwsnap_core::{replay_dfs, strategy::Dfs, Engine, Outcome};
use lwsnap_prolog::{Machine, NQUEENS_PROGRAM};
use lwsnap_vm::{assemble_source, programs::nqueens_source, Interp};

fn handcoded(n: u32) -> u64 {
    fn go(n: u32, cols: u32, ld: u32, rd: u32) -> u64 {
        if cols == (1 << n) - 1 {
            return 1;
        }
        let mut free = !(cols | ld | rd) & ((1 << n) - 1);
        let mut count = 0;
        while free != 0 {
            let bit = free & free.wrapping_neg();
            free -= bit;
            count += go(n, cols | bit, (ld | bit) << 1, (rd | bit) >> 1);
        }
        count
    }
    go(n, 0, 0, 0)
}

fn expected(n: u64) -> u64 {
    match n {
        6 => 4,
        7 => 40,
        8 => 92,
        _ => unreachable!(),
    }
}

fn bench_ranking(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_nqueens_ranking");
    group.sample_size(10);
    for n in [6u64, 7, 8] {
        group.bench_with_input(BenchmarkId::new("hand_coded", n), &n, |b, &n| {
            b.iter(|| {
                assert_eq!(handcoded(n as u32), expected(n));
            })
        });

        let program = assemble_source(&nqueens_source(n, false, true)).expect("assembles");
        group.bench_with_input(BenchmarkId::new("snapshot_engine", n), &n, |b, &n| {
            b.iter(|| {
                let mut engine = Engine::new(Dfs::new());
                let mut interp = Interp::new();
                let result = engine.run(&mut interp, program.boot().expect("boots"));
                assert_eq!(result.stats.solutions, expected(n));
            })
        });

        group.bench_with_input(BenchmarkId::new("replay_oracle", n), &n, |b, &n| {
            b.iter(|| {
                let result = replay_dfs(
                    |ctx| {
                        let size = n as usize;
                        let mut col = vec![false; size];
                        let mut d1 = vec![false; 2 * size];
                        let mut d2 = vec![false; 2 * size];
                        for c in 0..size {
                            let r = ctx.guess(n) as usize;
                            if col[r] || d1[r + c] || d2[size + r - c] {
                                return Outcome::Failed;
                            }
                            col[r] = true;
                            d1[r + c] = true;
                            d2[size + r - c] = true;
                        }
                        Outcome::Solution
                    },
                    None,
                );
                assert_eq!(result.stats.solutions, expected(n));
            })
        });

        group.bench_with_input(BenchmarkId::new("prolog", n), &n, |b, &n| {
            b.iter(|| {
                let mut m = Machine::new();
                m.consult(NQUEENS_PROGRAM).expect("loads");
                assert_eq!(
                    m.count_solutions(&format!("queens({n}, Qs)"))
                        .expect("runs"),
                    expected(n)
                );
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ranking);
criterion_main!(benches);
