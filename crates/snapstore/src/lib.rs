//! # lwsnap-snapstore — page-granular CoW snapshot store
//!
//! Stores solver snapshots on the persistent radix page table of
//! `lwsnap-mem`, so a snapshot costs O(pages dirtied since its parent)
//! instead of O(whole solver state) — the paper's core cost model
//! applied to the solver service's own snapshot cache.
//!
//! ## How a snapshot becomes pages
//!
//! [`CowStore::put`] encodes the solver through the sectioned codec of
//! `lwsnap_solver::snapshot` (essential state only, every field in its
//! own section at a fixed virtual base; the solver's *snapshot normal
//! form* makes semantically equal states byte-equal), then lays the
//! bytes over a **clone of the parent snapshot's page table** — an O(1)
//! persistent fork. Each 4 KiB page is compared before it is written:
//! a page whose bytes match the parent's stays physically shared, a
//! page of zeroes with no backing frame stays demand-zero, and only
//! genuinely dirtied pages get fresh frames. The result is structural
//! parent-delta storage without an explicit delta chain:
//!
//! ```text
//!   root  ──────►  [H][arena·····][activity····][assigns··]   (all frames)
//!                     │     │           │            │
//!   child ──────►  [H'][arena····A][activity····][assigns·B]
//!                          ▲ shared with root except pages H', A, B
//! ```
//!
//! Removal (eviction or release) drops the victim's table; frames only
//! it referenced are freed by refcount, frames shared with relatives
//! survive. Releasing every intermediate of a linear chain therefore
//! *compacts* the chain automatically: the surviving descendant keeps
//! exactly the union of pages it still maps, nothing else.
//!
//! [`CowStore::resident_bytes`] counts **distinct frames** across all
//! resident snapshots — shared storage priced once — which is what the
//! service's `snapshot_budget_bytes` compares against; with sharing,
//! the same budget holds many times more snapshots than the deep-clone
//! baseline (the `snapstore_density` bench asserts ≥ 5×).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

use lwsnap_mem::{MemStats, PageBuf, PageTable, PAGE_SIZE};
use lwsnap_solver::snapshot::{
    self, SnapId, SnapshotStore, StoreMemStats, StorePageStats, NUM_SECTIONS,
};
use lwsnap_solver::Solver;

/// Pages reserved per codec section: 1 Mi pages = 4 GiB of virtual
/// room, far beyond any solver section, and `NUM_SECTIONS` strides fit
/// comfortably in the table's 36-bit vpn space. Fixed bases mean one
/// section's growth never shifts another's pages.
const SECTION_STRIDE: u64 = 1 << 20;

/// Page-granular copy-on-write snapshot store.
///
/// Each resident snapshot is one persistent [`PageTable`] holding the
/// snapshot's encoded state; tables forked from a parent share every
/// frame the child did not dirty. See the crate docs for the layout.
pub struct CowStore {
    slots: Vec<Option<PageTable>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    live: usize,
    stats: MemStats,
    /// Memoised `(resident_bytes, page_stats)` — invalidated by every
    /// `put`/`remove`, recomputed lazily by a frame walk.
    cache: Cell<Option<(usize, StorePageStats)>>,
}

impl Default for CowStore {
    fn default() -> Self {
        Self::new()
    }
}

impl CowStore {
    /// An empty store.
    pub fn new() -> CowStore {
        CowStore {
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            live: 0,
            stats: MemStats::new(),
            cache: Cell::new(None),
        }
    }

    /// Cumulative MMU counters: CoW page copies, zero fills and bytes
    /// written by snapshot encoding (the "what was copied, when" the
    /// benches assert on).
    pub fn mem_stats(&self) -> MemStats {
        self.stats
    }

    fn table(&self, id: SnapId) -> Option<&PageTable> {
        if *self.gens.get(id.idx() as usize)? != id.gen() {
            return None;
        }
        self.slots[id.idx() as usize].as_ref()
    }

    /// Writes one encoded section into `table` at its fixed base,
    /// skipping pages whose bytes already match (they stay shared with
    /// the parent) and all-zero pages with no frame (demand-zero).
    fn write_section(table: &mut PageTable, stats: &mut MemStats, sec_idx: usize, bytes: &[u8]) {
        let base = sec_idx as u64 * SECTION_STRIDE;
        let npages = bytes.len().div_ceil(PAGE_SIZE) as u64;
        debug_assert!(npages < SECTION_STRIDE, "section overflows its stride");
        for p in 0..npages {
            let start = (p as usize) * PAGE_SIZE;
            let chunk = &bytes[start..bytes.len().min(start + PAGE_SIZE)];
            let vpn = base + p;
            let (present, dirty) = match table.frame(vpn) {
                Some(frame) => {
                    let fb = frame.bytes();
                    let same =
                        fb[..chunk.len()] == *chunk && fb[chunk.len()..].iter().all(|&b| b == 0);
                    (true, !same)
                }
                None => (false, chunk.iter().any(|&b| b != 0)),
            };
            if !dirty {
                continue;
            }
            // `install` with a fresh frame rather than `with_frame_mut`:
            // the old shared frame must not be copied first just to be
            // overwritten. Bill the page copy / zero fill ourselves
            // (install only counts node copies).
            if present {
                stats.cow_page_copies += 1;
            } else {
                stats.zero_fills += 1;
            }
            stats.bytes_written += chunk.len() as u64;
            let mut buf = PageBuf::zeroed();
            buf.bytes_mut()[..chunk.len()].copy_from_slice(chunk);
            table.install(vpn, Arc::new(buf), stats);
        }
        // Pages past the section's new end are stale parent state (the
        // section shrank, e.g. a reduced learnt database): drop them so
        // reads see zeroes.
        table.discard_range(base + npages, base + SECTION_STRIDE, stats);
    }

    /// Reads `len` bytes of section `sec_idx` back out of `table`;
    /// unmapped (demand-zero) pages read as zeroes.
    fn read_section(table: &PageTable, sec_idx: usize, len: usize) -> Vec<u8> {
        let base = sec_idx as u64 * SECTION_STRIDE;
        let mut out = vec![0u8; len];
        for p in 0..len.div_ceil(PAGE_SIZE) {
            if let Some(frame) = table.frame(base + p as u64) {
                let start = p * PAGE_SIZE;
                let n = PAGE_SIZE.min(len - start);
                out[start..start + n].copy_from_slice(&frame.bytes()[..n]);
            }
        }
        out
    }

    fn recompute(&self) -> (usize, StorePageStats) {
        // Key frames by allocation address: `Arc::ptr_eq` at scale.
        let mut counts: HashMap<usize, u64> = HashMap::new();
        for table in self.slots.iter().flatten() {
            table.for_each_frame(|_, frame| {
                *counts.entry(Arc::as_ptr(frame) as usize).or_insert(0) += 1;
            });
        }
        let total = counts.len() as u64;
        let shared = counts.values().filter(|&&c| c > 1).count() as u64;
        let stats = StorePageStats {
            total_pages: total,
            shared_pages: shared,
            private_pages: total - shared,
        };
        (counts.len() * PAGE_SIZE, stats)
    }

    fn cached(&self) -> (usize, StorePageStats) {
        if let Some(hit) = self.cache.get() {
            return hit;
        }
        let fresh = self.recompute();
        self.cache.set(Some(fresh));
        fresh
    }
}

impl SnapshotStore for CowStore {
    fn put(&mut self, parent: Option<SnapId>, solver: &Solver) -> SnapId {
        let sections = snapshot::encode(solver);
        let mut table = parent
            .and_then(|id| self.table(id).cloned())
            .unwrap_or_default();
        for (i, sec) in sections.iter().enumerate() {
            Self::write_section(&mut table, &mut self.stats, i, sec);
        }
        self.cache.set(None);
        self.live += 1;
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Some(table);
                SnapId::new(idx, self.gens[idx as usize])
            }
            None => {
                self.slots.push(Some(table));
                self.gens.push(0);
                SnapId::new((self.slots.len() - 1) as u32, 0)
            }
        }
    }

    fn get(&self, id: SnapId) -> Option<Solver> {
        let table = self.table(id)?;
        let header = Self::read_section(table, 0, snapshot::HEADER_LEN);
        let lens = snapshot::section_lengths(&header)?;
        let mut sections = Vec::with_capacity(NUM_SECTIONS);
        sections.push(header);
        for (i, &len) in lens.iter().enumerate().skip(1) {
            sections.push(Self::read_section(table, i, len));
        }
        snapshot::decode(&sections)
    }

    fn remove(&mut self, id: SnapId) -> bool {
        let Some(&gen) = self.gens.get(id.idx() as usize) else {
            return false;
        };
        if gen != id.gen() || self.slots[id.idx() as usize].is_none() {
            return false;
        }
        // Dropping the table frees every frame only it referenced;
        // frames shared with parent/children survive by refcount —
        // chain compaction for free.
        self.slots[id.idx() as usize] = None;
        self.gens[id.idx() as usize] = gen.wrapping_add(1);
        self.free.push(id.idx());
        self.live -= 1;
        self.cache.set(None);
        true
    }

    fn len(&self) -> usize {
        self.live
    }

    fn resident_bytes(&self) -> usize {
        self.cached().0
    }

    fn page_stats(&self) -> StorePageStats {
        self.cached().1
    }

    fn mem_stats(&self) -> StoreMemStats {
        StoreMemStats {
            cow_page_copies: self.stats.cow_page_copies,
            zero_fills: self.stats.zero_fills,
            bytes_written: self.stats.bytes_written,
        }
    }

    fn name(&self) -> &'static str {
        "cow-page"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lwsnap_solver::generators::{random_ksat, IncrementalFamily};
    use lwsnap_solver::snapshot::encode;
    use lwsnap_solver::SolveResult;

    fn worked_solver(seed: u64) -> Solver {
        let fam = IncrementalFamily::new(80, 4, seed);
        let mut s = Solver::new();
        for c in &fam.combined(2).clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        s
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let mut store = CowStore::new();
        let s = worked_solver(3);
        let id = store.put(None, &s);
        let back = store.get(id).expect("resident snapshot");
        assert_eq!(encode(&back), encode(&s), "store must be lossless");
    }

    #[test]
    fn stale_and_removed_handles_are_dead() {
        let mut store = CowStore::new();
        let s = worked_solver(4);
        let id = store.put(None, &s);
        assert!(store.remove(id));
        assert!(!store.remove(id));
        assert!(store.get(id).is_none());
        let id2 = store.put(None, &s);
        assert_eq!(id2.idx(), id.idx(), "slot recycled");
        assert!(store.get(id).is_none(), "old generation stays dead");
        assert!(store.get(id2).is_some());
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn child_shares_pages_with_parent() {
        let fam = IncrementalFamily::new(80, 4, 5);
        let mut store = CowStore::new();
        let mut s = worked_solver(5);
        let parent = store.put(None, &s);
        let parent_bytes = store.resident_bytes();

        for c in &fam.increment(2) {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let child = store.put(Some(parent), &s);

        let ps = store.page_stats();
        assert!(ps.shared_pages > 0, "child shares pages: {ps:?}");
        let both = store.resident_bytes();
        assert!(
            both - parent_bytes < parent_bytes,
            "child delta ({} bytes) must undercut a full copy ({parent_bytes})",
            both - parent_bytes
        );
        // Both read back exactly.
        assert_eq!(encode(&store.get(child).unwrap()), encode(&s));
        assert!(store.get(parent).is_some());
    }

    #[test]
    fn unrelated_put_without_parent_shares_nothing() {
        let mut store = CowStore::new();
        let a = store.put(None, &worked_solver(6));
        let _b = store.put(None, &worked_solver(7));
        let ps = store.page_stats();
        assert_eq!(ps.shared_pages, 0, "no parent hint, no sharing: {ps:?}");
        assert!(store.get(a).is_some());
    }

    #[test]
    fn removing_intermediate_compacts_the_chain() {
        // A → B → C, then drop B: C must stay bit-identical and the
        // pages private to B must be freed (resident shrinks).
        let fam = IncrementalFamily::new(80, 4, 8);
        let mut store = CowStore::new();
        let mut s = Solver::new();
        for c in &fam.base().clauses {
            s.add_clause(c);
        }
        s.solve();
        let a = store.put(None, &s);
        for c in &fam.increment(0) {
            s.add_clause(c);
        }
        s.solve();
        let b = store.put(Some(a), &s);
        for c in &fam.increment(1) {
            s.add_clause(c);
        }
        s.solve();
        let c_enc = {
            let id = store.put(Some(b), &s);
            let with_b = store.resident_bytes();
            assert!(store.remove(b));
            let without_b = store.resident_bytes();
            assert!(
                without_b <= with_b,
                "dropping an intermediate never grows residency"
            );
            encode(&store.get(id).unwrap())
        };
        assert_eq!(c_enc, encode(&s), "compacted chain still bit-identical");
        assert!(store.get(a).is_some(), "ancestor unaffected");
    }

    #[test]
    fn many_children_cost_deltas_not_copies() {
        // The density claim at unit scale: N children of one parent
        // must cost far less than N independent copies. Needs a state
        // big enough (dozens of pages) that the per-child floor of a
        // few pages — header, section tails, polarity, model — is small
        // against the whole; easy under-constrained 3-SAT keeps the
        // solving itself cheap.
        let vars = 1500;
        let mut store = CowStore::new();
        let mut base = Solver::new();
        for c in &random_ksat(vars, vars * 2, 3, 9).clauses {
            base.add_clause(c);
        }
        assert_eq!(base.solve(), SolveResult::Sat);
        let parent = store.put(None, &base);
        let one = store.resident_bytes();
        for i in 0..6 {
            let mut child = base.clone();
            for c in &random_ksat(vars, 4, 3, 1000 + i).clauses {
                child.add_clause(c);
            }
            assert_eq!(child.solve(), SolveResult::Sat);
            store.put(Some(parent), &child);
        }
        let all = store.resident_bytes();
        assert!(
            all < one * 3,
            "7 snapshots at {all} bytes vs {one} for one — deltas, not copies"
        );
        // Most of the parent's pages are mapped by every child: the
        // shared set must cover over half the single-snapshot size.
        // (Private pages legitimately accumulate too — each child owns
        // its few delta pages.)
        let ps = store.page_stats();
        assert!(
            ps.shared_pages as usize * PAGE_SIZE > one / 2,
            "parent bulk is shared: {ps:?}, one={one}"
        );
    }

    #[test]
    fn shrinking_sections_leave_no_stale_tail() {
        // Encode a big solver as parent, then a *smaller* one as its
        // child: pages past the child's section ends must read as
        // zeroes, not leftover parent bytes.
        let mut store = CowStore::new();
        let big = worked_solver(10);
        let parent = store.put(None, &big);
        let small = {
            let mut s = Solver::new();
            for c in &IncrementalFamily::new(10, 3, 11).base().clauses {
                s.add_clause(c);
            }
            s.solve();
            s
        };
        let child = store.put(Some(parent), &small);
        assert_eq!(encode(&store.get(child).unwrap()), encode(&small));
    }
}
