//! Store conformance: the page-granular CoW store and the deep-clone
//! baseline must be **behaviourally indistinguishable** — bit-identical
//! verdicts and witness models across arbitrary interleavings of
//! derivation, release, eviction (count capacity and byte budget) and
//! re-probing of evicted problems. The stores may disagree about
//! *cost* (that is the point of the CoW store) but never about
//! *answers*: an evicted snapshot re-derives by constraint-path
//! replay, and the solver is deterministic in the clause path.

use proptest::prelude::*;

use lwsnap_snapstore::CowStore;
use lwsnap_solver::{DeepCloneStore, Lit, SolverService};

/// One step of a random service interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Solve `problems[parent % len] ∧ clauses` on both services.
    Derive {
        parent: usize,
        clauses: Vec<Vec<i64>>,
    },
    /// Release `problems[pick % len]` on both services.
    Release { pick: usize },
    /// Clamp the resident set to `capacity` snapshots (evicting the
    /// LRU tail), then lift the bound again.
    Evict { capacity: usize },
    /// Clamp the resident set to `budget` *bytes*, then lift it. The
    /// two stores evict different snapshot sets here (CoW pages are
    /// cheaper), which is exactly why the answers must still agree.
    Squeeze { budget: usize },
    /// Re-solve `problems[pick % len]` with no new clauses — forces a
    /// re-derivation when the pick was evicted.
    Probe { pick: usize },
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    let lit = (1i64..=8, any::<bool>()).prop_map(|(v, neg)| if neg { -v } else { v });
    let clause = proptest::collection::vec(lit, 1..4);
    let clauses = proptest::collection::vec(clause, 1..3);
    let op = prop_oneof![
        4 => (any::<usize>(), clauses)
            .prop_map(|(parent, clauses)| Op::Derive { parent, clauses }),
        1 => any::<usize>().prop_map(|pick| Op::Release { pick }),
        1 => (1usize..4).prop_map(|capacity| Op::Evict { capacity }),
        1 => (1usize..8192).prop_map(|budget| Op::Squeeze { budget }),
        2 => any::<usize>().prop_map(|pick| Op::Probe { pick }),
    ];
    proptest::collection::vec(op, 1..32)
}

fn to_lits(clauses: &[Vec<i64>]) -> Vec<Vec<Lit>> {
    clauses
        .iter()
        .map(|c| c.iter().map(|&v| Lit::from_dimacs(v)).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cow_and_deep_clone_stores_answer_bit_identically(ops in ops_strategy()) {
        let mut cow = SolverService::with_store(Box::new(CowStore::new()));
        let mut deep = SolverService::with_store(Box::new(DeepCloneStore::new()));
        let mut cow_probs = vec![cow.root()];
        let mut deep_probs = vec![deep.root()];
        for op in &ops {
            match op {
                Op::Derive { parent, clauses } => {
                    let i = parent % cow_probs.len();
                    let lits = to_lits(clauses);
                    let rc = cow.solve(cow_probs[i], &lits);
                    let rd = deep.solve(deep_probs[i], &lits);
                    match (rc, rd) {
                        (Some(rc), Some(rd)) => {
                            prop_assert_eq!(rc.result, rd.result, "verdict split");
                            prop_assert_eq!(&rc.model, &rd.model, "witness split");
                            cow_probs.push(rc.problem);
                            deep_probs.push(rd.problem);
                        }
                        (None, None) => {}
                        (rc, rd) => prop_assert!(
                            false,
                            "liveness split: cow={} deep={}",
                            rc.is_some(),
                            rd.is_some()
                        ),
                    }
                }
                Op::Release { pick } => {
                    let i = pick % cow_probs.len();
                    cow.release(cow_probs[i]);
                    deep.release(deep_probs[i]);
                }
                Op::Evict { capacity } => {
                    cow.set_snapshot_capacity(Some(*capacity));
                    deep.set_snapshot_capacity(Some(*capacity));
                    cow.set_snapshot_capacity(None);
                    deep.set_snapshot_capacity(None);
                }
                Op::Squeeze { budget } => {
                    cow.set_snapshot_budget(Some(*budget));
                    deep.set_snapshot_budget(Some(*budget));
                    cow.set_snapshot_budget(None);
                    deep.set_snapshot_budget(None);
                }
                Op::Probe { pick } => {
                    let i = pick % cow_probs.len();
                    let rc = cow.solve(cow_probs[i], &[]);
                    let rd = deep.solve(deep_probs[i], &[]);
                    match (rc, rd) {
                        (Some(rc), Some(rd)) => {
                            prop_assert_eq!(rc.result, rd.result, "probe verdict split");
                            prop_assert_eq!(&rc.model, &rd.model, "probe witness split");
                            cow_probs.push(rc.problem);
                            deep_probs.push(rd.problem);
                        }
                        (None, None) => {}
                        (rc, rd) => prop_assert!(
                            false,
                            "probe liveness split: cow={} deep={}",
                            rc.is_some(),
                            rd.is_some()
                        ),
                    }
                }
            }
        }
        // Every problem either service still remembers answers the
        // same cached verdict on both.
        for (c, d) in cow_probs.iter().zip(&deep_probs) {
            prop_assert_eq!(cow.result_of(*c), deep.result_of(*d), "cached verdict split");
        }
        // And the byte accounting stayed consistent with the page
        // accounting on the CoW side: shared + private = total.
        let ps = cow.page_stats();
        prop_assert_eq!(ps.shared_pages + ps.private_pages, ps.total_pages);
    }
}
