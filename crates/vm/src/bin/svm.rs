//! `svm` — command-line driver for SVM-64 guests.
//!
//! ```text
//! svm asm <file.s>                assemble; print symbols and stats
//! svm disasm <file.s>             assemble, then disassemble the text
//! svm run <file.s>                run to exit (no backtracking)
//! svm explore <file.s> [opts]     run under the backtracking engine
//!     --strategy dfs|bfs|astar|sma   (default dfs)
//!     --max-solutions N
//!     --max-extensions N
//!     --quiet                        suppress guest output
//! ```

use std::process::ExitCode;

use lwsnap_core::strategy::{BestFirst, Bfs, Dfs, SmaStar, Strategy};
use lwsnap_core::{Engine, EngineConfig, StopReason};
use lwsnap_vm::{assemble_source, disassemble, run_to_exit, Interp, Program};

fn usage() -> ExitCode {
    eprintln!(
        "usage: svm <asm|disasm|run|explore> <file.s> \
         [--strategy dfs|bfs|astar|sma] [--max-solutions N] \
         [--max-extensions N] [--quiet]"
    );
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Program, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    assemble_source(&source).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, file) = match (args.first(), args.get(1)) {
        (Some(c), Some(f)) => (c.as_str(), f.as_str()),
        _ => return usage(),
    };
    let program = match load(file) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("svm: {e}");
            return ExitCode::FAILURE;
        }
    };
    match cmd {
        "asm" => cmd_asm(&program),
        "disasm" => cmd_disasm(&program),
        "run" => cmd_run(&program),
        "explore" => cmd_explore(&program, &args[2..]),
        _ => usage(),
    }
}

fn cmd_asm(program: &Program) -> ExitCode {
    println!(
        "text: {} instructions ({} bytes) at {:#x}",
        program.instr_count(),
        program.text.len(),
        program.text_base
    );
    println!(
        "data: {} bytes at {:#x}",
        program.data.len(),
        program.data_base
    );
    println!("entry: {:#x}", program.entry);
    println!("symbols:");
    for (name, addr) in &program.symbols {
        println!("  {addr:#014x}  {name}");
    }
    ExitCode::SUCCESS
}

fn cmd_disasm(program: &Program) -> ExitCode {
    for (addr, line) in disassemble(&program.text, program.text_base) {
        // Annotate addresses that carry symbols.
        let label: Vec<&str> = program
            .symbols
            .iter()
            .filter(|(_, &a)| a == addr)
            .map(|(n, _)| n.as_str())
            .collect();
        if !label.is_empty() {
            println!("{}:", label.join(", "));
        }
        println!("  {addr:#010x}  {line}");
    }
    ExitCode::SUCCESS
}

fn cmd_run(program: &Program) -> ExitCode {
    match run_to_exit(program, lwsnap_vm::DEFAULT_MAX_STEPS) {
        Ok((code, stdout)) => {
            use std::io::Write as _;
            let _ = std::io::stdout().write_all(&stdout);
            eprintln!("[exit {code}]");
            ExitCode::from(code.clamp(0, 255) as u8)
        }
        Err(exit) => {
            eprintln!("svm: guest stopped: {exit:?}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_explore(program: &Program, opts: &[String]) -> ExitCode {
    let mut strategy: Box<dyn Strategy> = Box::new(Dfs::new());
    let mut config = EngineConfig {
        echo_output: true,
        ..Default::default()
    };
    let mut it = opts.iter();
    while let Some(opt) = it.next() {
        match opt.as_str() {
            "--strategy" => match it.next().map(String::as_str) {
                Some("dfs") => strategy = Box::new(Dfs::new()),
                Some("bfs") => strategy = Box::new(Bfs::new()),
                Some("astar") => strategy = Box::new(BestFirst::new()),
                Some("sma") => strategy = Box::new(SmaStar::new(1024)),
                other => {
                    eprintln!("svm: unknown strategy {other:?}");
                    return ExitCode::from(2);
                }
            },
            "--max-solutions" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.max_solutions = Some(n),
                None => return usage(),
            },
            "--max-extensions" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.max_extensions = Some(n),
                None => return usage(),
            },
            "--quiet" => config.echo_output = false,
            _ => return usage(),
        }
    }

    struct Boxed(Box<dyn Strategy>);
    impl Strategy for Boxed {
        fn name(&self) -> &'static str {
            self.0.name()
        }
        fn expand(
            &mut self,
            s: lwsnap_core::SnapshotId,
            n: u64,
            h: Option<&lwsnap_core::GuessHint>,
            d: u64,
        ) -> Option<u64> {
            self.0.expand(s, n, h, d)
        }
        fn next(&mut self) -> Option<lwsnap_core::strategy::ExtensionRef> {
            self.0.next()
        }
        fn frontier_len(&self) -> usize {
            self.0.frontier_len()
        }
        fn peak_frontier(&self) -> usize {
            self.0.peak_frontier()
        }
        fn take_dropped(&mut self) -> Vec<lwsnap_core::strategy::ExtensionRef> {
            self.0.take_dropped()
        }
        fn total_dropped(&self) -> u64 {
            self.0.total_dropped()
        }
    }

    let name = strategy.name();
    let mut engine = Engine::with_config(Boxed(strategy), config);
    let mut interp = Interp::new();
    let root = match program.boot() {
        Ok(state) => state,
        Err(e) => {
            eprintln!("svm: boot failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let start = std::time::Instant::now();
    let result = engine.run(&mut interp, root);
    let elapsed = start.elapsed();

    eprintln!("\n[{name}] {:?} in {elapsed:?}", result.stop);
    eprintln!(
        "[{name}] solutions {} | extensions {} | snapshots {} (peak {}) | restores {} | inline {} | failures {} | faults {}",
        result.stats.solutions,
        result.stats.extensions_evaluated,
        result.stats.snapshots_created,
        result.stats.snapshots_peak,
        result.stats.restores,
        result.stats.inline_continues,
        result.stats.failures,
        result.stats.faults,
    );
    match result.stop {
        StopReason::Aborted(_) => ExitCode::FAILURE,
        _ => ExitCode::SUCCESS,
    }
}
