//! # lwsnap-vm — the SVM-64 guest machine
//!
//! The paper's extension steps are "arbitrary x86 code" run at ring 3
//! under a Dune libOS. This crate supplies the equivalent execution
//! substrate for the reproduction: **SVM-64**, a 64-bit, 16-register,
//! x86-64-flavoured ISA whose complete machine state is the architected
//! register file plus paged guest memory. Code is fetched from the
//! snapshotted address space itself, so a lightweight snapshot captures a
//! running program exactly.
//!
//! Pieces:
//!
//! * [`isa`] — fixed 16-byte instruction encoding;
//! * [`mod@parse`] — the two-pass text assembler ([`parse::assemble_source`]);
//! * [`prog`] — program images, layout, and booting into a
//!   [`lwsnap_core::GuestState`];
//! * [`interp`] — the interpreter, implementing [`lwsnap_core::Guest`];
//! * [`disasm`] — the disassembler;
//! * [`programs`] — canned guests (Figure-1 n-queens, workload
//!   generators) used by examples, tests and the benchmark harness.
//!
//! ## Running Figure 1
//!
//! ```
//! use lwsnap_core::{Engine, strategy::Dfs};
//! use lwsnap_vm::{assemble_source, Interp, programs::nqueens_source};
//!
//! let program = assemble_source(&nqueens_source(6, true, true)).unwrap();
//! let mut engine = Engine::new(Dfs::new());
//! let result = engine.run(&mut Interp::new(), program.boot().unwrap());
//! assert_eq!(result.stats.solutions, 4); // 6-queens has 4 answers
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod disasm;
pub mod interp;
pub mod isa;
pub mod parse;
pub mod prog;
pub mod programs;

pub use disasm::{disassemble, format_instr};
pub use interp::{run_to_exit, Interp, DEFAULT_MAX_STEPS};
pub use isa::{Instr, Opcode, INSTR_SIZE};
pub use parse::{assemble_source, parse};
pub use prog::{assemble, AsmError, Item, Program, Section, SymExpr};
