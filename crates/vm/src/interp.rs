//! The SVM-64 interpreter: a [`Guest`] for the backtracking engine.
//!
//! Every instruction is fetched from the guest's (snapshotted) address
//! space, so the register file plus the [`lwsnap_mem::AddressSpace`]
//! really is the complete machine state — precisely the property the
//! paper's lightweight snapshots rely on. Syscalls are routed through
//! [`lwsnap_core::interpose`], which turns `sys_guess` and friends into
//! engine traps.

use std::collections::HashMap;
use std::rc::Rc;

use lwsnap_core::{
    handle_syscall, Exit, Guest, GuestFault, GuestState, InterposePolicy, Reg, SyscallEffect,
};
use lwsnap_mem::{Fault, Frame, PAGE_SIZE};

use crate::isa::{Instr, Opcode, INSTR_SIZE};

/// Default per-resume step budget (guards against runaway extensions).
pub const DEFAULT_MAX_STEPS: u64 = 200_000_000;

/// A code page decoded once and reused across every extension step.
///
/// Holding a clone of the frame pins it: any guest write to the page
/// (even after an `mprotect` to writable) is forced through CoW onto a
/// *new* frame with a new address, so a decoded page can never go stale.
struct DecodedPage {
    /// Pins the frame so its address stays unique to this content.
    _frame: Frame,
    /// One slot per 16-byte instruction; `None` = undecodable.
    instrs: Box<[Option<Instr>]>,
}

const SLOTS_PER_PAGE: usize = PAGE_SIZE / INSTR_SIZE as usize;

/// The SVM-64 interpreter.
pub struct Interp {
    /// Encapsulation policy applied to guest syscalls.
    pub policy: InterposePolicy,
    /// Per-resume instruction budget.
    pub max_steps: u64,
    /// Total instructions retired across all resumes (diagnostics).
    pub total_steps: u64,
    /// Decoded code pages keyed by frame address (content-stable).
    decoded: HashMap<usize, Rc<DecodedPage>>,
}

impl Default for Interp {
    fn default() -> Self {
        Self::new()
    }
}

impl Interp {
    /// Creates an interpreter with the default policy and step budget.
    pub fn new() -> Self {
        Interp {
            policy: InterposePolicy::default(),
            max_steps: DEFAULT_MAX_STEPS,
            total_steps: 0,
            decoded: HashMap::new(),
        }
    }

    /// Returns the decoded form of the code page behind `frame`.
    fn decode_page(&mut self, frame: Frame) -> Rc<DecodedPage> {
        let key = std::sync::Arc::as_ptr(&frame) as usize;
        if self.decoded.len() > 4096 {
            // Backstop against pathological code-patching guests.
            self.decoded.clear();
        }
        self.decoded
            .entry(key)
            .or_insert_with(|| {
                let bytes = frame.bytes();
                let instrs = (0..SLOTS_PER_PAGE)
                    .map(|slot| {
                        let chunk: &[u8; 16] = bytes[slot * 16..slot * 16 + 16]
                            .try_into()
                            .expect("page-bounded chunk");
                        Instr::decode(chunk)
                    })
                    .collect();
                Rc::new(DecodedPage {
                    _frame: frame,
                    instrs,
                })
            })
            .clone()
    }

    /// Creates an interpreter with an explicit policy.
    pub fn with_policy(policy: InterposePolicy) -> Self {
        Interp {
            policy,
            ..Interp::new()
        }
    }

    /// Sets the per-resume step budget.
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }
}

#[inline]
fn set_cmp_flags(st: &mut GuestState, a: u64, b: u64) {
    let (res, borrow) = a.overflowing_sub(b);
    st.regs.flags.zf = res == 0;
    st.regs.flags.sf = (res as i64) < 0;
    st.regs.flags.cf = borrow;
    // Signed overflow of a - b: operands differ in sign and the result's
    // sign differs from a's.
    st.regs.flags.of = ((a ^ b) & (a ^ res)) >> 63 != 0;
}

#[inline]
fn cond_holds(op: Opcode, st: &GuestState) -> bool {
    let f = st.regs.flags;
    match op {
        Opcode::Jmp => true,
        Opcode::Jz => f.zf,
        Opcode::Jnz => !f.zf,
        Opcode::Jl => f.sf != f.of,
        Opcode::Jle => f.zf || f.sf != f.of,
        Opcode::Jg => !f.zf && f.sf == f.of,
        Opcode::Jge => f.sf == f.of,
        Opcode::Jb => f.cf,
        Opcode::Jbe => f.cf || f.zf,
        Opcode::Ja => !f.cf && !f.zf,
        Opcode::Jae => !f.cf,
        _ => unreachable!("not a branch"),
    }
}

enum Step {
    Continue,
    Trap(Exit),
}

impl Interp {
    fn exec(&self, st: &mut GuestState, ins: Instr) -> Result<Step, GuestFault> {
        let mem_fault = GuestFault::Memory;
        let immu = ins.imm as u64;
        match ins.op {
            Opcode::MovRI => st.regs.set(ins.dst, immu),
            Opcode::MovRR => {
                let v = st.regs.get(ins.src);
                st.regs.set(ins.dst, v);
            }

            Opcode::Ld1
            | Opcode::Ld2
            | Opcode::Ld4
            | Opcode::Ld8
            | Opcode::Lds1
            | Opcode::Lds2
            | Opcode::Lds4 => {
                let addr = st.regs.get(ins.src).wrapping_add(immu);
                let value = match ins.op {
                    Opcode::Ld1 => st.mem.read_u8(addr).map(u64::from),
                    Opcode::Ld2 => st.mem.read_u16(addr).map(u64::from),
                    Opcode::Ld4 => st.mem.read_u32(addr).map(u64::from),
                    Opcode::Ld8 => st.mem.read_u64(addr),
                    Opcode::Lds1 => st.mem.read_u8(addr).map(|v| v as i8 as i64 as u64),
                    Opcode::Lds2 => st.mem.read_u16(addr).map(|v| v as i16 as i64 as u64),
                    _ => st.mem.read_u32(addr).map(|v| v as i32 as i64 as u64),
                }
                .map_err(mem_fault)?;
                st.regs.set(ins.dst, value);
            }
            Opcode::St1 | Opcode::St2 | Opcode::St4 | Opcode::St8 => {
                let addr = st.regs.get(ins.dst).wrapping_add(immu);
                let v = st.regs.get(ins.src);
                match ins.op {
                    Opcode::St1 => st.mem.write_u8(addr, v as u8),
                    Opcode::St2 => st.mem.write_u16(addr, v as u16),
                    Opcode::St4 => st.mem.write_u32(addr, v as u32),
                    _ => st.mem.write_u64(addr, v),
                }
                .map_err(mem_fault)?;
            }

            Opcode::Add
            | Opcode::AddI
            | Opcode::Sub
            | Opcode::SubI
            | Opcode::Mul
            | Opcode::MulI
            | Opcode::Udiv
            | Opcode::UdivI
            | Opcode::Urem
            | Opcode::UremI
            | Opcode::And
            | Opcode::AndI
            | Opcode::Or
            | Opcode::OrI
            | Opcode::Xor
            | Opcode::XorI
            | Opcode::Shl
            | Opcode::ShlI
            | Opcode::Shr
            | Opcode::ShrI
            | Opcode::Sar
            | Opcode::SarI => {
                let a = st.regs.get(ins.dst);
                let b = if matches!(
                    ins.op,
                    Opcode::Add
                        | Opcode::Sub
                        | Opcode::Mul
                        | Opcode::Udiv
                        | Opcode::Urem
                        | Opcode::And
                        | Opcode::Or
                        | Opcode::Xor
                        | Opcode::Shl
                        | Opcode::Shr
                        | Opcode::Sar
                ) {
                    st.regs.get(ins.src)
                } else {
                    immu
                };
                let result = match ins.op {
                    Opcode::Add | Opcode::AddI => a.wrapping_add(b),
                    Opcode::Sub | Opcode::SubI => a.wrapping_sub(b),
                    Opcode::Mul | Opcode::MulI => a.wrapping_mul(b),
                    Opcode::Udiv | Opcode::UdivI => {
                        if b == 0 {
                            return Err(GuestFault::Other(format!(
                                "division by zero at rip {:#x}",
                                st.regs.rip.wrapping_sub(INSTR_SIZE)
                            )));
                        }
                        a / b
                    }
                    Opcode::Urem | Opcode::UremI => {
                        if b == 0 {
                            return Err(GuestFault::Other(format!(
                                "remainder by zero at rip {:#x}",
                                st.regs.rip.wrapping_sub(INSTR_SIZE)
                            )));
                        }
                        a % b
                    }
                    Opcode::And | Opcode::AndI => a & b,
                    Opcode::Or | Opcode::OrI => a | b,
                    Opcode::Xor | Opcode::XorI => a ^ b,
                    Opcode::Shl | Opcode::ShlI => a.wrapping_shl(b as u32 & 63),
                    Opcode::Shr | Opcode::ShrI => a.wrapping_shr(b as u32 & 63),
                    _ => ((a as i64).wrapping_shr(b as u32 & 63)) as u64,
                };
                st.regs.set(ins.dst, result);
            }
            Opcode::Neg => {
                let v = st.regs.get(ins.dst);
                st.regs.set(ins.dst, v.wrapping_neg());
            }
            Opcode::Not => {
                let v = st.regs.get(ins.dst);
                st.regs.set(ins.dst, !v);
            }

            Opcode::Cmp => {
                let (a, b) = (st.regs.get(ins.dst), st.regs.get(ins.src));
                set_cmp_flags(st, a, b);
            }
            Opcode::CmpI => {
                let a = st.regs.get(ins.dst);
                set_cmp_flags(st, a, immu);
            }
            Opcode::Test => {
                let res = st.regs.get(ins.dst) & st.regs.get(ins.src);
                st.regs.flags.zf = res == 0;
                st.regs.flags.sf = (res as i64) < 0;
                st.regs.flags.cf = false;
                st.regs.flags.of = false;
            }

            Opcode::Jmp
            | Opcode::Jz
            | Opcode::Jnz
            | Opcode::Jl
            | Opcode::Jle
            | Opcode::Jg
            | Opcode::Jge
            | Opcode::Jb
            | Opcode::Jbe
            | Opcode::Ja
            | Opcode::Jae => {
                if cond_holds(ins.op, st) {
                    st.regs.rip = immu;
                }
            }

            Opcode::Call => {
                let ret = st.regs.rip; // already past the call
                let sp = st.regs.get(Reg::Rsp).wrapping_sub(8);
                st.mem.write_u64(sp, ret).map_err(mem_fault)?;
                st.regs.set(Reg::Rsp, sp);
                st.regs.rip = immu;
            }
            Opcode::Ret => {
                let sp = st.regs.get(Reg::Rsp);
                let ret = st.mem.read_u64(sp).map_err(mem_fault)?;
                st.regs.set(Reg::Rsp, sp.wrapping_add(8));
                st.regs.rip = ret;
            }
            Opcode::Push => {
                let sp = st.regs.get(Reg::Rsp).wrapping_sub(8);
                let v = st.regs.get(ins.src);
                st.mem.write_u64(sp, v).map_err(mem_fault)?;
                st.regs.set(Reg::Rsp, sp);
            }
            Opcode::Pop => {
                let sp = st.regs.get(Reg::Rsp);
                let v = st.mem.read_u64(sp).map_err(mem_fault)?;
                st.regs.set(Reg::Rsp, sp.wrapping_add(8));
                st.regs.set(ins.dst, v);
            }

            Opcode::Syscall => match handle_syscall(st, &self.policy) {
                SyscallEffect::Continue => {}
                SyscallEffect::Trap(exit) => return Ok(Step::Trap(exit)),
            },
            Opcode::Nop => {}
        }
        Ok(Step::Continue)
    }
}

impl Guest for Interp {
    fn resume(&mut self, st: &mut GuestState) -> Exit {
        // Instruction cache: the decoded form of the current code page.
        // Sound because decoded pages pin their frame (content-stable
        // addresses); the mapping itself can only change across a guest
        // syscall, so the per-resume mapping cache is dropped there.
        let mut icache: Option<(u64, Rc<DecodedPage>)> = None;
        loop {
            if st.steps >= self.max_steps {
                return Exit::Fault(GuestFault::StepBudget);
            }
            st.steps += 1;
            self.total_steps += 1;
            let rip = st.regs.rip;
            let page_base = rip & !(PAGE_SIZE as u64 - 1);
            let page = match &icache {
                Some((base, page)) if *base == page_base => page,
                _ => {
                    let frame = match st.mem.exec_frame(rip) {
                        Ok(frame) => frame,
                        Err(fault) => return Exit::Fault(GuestFault::Memory(fault)),
                    };
                    let decoded = self.decode_page(frame);
                    &icache.insert((page_base, decoded)).1
                }
            };
            // Unaligned rip lands between decode slots: treat the slot
            // containing it as the instruction (its low bits are data
            // offsets SVM-64 cannot produce; entry/branch targets are
            // always 16-byte aligned by construction).
            let slot = (rip & (PAGE_SIZE as u64 - 1)) as usize / INSTR_SIZE as usize;
            let Some(ins) = page.instrs[slot] else {
                return Exit::Fault(GuestFault::IllegalInstruction { rip });
            };
            // Advance before executing so syscall snapshots resume *after*
            // the trapping instruction and branches can overwrite freely.
            st.regs.rip = rip.wrapping_add(INSTR_SIZE);
            if ins.op == Opcode::Syscall {
                icache = None;
            }
            match self.exec(st, ins) {
                Ok(Step::Continue) => {}
                Ok(Step::Trap(exit)) => return exit,
                Err(fault) => return Exit::Fault(fault),
            }
        }
    }
}

/// Runs a standalone program (no backtracking) until it exits.
///
/// Convenience for tests and simple guests: returns the exit code and the
/// bytes the program wrote to stdout.
pub fn run_to_exit(program: &crate::prog::Program, max_steps: u64) -> Result<(i64, Vec<u8>), Exit> {
    let mut interp = Interp::new().max_steps(max_steps);
    let mut st = program
        .boot()
        .map_err(|e| Exit::Fault(GuestFault::Other(format!("boot failed: {e}"))))?;
    let mut stdout = Vec::new();
    loop {
        match interp.resume(&mut st) {
            Exit::Output { fd: 1, data } => stdout.extend_from_slice(&data),
            Exit::Output { .. } => {}
            Exit::Exit { code } => return Ok((code, stdout)),
            other => return Err(other),
        }
    }
}

/// Re-exported for convenience in fault matching.
pub fn is_unmapped_fault(exit: &Exit, va: u64) -> bool {
    matches!(exit, Exit::Fault(GuestFault::Memory(Fault::Unmapped { va: v })) if *v == va)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::assemble_source;

    fn run(src: &str) -> (i64, String) {
        let prog = assemble_source(src).unwrap();
        let (code, out) = run_to_exit(&prog, 10_000_000).unwrap();
        (code, String::from_utf8_lossy(&out).into_owned())
    }

    #[test]
    fn exit_code_propagates() {
        let (code, _) = run("mov rdi, 42\nmov rax, 60\nsyscall\n");
        assert_eq!(code, 42);
    }

    #[test]
    fn arithmetic_loop_sums() {
        // sum 1..=10 via a loop, print with putint.
        let (code, out) = run(r#"
            _start:
                mov rbx, 0      ; sum
                mov rcx, 10     ; i
            loop:
                add rbx, rcx
                sub rcx, 1
                cmp rcx, 0
                jnz loop
                mov rdi, rbx
                mov rax, 1005   ; putint
                syscall
                mov rdi, 0
                mov rax, 60
                syscall
            "#);
        assert_eq!(code, 0);
        assert_eq!(out, "55");
    }

    #[test]
    fn memory_and_data_section() {
        let (_, out) = run(r#"
            _start:
                mov  rsi, msg
                mov  rdx, 6
                mov  rdi, 1
                mov  rax, 1       ; write(1, msg, 6)
                syscall
                mov  rax, 60
                mov  rdi, 0
                syscall
            .data
            msg: .asciz "hello\n"
            "#);
        assert_eq!(out, "hello\n");
    }

    #[test]
    fn loads_stores_all_sizes() {
        let (code, _) = run(r#"
            _start:
                mov  r12, buf
                mov  rbx, 0x1122334455667788
                st8  [r12], rbx
                ld1  rax, [r12]         ; 0x88
                cmp  rax, 0x88
                jnz  bad
                ld2  rax, [r12]         ; 0x7788
                cmp  rax, 0x7788
                jnz  bad
                ld4  rax, [r12]         ; 0x55667788
                cmp  rax, 0x55667788
                jnz  bad
                ld8  rax, [r12]
                cmp  rax, rbx
                jnz  bad
                ; sign extension
                mov  rbx, 0xff
                st1  [r12+9], rbx
                lds1 rax, [r12+9]
                cmp  rax, -1
                jnz  bad
                mov  rdi, 0
                mov  rax, 60
                syscall
            bad:
                mov  rdi, 1
                mov  rax, 60
                syscall
            .data
            buf: .space 16
            "#);
        assert_eq!(code, 0);
    }

    #[test]
    fn signed_and_unsigned_branches() {
        let (code, _) = run(r#"
            _start:
                mov rax, -5
                cmp rax, 3
                jl  signed_ok          ; -5 < 3 signed
                jmp bad
            signed_ok:
                cmp rax, 3
                jb  bad                ; but huge unsigned, not below
                ja  unsigned_ok
                jmp bad
            unsigned_ok:
                mov rdi, 0
                mov rax, 60
                syscall
            bad:
                mov rdi, 1
                mov rax, 60
                syscall
            "#);
        assert_eq!(code, 0);
    }

    #[test]
    fn call_ret_and_stack() {
        let (_, out) = run(r#"
            _start:
                mov  rdi, 7
                call double
                mov  rdi, rax
                mov  rax, 1005
                syscall
                mov  rdi, 0
                mov  rax, 60
                syscall
            double:
                mov  rax, rdi
                add  rax, rax
                ret
            "#);
        assert_eq!(out, "14");
    }

    #[test]
    fn push_pop() {
        let (code, _) = run(r#"
            _start:
                mov  rbx, 123
                push rbx
                mov  rbx, 0
                pop  rcx
                cmp  rcx, 123
                jnz  bad
                mov  rdi, 0
                mov  rax, 60
                syscall
            bad:
                mov  rdi, 1
                mov  rax, 60
                syscall
            "#);
        assert_eq!(code, 0);
    }

    #[test]
    fn division_and_remainder() {
        let (_, out) = run(r#"
            _start:
                mov  rbx, 17
                udiv rbx, 5
                mov  rdi, rbx
                mov  rax, 1005
                syscall
                mov  rbx, 17
                urem rbx, 5
                mov  rdi, rbx
                mov  rax, 1005
                syscall
                mov  rdi, 0
                mov  rax, 60
                syscall
            "#);
        assert_eq!(out, "32");
    }

    #[test]
    fn divide_by_zero_faults() {
        let prog = assemble_source("mov rbx, 1\nudiv rbx, 0\n").unwrap();
        let err = run_to_exit(&prog, 1000).unwrap_err();
        assert!(matches!(err, Exit::Fault(GuestFault::Other(ref m)) if m.contains("division")));
    }

    #[test]
    fn illegal_instruction_faults() {
        // Jump into the data section (zero bytes decode to nothing).
        let prog = assemble_source(".text\n_start: jmp buf\n.data\nbuf: .space 16\n").unwrap();
        let err = run_to_exit(&prog, 1000).unwrap_err();
        // Data pages are not executable: fetch faults first.
        assert!(matches!(err, Exit::Fault(GuestFault::Memory(_))), "{err:?}");
    }

    #[test]
    fn falling_off_text_faults() {
        let prog = assemble_source("nop\n").unwrap();
        let err = run_to_exit(&prog, 1000).unwrap_err();
        // After the last instruction rip hits zero-filled text page: the
        // encoding there (all zeroes) is illegal.
        assert!(
            matches!(err, Exit::Fault(GuestFault::IllegalInstruction { .. })),
            "{err:?}"
        );
    }

    #[test]
    fn unmapped_access_faults() {
        let prog = assemble_source("mov rbx, 0xdead0000\nld8 rax, [rbx]\n").unwrap();
        let err = run_to_exit(&prog, 1000).unwrap_err();
        assert!(is_unmapped_fault(&err, 0xdead_0000), "{err:?}");
    }

    #[test]
    fn step_budget_enforced() {
        let prog = assemble_source("spin: jmp spin\n").unwrap();
        let err = run_to_exit(&prog, 1000).unwrap_err();
        assert_eq!(err, Exit::Fault(GuestFault::StepBudget));
    }

    #[test]
    fn shifts_mask_counts() {
        let (code, _) = run(r#"
            _start:
                mov rbx, 1
                shl rbx, 65       ; masked to 1
                cmp rbx, 2
                jnz bad
                mov rbx, -8
                sar rbx, 1
                cmp rbx, -4
                jnz bad
                mov rbx, 8
                shr rbx, 2
                cmp rbx, 2
                jnz bad
                mov rdi, 0
                mov rax, 60
                syscall
            bad:
                mov rdi, 1
                mov rax, 60
                syscall
            "#);
        assert_eq!(code, 0);
    }

    #[test]
    fn brk_heap_from_guest() {
        let (code, _) = run(r#"
            _start:
                mov rdi, 0
                mov rax, 12      ; brk(0) -> current
                syscall
                mov rbx, rax     ; heap base
                mov rdi, rax
                add rdi, 4096
                mov rax, 12      ; brk(base+4096)
                syscall
                st8 [rbx], rbx   ; heap is writable now
                ld8 rcx, [rbx]
                cmp rcx, rbx
                jnz bad
                mov rdi, 0
                mov rax, 60
                syscall
            bad:
                mov rdi, 1
                mov rax, 60
                syscall
            "#);
        assert_eq!(code, 0);
    }
}
