//! Program representation, layout, and loading.
//!
//! A [`Program`] is the output of the assembler: encoded text, initialised
//! data, a symbol table, and an entry point. [`Program::boot`] materialises
//! it into a runnable [`GuestState`] — text mapped read-execute, data
//! read-write, a stack, and registers pointing at the entry — which is the
//! root state handed to the backtracking engine.

use std::collections::BTreeMap;

use lwsnap_core::{GuestState, Reg, RegisterFile};
use lwsnap_fs::FsView;
use lwsnap_mem::{round_up_pages, AddressSpace, AsLayout, Prot, RegionKind, PAGE_SIZE};

use crate::isa::{Instr, Opcode, INSTR_SIZE};

/// Assembler and loader errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsmError {
    /// Syntax error at a source line (1-based).
    Syntax {
        /// Source line number.
        line: usize,
        /// Description of the problem.
        msg: String,
    },
    /// A label was defined twice.
    DuplicateLabel {
        /// The offending label.
        name: String,
    },
    /// An operand referenced an undefined symbol.
    UndefinedSymbol {
        /// The unresolved name.
        name: String,
    },
    /// A data directive appeared in `.text` (not supported).
    DataInText,
    /// An instruction appeared in `.data`.
    CodeInData,
    /// Loading failed (layout collision or out-of-range addresses).
    Load {
        /// Description of the problem.
        msg: String,
    },
}

impl std::fmt::Display for AsmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AsmError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            AsmError::DuplicateLabel { name } => write!(f, "duplicate label `{name}`"),
            AsmError::UndefinedSymbol { name } => write!(f, "undefined symbol `{name}`"),
            AsmError::DataInText => write!(f, "data directive inside .text"),
            AsmError::CodeInData => write!(f, "instruction inside .data"),
            AsmError::Load { msg } => write!(f, "load error: {msg}"),
        }
    }
}

impl std::error::Error for AsmError {}

/// A symbol reference plus constant offset (`label+8`), or a plain
/// constant when `sym` is `None`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SymExpr {
    /// Referenced symbol, if any.
    pub sym: Option<String>,
    /// Constant addend.
    pub offset: i64,
}

impl SymExpr {
    /// A plain constant.
    pub fn imm(v: i64) -> SymExpr {
        SymExpr {
            sym: None,
            offset: v,
        }
    }

    /// A symbol reference with optional addend.
    pub fn sym(name: impl Into<String>, offset: i64) -> SymExpr {
        SymExpr {
            sym: Some(name.into()),
            offset,
        }
    }

    fn resolve(&self, symbols: &BTreeMap<String, u64>) -> Result<i64, AsmError> {
        match &self.sym {
            None => Ok(self.offset),
            Some(name) => symbols
                .get(name)
                .map(|&v| v as i64 + self.offset)
                .ok_or_else(|| AsmError::UndefinedSymbol { name: name.clone() }),
        }
    }
}

/// Current assembly section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Section {
    /// Executable code.
    #[default]
    Text,
    /// Initialised read-write data.
    Data,
}

/// One assembly item (produced by the parser or the builder).
#[derive(Debug, Clone, PartialEq)]
pub enum Item {
    /// Switch the active section.
    Section(Section),
    /// Define a label at the current position.
    Label(String),
    /// One instruction (text only).
    Ins {
        /// Operation.
        op: Opcode,
        /// Destination register operand.
        dst: Reg,
        /// Source register operand.
        src: Reg,
        /// Immediate operand, possibly symbolic.
        imm: SymExpr,
    },
    /// Raw bytes (`.byte`, `.asciz`) — data only.
    Bytes(Vec<u8>),
    /// 64-bit little-endian values (`.quad`) — data only.
    Quads(Vec<SymExpr>),
    /// `n` zero bytes (`.space`) — data only.
    Space(u64),
    /// Align the current data offset to `n` bytes (`.align`).
    Align(u64),
}

/// An assembled, relocatable-into-fixed-layout program image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Encoded instructions.
    pub text: Vec<u8>,
    /// Initialised data bytes.
    pub data: Vec<u8>,
    /// Base address of `.text`.
    pub text_base: u64,
    /// Base address of `.data`.
    pub data_base: u64,
    /// Entry point (`_start`, or the start of `.text`).
    pub entry: u64,
    /// All labels with their resolved addresses.
    pub symbols: BTreeMap<String, u64>,
}

/// Assembles items into a program using the default layout.
pub fn assemble(items: &[Item]) -> Result<Program, AsmError> {
    assemble_with_layout(items, &AsLayout::default())
}

/// Assembles items with an explicit address-space layout.
pub fn assemble_with_layout(items: &[Item], layout: &AsLayout) -> Result<Program, AsmError> {
    // Pass 1: measure sections and collect label offsets.
    let mut text_len = 0u64;
    let mut data_len = 0u64;
    let mut section = Section::Text;
    let mut labels: Vec<(String, Section, u64)> = Vec::new();
    for item in items {
        let cursor = match section {
            Section::Text => &mut text_len,
            Section::Data => &mut data_len,
        };
        match item {
            Item::Section(s) => section = *s,
            Item::Label(name) => {
                if labels.iter().any(|(n, _, _)| n == name) {
                    return Err(AsmError::DuplicateLabel { name: name.clone() });
                }
                labels.push((name.clone(), section, *cursor));
            }
            Item::Ins { .. } => {
                if section != Section::Text {
                    return Err(AsmError::CodeInData);
                }
                text_len += INSTR_SIZE;
            }
            Item::Bytes(b) => {
                if section != Section::Data {
                    return Err(AsmError::DataInText);
                }
                data_len += b.len() as u64;
            }
            Item::Quads(q) => {
                if section != Section::Data {
                    return Err(AsmError::DataInText);
                }
                data_len += 8 * q.len() as u64;
            }
            Item::Space(n) => {
                if section != Section::Data {
                    return Err(AsmError::DataInText);
                }
                data_len += n;
            }
            Item::Align(n) => {
                if *n == 0 || !n.is_power_of_two() {
                    return Err(AsmError::Syntax {
                        line: 0,
                        msg: format!(".align {n}: not a power of two"),
                    });
                }
                *cursor = cursor.div_ceil(*n) * n;
            }
        }
    }

    let text_base = layout.code_base;
    let data_base = text_base + round_up_pages(text_len).max(PAGE_SIZE as u64);
    let mut symbols = BTreeMap::new();
    for (name, sec, off) in labels {
        let addr = match sec {
            Section::Text => text_base + off,
            Section::Data => data_base + off,
        };
        symbols.insert(name, addr);
    }

    // Pass 2: encode.
    let mut text = Vec::with_capacity(text_len as usize);
    let mut data = Vec::with_capacity(data_len as usize);
    let mut section = Section::Text;
    for item in items {
        match item {
            Item::Section(s) => section = *s,
            Item::Label(_) => {}
            Item::Ins { op, dst, src, imm } => {
                let value = imm.resolve(&symbols)?;
                let ins = Instr {
                    op: *op,
                    dst: *dst,
                    src: *src,
                    imm: value,
                };
                text.extend_from_slice(&ins.encode());
            }
            Item::Bytes(b) => data.extend_from_slice(b),
            Item::Quads(q) => {
                for e in q {
                    data.extend_from_slice(&e.resolve(&symbols)?.to_le_bytes());
                }
            }
            Item::Space(n) => data.extend(std::iter::repeat_n(0u8, *n as usize)),
            Item::Align(n) => {
                let cursor = match section {
                    Section::Text => text.len() as u64,
                    Section::Data => data.len() as u64,
                };
                let target = cursor.div_ceil(*n) * n;
                let pad = (target - cursor) as usize;
                match section {
                    Section::Text => {
                        // Pad with NOPs to keep text decodable.
                        debug_assert_eq!(pad as u64 % INSTR_SIZE, 0, "text align is instr-sized");
                        for _ in 0..pad / INSTR_SIZE as usize {
                            text.extend_from_slice(&Instr::new(Opcode::Nop).encode());
                        }
                    }
                    Section::Data => data.extend(std::iter::repeat_n(0u8, pad)),
                }
            }
        }
    }

    let entry = symbols.get("_start").copied().unwrap_or(text_base);
    Ok(Program {
        text,
        data,
        text_base,
        data_base,
        entry,
        symbols,
    })
}

impl Program {
    /// Loads the program into a fresh address space.
    pub fn load(&self, layout: &AsLayout) -> Result<(AddressSpace, RegisterFile), AsmError> {
        let mut mem = AddressSpace::with_layout(*layout);
        let map_err = |e: lwsnap_mem::MemError| AsmError::Load { msg: e.to_string() };
        let text_span = round_up_pages(self.text.len() as u64).max(PAGE_SIZE as u64);
        mem.map_fixed(
            self.text_base,
            text_span,
            Prot::RX,
            RegionKind::Code,
            ".text",
        )
        .map_err(map_err)?;
        mem.poke_bytes(self.text_base, &self.text)
            .map_err(|e| AsmError::Load { msg: e.to_string() })?;
        if !self.data.is_empty() {
            let data_span = round_up_pages(self.data.len() as u64);
            mem.map_fixed(
                self.data_base,
                data_span,
                Prot::RW,
                RegionKind::Data,
                ".data",
            )
            .map_err(map_err)?;
            mem.poke_bytes(self.data_base, &self.data)
                .map_err(|e| AsmError::Load { msg: e.to_string() })?;
        }
        let sp = mem.map_stack().map_err(map_err)?;
        let mut regs = RegisterFile::new();
        regs.rip = self.entry;
        regs.set(Reg::Rsp, sp);
        Ok((mem, regs))
    }

    /// Boots the program: loaded address space + default file view.
    pub fn boot(&self) -> Result<GuestState, AsmError> {
        let layout = AsLayout::default();
        let (mem, regs) = self.load(&layout)?;
        Ok(GuestState::with_parts(regs, mem, FsView::default()))
    }

    /// Boots with a pre-populated file view (e.g. input files).
    pub fn boot_with_fs(&self, fs: FsView) -> Result<GuestState, AsmError> {
        let layout = AsLayout::default();
        let (mem, regs) = self.load(&layout)?;
        Ok(GuestState::with_parts(regs, mem, fs))
    }

    /// Number of instructions in `.text`.
    pub fn instr_count(&self) -> u64 {
        self.text.len() as u64 / INSTR_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assemble_simple_program() {
        let items = vec![
            Item::Label("_start".into()),
            Item::Ins {
                op: Opcode::MovRI,
                dst: Reg::Rax,
                src: Reg::Rax,
                imm: SymExpr::imm(7),
            },
            Item::Ins {
                op: Opcode::MovRI,
                dst: Reg::Rbx,
                src: Reg::Rax,
                imm: SymExpr::sym("value", 0),
            },
            Item::Section(Section::Data),
            Item::Label("value".into()),
            Item::Quads(vec![SymExpr::imm(99)]),
        ];
        let prog = assemble(&items).unwrap();
        assert_eq!(prog.instr_count(), 2);
        assert_eq!(prog.entry, prog.text_base);
        let value_addr = prog.symbols["value"];
        assert_eq!(value_addr, prog.data_base);
        // The second instruction's immediate is the data address.
        let ins = Instr::decode(prog.text[16..32].try_into().unwrap()).unwrap();
        assert_eq!(ins.imm as u64, value_addr);
        assert_eq!(prog.data, 99i64.to_le_bytes());
    }

    #[test]
    fn duplicate_label_rejected() {
        let items = vec![Item::Label("a".into()), Item::Label("a".into())];
        assert_eq!(
            assemble(&items),
            Err(AsmError::DuplicateLabel { name: "a".into() })
        );
    }

    #[test]
    fn undefined_symbol_rejected() {
        let items = vec![Item::Ins {
            op: Opcode::Jmp,
            dst: Reg::Rax,
            src: Reg::Rax,
            imm: SymExpr::sym("nowhere", 0),
        }];
        assert_eq!(
            assemble(&items),
            Err(AsmError::UndefinedSymbol {
                name: "nowhere".into()
            })
        );
    }

    #[test]
    fn section_rules_enforced() {
        let items = vec![Item::Bytes(vec![1])];
        assert_eq!(assemble(&items), Err(AsmError::DataInText));
        let items = vec![
            Item::Section(Section::Data),
            Item::Ins {
                op: Opcode::Nop,
                dst: Reg::Rax,
                src: Reg::Rax,
                imm: SymExpr::imm(0),
            },
        ];
        assert_eq!(assemble(&items), Err(AsmError::CodeInData));
    }

    #[test]
    fn align_and_space() {
        let items = vec![
            Item::Section(Section::Data),
            Item::Bytes(vec![1, 2, 3]),
            Item::Align(8),
            Item::Label("aligned".into()),
            Item::Quads(vec![SymExpr::imm(5)]),
            Item::Space(4),
        ];
        let prog = assemble(&items).unwrap();
        assert_eq!(prog.symbols["aligned"] % 8, 0);
        assert_eq!(prog.data.len(), 8 + 8 + 4);
        assert_eq!(&prog.data[..3], &[1, 2, 3]);
    }

    #[test]
    fn sym_plus_offset() {
        let items = vec![
            Item::Section(Section::Data),
            Item::Label("arr".into()),
            Item::Space(64),
            Item::Label("ptr".into()),
            Item::Quads(vec![SymExpr::sym("arr", 16)]),
        ];
        let prog = assemble(&items).unwrap();
        let stored = i64::from_le_bytes(prog.data[64..72].try_into().unwrap());
        assert_eq!(stored as u64, prog.symbols["arr"] + 16);
    }

    #[test]
    fn boot_sets_up_machine() {
        let items = vec![
            Item::Label("_start".into()),
            Item::Ins {
                op: Opcode::Nop,
                dst: Reg::Rax,
                src: Reg::Rax,
                imm: SymExpr::imm(0),
            },
        ];
        let prog = assemble(&items).unwrap();
        let mut st = prog.boot().unwrap();
        assert_eq!(st.regs.rip, prog.entry);
        let sp = st.regs.get(Reg::Rsp);
        assert!(sp > 0);
        // Stack is writable; text is not.
        st.mem.write_u64(sp - 8, 1).unwrap();
        assert!(st.mem.write_u8(prog.text_base, 0).is_err());
        // Text is fetchable.
        let mut buf = [0u8; 16];
        st.mem.fetch_bytes(prog.text_base, &mut buf).unwrap();
        assert_eq!(Instr::decode(&buf).unwrap().op, Opcode::Nop);
    }

    #[test]
    fn entry_defaults_and_start_label() {
        let items = vec![
            Item::Ins {
                op: Opcode::Nop,
                dst: Reg::Rax,
                src: Reg::Rax,
                imm: SymExpr::imm(0),
            },
            Item::Label("_start".into()),
            Item::Ins {
                op: Opcode::Nop,
                dst: Reg::Rax,
                src: Reg::Rax,
                imm: SymExpr::imm(0),
            },
        ];
        let prog = assemble(&items).unwrap();
        assert_eq!(prog.entry, prog.text_base + 16, "_start respected");
    }
}
