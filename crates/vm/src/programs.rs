//! Ready-made SVM-64 guest programs used by examples, tests and benches.
//!
//! The flagship is [`nqueens_source`] — a line-for-line transcription of
//! the paper's Figure 1: one `sys_guess(N)` per column, `sys_guess_fail`
//! on conflict, print the board, and a final fail after printing so the
//! engine enumerates *all* answers. Note what is absent: there is no undo
//! code anywhere — the snapshots provide the backtracking.

/// Generates the Figure-1 n-queens program for board size `n`.
///
/// * `print` — emit each solution on stdout via `write(2)` (one line of
///   `'0'+row` digits per board, exactly like `printboard`).
/// * `emit` — mark each solution with `sys_emit` so the engine counts it.
///
/// Supports `n` up to 26 (row digits become ASCII past '9'; the *count*
/// of solutions is what the experiments check).
pub fn nqueens_source(n: u64, print: bool, emit: bool) -> String {
    assert!((1..=26).contains(&n), "n out of range");
    let print_call = if print { "    call printboard\n" } else { "" };
    let emit_call = if emit {
        "    mov rax, 1003\n    syscall\n"
    } else {
        ""
    };
    format!(
        r#"
; n-queens with system-level backtracking (paper, Figure 1). N = {n}.
.text
_start:
    mov  rdi, 0            ; DFS
    mov  rax, 1002         ; sys_guess_strategy(DFS)
    syscall
    cmp  rax, 1
    jnz  done              ; strategy rejected
    mov  r12, 0            ; c = 0
col_loop:
    cmp  r12, {n}
    jae  solution
    mov  rdi, {n}
    mov  rax, 1000         ; r = sys_guess(N)   <- a little magic
    syscall
    mov  r13, rax
    ; if (row[r] || ld[r+c] || rd[N+r-c]) sys_guess_fail();
    mov  rbx, r13
    add  rbx, row
    ld1  rcx, [rbx]
    cmp  rcx, 0
    jnz  fail
    mov  rbx, r13
    add  rbx, r12
    add  rbx, ldiag
    ld1  rcx, [rbx]
    cmp  rcx, 0
    jnz  fail
    mov  rbx, r13
    add  rbx, {n}
    sub  rbx, r12
    add  rbx, rdiag
    ld1  rcx, [rbx]
    cmp  rcx, 0
    jnz  fail
    ; col[c]=r; row[r]=1; ld[r+c]=1; rd[N+r-c]=1;   (no undo code!)
    mov  rbx, r12
    add  rbx, cols
    st1  [rbx], r13
    mov  rcx, 1
    mov  rbx, r13
    add  rbx, row
    st1  [rbx], rcx
    mov  rbx, r13
    add  rbx, r12
    add  rbx, ldiag
    st1  [rbx], rcx
    mov  rbx, r13
    add  rbx, {n}
    sub  rbx, r12
    add  rbx, rdiag
    st1  [rbx], rcx
    add  r12, 1
    jmp  col_loop
solution:
{print_call}{emit_call}fail:
    mov  rax, 1001         ; sys_guess_fail -> print all answers
    syscall
done:
    mov  rdi, 0
    mov  rax, 60
    syscall

printboard:
    mov  r14, 0
pb_loop:
    cmp  r14, {n}
    jae  pb_done
    mov  rbx, r14
    add  rbx, cols
    ld1  rcx, [rbx]
    add  rcx, 48           ; '0' + row
    mov  rbx, r14
    add  rbx, linebuf
    st1  [rbx], rcx
    add  r14, 1
    jmp  pb_loop
pb_done:
    mov  rbx, linebuf
    add  rbx, {n}
    mov  rcx, 10           ; newline
    st1  [rbx], rcx
    mov  rdi, 1
    mov  rsi, linebuf
    mov  rdx, {line_len}
    mov  rax, 1            ; write(1, linebuf, N+1)
    syscall
    ret

.data
row:     .space {n}
ldiag:   .space {diag}
rdiag:   .space {diag}
cols:    .space {n}
linebuf: .space {line_len}
"#,
        n = n,
        diag = 2 * n,
        line_len = n + 1,
        print_call = print_call,
        emit_call = emit_call,
    )
}

/// Generates a guest that enumerates all `depth`-bit strings, emitting
/// each complete string (used by strategy/ordering tests).
pub fn bitstrings_source(depth: u64) -> String {
    assert!((1..=30).contains(&depth), "depth out of range");
    format!(
        r#"
; Enumerate all {depth}-bit strings; emit one solution per string.
.text
_start:
    mov  r12, 0            ; level
    mov  r13, 0            ; accumulated value
level_loop:
    cmp  r12, {depth}
    jae  leaf
    mov  rdi, 2
    mov  rax, 1000         ; bit = sys_guess(2)
    syscall
    shl  r13, 1
    or   r13, rax
    add  r12, 1
    jmp  level_loop
leaf:
    mov  rdi, r13
    mov  rax, 1005         ; putint(value)
    syscall
    mov  rdi, 32
    call putch
    mov  rax, 1003         ; sys_emit
    syscall
    mov  rax, 1001         ; backtrack
    syscall

putch:                     ; putch(rdi = ascii)
    mov  rbx, chbuf
    st1  [rbx], rdi
    mov  rdi, 1
    mov  rsi, chbuf
    mov  rdx, 1
    mov  rax, 1
    syscall
    ret

.data
chbuf: .space 1
"#,
    )
}

/// Generates the granularity/locality workload of experiments E3 and E7.
///
/// The guest explores a `fanout`-ary decision tree of `depth` guesses. At
/// every node it (a) spins `work_iters` iterations of register-only work
/// — the "instruction count per extension step" knob of paper §5 — and
/// (b) dirties `touch_pages` distinct 4 KiB pages of a large buffer — the
/// "page-level memory locality" knob. Leaves emit and fail.
pub fn search_workload_source(
    depth: u64,
    fanout: u64,
    work_iters: u64,
    touch_pages: u64,
    buffer_pages: u64,
) -> String {
    assert!(depth >= 1 && fanout >= 1, "degenerate workload");
    assert!(
        touch_pages <= buffer_pages,
        "cannot touch more pages than the buffer has"
    );
    let buffer_bytes = buffer_pages.max(1) * 4096;
    format!(
        r#"
; Search workload: depth={depth} fanout={fanout} work_iters={work_iters}
; touch_pages={touch_pages} buffer_pages={buffer_pages}
.text
_start:
    mov  r12, 0            ; level
node:
    cmp  r12, {depth}
    jae  leaf
    ; --- (a) busy work: work_iters register ops ---
    mov  rcx, {work_iters}
work_loop:
    cmp  rcx, 0
    jz   work_done
    mul_step:
    mov  rbx, rcx
    mul  rbx, 2862933555777941757
    add  rbx, 3037000493
    sub  rcx, 1
    jmp  work_loop
work_done:
    ; --- (b) dirty touch_pages pages (page-stride writes) ---
    mov  rcx, 0
touch_loop:
    cmp  rcx, {touch_pages}
    jae  touch_done
    mov  rbx, rcx
    mul  rbx, 4096
    add  rbx, buffer
    st8  [rbx], r12        ; dirty one page
    add  rcx, 1
    jmp  touch_loop
touch_done:
    ; --- guess the next move ---
    mov  rdi, {fanout}
    mov  rax, 1000
    syscall
    add  r12, 1
    jmp  node
leaf:
    mov  rax, 1003         ; emit
    syscall
    mov  rax, 1001         ; fail / backtrack
    syscall

.data
.align 4096
buffer: .space {buffer_bytes}
"#,
    )
}

/// A trivially failing program: guesses then immediately fails — used to
/// measure pure snapshot/restore overhead with zero useful work.
pub fn guess_fail_source(depth: u64, fanout: u64) -> String {
    format!(
        r#"
.text
_start:
    mov  r12, 0
again:
    cmp  r12, {depth}
    jae  leaf
    mov  rdi, {fanout}
    mov  rax, 1000
    syscall
    add  r12, 1
    jmp  again
leaf:
    mov  rax, 1001
    syscall
"#,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interp;
    use crate::parse::assemble_source;
    use lwsnap_core::strategy::{Bfs, Dfs};
    use lwsnap_core::{Engine, StopReason};

    #[test]
    fn nqueens_6_has_4_solutions() {
        let prog = assemble_source(&nqueens_source(6, true, true)).unwrap();
        let mut engine = Engine::new(Dfs::new());
        let mut interp = Interp::new();
        let result = engine.run(&mut interp, prog.boot().unwrap());
        assert_eq!(result.stop, StopReason::Exhausted);
        assert_eq!(result.stats.solutions, 4, "{}", result.transcript_str());
        // Each solution line is a valid placement.
        for line in result.transcript_str().lines() {
            assert_eq!(line.len(), 6);
            let rows: Vec<i64> = line.bytes().map(|b| (b - b'0') as i64).collect();
            for c1 in 0..6 {
                for c2 in c1 + 1..6 {
                    assert_ne!(rows[c1], rows[c2], "row clash in {line}");
                    assert_ne!(
                        (rows[c1] - rows[c2]).abs(),
                        (c1 as i64 - c2 as i64).abs(),
                        "diagonal clash in {line}"
                    );
                }
            }
        }
    }

    #[test]
    fn nqueens_8_has_92_solutions() {
        let prog = assemble_source(&nqueens_source(8, false, true)).unwrap();
        let mut engine = Engine::new(Dfs::new());
        let mut interp = Interp::new();
        let result = engine.run(&mut interp, prog.boot().unwrap());
        assert_eq!(result.stats.solutions, 92);
    }

    #[test]
    fn nqueens_under_bfs_finds_same_count() {
        let prog = assemble_source(&nqueens_source(6, false, true)).unwrap();
        let mut engine = Engine::new(Bfs::new());
        let mut interp = Interp::new();
        let result = engine.run(&mut interp, prog.boot().unwrap());
        assert_eq!(result.stats.solutions, 4);
    }

    #[test]
    fn bitstrings_enumerates_in_dfs_order() {
        let prog = assemble_source(&bitstrings_source(3)).unwrap();
        let mut engine = Engine::new(Dfs::new());
        let mut interp = Interp::new();
        let result = engine.run(&mut interp, prog.boot().unwrap());
        assert_eq!(result.stats.solutions, 8);
        assert_eq!(result.transcript_str(), "0 1 2 3 4 5 6 7 ");
    }

    #[test]
    fn workload_touches_expected_pages() {
        let prog = assemble_source(&search_workload_source(2, 2, 10, 3, 8)).unwrap();
        let mut engine = Engine::new(Dfs::new());
        let mut interp = Interp::new();
        let result = engine.run(&mut interp, prog.boot().unwrap());
        assert_eq!(result.stats.solutions, 4, "2^2 leaves");
        // 3 internal nodes + 4 leaves... every node dirties 3 pages; the
        // workload exists for its side effects on MMU counters, checked
        // in the dedicated integration tests. Here: it completes.
        assert_eq!(result.stop, StopReason::Exhausted);
    }

    #[test]
    fn guess_fail_explores_full_tree() {
        let prog = assemble_source(&guess_fail_source(4, 2)).unwrap();
        let mut engine = Engine::new(Dfs::new());
        let mut interp = Interp::new();
        let result = engine.run(&mut interp, prog.boot().unwrap());
        assert_eq!(result.stats.failures, 16, "2^4 leaves all fail");
        assert_eq!(result.stats.snapshots_created, 15);
    }
}
