//! The SVM-64 assembly text parser.
//!
//! Line-oriented AT&T-free syntax, Intel operand order:
//!
//! ```text
//! ; n-queens inner loop (comment styles: ';' '#' '//')
//! .text
//! _start:
//!     mov   rdi, 8            ; immediate
//!     mov   rax, 1000         ; sys_guess
//!     syscall
//!     ld8   rbx, [r12+8]      ; load with displacement
//!     st8   [r12], rbx
//!     cmp   rbx, 0
//!     jnz   _start
//!     ret
//! .data
//! board:  .space 64
//! msg:    .asciz "hello\n"
//! table:  .quad 1, 2, board+8
//! ```

use lwsnap_core::Reg;

use crate::isa::Opcode;
use crate::prog::{AsmError, Item, Section, SymExpr};

/// Parses assembly text into items (feed to [`crate::prog::assemble`]).
pub fn parse(source: &str) -> Result<Vec<Item>, AsmError> {
    let mut items = Vec::new();
    for (idx, raw) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw);
        let mut rest = line.trim();
        // Leading labels (possibly several, e.g. `a: b: nop`).
        while let Some((label, tail)) = split_label(rest) {
            items.push(Item::Label(label.to_owned()));
            rest = tail.trim();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(directive) = rest.strip_prefix('.') {
            items.push(parse_directive(directive, line_no)?);
        } else {
            items.push(parse_instruction(rest, line_no)?);
        }
    }
    Ok(items)
}

/// Convenience: parse + assemble with the default layout.
pub fn assemble_source(source: &str) -> Result<crate::prog::Program, AsmError> {
    crate::prog::assemble(&parse(source)?)
}

/// Removes `;`, `#`, `//` comments, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if in_str {
            match b {
                b'\\' => i += 1, // skip the escaped char
                b'"' => in_str = false,
                _ => {}
            }
        } else {
            match b {
                b'"' => in_str = true,
                b';' | b'#' => return &line[..i],
                b'/' if bytes.get(i + 1) == Some(&b'/') => return &line[..i],
                _ => {}
            }
        }
        i += 1;
    }
    line
}

/// Splits a leading `label:` off `rest`, if present.
fn split_label(rest: &str) -> Option<(&str, &str)> {
    let colon = rest.find(':')?;
    let candidate = &rest[..colon];
    if !candidate.is_empty()
        && candidate
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !candidate.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        Some((candidate, &rest[colon + 1..]))
    } else {
        None
    }
}

fn syntax(line: usize, msg: impl Into<String>) -> AsmError {
    AsmError::Syntax {
        line,
        msg: msg.into(),
    }
}

fn parse_directive(directive: &str, line: usize) -> Result<Item, AsmError> {
    let (name, args) = directive
        .split_once(char::is_whitespace)
        .unwrap_or((directive, ""));
    let args = args.trim();
    match name {
        "text" => Ok(Item::Section(Section::Text)),
        "data" => Ok(Item::Section(Section::Data)),
        "byte" => {
            let mut bytes = Vec::new();
            for part in split_args(args) {
                let v =
                    parse_int(&part).ok_or_else(|| syntax(line, format!("bad byte `{part}`")))?;
                if !(-128..=255).contains(&v) {
                    return Err(syntax(line, format!("byte out of range: {v}")));
                }
                bytes.push(v as u8);
            }
            if bytes.is_empty() {
                return Err(syntax(line, ".byte needs at least one value"));
            }
            Ok(Item::Bytes(bytes))
        }
        "quad" => {
            let mut quads = Vec::new();
            for part in split_args(args) {
                quads.push(
                    parse_expr(&part).ok_or_else(|| syntax(line, format!("bad quad `{part}`")))?,
                );
            }
            if quads.is_empty() {
                return Err(syntax(line, ".quad needs at least one value"));
            }
            Ok(Item::Quads(quads))
        }
        "asciz" => {
            let mut bytes = parse_string(args).ok_or_else(|| syntax(line, "bad string literal"))?;
            bytes.push(0);
            Ok(Item::Bytes(bytes))
        }
        "ascii" => {
            let bytes = parse_string(args).ok_or_else(|| syntax(line, "bad string literal"))?;
            Ok(Item::Bytes(bytes))
        }
        "space" => {
            let n = parse_int(args).ok_or_else(|| syntax(line, "bad .space size"))?;
            if n < 0 {
                return Err(syntax(line, "negative .space"));
            }
            Ok(Item::Space(n as u64))
        }
        "align" => {
            let n = parse_int(args).ok_or_else(|| syntax(line, "bad .align"))?;
            if n <= 0 || (n as u64).count_ones() != 1 {
                return Err(syntax(line, ".align must be a positive power of two"));
            }
            Ok(Item::Align(n as u64))
        }
        other => Err(syntax(line, format!("unknown directive `.{other}`"))),
    }
}

/// Splits comma-separated operands, trimming whitespace.
fn split_args(args: &str) -> Vec<String> {
    if args.trim().is_empty() {
        return Vec::new();
    }
    args.split(',').map(|s| s.trim().to_owned()).collect()
}

/// Parses an integer literal: decimal, `0x` hex, optional sign, `'c'` char.
fn parse_int(text: &str) -> Option<i64> {
    let text = text.trim();
    if let Some(inner) = text.strip_prefix('\'').and_then(|t| t.strip_suffix('\'')) {
        let mut chars = inner.chars();
        let c = match (chars.next()?, chars.next()) {
            ('\\', Some('n')) => '\n',
            ('\\', Some('t')) => '\t',
            ('\\', Some('0')) => '\0',
            ('\\', Some('\\')) => '\\',
            ('\\', Some('\'')) => '\'',
            (c, None) => c,
            _ => return None,
        };
        return Some(c as i64);
    }
    let (neg, body) = match text.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, text.strip_prefix('+').unwrap_or(text)),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()? as i64
    } else {
        body.replace('_', "").parse::<i64>().ok()?
    };
    Some(if neg { -value } else { value })
}

/// Parses `number`, `symbol`, `symbol+number`, or `symbol-number`.
fn parse_expr(text: &str) -> Option<SymExpr> {
    let text = text.trim();
    if text.is_empty() {
        return None;
    }
    if let Some(v) = parse_int(text) {
        return Some(SymExpr::imm(v));
    }
    // Find a +/- splitting symbol from addend (not at position 0).
    for (i, c) in text.char_indices().skip(1) {
        if c == '+' || c == '-' {
            let (sym, rest) = text.split_at(i);
            let addend = parse_int(rest)?;
            return valid_symbol(sym.trim()).then(|| SymExpr::sym(sym.trim(), addend));
        }
    }
    valid_symbol(text).then(|| SymExpr::sym(text, 0))
}

fn valid_symbol(s: &str) -> bool {
    !s.is_empty()
        && !s.chars().next().is_some_and(|c| c.is_ascii_digit())
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && Reg::parse(s).is_none()
}

/// Parses a double-quoted string with `\n \t \0 \\ \"` escapes.
fn parse_string(text: &str) -> Option<Vec<u8>> {
    let inner = text.trim().strip_prefix('"')?.strip_suffix('"')?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                'n' => out.push(b'\n'),
                't' => out.push(b'\t'),
                '0' => out.push(0),
                '\\' => out.push(b'\\'),
                '"' => out.push(b'"'),
                _ => return None,
            }
        } else {
            let mut buf = [0u8; 4];
            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
        }
    }
    Some(out)
}

/// A parsed operand.
enum Arg {
    Reg(Reg),
    Expr(SymExpr),
    Mem { base: Reg, disp: SymExpr },
}

fn parse_arg(text: &str, line: usize) -> Result<Arg, AsmError> {
    let text = text.trim();
    if let Some(reg) = Reg::parse(text) {
        return Ok(Arg::Reg(reg));
    }
    if let Some(inner) = text.strip_prefix('[').and_then(|t| t.strip_suffix(']')) {
        let compact: String = inner.chars().filter(|c| !c.is_whitespace()).collect();
        // Forms: [reg], [reg+expr], [reg-expr].
        for (i, c) in compact.char_indices().skip(1) {
            if c == '+' || c == '-' {
                let (base, rest) = compact.split_at(i);
                let base = Reg::parse(base)
                    .ok_or_else(|| syntax(line, format!("bad base register `{base}`")))?;
                let disp = if c == '+' {
                    parse_expr(&rest[1..])
                } else {
                    parse_int(rest).map(SymExpr::imm)
                }
                .ok_or_else(|| syntax(line, format!("bad displacement `{rest}`")))?;
                return Ok(Arg::Mem { base, disp });
            }
        }
        let base = Reg::parse(&compact)
            .ok_or_else(|| syntax(line, format!("bad memory operand `[{inner}]`")))?;
        return Ok(Arg::Mem {
            base,
            disp: SymExpr::imm(0),
        });
    }
    parse_expr(text)
        .map(Arg::Expr)
        .ok_or_else(|| syntax(line, format!("bad operand `{text}`")))
}

fn ins(op: Opcode, dst: Reg, src: Reg, imm: SymExpr) -> Item {
    Item::Ins { op, dst, src, imm }
}

fn parse_instruction(text: &str, line: usize) -> Result<Item, AsmError> {
    let (mnemonic, rest) = text.split_once(char::is_whitespace).unwrap_or((text, ""));
    let mnemonic = mnemonic.to_ascii_lowercase();
    let args: Vec<Arg> = split_args(rest)
        .iter()
        .map(|a| parse_arg(a, line))
        .collect::<Result<_, _>>()?;

    let need = |n: usize| -> Result<(), AsmError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(syntax(
                line,
                format!("`{mnemonic}` expects {n} operand(s), got {}", args.len()),
            ))
        }
    };

    // Two-operand reg, reg|imm instructions (RR/RI opcode pairs).
    let rr_ri = |rr: Opcode, ri: Opcode, args: &[Arg]| -> Result<Item, AsmError> {
        match args {
            [Arg::Reg(d), Arg::Reg(s)] => Ok(ins(rr, *d, *s, SymExpr::imm(0))),
            [Arg::Reg(d), Arg::Expr(e)] => Ok(ins(ri, *d, Reg::Rax, e.clone())),
            _ => Err(syntax(line, format!("`{mnemonic}` expects reg, reg|imm"))),
        }
    };

    match mnemonic.as_str() {
        "mov" => {
            need(2)?;
            rr_ri(Opcode::MovRR, Opcode::MovRI, &args)
        }
        "add" => {
            need(2)?;
            rr_ri(Opcode::Add, Opcode::AddI, &args)
        }
        "sub" => {
            need(2)?;
            rr_ri(Opcode::Sub, Opcode::SubI, &args)
        }
        "mul" => {
            need(2)?;
            rr_ri(Opcode::Mul, Opcode::MulI, &args)
        }
        "udiv" => {
            need(2)?;
            rr_ri(Opcode::Udiv, Opcode::UdivI, &args)
        }
        "urem" => {
            need(2)?;
            rr_ri(Opcode::Urem, Opcode::UremI, &args)
        }
        "and" => {
            need(2)?;
            rr_ri(Opcode::And, Opcode::AndI, &args)
        }
        "or" => {
            need(2)?;
            rr_ri(Opcode::Or, Opcode::OrI, &args)
        }
        "xor" => {
            need(2)?;
            rr_ri(Opcode::Xor, Opcode::XorI, &args)
        }
        "shl" => {
            need(2)?;
            rr_ri(Opcode::Shl, Opcode::ShlI, &args)
        }
        "shr" => {
            need(2)?;
            rr_ri(Opcode::Shr, Opcode::ShrI, &args)
        }
        "sar" => {
            need(2)?;
            rr_ri(Opcode::Sar, Opcode::SarI, &args)
        }
        "cmp" => {
            need(2)?;
            rr_ri(Opcode::Cmp, Opcode::CmpI, &args)
        }
        "test" => {
            need(2)?;
            match &args[..] {
                [Arg::Reg(a), Arg::Reg(b)] => Ok(ins(Opcode::Test, *a, *b, SymExpr::imm(0))),
                _ => Err(syntax(line, "`test` expects reg, reg")),
            }
        }
        "neg" | "not" => {
            need(1)?;
            let op = if mnemonic == "neg" {
                Opcode::Neg
            } else {
                Opcode::Not
            };
            match &args[..] {
                [Arg::Reg(r)] => Ok(ins(op, *r, Reg::Rax, SymExpr::imm(0))),
                _ => Err(syntax(line, format!("`{mnemonic}` expects a register"))),
            }
        }
        "ld1" | "ld2" | "ld4" | "ld8" | "lds1" | "lds2" | "lds4" => {
            need(2)?;
            let op = match mnemonic.as_str() {
                "ld1" => Opcode::Ld1,
                "ld2" => Opcode::Ld2,
                "ld4" => Opcode::Ld4,
                "ld8" => Opcode::Ld8,
                "lds1" => Opcode::Lds1,
                "lds2" => Opcode::Lds2,
                _ => Opcode::Lds4,
            };
            match &args[..] {
                [Arg::Reg(d), Arg::Mem { base, disp }] => Ok(ins(op, *d, *base, disp.clone())),
                _ => Err(syntax(
                    line,
                    format!("`{mnemonic}` expects reg, [reg+disp]"),
                )),
            }
        }
        "st1" | "st2" | "st4" | "st8" => {
            need(2)?;
            let op = match mnemonic.as_str() {
                "st1" => Opcode::St1,
                "st2" => Opcode::St2,
                "st4" => Opcode::St4,
                _ => Opcode::St8,
            };
            match &args[..] {
                [Arg::Mem { base, disp }, Arg::Reg(s)] => Ok(ins(op, *base, *s, disp.clone())),
                _ => Err(syntax(
                    line,
                    format!("`{mnemonic}` expects [reg+disp], reg"),
                )),
            }
        }
        "jmp" | "jz" | "je" | "jnz" | "jne" | "jl" | "jle" | "jg" | "jge" | "jb" | "jbe" | "ja"
        | "jae" => {
            need(1)?;
            let op = match mnemonic.as_str() {
                "jmp" => Opcode::Jmp,
                "jz" | "je" => Opcode::Jz,
                "jnz" | "jne" => Opcode::Jnz,
                "jl" => Opcode::Jl,
                "jle" => Opcode::Jle,
                "jg" => Opcode::Jg,
                "jge" => Opcode::Jge,
                "jb" => Opcode::Jb,
                "jbe" => Opcode::Jbe,
                "ja" => Opcode::Ja,
                _ => Opcode::Jae,
            };
            match &args[..] {
                [Arg::Expr(e)] => Ok(ins(op, Reg::Rax, Reg::Rax, e.clone())),
                _ => Err(syntax(line, format!("`{mnemonic}` expects a target"))),
            }
        }
        "call" => {
            need(1)?;
            match &args[..] {
                [Arg::Expr(e)] => Ok(ins(Opcode::Call, Reg::Rax, Reg::Rax, e.clone())),
                _ => Err(syntax(line, "`call` expects a target")),
            }
        }
        "ret" => {
            need(0)?;
            Ok(ins(Opcode::Ret, Reg::Rax, Reg::Rax, SymExpr::imm(0)))
        }
        "push" => {
            need(1)?;
            match &args[..] {
                [Arg::Reg(r)] => Ok(ins(Opcode::Push, Reg::Rax, *r, SymExpr::imm(0))),
                _ => Err(syntax(line, "`push` expects a register")),
            }
        }
        "pop" => {
            need(1)?;
            match &args[..] {
                [Arg::Reg(r)] => Ok(ins(Opcode::Pop, *r, Reg::Rax, SymExpr::imm(0))),
                _ => Err(syntax(line, "`pop` expects a register")),
            }
        }
        "syscall" => {
            need(0)?;
            Ok(ins(Opcode::Syscall, Reg::Rax, Reg::Rax, SymExpr::imm(0)))
        }
        "nop" => {
            need(0)?;
            Ok(ins(Opcode::Nop, Reg::Rax, Reg::Rax, SymExpr::imm(0)))
        }
        other => Err(syntax(line, format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(src: &str) -> Item {
        let items = parse(src).unwrap();
        assert_eq!(items.len(), 1, "{items:?}");
        items.into_iter().next().unwrap()
    }

    #[test]
    fn mov_forms() {
        assert_eq!(
            one("mov rax, 42"),
            ins(Opcode::MovRI, Reg::Rax, Reg::Rax, SymExpr::imm(42))
        );
        assert_eq!(
            one("mov rax, rbx"),
            ins(Opcode::MovRR, Reg::Rax, Reg::Rbx, SymExpr::imm(0))
        );
        assert_eq!(
            one("mov r15, -0x10"),
            ins(Opcode::MovRI, Reg::R15, Reg::Rax, SymExpr::imm(-16))
        );
        assert_eq!(
            one("mov rdi, msg"),
            ins(Opcode::MovRI, Reg::Rdi, Reg::Rax, SymExpr::sym("msg", 0))
        );
        assert_eq!(
            one("mov rdi, msg+8"),
            ins(Opcode::MovRI, Reg::Rdi, Reg::Rax, SymExpr::sym("msg", 8))
        );
        assert_eq!(
            one("mov rdi, msg-4"),
            ins(Opcode::MovRI, Reg::Rdi, Reg::Rax, SymExpr::sym("msg", -4))
        );
    }

    #[test]
    fn loads_and_stores() {
        assert_eq!(
            one("ld8 rax, [rbx]"),
            ins(Opcode::Ld8, Reg::Rax, Reg::Rbx, SymExpr::imm(0))
        );
        assert_eq!(
            one("ld4 rcx, [rsp+16]"),
            ins(Opcode::Ld4, Reg::Rcx, Reg::Rsp, SymExpr::imm(16))
        );
        assert_eq!(
            one("lds1 rcx, [rsp + 16]"),
            ins(Opcode::Lds1, Reg::Rcx, Reg::Rsp, SymExpr::imm(16))
        );
        assert_eq!(
            one("st8 [rbp-8], rdx"),
            ins(Opcode::St8, Reg::Rbp, Reg::Rdx, SymExpr::imm(-8))
        );
        assert_eq!(
            one("ld8 rax, [r12+table]"),
            ins(Opcode::Ld8, Reg::Rax, Reg::R12, SymExpr::sym("table", 0))
        );
    }

    #[test]
    fn labels_and_comments() {
        let items = parse("start: ; a comment\n  nop # more\n  jmp start // c style\n").unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0], Item::Label("start".into()));
        assert_eq!(
            items[2],
            ins(Opcode::Jmp, Reg::Rax, Reg::Rax, SymExpr::sym("start", 0))
        );
    }

    #[test]
    fn label_with_instruction_same_line() {
        let items = parse("loop: add rax, 1").unwrap();
        assert_eq!(items.len(), 2);
        assert_eq!(items[0], Item::Label("loop".into()));
    }

    #[test]
    fn directives() {
        assert_eq!(one(".text"), Item::Section(Section::Text));
        assert_eq!(one(".data"), Item::Section(Section::Data));
        assert_eq!(one(".byte 1, 2, 0xff"), Item::Bytes(vec![1, 2, 255]));
        assert_eq!(
            one(".quad 7, label+8"),
            Item::Quads(vec![SymExpr::imm(7), SymExpr::sym("label", 8)])
        );
        assert_eq!(one(".space 32"), Item::Space(32));
        assert_eq!(one(".align 8"), Item::Align(8));
        assert_eq!(
            one(".asciz \"hi\\n\""),
            Item::Bytes(vec![b'h', b'i', b'\n', 0])
        );
        assert_eq!(one(".ascii \"ab\""), Item::Bytes(vec![b'a', b'b']));
    }

    #[test]
    fn string_with_semicolon_not_truncated() {
        assert_eq!(
            one(".asciz \"a;b\""),
            Item::Bytes(vec![b'a', b';', b'b', 0])
        );
    }

    #[test]
    fn char_literals() {
        assert_eq!(parse_int("'a'"), Some(97));
        assert_eq!(parse_int("'\\n'"), Some(10));
        assert_eq!(parse_int("'\\0'"), Some(0));
    }

    #[test]
    fn jump_aliases() {
        assert_eq!(
            one("je x"),
            ins(Opcode::Jz, Reg::Rax, Reg::Rax, SymExpr::sym("x", 0))
        );
        assert_eq!(
            one("jne x"),
            ins(Opcode::Jnz, Reg::Rax, Reg::Rax, SymExpr::sym("x", 0))
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse("nop\n  bogus rax\n").unwrap_err();
        assert_eq!(err, syntax(2, "unknown mnemonic `bogus`"));
        let err = parse("mov rax").unwrap_err();
        assert!(matches!(err, AsmError::Syntax { line: 1, .. }));
        let err = parse("ld8 rax, rbx").unwrap_err();
        assert!(matches!(err, AsmError::Syntax { .. }));
        let err = parse(".bogus 1").unwrap_err();
        assert!(matches!(err, AsmError::Syntax { .. }));
    }

    #[test]
    fn register_names_are_not_symbols() {
        // `mov rax, rsp` must be RR, and `jmp rax` must fail (no indirect
        // jumps in SVM-64).
        assert_eq!(
            one("mov rax, rsp"),
            ins(Opcode::MovRR, Reg::Rax, Reg::Rsp, SymExpr::imm(0))
        );
        assert!(parse("jmp rax").is_err());
    }

    #[test]
    fn end_to_end_assembles() {
        let prog = assemble_source(
            r#"
            .text
            _start:
                mov  rdi, greeting
                mov  rax, 60
                syscall
            .data
            greeting: .asciz "bye"
            "#,
        )
        .unwrap();
        assert_eq!(prog.instr_count(), 3);
        assert_eq!(prog.data, b"bye\0");
        assert!(prog.symbols.contains_key("greeting"));
    }
}
