//! SVM-64 instruction set: encoding and decoding.
//!
//! SVM-64 is an x86-64-flavoured register machine designed for one job:
//! being the "arbitrary code" that candidate extension steps execute. The
//! crucial property is that *all* of its state is the architected register
//! file plus paged guest memory — code is fetched from the snapshotted
//! address space on every step, so a lightweight snapshot really does
//! capture the entire execution.
//!
//! Instructions are a fixed 16 bytes:
//!
//! ```text
//! byte 0      opcode
//! byte 1      reserved (must be 0)
//! byte 2      first register operand  (dst)
//! byte 3      second register operand (src)
//! bytes 4..8  reserved (must be 0)
//! bytes 8..16 64-bit little-endian immediate / displacement
//! ```
//!
//! Fixed width wastes space but keeps fetch/decode trivial and — more
//! importantly for the experiments — makes instruction cost uniform, so
//! "instructions per extension step" (paper §5, problem granularity) is a
//! clean knob.

use lwsnap_core::Reg;

/// Instruction size in bytes (fixed).
pub const INSTR_SIZE: u64 = 16;

/// SVM-64 opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// `mov dst, imm` — load immediate.
    MovRI = 0x01,
    /// `mov dst, src` — register copy.
    MovRR = 0x02,

    /// `ld1 dst, [src+disp]` — zero-extending 1-byte load.
    Ld1 = 0x10,
    /// `ld2 dst, [src+disp]` — zero-extending 2-byte load.
    Ld2 = 0x11,
    /// `ld4 dst, [src+disp]` — zero-extending 4-byte load.
    Ld4 = 0x12,
    /// `ld8 dst, [src+disp]` — 8-byte load.
    Ld8 = 0x13,
    /// `lds1 dst, [src+disp]` — sign-extending 1-byte load.
    Lds1 = 0x14,
    /// `lds2 dst, [src+disp]` — sign-extending 2-byte load.
    Lds2 = 0x15,
    /// `lds4 dst, [src+disp]` — sign-extending 4-byte load.
    Lds4 = 0x16,
    /// `st1 [dst+disp], src` — 1-byte store.
    St1 = 0x18,
    /// `st2 [dst+disp], src` — 2-byte store.
    St2 = 0x19,
    /// `st4 [dst+disp], src` — 4-byte store.
    St4 = 0x1a,
    /// `st8 [dst+disp], src` — 8-byte store.
    St8 = 0x1b,

    /// `add dst, src`.
    Add = 0x20,
    /// `add dst, imm`.
    AddI = 0x21,
    /// `sub dst, src`.
    Sub = 0x22,
    /// `sub dst, imm`.
    SubI = 0x23,
    /// `mul dst, src` (low 64 bits).
    Mul = 0x24,
    /// `mul dst, imm`.
    MulI = 0x25,
    /// `udiv dst, src` (unsigned; divide-by-zero faults).
    Udiv = 0x26,
    /// `udiv dst, imm`.
    UdivI = 0x27,
    /// `urem dst, src` (unsigned remainder).
    Urem = 0x28,
    /// `urem dst, imm`.
    UremI = 0x29,
    /// `and dst, src`.
    And = 0x2a,
    /// `and dst, imm`.
    AndI = 0x2b,
    /// `or dst, src`.
    Or = 0x2c,
    /// `or dst, imm`.
    OrI = 0x2d,
    /// `xor dst, src`.
    Xor = 0x2e,
    /// `xor dst, imm`.
    XorI = 0x2f,
    /// `shl dst, src` (count masked to 63).
    Shl = 0x30,
    /// `shl dst, imm`.
    ShlI = 0x31,
    /// `shr dst, src` — logical right shift.
    Shr = 0x32,
    /// `shr dst, imm`.
    ShrI = 0x33,
    /// `sar dst, src` — arithmetic right shift.
    Sar = 0x34,
    /// `sar dst, imm`.
    SarI = 0x35,
    /// `neg dst` — two's-complement negate.
    Neg = 0x3a,
    /// `not dst` — bitwise complement.
    Not = 0x3b,

    /// `cmp a, b` — set flags from `a - b`.
    Cmp = 0x40,
    /// `cmp a, imm`.
    CmpI = 0x41,
    /// `test a, b` — set ZF/SF from `a & b`.
    Test = 0x42,

    /// `jmp target` — unconditional, absolute.
    Jmp = 0x48,
    /// `jz target` — jump if ZF.
    Jz = 0x4a,
    /// `jnz target` — jump if !ZF.
    Jnz = 0x4b,
    /// `jl target` — signed less (SF != OF).
    Jl = 0x4c,
    /// `jle target` — signed less-or-equal.
    Jle = 0x4d,
    /// `jg target` — signed greater.
    Jg = 0x4e,
    /// `jge target` — signed greater-or-equal.
    Jge = 0x4f,
    /// `jb target` — unsigned below (CF).
    Jb = 0x50,
    /// `jbe target` — unsigned below-or-equal.
    Jbe = 0x51,
    /// `ja target` — unsigned above.
    Ja = 0x52,
    /// `jae target` — unsigned above-or-equal.
    Jae = 0x53,

    /// `call target` — push return address, jump.
    Call = 0x58,
    /// `ret` — pop return address.
    Ret = 0x59,
    /// `push src`.
    Push = 0x5a,
    /// `pop dst`.
    Pop = 0x5b,

    /// `syscall` — trap into the libOS.
    Syscall = 0x60,
    /// `nop`.
    Nop = 0x61,
}

impl Opcode {
    /// Decodes an opcode byte.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        use Opcode::*;
        Some(match b {
            0x01 => MovRI,
            0x02 => MovRR,
            0x10 => Ld1,
            0x11 => Ld2,
            0x12 => Ld4,
            0x13 => Ld8,
            0x14 => Lds1,
            0x15 => Lds2,
            0x16 => Lds4,
            0x18 => St1,
            0x19 => St2,
            0x1a => St4,
            0x1b => St8,
            0x20 => Add,
            0x21 => AddI,
            0x22 => Sub,
            0x23 => SubI,
            0x24 => Mul,
            0x25 => MulI,
            0x26 => Udiv,
            0x27 => UdivI,
            0x28 => Urem,
            0x29 => UremI,
            0x2a => And,
            0x2b => AndI,
            0x2c => Or,
            0x2d => OrI,
            0x2e => Xor,
            0x2f => XorI,
            0x30 => Shl,
            0x31 => ShlI,
            0x32 => Shr,
            0x33 => ShrI,
            0x34 => Sar,
            0x35 => SarI,
            0x3a => Neg,
            0x3b => Not,
            0x40 => Cmp,
            0x41 => CmpI,
            0x42 => Test,
            0x48 => Jmp,
            0x4a => Jz,
            0x4b => Jnz,
            0x4c => Jl,
            0x4d => Jle,
            0x4e => Jg,
            0x4f => Jge,
            0x50 => Jb,
            0x51 => Jbe,
            0x52 => Ja,
            0x53 => Jae,
            0x58 => Call,
            0x59 => Ret,
            0x5a => Push,
            0x5b => Pop,
            0x60 => Syscall,
            0x61 => Nop,
            _ => return None,
        })
    }

    /// Returns `true` for conditional or unconditional branches.
    pub fn is_branch(self) -> bool {
        matches!(
            self,
            Opcode::Jmp
                | Opcode::Jz
                | Opcode::Jnz
                | Opcode::Jl
                | Opcode::Jle
                | Opcode::Jg
                | Opcode::Jge
                | Opcode::Jb
                | Opcode::Jbe
                | Opcode::Ja
                | Opcode::Jae
        )
    }
}

/// One decoded instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instr {
    /// Operation.
    pub op: Opcode,
    /// First register operand (destination for most ops).
    pub dst: Reg,
    /// Second register operand (source).
    pub src: Reg,
    /// Immediate / displacement / branch target.
    pub imm: i64,
}

impl Instr {
    /// Creates an instruction; unused fields default to `rax`/0.
    pub fn new(op: Opcode) -> Instr {
        Instr {
            op,
            dst: Reg::Rax,
            src: Reg::Rax,
            imm: 0,
        }
    }

    /// Builder: sets the destination register.
    pub fn dst(mut self, r: Reg) -> Instr {
        self.dst = r;
        self
    }

    /// Builder: sets the source register.
    pub fn src(mut self, r: Reg) -> Instr {
        self.src = r;
        self
    }

    /// Builder: sets the immediate.
    pub fn imm(mut self, v: i64) -> Instr {
        self.imm = v;
        self
    }

    /// Encodes into the fixed 16-byte format.
    pub fn encode(&self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[0] = self.op as u8;
        out[2] = self.dst as u8;
        out[3] = self.src as u8;
        out[8..16].copy_from_slice(&self.imm.to_le_bytes());
        out
    }

    /// Decodes from 16 bytes; `None` for malformed encodings.
    ///
    /// Reserved bytes must be zero — this catches execution wandering
    /// into data pages early.
    pub fn decode(bytes: &[u8; 16]) -> Option<Instr> {
        let op = Opcode::from_u8(bytes[0])?;
        if bytes[1] != 0 || bytes[4..8] != [0, 0, 0, 0] {
            return None;
        }
        let dst = Reg::from_u8(bytes[2])?;
        let src = Reg::from_u8(bytes[3])?;
        let imm = i64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        Some(Instr { op, dst, src, imm })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_OPCODES: [Opcode; 52] = [
        Opcode::MovRI,
        Opcode::MovRR,
        Opcode::Ld1,
        Opcode::Ld2,
        Opcode::Ld4,
        Opcode::Ld8,
        Opcode::Lds1,
        Opcode::Lds2,
        Opcode::Lds4,
        Opcode::St1,
        Opcode::St2,
        Opcode::St4,
        Opcode::St8,
        Opcode::Add,
        Opcode::AddI,
        Opcode::Sub,
        Opcode::SubI,
        Opcode::Mul,
        Opcode::MulI,
        Opcode::Udiv,
        Opcode::UdivI,
        Opcode::Urem,
        Opcode::UremI,
        Opcode::And,
        Opcode::AndI,
        Opcode::Or,
        Opcode::OrI,
        Opcode::Xor,
        Opcode::XorI,
        Opcode::Shl,
        Opcode::ShlI,
        Opcode::Shr,
        Opcode::ShrI,
        Opcode::Sar,
        Opcode::SarI,
        Opcode::Neg,
        Opcode::Not,
        Opcode::Cmp,
        Opcode::CmpI,
        Opcode::Test,
        Opcode::Jmp,
        Opcode::Jz,
        Opcode::Jnz,
        Opcode::Jl,
        Opcode::Jle,
        Opcode::Jg,
        Opcode::Jge,
        Opcode::Jb,
        Opcode::Jbe,
        Opcode::Ja,
        Opcode::Jae,
        Opcode::Call,
    ];

    #[test]
    fn opcode_byte_roundtrip() {
        for op in ALL_OPCODES {
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
        }
        for op in [
            Opcode::Ret,
            Opcode::Push,
            Opcode::Pop,
            Opcode::Syscall,
            Opcode::Nop,
        ] {
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
        }
        assert_eq!(Opcode::from_u8(0x00), None);
        assert_eq!(Opcode::from_u8(0xff), None);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let ins = Instr::new(Opcode::AddI).dst(Reg::R12).imm(-12345);
        let bytes = ins.encode();
        assert_eq!(Instr::decode(&bytes), Some(ins));

        let ins = Instr::new(Opcode::Ld8)
            .dst(Reg::Rbx)
            .src(Reg::Rsp)
            .imm(0x7fff_ffff);
        assert_eq!(Instr::decode(&ins.encode()), Some(ins));
    }

    #[test]
    fn zero_bytes_are_illegal() {
        assert_eq!(Instr::decode(&[0u8; 16]), None, "zero page must not decode");
    }

    #[test]
    fn reserved_bytes_must_be_zero() {
        let mut bytes = Instr::new(Opcode::Nop).encode();
        bytes[1] = 1;
        assert_eq!(Instr::decode(&bytes), None);
        let mut bytes = Instr::new(Opcode::Nop).encode();
        bytes[5] = 1;
        assert_eq!(Instr::decode(&bytes), None);
    }

    #[test]
    fn bad_register_rejected() {
        let mut bytes = Instr::new(Opcode::MovRR).encode();
        bytes[2] = 16;
        assert_eq!(Instr::decode(&bytes), None);
    }

    #[test]
    fn branch_classification() {
        assert!(Opcode::Jz.is_branch());
        assert!(Opcode::Jmp.is_branch());
        assert!(!Opcode::Call.is_branch());
        assert!(!Opcode::Add.is_branch());
    }
}
