//! SVM-64 disassembler.
//!
//! Turns encoded text back into the assembler's input syntax; used by
//! debugging tools and by the round-trip property tests that pin down the
//! encoding.

use crate::isa::{Instr, Opcode, INSTR_SIZE};

/// Formats one instruction in canonical assembler syntax.
pub fn format_instr(ins: &Instr) -> String {
    let d = ins.dst.name();
    let s = ins.src.name();
    let imm = ins.imm;
    let mem = |base: &str| {
        if imm == 0 {
            format!("[{base}]")
        } else if imm > 0 {
            format!("[{base}+{imm}]")
        } else {
            format!("[{base}{imm}]")
        }
    };
    match ins.op {
        Opcode::MovRI => format!("mov {d}, {imm}"),
        Opcode::MovRR => format!("mov {d}, {s}"),
        Opcode::Ld1 => format!("ld1 {d}, {}", mem(s)),
        Opcode::Ld2 => format!("ld2 {d}, {}", mem(s)),
        Opcode::Ld4 => format!("ld4 {d}, {}", mem(s)),
        Opcode::Ld8 => format!("ld8 {d}, {}", mem(s)),
        Opcode::Lds1 => format!("lds1 {d}, {}", mem(s)),
        Opcode::Lds2 => format!("lds2 {d}, {}", mem(s)),
        Opcode::Lds4 => format!("lds4 {d}, {}", mem(s)),
        Opcode::St1 => format!("st1 {}, {s}", mem(d)),
        Opcode::St2 => format!("st2 {}, {s}", mem(d)),
        Opcode::St4 => format!("st4 {}, {s}", mem(d)),
        Opcode::St8 => format!("st8 {}, {s}", mem(d)),
        Opcode::Add => format!("add {d}, {s}"),
        Opcode::AddI => format!("add {d}, {imm}"),
        Opcode::Sub => format!("sub {d}, {s}"),
        Opcode::SubI => format!("sub {d}, {imm}"),
        Opcode::Mul => format!("mul {d}, {s}"),
        Opcode::MulI => format!("mul {d}, {imm}"),
        Opcode::Udiv => format!("udiv {d}, {s}"),
        Opcode::UdivI => format!("udiv {d}, {imm}"),
        Opcode::Urem => format!("urem {d}, {s}"),
        Opcode::UremI => format!("urem {d}, {imm}"),
        Opcode::And => format!("and {d}, {s}"),
        Opcode::AndI => format!("and {d}, {imm}"),
        Opcode::Or => format!("or {d}, {s}"),
        Opcode::OrI => format!("or {d}, {imm}"),
        Opcode::Xor => format!("xor {d}, {s}"),
        Opcode::XorI => format!("xor {d}, {imm}"),
        Opcode::Shl => format!("shl {d}, {s}"),
        Opcode::ShlI => format!("shl {d}, {imm}"),
        Opcode::Shr => format!("shr {d}, {s}"),
        Opcode::ShrI => format!("shr {d}, {imm}"),
        Opcode::Sar => format!("sar {d}, {s}"),
        Opcode::SarI => format!("sar {d}, {imm}"),
        Opcode::Neg => format!("neg {d}"),
        Opcode::Not => format!("not {d}"),
        Opcode::Cmp => format!("cmp {d}, {s}"),
        Opcode::CmpI => format!("cmp {d}, {imm}"),
        Opcode::Test => format!("test {d}, {s}"),
        Opcode::Jmp => format!("jmp {}", imm as u64),
        Opcode::Jz => format!("jz {}", imm as u64),
        Opcode::Jnz => format!("jnz {}", imm as u64),
        Opcode::Jl => format!("jl {}", imm as u64),
        Opcode::Jle => format!("jle {}", imm as u64),
        Opcode::Jg => format!("jg {}", imm as u64),
        Opcode::Jge => format!("jge {}", imm as u64),
        Opcode::Jb => format!("jb {}", imm as u64),
        Opcode::Jbe => format!("jbe {}", imm as u64),
        Opcode::Ja => format!("ja {}", imm as u64),
        Opcode::Jae => format!("jae {}", imm as u64),
        Opcode::Call => format!("call {}", imm as u64),
        Opcode::Ret => "ret".to_owned(),
        Opcode::Push => format!("push {s}"),
        Opcode::Pop => format!("pop {d}"),
        Opcode::Syscall => "syscall".to_owned(),
        Opcode::Nop => "nop".to_owned(),
    }
}

/// Disassembles a text segment into `(address, text)` lines.
///
/// Undecodable slots are rendered as `.bad <hex>`.
pub fn disassemble(text: &[u8], base: u64) -> Vec<(u64, String)> {
    let mut out = Vec::new();
    for (i, chunk) in text.chunks(INSTR_SIZE as usize).enumerate() {
        let addr = base + i as u64 * INSTR_SIZE;
        let line = match <&[u8; 16]>::try_from(chunk).ok().and_then(Instr::decode) {
            Some(ins) => format_instr(&ins),
            None => format!(".bad {:02x?}", chunk),
        };
        out.push((addr, line));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::assemble_source;

    #[test]
    fn format_covers_shapes() {
        use lwsnap_core::Reg;
        let cases = [
            (
                Instr::new(Opcode::MovRI).dst(Reg::Rax).imm(-3),
                "mov rax, -3",
            ),
            (
                Instr::new(Opcode::Ld8).dst(Reg::Rbx).src(Reg::Rsp).imm(8),
                "ld8 rbx, [rsp+8]",
            ),
            (
                Instr::new(Opcode::St4).dst(Reg::Rbp).src(Reg::Rcx).imm(-4),
                "st4 [rbp-4], rcx",
            ),
            (
                Instr::new(Opcode::Ld1).dst(Reg::R9).src(Reg::R10),
                "ld1 r9, [r10]",
            ),
            (Instr::new(Opcode::Ret), "ret"),
            (Instr::new(Opcode::Push).src(Reg::R15), "push r15"),
            (Instr::new(Opcode::Jz).imm(0x40_0000), "jz 4194304"),
        ];
        for (ins, expected) in cases {
            assert_eq!(format_instr(&ins), expected);
        }
    }

    #[test]
    fn disassemble_then_reassemble_roundtrip() {
        let src = r#"
        _start:
            mov  rbx, 5
            cmp  rbx, 0
            jz   _start
            ld8  rax, [rsp+16]
            st8  [rsp-8], rax
            call _start
            syscall
            ret
        "#;
        let prog = assemble_source(src).unwrap();
        let listing = disassemble(&prog.text, prog.text_base);
        assert_eq!(listing.len() as u64, prog.instr_count());
        // Re-assemble the disassembly (jump targets are absolute numbers,
        // which the parser accepts) and compare the encodings.
        let text2: String = listing
            .iter()
            .map(|(_, line)| format!("{line}\n"))
            .collect();
        let prog2 = assemble_source(&text2).unwrap();
        assert_eq!(prog.text, prog2.text, "round-trip must be byte-identical");
    }

    #[test]
    fn bad_bytes_render_as_bad() {
        let bytes = [0xffu8; 16];
        let lines = disassemble(&bytes, 0);
        assert!(lines[0].1.starts_with(".bad"));
    }
}
