//! Property tests for SVM-64: encoding, assembly, and execution against
//! host-computed oracles.

use lwsnap_core::Reg;
use lwsnap_vm::{assemble_source, disassemble, format_instr, run_to_exit, Instr, Opcode};
use proptest::prelude::*;

fn opcode_strategy() -> impl Strategy<Value = Opcode> {
    // Every opcode byte that decodes.
    (0u8..=0x61).prop_filter_map("valid opcode", Opcode::from_u8)
}

fn reg_strategy() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|n| Reg::from_u8(n).expect("in range"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode ∘ decode = identity for arbitrary well-formed instructions.
    #[test]
    fn encode_decode_roundtrip(
        op in opcode_strategy(),
        dst in reg_strategy(),
        src in reg_strategy(),
        imm in any::<i64>(),
    ) {
        let ins = Instr { op, dst, src, imm };
        prop_assert_eq!(Instr::decode(&ins.encode()), Some(ins));
    }

    /// format ∘ parse = identity: the disassembler's output reassembles
    /// to the identical encoding.
    #[test]
    fn disasm_reassembles_identically(
        op in opcode_strategy(),
        dst in reg_strategy(),
        src in reg_strategy(),
        imm in -1_000_000i64..1_000_000,
    ) {
        // Branch/call targets must be valid addresses for the parser.
        let imm = if matches!(
            op,
            Opcode::Jmp | Opcode::Jz | Opcode::Jnz | Opcode::Jl | Opcode::Jle | Opcode::Jg
            | Opcode::Jge | Opcode::Jb | Opcode::Jbe | Opcode::Ja | Opcode::Jae | Opcode::Call
        ) {
            imm.unsigned_abs() as i64
        } else {
            imm
        };
        let ins = Instr { op, dst, src, imm };
        // Fields the mnemonic does not reference (e.g. `imm` of a
        // register-register mov) are dead and need not survive, so the
        // invariant is: canonical text is a fixed point of
        // format → assemble → decode → format.
        let text = format_instr(&ins);
        let prog = assemble_source(&text).unwrap();
        let round = Instr::decode(prog.text[0..16].try_into().unwrap()).unwrap();
        prop_assert_eq!(format_instr(&round), text);
        prop_assert_eq!(round.op, ins.op);
    }

    /// Register-only arithmetic in the interpreter matches a host oracle.
    #[test]
    fn interpreter_matches_host_arithmetic(
        a in any::<i64>(),
        b in any::<i64>(),
        ops in proptest::collection::vec(0usize..8, 1..12),
    ) {
        // Build a program applying a random op chain to rbx (seeded a)
        // with operand rcx (seeded b); the oracle mirrors it on the host.
        let mnemonics = ["add", "sub", "mul", "and", "or", "xor", "shl", "shr"];
        let mut src = format!("mov rbx, {a}\nmov rcx, {b}\n");
        let mut oracle = a as u64;
        let operand = b as u64;
        for &i in &ops {
            src.push_str(&format!("{} rbx, rcx\n", mnemonics[i]));
            oracle = match i {
                0 => oracle.wrapping_add(operand),
                1 => oracle.wrapping_sub(operand),
                2 => oracle.wrapping_mul(operand),
                3 => oracle & operand,
                4 => oracle | operand,
                5 => oracle ^ operand,
                6 => oracle.wrapping_shl(operand as u32 & 63),
                _ => oracle.wrapping_shr(operand as u32 & 63),
            };
        }
        // Exit with a code derived from the result (mod 256 to fit) and
        // also print the full value for exact comparison.
        src.push_str("mov rdi, rbx\nmov rax, 1005\nsyscall\nmov rdi, 0\nmov rax, 60\nsyscall\n");
        let prog = assemble_source(&src).unwrap();
        let (code, stdout) = run_to_exit(&prog, 1_000_000).unwrap();
        prop_assert_eq!(code, 0);
        let printed: i64 = String::from_utf8_lossy(&stdout).parse().unwrap();
        prop_assert_eq!(printed, oracle as i64);
    }

    /// Memory round-trips through the guest: store bytes, load them back.
    #[test]
    fn guest_memory_roundtrip(value in any::<u64>(), offset in 0u64..3900) {
        let src = format!(
            "mov rbx, {value}
             mov r12, buf
             add r12, {offset}
             st8 [r12], rbx
             ld8 rcx, [r12]
             cmp rbx, rcx
             jnz bad
             mov rdi, 0
             mov rax, 60
             syscall
             bad:
             mov rdi, 1
             mov rax, 60
             syscall
             .data
             buf: .space 4096
             ",
            value = value as i64,
            offset = offset,
        );
        let prog = assemble_source(&src).unwrap();
        let (code, _) = run_to_exit(&prog, 1_000_000).unwrap();
        prop_assert_eq!(code, 0);
    }

    /// Full-text disassembly of any assembled program reassembles to the
    /// same bytes (listing-level round trip).
    #[test]
    fn listing_roundtrip(seed_imms in proptest::collection::vec(-1000i64..1000, 1..20)) {
        let mut src = String::new();
        for (i, imm) in seed_imms.iter().enumerate() {
            let reg = Reg::ALL[i % 16].name();
            src.push_str(&format!("mov {reg}, {imm}\nadd {reg}, {imm}\n"));
        }
        src.push_str("ret\n");
        let prog = assemble_source(&src).unwrap();
        let listing: String = disassemble(&prog.text, prog.text_base)
            .into_iter()
            .map(|(_, line)| format!("{line}\n"))
            .collect();
        let prog2 = assemble_source(&listing).unwrap();
        prop_assert_eq!(prog.text, prog2.text);
    }
}
