//! Per-thread lock-free event rings.
//!
//! Each recording thread owns one fixed-capacity ring of event slots.
//! A slot is a seqlock: one sequence word plus five payload words, all
//! `AtomicU64`, so the whole recorder is safe Rust. The owning thread
//! is the only writer; any thread may drain. Overflow drops the oldest
//! events (the writer simply laps the ring); a drain that races a lap
//! skips the torn slot instead of blocking the hot path.
//!
//! The global registry of rings is a mutex-guarded vec touched once
//! per thread (registration) and on drain — never on the record path.

use crate::{thread_id, Kind};

use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Events retained per thread. Power of two keeps the modulo cheap.
pub const RING_CAPACITY: usize = 4096;

/// Payload words per slot: ts, dur, kind|tid, a, b.
const WORDS: usize = 5;
const STRIDE: usize = 1 + WORDS; // plus the seq word

/// One recorded event, as drained.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the process trace epoch. For spans this is
    /// the *start* instant.
    pub ts_ns: u64,
    /// Span duration; 0 for instant events.
    pub dur_ns: u64,
    /// What happened.
    pub kind: Kind,
    /// Dense id of the recording thread.
    pub tid: u32,
    /// First payload word (meaning depends on `kind`).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
}

struct Ring {
    tid: u32,
    /// Total events ever pushed; slot = head % capacity.
    head: AtomicU64,
    /// High-water mark of drained indices (consume-on-drain).
    drained: AtomicU64,
    /// `RING_CAPACITY * STRIDE` words.
    slots: Box<[AtomicU64]>,
}

impl Ring {
    fn new(tid: u32) -> Ring {
        let mut slots = Vec::with_capacity(RING_CAPACITY * STRIDE);
        slots.resize_with(RING_CAPACITY * STRIDE, || AtomicU64::new(0));
        Ring {
            tid,
            head: AtomicU64::new(0),
            drained: AtomicU64::new(0),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Owner-thread-only write. Seqlock protocol: seq goes odd, payload
    /// lands, seq goes even-and-index-stamped. `2*(idx+1)` is unique
    /// per ring index, so a reader can tell which lap it observed.
    fn push(&self, ts_ns: u64, dur_ns: u64, kind: Kind, a: u64, b: u64) {
        let idx = self.head.load(Ordering::Relaxed);
        let base = (idx as usize % RING_CAPACITY) * STRIDE;
        let s = &self.slots;
        s[base].store(2 * idx + 1, Ordering::Relaxed);
        fence(Ordering::Release);
        s[base + 1].store(ts_ns, Ordering::Relaxed);
        s[base + 2].store(dur_ns, Ordering::Relaxed);
        s[base + 3].store(
            (kind.code() as u64) << 32 | self.tid as u64,
            Ordering::Relaxed,
        );
        s[base + 4].store(a, Ordering::Relaxed);
        s[base + 5].store(b, Ordering::Relaxed);
        s[base].store(2 * (idx + 1), Ordering::Release);
        self.head.store(idx + 1, Ordering::Release);
    }

    /// Drains undrained events into `out`, oldest first. Lap-torn slots
    /// are skipped; the drained watermark advances to the observed head
    /// so repeated drains don't duplicate events.
    fn drain_into(&self, out: &mut Vec<Event>) {
        let head = self.head.load(Ordering::Acquire);
        let lo = self
            .drained
            .load(Ordering::Relaxed)
            .max(head.saturating_sub(RING_CAPACITY as u64));
        for idx in lo..head {
            let base = (idx as usize % RING_CAPACITY) * STRIDE;
            let s = &self.slots;
            if s[base].load(Ordering::Acquire) != 2 * (idx + 1) {
                continue;
            }
            let ts_ns = s[base + 1].load(Ordering::Relaxed);
            let dur_ns = s[base + 2].load(Ordering::Relaxed);
            let kind_tid = s[base + 3].load(Ordering::Relaxed);
            let a = s[base + 4].load(Ordering::Relaxed);
            let b = s[base + 5].load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if s[base].load(Ordering::Relaxed) != 2 * (idx + 1) {
                continue; // lapped mid-read
            }
            let Some(kind) = Kind::from_code((kind_tid >> 32) as u16) else {
                continue;
            };
            out.push(Event {
                ts_ns,
                dur_ns,
                kind,
                tid: kind_tid as u32,
                a,
                b,
            });
        }
        self.drained.fetch_max(head, Ordering::Relaxed);
    }
}

fn registry() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RINGS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RINGS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Records one event into the calling thread's ring, registering the
/// ring on first use. Steady-state cost: a thread-local read plus six
/// relaxed/release stores.
#[inline]
pub(crate) fn record(ts_ns: u64, dur_ns: u64, kind: Kind, a: u64, b: u64) {
    thread_local! {
        static LOCAL: Arc<Ring> = {
            let ring = Arc::new(Ring::new(thread_id()));
            registry().lock().unwrap().push(ring.clone());
            ring
        };
    }
    // Threads can record during TLS teardown (destructor order is
    // unspecified); dropping those events is fine.
    let _ = LOCAL.try_with(|ring| ring.push(ts_ns, dur_ns, kind, a, b));
}

/// Drains every thread's ring and merges the events into one stream
/// ordered by `(ts_ns, tid)`. Consuming: events are returned once.
pub fn drain() -> Vec<Event> {
    let mut out = Vec::new();
    for ring in registry().lock().unwrap().iter() {
        ring.drain_into(&mut out);
    }
    out.sort_by_key(|e| (e.ts_ns, e.tid));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The process-global registry (and the consuming `drain`) is
    // shared across tests in this binary: tests that record globally
    // serialize on `test_drain_lock` and tag their events with a
    // unique `a` namespace.
    use crate::test_drain_lock as drain_lock;

    fn mine(ns: u64, events: &[Event]) -> Vec<Event> {
        events.iter().copied().filter(|e| e.a >> 32 == ns).collect()
    }

    #[test]
    fn overflow_drops_oldest_keeps_newest() {
        let ns = 0x0dd0;
        let ring = Ring::new(7);
        let total = RING_CAPACITY as u64 + 100;
        for i in 0..total {
            ring.push(i, 0, Kind::SnapHit, ns << 32 | i, i * 2);
        }
        let mut out = Vec::new();
        ring.drain_into(&mut out);
        assert_eq!(out.len(), RING_CAPACITY);
        // The oldest 100 were lapped; the survivors are exactly the
        // last RING_CAPACITY pushes, in order.
        for (j, e) in out.iter().enumerate() {
            let i = 100 + j as u64;
            assert_eq!(e.ts_ns, i);
            assert_eq!(e.a & 0xffff_ffff, i);
            assert_eq!(e.b, i * 2);
            assert_eq!(e.tid, 7);
        }
        // Drain consumed: a second drain yields nothing new.
        let mut again = Vec::new();
        ring.drain_into(&mut again);
        assert!(again.is_empty());
        ring.push(9999, 0, Kind::SnapHit, ns << 32, 0);
        ring.drain_into(&mut again);
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].ts_ns, 9999);
    }

    #[test]
    fn cross_thread_drain_merges_in_timestamp_order() {
        let _guard = drain_lock();
        crate::set_enabled(true);
        let ns: u64 = 0xc0de;
        let threads: Vec<_> = (0..4)
            .map(|t| {
                std::thread::spawn(move || {
                    for i in 0..50u64 {
                        // Manufactured interleaved timestamps so the
                        // merged order is checkable: thread t owns
                        // ts ≡ t (mod 4).
                        record(i * 4 + t, 0, Kind::SnapHit, ns << 32 | t, i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let events = mine(ns, &drain());
        assert_eq!(events.len(), 200);
        let ts: Vec<u64> = events.iter().map(|e| e.ts_ns).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted, "merged stream is globally time-ordered");
        // All four producer threads are represented and each thread's
        // own events kept their program order.
        for t in 0..4u64 {
            let own: Vec<u64> = events
                .iter()
                .filter(|e| e.a & 0xffff_ffff == t)
                .map(|e| e.b)
                .collect();
            assert_eq!(own, (0..50).collect::<Vec<_>>());
        }
    }

    #[test]
    fn spans_record_start_and_duration() {
        let _guard = drain_lock();
        crate::set_enabled(true);
        let ns: u64 = 0x59a0;
        let t0 = crate::start();
        assert_ne!(t0, 0);
        std::thread::sleep(std::time::Duration::from_millis(1));
        crate::span(Kind::SolverRun, t0, ns << 32 | 1, 42);
        let events = mine(ns, &drain());
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, Kind::SolverRun);
        assert_eq!(events[0].ts_ns, t0);
        assert!(events[0].dur_ns >= 1_000_000, "slept ≥ 1 ms");
        assert_eq!(events[0].b, 42);
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let _guard = drain_lock();
        let ns: u64 = 0xdead;
        crate::set_enabled(false);
        crate::instant(Kind::SnapHit, ns << 32, 0);
        let t = crate::start();
        assert_eq!(t, 0);
        crate::span(Kind::SolverRun, t, ns << 32, 0);
        crate::set_enabled(true);
        assert!(mine(ns, &drain()).is_empty());
    }
}
