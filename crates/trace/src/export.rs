//! Export plane: plaintext metrics scrape, chrome://tracing JSON, and
//! a minimal HTTP/1.0 exporter thread serving both.

use crate::metrics::Registry;
use crate::ring::{drain, Event};

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// Renders the global registry as the plaintext scrape format.
pub fn render_scrape() -> String {
    Registry::global().snapshot().render()
}

/// Renders events as a chrome://tracing-compatible JSON array (load it
/// at chrome://tracing or ui.perfetto.dev). Spans become complete
/// (`"X"`) events, instants become `"i"`; timestamps are microseconds
/// with nanosecond fractions, pid is the event's node-agnostic process,
/// tid the recording thread.
pub fn chrome_trace_json(events: &[Event]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push('[');
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let ts_us = e.ts_ns as f64 / 1000.0;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{ts_us:.3},",
            e.kind.name(),
            if e.dur_ns == 0 { "i" } else { "X" },
        );
        if e.dur_ns != 0 {
            let _ = write!(out, "\"dur\":{:.3},", e.dur_ns as f64 / 1000.0);
        } else {
            // Instant scope: process-wide.
            out.push_str("\"s\":\"p\",");
        }
        let _ = write!(
            out,
            "\"pid\":0,\"tid\":{},\"args\":{{\"a\":{},\"b\":{}}}}}",
            e.tid, e.a, e.b,
        );
    }
    out.push(']');
    out
}

/// Starts the metrics exporter on `addr` (e.g. `127.0.0.1:0`) and
/// returns the bound address. A detached thread serves, per
/// connection, one HTTP/1.0 request:
///
/// * `GET /metrics` (or `/`) — plaintext scrape of the global registry
/// * `GET /trace` — chrome://tracing JSON of all events drained so far
///   (draining is consuming: each event is exported once)
///
/// The thread runs for the life of the process; there is deliberately
/// no shutdown plumbing — the daemon exposes it until exit, exactly
/// like its listen socket.
pub fn serve(addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new()
        .name("lwsnap-metrics".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let _ = handle(stream);
            }
        })?;
    Ok(local)
}

fn handle(mut stream: TcpStream) -> std::io::Result<()> {
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let request = String::from_utf8_lossy(&buf[..n]);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, content_type, body) = match path {
        "/trace" => ("200 OK", "application/json", chrome_trace_json(&drain())),
        "/" | "/metrics" => ("200 OK", "text/plain; version=0.0.4", render_scrape()),
        _ => ("404 Not Found", "text/plain", "not found\n".to_owned()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Client-side scrape helper: fetches `http://addr/{path}` and returns
/// the body. Used by the loadgen smoke test and handy for scripts;
/// plain std TCP, no HTTP library.
pub fn fetch(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    // One write_all: a fragmented request can race the server's
    // single read + close and die on EPIPE.
    stream.write_all(format!("GET {path} HTTP/1.0\r\nHost: lwsnap\r\n\r\n").as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_owned()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed http response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Kind;

    #[test]
    fn chrome_json_shapes_spans_and_instants() {
        let events = [
            Event {
                ts_ns: 1500,
                dur_ns: 2500,
                kind: Kind::SolverRun,
                tid: 3,
                a: 7,
                b: 42,
            },
            Event {
                ts_ns: 4000,
                dur_ns: 0,
                kind: Kind::SnapHit,
                tid: 1,
                a: 9,
                b: 0,
            },
        ];
        let json = chrome_trace_json(&events);
        assert_eq!(
            json,
            "[{\"name\":\"solver.run\",\"ph\":\"X\",\"ts\":1.500,\"dur\":2.500,\
             \"pid\":0,\"tid\":3,\"args\":{\"a\":7,\"b\":42}},\
             {\"name\":\"snap.hit\",\"ph\":\"i\",\"ts\":4.000,\"s\":\"p\",\
             \"pid\":0,\"tid\":1,\"args\":{\"a\":9,\"b\":0}}]"
        );
    }

    #[test]
    fn exporter_serves_scrape_and_404() {
        let _guard = crate::test_drain_lock();
        let addr = serve("127.0.0.1:0").expect("bind exporter");
        let body = fetch(addr, "/metrics").expect("scrape");
        assert!(
            body.contains("lwsnap_requests_total"),
            "scrape body:\n{body}"
        );
        let trace = fetch(addr, "/trace").expect("trace");
        assert!(trace.starts_with('[') && trace.ends_with(']'));
        let missing = fetch(addr, "/nope").expect("404 body");
        assert_eq!(missing, "not found\n");
    }
}
