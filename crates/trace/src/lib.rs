//! `lwsnap-trace` — fleet observability for the lwsnap service stack.
//!
//! Three planes, all dependency-free and offline-safe:
//!
//! * **Event recorder** ([`ring`]): per-thread lock-free ring buffers of
//!   fixed capacity holding timestamped spans and instant events.
//!   Recording allocates nothing, takes no locks, and drops the oldest
//!   events on overflow. [`drain`] merges every thread's ring into one
//!   globally time-ordered stream. The whole recorder compiles out when
//!   the `trace` feature is disabled, and can be switched off at runtime
//!   with [`set_enabled`] (so one binary can measure its own overhead).
//! * **Metrics registry** ([`metrics`]): sharded counters, gauges, and
//!   log-linear latency histograms. Histograms are mergeable
//!   ([`metrics::HistogramSnapshot::absorb`]) the same way the service's
//!   `StatsSummary` is, so per-node snapshots aggregate into fleet
//!   totals without losing quantile fidelity.
//! * **Export plane** ([`export`]): a plaintext scrape rendering of the
//!   registry, a chrome://tracing-compatible JSON rendering of drained
//!   events, and a minimal HTTP exporter thread serving both.
//!
//! Timestamps are nanoseconds since a process-wide monotonic epoch
//! (first use), so events from every thread of a process — including
//! all nodes of an in-process `Cluster::start_local` fleet — order on
//! one axis.

pub mod export;
pub mod metrics;
pub mod ring;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use ring::{drain, Event};

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Serializes tests that record into or drain the process-global ring
/// registry (drain is consuming, so concurrent tests would steal each
/// other's events).
#[cfg(test)]
pub(crate) fn test_drain_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Nanoseconds since the process-wide monotonic epoch (first call).
#[inline]
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Small dense id for the calling thread (allocation order). Used to
/// tag events and pick counter shards; stable for the thread's life.
#[inline]
pub fn thread_id() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    thread_local! {
        static TID: u32 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TID.with(|t| *t)
}

#[cfg(feature = "trace")]
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Is the event recorder live? Always `false` when the `trace` feature
/// is compiled out. Metrics are unaffected by this switch.
#[inline]
pub fn enabled() -> bool {
    #[cfg(feature = "trace")]
    {
        ENABLED.load(Ordering::Relaxed)
    }
    #[cfg(not(feature = "trace"))]
    {
        false
    }
}

/// Runtime on/off switch for the event recorder (default: on). A no-op
/// without the `trace` feature.
#[inline]
pub fn set_enabled(on: bool) {
    #[cfg(feature = "trace")]
    ENABLED.store(on, Ordering::Relaxed);
    #[cfg(not(feature = "trace"))]
    let _ = on;
}

/// Event taxonomy. Payload word meanings (`a`, `b`) per kind are part
/// of the contract and documented in the README's Observability table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
pub enum Kind {
    /// Span: a `Solve` request from dispatch to reply. a = parent id,
    /// b = child problem id (0 if the request errored).
    ReqSolve = 1,
    /// Span: a submitted job waiting in the pool queue. a = worker
    /// index that picked it up.
    QueueWait = 2,
    /// Span: one solver run. a = problem id, b = conflicts.
    SolverRun = 3,
    /// Span: snapshot encode + store put. a = problem id, b = pages
    /// dirtied (CoW copies + zero fills billed by this put).
    SnapPut = 4,
    /// Instant: materialize served from a resident snapshot. a =
    /// problem id.
    SnapHit = 5,
    /// Instant: snapshot evicted by capacity/budget. a = problem id,
    /// b = bytes freed.
    SnapEvict = 6,
    /// Span: evicted snapshot re-derived by constraint replay. a =
    /// problem id, b = edges replayed.
    SnapRederive = 7,
    /// Instant: a derivation edge forwarded to the ring successor.
    /// a = session, b = edge seq.
    ReplForward = 8,
    /// Span: a session promoted from its replica log. a = session,
    /// b = problems promoted.
    ReplPromote = 9,
    /// Instant: heartbeat pong received. a = peer that answered,
    /// b = membership epoch the probe carried.
    HbPong = 10,
    /// Instant: heartbeat probe missed. a = peer, b = consecutive
    /// misses (suspicion level).
    HbMiss = 11,
    /// Instant: suspicion crossed the threshold; peer declared dead.
    /// a = peer, b = sessions owed replica promotion.
    NodeDead = 12,
    /// Instant: client-side failover began for a dead node. a = dead
    /// node id, b = ring epoch.
    Failover = 13,
    /// Instant: a request was re-issued after failover. a = dead node
    /// id, b = the new home node.
    Rerouted = 14,
    /// Instant: chaos fault injected. a = content-stable chaos key,
    /// b = plane salt (1 client-fanned, 2 server-fanned).
    ChaosInject = 15,
}

impl Kind {
    /// Wire code (stable across versions of this crate).
    #[inline]
    pub fn code(self) -> u16 {
        self as u16
    }

    /// Inverse of [`Kind::code`].
    pub fn from_code(code: u16) -> Option<Kind> {
        Some(match code {
            1 => Kind::ReqSolve,
            2 => Kind::QueueWait,
            3 => Kind::SolverRun,
            4 => Kind::SnapPut,
            5 => Kind::SnapHit,
            6 => Kind::SnapEvict,
            7 => Kind::SnapRederive,
            8 => Kind::ReplForward,
            9 => Kind::ReplPromote,
            10 => Kind::HbPong,
            11 => Kind::HbMiss,
            12 => Kind::NodeDead,
            13 => Kind::Failover,
            14 => Kind::Rerouted,
            15 => Kind::ChaosInject,
            _ => return None,
        })
    }

    /// Human/scrape name, also used for chrome trace span names.
    pub fn name(self) -> &'static str {
        match self {
            Kind::ReqSolve => "req.solve",
            Kind::QueueWait => "pool.queue_wait",
            Kind::SolverRun => "solver.run",
            Kind::SnapPut => "snap.put",
            Kind::SnapHit => "snap.hit",
            Kind::SnapEvict => "snap.evict",
            Kind::SnapRederive => "snap.rederive",
            Kind::ReplForward => "repl.forward",
            Kind::ReplPromote => "repl.promote",
            Kind::HbPong => "hb.pong",
            Kind::HbMiss => "hb.miss",
            Kind::NodeDead => "hb.node_dead",
            Kind::Failover => "client.failover",
            Kind::Rerouted => "client.rerouted",
            Kind::ChaosInject => "chaos.inject",
        }
    }
}

/// Records an instant event. Zero-allocation; no-op when disabled.
#[inline]
pub fn instant(kind: Kind, a: u64, b: u64) {
    if enabled() {
        ring::record(now_ns(), 0, kind, a, b);
    }
}

/// Starts a span clock. Returns 0 when tracing is disabled, which makes
/// the matching [`span`] a no-op — callers never branch themselves.
#[inline]
pub fn start() -> u64 {
    if enabled() {
        now_ns()
    } else {
        0
    }
}

/// Closes a span opened by [`start`]. The event's timestamp is the
/// start instant; duration is `now - start` (clamped to ≥ 1 ns so
/// spans and instants stay distinguishable).
#[inline]
pub fn span(kind: Kind, start_ns: u64, a: u64, b: u64) {
    if start_ns != 0 && enabled() {
        let dur = now_ns().saturating_sub(start_ns).max(1);
        ring::record(start_ns, dur, kind, a, b);
    }
}
