//! Mergeable metrics: sharded counters, gauges, and log-linear
//! latency histograms.
//!
//! Histograms use a log-linear bucket layout (4 linear sub-buckets per
//! power of two), so relative quantile error is bounded by 25% at any
//! magnitude while the whole histogram is 256 fixed buckets — cheap to
//! record into (three relaxed atomic adds), cheap to snapshot, and
//! mergeable bucket-wise the way `StatsSummary::absorb` merges
//! counters. Fleet aggregation is `MetricsSnapshot::absorb`.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

const COUNTER_SHARDS: usize = 16;

/// A cache-line-padded atomic so counter shards don't false-share.
#[repr(align(64))]
struct Pad(AtomicU64);

/// Monotonic counter, sharded per thread to keep hot-path increments
/// off a single contended line.
pub struct Counter {
    shards: [Pad; COUNTER_SHARDS],
}

impl Counter {
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Counter {
        Counter {
            shards: [const { Pad(AtomicU64::new(0)) }; COUNTER_SHARDS],
        }
    }

    #[inline]
    pub fn add(&self, n: u64) {
        let shard = crate::thread_id() as usize % COUNTER_SHARDS;
        self.shards[shard].0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Last-writer-wins signed gauge.
pub struct Gauge(AtomicI64);

impl Gauge {
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn value(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Log-linear bucket geometry: values 0..SUB are exact, above that each
/// power of two splits into SUB linear sub-buckets.
const SUB_BITS: u32 = 2;
const SUB: u64 = 1 << SUB_BITS;
/// 252 buckets cover the full u64 range at this geometry, with every
/// index reachable (so bucket bounds are strictly increasing).
pub const BUCKETS: usize = 252;

/// Index of the bucket holding `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let shift = msb - SUB_BITS;
    let octave = shift as usize;
    let sub = ((v >> shift) - SUB) as usize;
    ((octave + 1) << SUB_BITS) + sub
}

/// Inclusive upper bound of bucket `b` (the value quantiles report).
pub fn bucket_bound(b: usize) -> u64 {
    if b < SUB as usize {
        return b as u64;
    }
    let octave = (b >> SUB_BITS) - 1;
    let sub = (b & (SUB as usize - 1)) as u64;
    // The last bucket's bound is 2^64, which wraps to 0; subtracting 1
    // lands exactly on u64::MAX.
    (SUB + sub + 1).wrapping_shl(octave as u32).wrapping_sub(1)
}

/// Fixed-bucket log-linear histogram. Recording is three relaxed
/// atomic adds; no locks, no allocation.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Histogram {
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Point-in-time copy, suitable for merging and the wire.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n != 0 {
                buckets.push((i as u8, n));
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }

    /// Convenience quantile straight off the live histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }
}

/// A frozen histogram: sparse `(bucket index, count)` pairs plus the
/// exact count and sum. Mergeable and wire-friendly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Sorted by bucket index; zero-count buckets omitted.
    pub buckets: Vec<(u8, u64)>,
}

impl HistogramSnapshot {
    /// Merges `other` in, bucket-wise — the histogram analogue of
    /// `StatsSummary::absorb`. Absorbing two snapshots is equivalent
    /// to having recorded the two value streams interleaved.
    pub fn absorb(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        // The live histogram's atomic sum wraps on overflow; match it.
        self.sum = self.sum.wrapping_add(other.sum);
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut i, mut j) = (0, 0);
        while i < self.buckets.len() || j < other.buckets.len() {
            match (self.buckets.get(i), other.buckets.get(j)) {
                (Some(&(bi, ni)), Some(&(bj, nj))) if bi == bj => {
                    merged.push((bi, ni + nj));
                    i += 1;
                    j += 1;
                }
                (Some(&(bi, ni)), Some(&(bj, _))) if bi < bj => {
                    merged.push((bi, ni));
                    i += 1;
                }
                (Some(_), Some(&(bj, nj))) => {
                    merged.push((bj, nj));
                    j += 1;
                }
                (Some(&(bi, ni)), None) => {
                    merged.push((bi, ni));
                    i += 1;
                }
                (None, Some(&(bj, nj))) => {
                    merged.push((bj, nj));
                    j += 1;
                }
                (None, None) => unreachable!(),
            }
        }
        self.buckets = merged;
    }

    /// Value at quantile `q` in `[0, 1]`: the upper bound of the first
    /// bucket whose cumulative count reaches `ceil(q · count)`. 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(b, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return bucket_bound(b as usize);
            }
        }
        bucket_bound(self.buckets.last().map_or(0, |&(b, _)| b as usize))
    }

    /// Exact arithmetic mean (sum is tracked exactly).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// The fixed metric set every lwsnap node exposes. One process-global
/// instance lives behind [`Registry::global`]; tests construct their
/// own.
pub struct Registry {
    /// Solve requests dispatched (any outcome).
    pub requests: Counter,
    /// Whole-request latency: dispatch → reply enqueued, ns.
    pub request_ns: Histogram,
    /// Time a job waited in the worker pool queue, ns.
    pub queue_wait_ns: Histogram,
    /// Single solver run latency, ns.
    pub solve_ns: Histogram,
    /// Snapshot encode + store put latency, ns.
    pub snap_put_ns: Histogram,
    /// Re-derivation (replay) latency, ns.
    pub rederive_ns: Histogram,
    /// Materializations served by a resident snapshot.
    pub snapshot_hits: Counter,
    /// Snapshots evicted by capacity/budget pressure.
    pub evictions: Counter,
    /// CoW pages dirtied (page copies + zero fills) by snapshot puts.
    pub pages_dirtied: Counter,
    /// Bytes written into snapshot page frames.
    pub bytes_written: Counter,
    /// Derivation edges forwarded to replicas (both planes).
    pub forwards: Counter,
    /// Sessions promoted from replica logs.
    pub promotions: Counter,
    /// Heartbeat probes that went unanswered.
    pub heartbeat_misses: Counter,
    /// Failovers initiated (client or server side).
    pub failovers: Counter,
    /// Chaos faults injected (drop + duplicate + delay).
    pub chaos_injections: Counter,
    /// Received payload bytes the front end had to copy out of a pooled
    /// read block (frames spanning a block boundary). The zero-copy
    /// path parses in place, so this stays near zero per request —
    /// the observable proof the `inbuf` staging copy is gone.
    pub rx_copy_bytes: Counter,
    /// Pooled read blocks returned to their reactor's freelist.
    pub pool_recycles: Counter,
    /// Resident snapshot bytes (latest observation).
    pub resident_bytes: Gauge,
    /// Live problems (latest observation).
    pub live_problems: Gauge,
}

impl Registry {
    #[allow(clippy::new_without_default)]
    pub const fn new() -> Registry {
        Registry {
            requests: Counter::new(),
            request_ns: Histogram::new(),
            queue_wait_ns: Histogram::new(),
            solve_ns: Histogram::new(),
            snap_put_ns: Histogram::new(),
            rederive_ns: Histogram::new(),
            snapshot_hits: Counter::new(),
            evictions: Counter::new(),
            pages_dirtied: Counter::new(),
            bytes_written: Counter::new(),
            forwards: Counter::new(),
            promotions: Counter::new(),
            heartbeat_misses: Counter::new(),
            failovers: Counter::new(),
            chaos_injections: Counter::new(),
            rx_copy_bytes: Counter::new(),
            pool_recycles: Counter::new(),
            resident_bytes: Gauge::new(),
            live_problems: Gauge::new(),
        }
    }

    /// The process-global registry all lwsnap instrumentation records
    /// into.
    pub fn global() -> &'static Registry {
        static GLOBAL: Registry = Registry::new();
        &GLOBAL
    }

    /// Point-in-time copy of every metric, named for the wire/scrape.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: vec![
                ("requests_total".into(), self.requests.value()),
                ("snapshot_hits_total".into(), self.snapshot_hits.value()),
                ("evictions_total".into(), self.evictions.value()),
                ("pages_dirtied_total".into(), self.pages_dirtied.value()),
                ("bytes_written_total".into(), self.bytes_written.value()),
                ("forwards_total".into(), self.forwards.value()),
                ("promotions_total".into(), self.promotions.value()),
                (
                    "heartbeat_misses_total".into(),
                    self.heartbeat_misses.value(),
                ),
                ("failovers_total".into(), self.failovers.value()),
                (
                    "chaos_injections_total".into(),
                    self.chaos_injections.value(),
                ),
                ("net_rx_copy_bytes_total".into(), self.rx_copy_bytes.value()),
                ("net_pool_recycle_total".into(), self.pool_recycles.value()),
            ],
            gauges: vec![
                ("resident_bytes".into(), self.resident_bytes.value()),
                ("live_problems".into(), self.live_problems.value()),
            ],
            histograms: vec![
                ("request_ns".into(), self.request_ns.snapshot()),
                ("queue_wait_ns".into(), self.queue_wait_ns.snapshot()),
                ("solve_ns".into(), self.solve_ns.snapshot()),
                ("snap_put_ns".into(), self.snap_put_ns.snapshot()),
                ("rederive_ns".into(), self.rederive_ns.snapshot()),
            ],
        }
    }
}

/// A named bundle of frozen metrics — one node's worth, or, after
/// [`MetricsSnapshot::absorb`], a fleet's.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Merges `other` in by metric name: counters and gauges sum,
    /// histograms absorb bucket-wise. Names only one side knows are
    /// kept.
    pub fn absorb(&mut self, other: &MetricsSnapshot) {
        for (name, v) in &other.counters {
            match self.counters.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.counters.push((name.clone(), *v)),
            }
        }
        for (name, v) in &other.gauges {
            match self.gauges.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => *mine += v,
                None => self.gauges.push((name.clone(), *v)),
            }
        }
        for (name, h) in &other.histograms {
            match self.histograms.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => mine.absorb(h),
                None => self.histograms.push((name.clone(), h.clone())),
            }
        }
    }

    /// Looks up a histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Renders the plaintext scrape: `lwsnap_`-prefixed counter and
    /// gauge lines, then per-histogram count/sum/bucket/quantile
    /// lines. Deterministic — goldens can assert on it byte-for-byte.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(out, "lwsnap_{name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "lwsnap_{name} {v}");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(out, "lwsnap_{name}_count {}", h.count);
            let _ = writeln!(out, "lwsnap_{name}_sum {}", h.sum);
            let mut cumulative = 0;
            for &(b, n) in &h.buckets {
                cumulative += n;
                let _ = writeln!(
                    out,
                    "lwsnap_{name}_bucket{{le=\"{}\"}} {cumulative}",
                    bucket_bound(b as usize)
                );
            }
            let _ = writeln!(out, "lwsnap_{name}_bucket{{le=\"+Inf\"}} {cumulative}");
            for q in [0.5, 0.9, 0.99] {
                let _ = writeln!(out, "lwsnap_{name}{{quantile=\"{q}\"}} {}", h.quantile(q));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bucket_geometry_is_monotone_and_tight() {
        let mut prev_bound = None;
        for v in (0..4096u64).chain([u64::MAX / 3, u64::MAX - 1, u64::MAX]) {
            let b = bucket_of(v);
            assert!(b < BUCKETS, "bucket {b} out of range for {v}");
            let bound = bucket_bound(b);
            assert!(bound >= v, "bound {bound} below value {v}");
            // Relative error of reporting the bound instead of the
            // value is ≤ 25% at this geometry.
            assert!(bound - v <= v / 4 + 1, "bucket too wide at {v}");
            let _ = prev_bound.insert(bound);
        }
        // Bounds are strictly increasing across bucket indices.
        let mut last = None;
        for b in 0..BUCKETS {
            let bound = bucket_bound(b);
            if let Some(l) = last {
                assert!(bound > l, "bucket {b} bound not increasing");
            }
            last = Some(bound);
        }
    }

    #[test]
    fn counter_sums_across_shards_and_threads() {
        static C: Counter = Counter::new();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..1000 {
                        C.inc();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(C.value(), 8000);
    }

    #[test]
    fn quantiles_track_recorded_distribution() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Bucket bounds over-approximate by ≤ 25%.
        assert!((500..=640).contains(&p50), "p50 = {p50}");
        assert!((990..=1280).contains(&p99), "p99 = {p99}");
        assert!(h.quantile(0.0) >= 1);
        assert!(h.quantile(1.0) >= 1000);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// absorb(a, b) must equal recording the two streams
        /// interleaved into one histogram — exactly, bucket for
        /// bucket, so quantiles of fleet merges are trustworthy.
        #[test]
        fn absorb_equals_interleaved_recording(
            xs in proptest::collection::vec(any::<u64>(), 0..200),
            ys in proptest::collection::vec(any::<u64>(), 0..200),
        ) {
            let ha = Histogram::new();
            let hb = Histogram::new();
            let hboth = Histogram::new();
            // Interleave to prove order can't matter.
            let mut xi = xs.iter();
            let mut yi = ys.iter();
            loop {
                match (xi.next(), yi.next()) {
                    (None, None) => break,
                    (x, y) => {
                        if let Some(&x) = x { ha.record(x); hboth.record(x); }
                        if let Some(&y) = y { hb.record(y); hboth.record(y); }
                    }
                }
            }
            let mut merged = ha.snapshot();
            merged.absorb(&hb.snapshot());
            prop_assert_eq!(&merged, &hboth.snapshot());
            for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
                prop_assert_eq!(merged.quantile(q), hboth.snapshot().quantile(q));
            }
        }

        #[test]
        fn quantile_bound_always_covers_value(v in any::<u64>()) {
            let h = Histogram::new();
            h.record(v);
            prop_assert!(h.quantile(1.0) >= v);
            prop_assert!(h.quantile(1.0) <= v.saturating_add(v / 4 + 1));
        }
    }

    #[test]
    fn snapshot_absorb_merges_by_name() {
        let a = Registry::new();
        let b = Registry::new();
        a.requests.add(3);
        b.requests.add(4);
        a.resident_bytes.set(100);
        b.resident_bytes.set(200);
        a.solve_ns.record(10);
        b.solve_ns.record(20);
        let mut fleet = a.snapshot();
        fleet.absorb(&b.snapshot());
        assert_eq!(fleet.counter("requests_total"), Some(7));
        assert_eq!(
            fleet.gauges.iter().find(|(n, _)| n == "resident_bytes"),
            Some(&("resident_bytes".to_string(), 300))
        );
        assert_eq!(fleet.histogram("solve_ns").unwrap().count, 2);
    }

    #[test]
    fn scrape_render_golden() {
        let reg = Registry::new();
        reg.requests.add(2);
        reg.snapshot_hits.inc();
        reg.resident_bytes.set(4096);
        reg.solve_ns.record(0);
        reg.solve_ns.record(5);
        reg.solve_ns.record(5);
        reg.solve_ns.record(1000);
        let golden = "\
lwsnap_requests_total 2
lwsnap_snapshot_hits_total 1
lwsnap_evictions_total 0
lwsnap_pages_dirtied_total 0
lwsnap_bytes_written_total 0
lwsnap_forwards_total 0
lwsnap_promotions_total 0
lwsnap_heartbeat_misses_total 0
lwsnap_failovers_total 0
lwsnap_chaos_injections_total 0
lwsnap_net_rx_copy_bytes_total 0
lwsnap_net_pool_recycle_total 0
lwsnap_resident_bytes 4096
lwsnap_live_problems 0
lwsnap_request_ns_count 0
lwsnap_request_ns_sum 0
lwsnap_request_ns_bucket{le=\"+Inf\"} 0
lwsnap_request_ns{quantile=\"0.5\"} 0
lwsnap_request_ns{quantile=\"0.9\"} 0
lwsnap_request_ns{quantile=\"0.99\"} 0
lwsnap_queue_wait_ns_count 0
lwsnap_queue_wait_ns_sum 0
lwsnap_queue_wait_ns_bucket{le=\"+Inf\"} 0
lwsnap_queue_wait_ns{quantile=\"0.5\"} 0
lwsnap_queue_wait_ns{quantile=\"0.9\"} 0
lwsnap_queue_wait_ns{quantile=\"0.99\"} 0
lwsnap_solve_ns_count 4
lwsnap_solve_ns_sum 1010
lwsnap_solve_ns_bucket{le=\"0\"} 1
lwsnap_solve_ns_bucket{le=\"5\"} 3
lwsnap_solve_ns_bucket{le=\"1023\"} 4
lwsnap_solve_ns_bucket{le=\"+Inf\"} 4
lwsnap_solve_ns{quantile=\"0.5\"} 5
lwsnap_solve_ns{quantile=\"0.9\"} 1023
lwsnap_solve_ns{quantile=\"0.99\"} 1023
lwsnap_snap_put_ns_count 0
lwsnap_snap_put_ns_sum 0
lwsnap_snap_put_ns_bucket{le=\"+Inf\"} 0
lwsnap_snap_put_ns{quantile=\"0.5\"} 0
lwsnap_snap_put_ns{quantile=\"0.9\"} 0
lwsnap_snap_put_ns{quantile=\"0.99\"} 0
lwsnap_rederive_ns_count 0
lwsnap_rederive_ns_sum 0
lwsnap_rederive_ns_bucket{le=\"+Inf\"} 0
lwsnap_rederive_ns{quantile=\"0.5\"} 0
lwsnap_rederive_ns{quantile=\"0.9\"} 0
lwsnap_rederive_ns{quantile=\"0.99\"} 0
";
        assert_eq!(reg.snapshot().render(), golden);
    }
}
