//! The CDCL SAT solver core.
//!
//! A MiniSat-family solver: two-watched-literal propagation, first-UIP
//! conflict analysis with one-step clause minimisation, VSIDS decision
//! order with phase saving, Luby restarts, activity-based learnt-clause
//! reduction, and assumption-based incremental solving.
//!
//! Incrementality is the paper's §2 motivation: "an incremental solver
//! given formula p immediately followed by formula p∧q can solve both in
//! less time than solving p and then solving p∧q from scratch". Here that
//! reuse comes from (a) the retained learnt clauses and variable
//! activities across [`Solver::solve`] calls, and (b) cloning the whole
//! solver as a state snapshot (see `service.rs`).

use crate::heap::VarHeap;
use crate::lit::{Lbool, Lit, Var};

/// Sentinel for "no clause".
const CREF_NONE: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
pub(crate) struct Watcher {
    pub(crate) cref: u32,
    pub(crate) blocker: Lit,
}

/// Solver run counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SolverStats {
    /// Decisions made.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Conflicts analysed.
    pub conflicts: u64,
    /// Restarts performed.
    pub restarts: u64,
    /// Learnt clauses currently in the database.
    pub learnt_clauses: u64,
    /// Learnt clauses removed by database reduction.
    pub removed_clauses: u64,
}

/// Result of a solve call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable; a model is available.
    Sat,
    /// Unsatisfiable (under the given assumptions, if any).
    Unsat,
}

/// A CDCL SAT solver.
///
/// `Clone` is intentional and cheap relative to solving: a clone is a
/// *solver-state snapshot* carrying the clause database, learnt clauses
/// and heuristic state — the building block of the multi-path incremental
/// service.
#[derive(Clone)]
pub struct Solver {
    // Clause storage: [header][lit...]* where header = len << 1 | learnt.
    // Fields are pub(crate) for the snapshot codec (`crate::snapshot`):
    // essential state is serialized verbatim, while derived state
    // (watches, decision heap, `seen`) is rebuilt by [`Solver::normalize`]
    // — the same pass that runs after every solve — so a restored
    // snapshot cannot diverge from the original.
    pub(crate) arena: Vec<u32>,
    pub(crate) clauses: Vec<u32>,
    pub(crate) learnts: Vec<u32>,
    pub(crate) learnt_act: Vec<f64>,
    pub(crate) watches: Vec<Vec<Watcher>>,
    pub(crate) assigns: Vec<Lbool>,
    pub(crate) level: Vec<u32>,
    pub(crate) reason: Vec<u32>,
    pub(crate) trail: Vec<Lit>,
    pub(crate) trail_lim: Vec<usize>,
    pub(crate) qhead: usize,
    pub(crate) activity: Vec<f64>,
    pub(crate) var_inc: f64,
    pub(crate) cla_inc: f64,
    pub(crate) order: VarHeap,
    pub(crate) polarity: Vec<bool>,
    pub(crate) seen: Vec<bool>,
    pub(crate) ok: bool,
    pub(crate) model: Vec<Lbool>,
    pub(crate) max_learnts: f64,
    pub(crate) stats: SolverStats,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        Solver {
            arena: Vec::new(),
            clauses: Vec::new(),
            learnts: Vec::new(),
            learnt_act: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: VarHeap::new(),
            polarity: Vec::new(),
            seen: Vec::new(),
            ok: true,
            model: Vec::new(),
            max_learnts: 0.0,
            stats: SolverStats::default(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assigns.len() as u32);
        self.assigns.push(Lbool::Undef);
        self.level.push(0);
        self.reason.push(CREF_NONE);
        self.activity.push(0.0);
        self.polarity.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.order.insert(v, &self.activity);
        v
    }

    /// Ensures variables `0..n` exist.
    pub fn ensure_vars(&mut self, n: usize) {
        while self.assigns.len() < n {
            self.new_var();
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of problem clauses added (excluding learnt).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Approximate heap footprint of this solver snapshot, in bytes:
    /// the clause arena (problem + learnt clauses) plus the per-variable
    /// assignment/heuristic state and per-literal watch lists. Used by
    /// the service's byte-cost eviction budget; it deliberately counts
    /// capacity-independent payload (`len`, not `capacity`) so the
    /// estimate is stable across allocator behaviour.
    pub fn footprint_bytes(&self) -> usize {
        let arena = self.arena.len() * std::mem::size_of::<u32>();
        let clause_index = (self.clauses.len() + self.learnts.len()) * std::mem::size_of::<u32>()
            + self.learnt_act.len() * std::mem::size_of::<f64>();
        // Per variable: assigns + level + reason + activity + polarity +
        // seen + model + two watch-list headers + heap slot.
        let per_var = std::mem::size_of::<Lbool>()
            + std::mem::size_of::<u32>() * 2
            + std::mem::size_of::<f64>()
            + 2
            + std::mem::size_of::<Lbool>()
            + 2 * std::mem::size_of::<Vec<Watcher>>()
            + std::mem::size_of::<u32>();
        let vars = self.assigns.len() * per_var;
        let watchers: usize = self
            .watches
            .iter()
            .map(|w| w.len() * std::mem::size_of::<Watcher>())
            .sum();
        let trail = self.trail.len() * std::mem::size_of::<Lit>();
        std::mem::size_of::<Solver>() + arena + clause_index + vars + watchers + trail
    }

    /// Run counters.
    pub fn stats(&self) -> SolverStats {
        let mut s = self.stats;
        s.learnt_clauses = self.learnts.len() as u64;
        s
    }

    /// `false` if the formula is already known unsatisfiable at level 0.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    // -- clause arena ---------------------------------------------------

    fn alloc(&mut self, lits: &[Lit], learnt: bool) -> u32 {
        let cref = self.arena.len() as u32;
        self.arena.push((lits.len() as u32) << 1 | learnt as u32);
        self.arena.extend(lits.iter().map(|l| l.0));
        cref
    }

    #[inline]
    fn clause_len(&self, cref: u32) -> usize {
        (self.arena[cref as usize] >> 1) as usize
    }

    #[inline]
    fn is_learnt(&self, cref: u32) -> bool {
        self.arena[cref as usize] & 1 != 0
    }

    #[inline]
    fn lit_at(&self, cref: u32, i: usize) -> Lit {
        Lit(self.arena[cref as usize + 1 + i])
    }

    #[inline]
    fn set_lit(&mut self, cref: u32, i: usize, lit: Lit) {
        self.arena[cref as usize + 1 + i] = lit.0;
    }

    /// The literals of a clause (diagnostics).
    pub fn clause_lits(&self, cref: u32) -> Vec<Lit> {
        (0..self.clause_len(cref))
            .map(|i| self.lit_at(cref, i))
            .collect()
    }

    // -- assignment -----------------------------------------------------

    /// Truth value of a literal under the current assignment.
    #[inline]
    pub fn value(&self, lit: Lit) -> Lbool {
        self.assigns[lit.var().index()].of_lit(lit)
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn unchecked_enqueue(&mut self, lit: Lit, from: u32) {
        debug_assert_eq!(self.value(lit), Lbool::Undef);
        let v = lit.var().index();
        self.assigns[v] = Lbool::from_bool(!lit.sign());
        self.level[v] = self.decision_level();
        self.reason[v] = from;
        self.trail.push(lit);
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target as usize];
        for i in (lim..self.trail.len()).rev() {
            let lit = self.trail[i];
            let v = lit.var().index();
            self.polarity[v] = lit.sign();
            self.assigns[v] = Lbool::Undef;
            self.reason[v] = CREF_NONE;
            self.order.insert(lit.var(), &self.activity);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    // -- clause addition ------------------------------------------------

    /// Adds a problem clause; returns `false` if the formula became
    /// trivially unsatisfiable.
    ///
    /// Must be called at decision level 0 (i.e. not mid-solve).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        assert_eq!(self.decision_level(), 0, "add_clause mid-solve");
        if !self.ok {
            return false;
        }
        for l in lits {
            self.ensure_vars(l.var().index() + 1);
        }
        // Normalise: sort, dedupe, drop false@0, detect tautology/sat@0.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut out: Vec<Lit> = Vec::with_capacity(ls.len());
        let mut prev: Option<Lit> = None;
        for &l in &ls {
            if prev == Some(!l) {
                return true; // tautology: x ∨ ¬x
            }
            match self.value(l) {
                Lbool::True => return true, // already satisfied at level 0
                Lbool::False => {}          // drop falsified literal
                Lbool::Undef => out.push(l),
            }
            prev = Some(l);
        }
        match out.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.unchecked_enqueue(out[0], CREF_NONE);
                self.ok = self.propagate() == CREF_NONE;
                self.ok
            }
            _ => {
                let cref = self.alloc(&out, false);
                self.clauses.push(cref);
                self.attach(cref);
                true
            }
        }
    }

    fn attach(&mut self, cref: u32) {
        let l0 = self.lit_at(cref, 0);
        let l1 = self.lit_at(cref, 1);
        self.watches[l0.index()].push(Watcher { cref, blocker: l1 });
        self.watches[l1.index()].push(Watcher { cref, blocker: l0 });
    }

    fn detach(&mut self, cref: u32) {
        // Swap-remove at the found index: `retain` would keep scanning
        // (and shifting) the whole watch list after the hit, an O(n)
        // compaction per removal that dominates bulk clause deletion.
        // Watcher order within a list carries no meaning, so the swap
        // is semantics-preserving.
        for lit in [self.lit_at(cref, 0), self.lit_at(cref, 1)] {
            let ws = &mut self.watches[lit.index()];
            if let Some(at) = ws.iter().position(|w| w.cref == cref) {
                ws.swap_remove(at);
            }
        }
    }

    // -- propagation ----------------------------------------------------

    /// Unit propagation; returns the conflicting clause or `CREF_NONE`.
    fn propagate(&mut self) -> u32 {
        let mut conflict = CREF_NONE;
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            // Visit clauses watching ¬p (now false).
            let mut ws = std::mem::take(&mut self.watches[false_lit.index()]);
            let mut i = 0;
            'watchers: while i < ws.len() {
                let w = ws[i];
                if self.value(w.blocker) == Lbool::True {
                    i += 1;
                    continue;
                }
                let cref = w.cref;
                // Normalise: the false literal goes to slot 1.
                if self.lit_at(cref, 0) == false_lit {
                    let other = self.lit_at(cref, 1);
                    self.set_lit(cref, 0, other);
                    self.set_lit(cref, 1, false_lit);
                }
                let first = self.lit_at(cref, 0);
                if self.value(first) == Lbool::True {
                    ws[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..self.clause_len(cref) {
                    let lk = self.lit_at(cref, k);
                    if self.value(lk) != Lbool::False {
                        self.set_lit(cref, 1, lk);
                        self.set_lit(cref, k, false_lit);
                        self.watches[lk.index()].push(Watcher {
                            cref,
                            blocker: first,
                        });
                        ws.swap_remove(i);
                        continue 'watchers;
                    }
                }
                // No replacement: clause is unit or conflicting.
                ws[i].blocker = first;
                if self.value(first) == Lbool::False {
                    conflict = cref;
                    self.qhead = self.trail.len();
                    break;
                }
                self.unchecked_enqueue(first, cref);
                i += 1;
            }
            self.watches[false_lit.index()] = ws;
            if conflict != CREF_NONE {
                break;
            }
        }
        conflict
    }

    // -- activities -----------------------------------------------------

    fn var_bump(&mut self, v: Var) {
        self.activity[v.index()] += self.var_inc;
        if self.activity[v.index()] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        self.order.bumped(v, &self.activity);
    }

    fn var_decay(&mut self) {
        self.var_inc /= 0.95;
    }

    fn cla_bump(&mut self, learnt_idx: usize) {
        self.learnt_act[learnt_idx] += self.cla_inc;
        if self.learnt_act[learnt_idx] > 1e20 {
            for a in &mut self.learnt_act {
                *a *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    fn cla_decay(&mut self) {
        self.cla_inc /= 0.999;
    }

    // -- conflict analysis ----------------------------------------------

    /// First-UIP learning; returns (learnt clause, backtrack level).
    fn analyze(&mut self, mut confl: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot 0: asserting literal
        let mut path = 0u32;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut to_clear: Vec<Var> = Vec::new();

        loop {
            debug_assert_ne!(confl, CREF_NONE);
            if self.is_learnt(confl) {
                if let Some(idx) = self.learnts.iter().position(|&c| c == confl) {
                    self.cla_bump(idx);
                }
            }
            let start = if p.is_none() { 0 } else { 1 };
            for j in start..self.clause_len(confl) {
                let q = self.lit_at(confl, j);
                let v = q.var();
                if !self.seen[v.index()] && self.level[v.index()] > 0 {
                    self.seen[v.index()] = true;
                    to_clear.push(v);
                    self.var_bump(v);
                    if self.level[v.index()] >= self.decision_level() {
                        path += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Next literal on the trail to resolve on.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            confl = self.reason[lit.var().index()];
            self.seen[lit.var().index()] = false;
            path -= 1;
            if path == 0 {
                break;
            }
        }
        learnt[0] = !p.expect("asserting literal");

        // One-step self-subsumption minimisation: a literal is redundant
        // if every other literal of its reason clause is already seen (or
        // at level 0).
        let mut keep = vec![true; learnt.len()];
        for (i, &l) in learnt.iter().enumerate().skip(1) {
            let r = self.reason[l.var().index()];
            if r == CREF_NONE {
                continue;
            }
            let mut redundant = true;
            for j in 0..self.clause_len(r) {
                let q = self.lit_at(r, j);
                if q.var() == l.var() {
                    continue;
                }
                if !self.seen[q.var().index()] && self.level[q.var().index()] > 0 {
                    redundant = false;
                    break;
                }
            }
            keep[i] = !redundant;
        }
        let mut filtered: Vec<Lit> = learnt
            .iter()
            .zip(&keep)
            .filter(|(_, &k)| k)
            .map(|(&l, _)| l)
            .collect();

        for v in to_clear {
            self.seen[v.index()] = false;
        }

        // Backtrack level = second-highest level in the clause.
        let bt = if filtered.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..filtered.len() {
                if self.level[filtered[i].var().index()] > self.level[filtered[max_i].var().index()]
                {
                    max_i = i;
                }
            }
            filtered.swap(1, max_i);
            self.level[filtered[1].var().index()]
        };
        (filtered, bt)
    }

    // -- learnt DB reduction ---------------------------------------------

    fn locked(&self, cref: u32) -> bool {
        let l0 = self.lit_at(cref, 0);
        self.value(l0) == Lbool::True && self.reason[l0.var().index()] == cref
    }

    fn reduce_db(&mut self) {
        // Sort learnt indices by activity ascending; drop the lazier half
        // (unless locked or binary).
        let mut idx: Vec<usize> = (0..self.learnts.len()).collect();
        idx.sort_by(|&a, &b| {
            self.learnt_act[a]
                .partial_cmp(&self.learnt_act[b])
                .expect("no NaN activity")
        });
        let target = self.learnts.len() / 2;
        let mut removed = Vec::new();
        for &i in idx.iter().take(target) {
            let cref = self.learnts[i];
            if self.clause_len(cref) > 2 && !self.locked(cref) {
                removed.push(i);
            }
        }
        removed.sort_unstable_by(|a, b| b.cmp(a)); // remove from the back
        for i in removed {
            let cref = self.learnts[i];
            self.detach(cref);
            self.learnts.swap_remove(i);
            self.learnt_act.swap_remove(i);
            self.stats.removed_clauses += 1;
        }
    }

    // -- snapshot normal form -------------------------------------------

    /// Canonicalizes the solver's derived state at quiescence (decision
    /// level 0, propagation complete) into the *snapshot normal form*:
    /// a layout that is a pure function of the essential state (clause
    /// database, assignment, activities), independent of the search path
    /// that produced it.
    ///
    /// Why this exists: two solvers in semantically identical states can
    /// differ wildly in byte layout — propagation permutes clause
    /// literals and watcher lists, `cancel_until` leaves stale `level`
    /// values for unassigned variables, and the decision heap records an
    /// arbitrary permutation. For the page-granular CoW snapshot store
    /// that byte noise is pure cost: a child snapshot would dirty almost
    /// every page even when it only added a handful of clauses. Running
    /// this pass after every solve makes encodings of equal states
    /// bit-equal, so a child's delta is proportional to what actually
    /// changed.
    ///
    /// The snapshot codec calls the same pass on decode to rebuild the
    /// derived state it does not serialize (watch lists, decision heap,
    /// `seen`), which keeps restored snapshots bit-for-bit aligned with
    /// live ones.
    pub(crate) fn normalize(&mut self) {
        debug_assert!(self.trail_lim.is_empty(), "normalize mid-solve");
        debug_assert_eq!(self.qhead, self.trail.len(), "normalize mid-propagation");
        // Stale per-variable fields: `cancel_until` resets assignment and
        // reason but leaves `level` at its last value for unassigned vars.
        for v in 0..self.assigns.len() {
            if self.assigns[v] == Lbool::Undef {
                self.level[v] = 0;
                self.reason[v] = CREF_NONE;
            }
            self.seen[v] = false;
        }
        // Canonical literal order and watch choice per clause.
        let crefs: Vec<u32> = self
            .clauses
            .iter()
            .chain(self.learnts.iter())
            .copied()
            .collect();
        for cref in crefs {
            self.canonicalize_clause(cref);
        }
        // Watch lists: rebuilt from scratch in clause-database order.
        for ws in &mut self.watches {
            ws.clear();
        }
        for i in 0..self.clauses.len() {
            let cref = self.clauses[i];
            self.attach(cref);
        }
        for i in 0..self.learnts.len() {
            let cref = self.learnts[i];
            self.attach(cref);
        }
        // Decision heap: pure function of the activity array.
        self.order.rebuild(self.assigns.len(), &self.activity);
    }

    /// Sorts a clause's literals ascending and moves the canonical watch
    /// pair into slots 0 and 1: the two smallest literals not false at
    /// level 0. Sound at quiescence because level-0 propagation is
    /// complete — if exactly one literal is non-false it is necessarily
    /// true (the clause is satisfied and the second watch is inert), and
    /// if none is, the solver is in a conflicting state (`ok == false`)
    /// where watches are never consulted again.
    fn canonicalize_clause(&mut self, cref: u32) {
        let len = self.clause_len(cref);
        let base = cref as usize + 1;
        self.arena[base..base + len].sort_unstable();
        let (mut w0, mut w1) = (None, None);
        for i in 0..len {
            if self.value(Lit(self.arena[base + i])) != Lbool::False {
                if w0.is_none() {
                    w0 = Some(i);
                } else {
                    w1 = Some(i);
                    break;
                }
            }
        }
        if let Some(i) = w0 {
            self.arena.swap(base, base + i);
            if let Some(j) = w1 {
                // j > i always, so the first swap cannot move slot j.
                self.arena.swap(base + 1, base + j);
            }
        }
    }

    // -- search ---------------------------------------------------------

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.order.pop(&self.activity) {
            if self.assigns[v.index()] == Lbool::Undef {
                // Phase saving: repeat the last polarity.
                return Some(v.lit(self.polarity[v.index()]));
            }
        }
        None
    }

    /// One restart-bounded search episode. `Some(result)` or `None` for
    /// "restart budget exhausted".
    fn search(&mut self, max_conflicts: u64, assumptions: &[Lit]) -> Option<SolveResult> {
        let mut conflicts = 0u64;
        loop {
            let confl = self.propagate();
            if confl != CREF_NONE {
                conflicts += 1;
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, bt) = self.analyze(confl);
                // Never backtrack into the assumption prefix's middle:
                // cancel to max(bt, assumption levels already implied)?
                // Assumption levels re-establish themselves on re-descent,
                // so plain bt is sound here.
                self.cancel_until(bt);
                if learnt.len() == 1 {
                    self.unchecked_enqueue(learnt[0], CREF_NONE);
                } else {
                    let cref = self.alloc(&learnt, true);
                    self.learnts.push(cref);
                    self.learnt_act.push(self.cla_inc);
                    self.attach(cref);
                    self.unchecked_enqueue(learnt[0], cref);
                }
                self.var_decay();
                self.cla_decay();
            } else {
                if conflicts >= max_conflicts {
                    self.cancel_until(0);
                    return None; // restart
                }
                if self.learnts.len() as f64 > self.max_learnts {
                    self.reduce_db();
                    self.max_learnts *= 1.3;
                }
                // Extend with assumptions first.
                let mut next: Option<Lit> = None;
                while (self.decision_level() as usize) < assumptions.len() {
                    let a = assumptions[self.decision_level() as usize];
                    match self.value(a) {
                        Lbool::True => self.new_decision_level(),
                        Lbool::False => return Some(SolveResult::Unsat),
                        Lbool::Undef => {
                            next = Some(a);
                            break;
                        }
                    }
                }
                let decision = match next {
                    Some(a) => a,
                    None => match self.pick_branch() {
                        Some(l) => l,
                        None => {
                            // Complete assignment: SAT.
                            self.model = self.assigns.clone();
                            return Some(SolveResult::Sat);
                        }
                    },
                };
                self.stats.decisions += 1;
                self.new_decision_level();
                self.unchecked_enqueue(decision, CREF_NONE);
            }
        }
    }

    /// Solves the formula (no assumptions).
    pub fn solve(&mut self) -> SolveResult {
        self.solve_under(&[])
    }

    /// Solves under the given assumption literals.
    ///
    /// Learnt clauses and heuristic state persist across calls — this is
    /// the incremental interface.
    pub fn solve_under(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.cancel_until(0);
        if !self.ok {
            return SolveResult::Unsat;
        }
        for a in assumptions {
            self.ensure_vars(a.var().index() + 1);
        }
        if self.max_learnts < 1.0 {
            self.max_learnts = (self.clauses.len() as f64 / 3.0).max(1000.0);
        }
        let mut episode = 0u64;
        loop {
            let budget = 100 * luby(2, episode);
            match self.search(budget, assumptions) {
                Some(result) => {
                    self.cancel_until(0);
                    self.normalize();
                    return result;
                }
                None => {
                    self.stats.restarts += 1;
                    episode += 1;
                }
            }
        }
    }

    /// The model value of a variable after a SAT result.
    pub fn model_value(&self, v: Var) -> Option<bool> {
        match self.model.get(v.index())? {
            Lbool::True => Some(true),
            Lbool::False => Some(false),
            Lbool::Undef => None,
        }
    }

    /// The full model as booleans (unassigned variables default `false`).
    pub fn model(&self) -> Vec<bool> {
        self.model.iter().map(|&b| b == Lbool::True).collect()
    }
}

/// `true` iff `model` satisfies every clause (variables beyond the
/// model's length read as false).
///
/// The one canonical implementation of the check every harness in the
/// workspace uses to validate returned models against a constraint
/// stack — keep verification logic here, next to the encoding it must
/// agree with ([`crate::lit::Lit::sign`] is `true` for negation).
pub fn model_satisfies(clauses: &[Vec<Lit>], model: &[bool]) -> bool {
    clauses.iter().all(|clause| {
        clause
            .iter()
            .any(|l| model.get(l.var().index()).copied().unwrap_or(false) != l.sign())
    })
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,...
pub fn luby(y: u64, mut x: u64) -> u64 {
    // Find the finite subsequence containing x and its position.
    let (mut size, mut seq) = (1u64, 0u32);
    while size < x + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != x {
        size = (size - 1) / 2;
        seq -= 1;
        x %= size;
    }
    y.pow(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: i64) -> Lit {
        Lit::from_dimacs(v)
    }

    fn solver_with(clauses: &[&[i64]]) -> Solver {
        let mut s = Solver::new();
        for c in clauses {
            let ls: Vec<Lit> = c.iter().map(|&v| lit(v)).collect();
            s.add_clause(&ls);
        }
        s
    }

    #[test]
    fn luby_sequence() {
        let seq: Vec<u64> = (0..15).map(|i| luby(2, i)).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn unit_clauses() {
        let mut s = solver_with(&[&[1], &[-2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.model_value(Var(0)), Some(true));
        assert_eq!(s.model_value(Var(1)), Some(false));
    }

    #[test]
    fn direct_contradiction() {
        let mut s = solver_with(&[&[1], &[-1]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(!s.is_ok());
    }

    #[test]
    fn simple_implication_chain() {
        // x1 ∧ (x1→x2) ∧ (x2→x3) ∧ ¬x3 : UNSAT.
        let mut s = solver_with(&[&[1], &[-1, 2], &[-2, 3], &[-3]]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn satisfiable_3sat() {
        let mut s = solver_with(&[&[1, 2, 3], &[-1, -2], &[-1, -3], &[-2, -3], &[1, -2, 3]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Exactly one of x1..x3 true (given the pairwise exclusions).
        let m = s.model();
        let count = m.iter().take(3).filter(|&&b| b).count();
        assert_eq!(count, 1, "model: {m:?}");
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: Vec<Vec<i64>> = vec![
            vec![1, 2, -3],
            vec![-1, 3, 4],
            vec![2, -4, 5],
            vec![-2, -5, 1],
            vec![3, -1, -5],
            vec![-3, 4, 2],
        ];
        let refs: Vec<&[i64]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(&refs);
        assert_eq!(s.solve(), SolveResult::Sat);
        let m = s.model();
        for c in &clauses {
            assert!(
                c.iter().any(|&v| {
                    let val = m[(v.unsigned_abs() - 1) as usize];
                    if v > 0 {
                        val
                    } else {
                        !val
                    }
                }),
                "clause {c:?} unsatisfied by {m:?}"
            );
        }
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // Pigeon i in {0,1,2} occupies hole j in {0,1}; vars p(i,j).
        let var = |i: i64, j: i64| i * 2 + j + 1;
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![var(i, 0), var(i, 1)]); // each pigeon somewhere
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in a + 1..3 {
                    clauses.push(vec![-var(a, j), -var(b, j)]); // no sharing
                }
            }
        }
        let refs: Vec<&[i64]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(&refs);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0, "required real search");
    }

    #[test]
    fn tautology_and_duplicates_handled() {
        let mut s = Solver::new();
        assert!(
            s.add_clause(&[lit(1), lit(-1)]),
            "tautology is trivially true"
        );
        assert!(s.add_clause(&[lit(2), lit(2), lit(3)]));
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_basic() {
        // (x1 ∨ x2) with assumption ¬x1 forces x2.
        let mut s = solver_with(&[&[1, 2]]);
        assert_eq!(s.solve_under(&[lit(-1)]), SolveResult::Sat);
        assert_eq!(s.model_value(Var(1)), Some(true));
        // Conflicting assumptions: UNSAT under, SAT without.
        assert_eq!(s.solve_under(&[lit(-1), lit(-2)]), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.is_ok(), "assumption-UNSAT must not poison the solver");
    }

    #[test]
    fn incremental_add_after_solve() {
        let mut s = solver_with(&[&[1, 2]]);
        assert_eq!(s.solve(), SolveResult::Sat);
        s.add_clause(&[lit(-1)]);
        s.add_clause(&[lit(-2)]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn learnt_clauses_accumulate() {
        // A formula that forces some conflicts: XOR-like chains.
        let mut clauses: Vec<Vec<i64>> = Vec::new();
        let n = 12i64;
        for i in 1..n {
            clauses.push(vec![i, i + 1]);
            clauses.push(vec![-i, -(i + 1)]);
        }
        clauses.push(vec![1]);
        let refs: Vec<&[i64]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(&refs);
        assert_eq!(s.solve(), SolveResult::Sat);
        // Alternating chain: x1, ¬x2, x3, ...
        assert_eq!(s.model_value(Var(0)), Some(true));
        assert_eq!(s.model_value(Var(1)), Some(false));
        assert_eq!(s.model_value(Var(2)), Some(true));
    }

    #[test]
    fn stats_populated() {
        let mut s = solver_with(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2, 3]]);
        s.solve();
        let st = s.stats();
        assert!(st.decisions > 0 || st.propagations > 0);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = solver_with(&[&[1, 2]]);
        let mut b = a.clone();
        b.add_clause(&[lit(-1)]);
        b.add_clause(&[lit(-2)]);
        assert_eq!(b.solve(), SolveResult::Unsat);
        assert_eq!(
            a.solve(),
            SolveResult::Sat,
            "original unaffected by clone's clauses"
        );
    }
}
