//! # lwsnap-solver — CDCL SAT with incremental, multi-path solving
//!
//! The solver substrate for the paper's second motivating application
//! (§2): incremental SAT/SMT. A MiniSat-family CDCL core
//! ([`solver::Solver`]) provides assumption-based incremental solving;
//! [`service::SolverService`] wraps it into the paper's §3.2 *multi-path
//! incremental solver service*, where solved problems are immutable
//! snapshots that any number of divergent increments can fork from.
//!
//! Also here: DIMACS I/O ([`dimacs`]), deterministic workload generators
//! ([`generators`]) and a Tseitin circuit/bit-vector layer ([`circuit`])
//! used by the symbolic-execution crate for bit-blasting.
//!
//! ```
//! use lwsnap_solver::{SolverService, Lit, SolveResult};
//!
//! let mut service = SolverService::new();
//! let p = service
//!     .solve(service.root(), &[vec![Lit::from_dimacs(1), Lit::from_dimacs(2)]])
//!     .unwrap();
//! assert_eq!(p.result, SolveResult::Sat);
//!
//! // Fork two incompatible continuations from the same solved problem.
//! let q1 = service.solve(p.problem, &[vec![Lit::from_dimacs(-1)]]).unwrap();
//! let q2 = service.solve(p.problem, &[vec![Lit::from_dimacs(1)]]).unwrap();
//! assert_eq!(q1.result, SolveResult::Sat);
//! assert_eq!(q2.result, SolveResult::Sat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circuit;
pub mod dimacs;
pub mod generators;
pub mod heap;
pub mod lit;
pub mod service;
pub mod snapshot;
pub mod solver;

pub use circuit::{Bv, CLit, Circuit};
pub use dimacs::{parse_dimacs, write_dimacs, Cnf, DimacsError};
pub use generators::{graph_coloring, pigeonhole, random_ksat, IncrementalFamily};
pub use lit::{Lbool, Lit, Var};
pub use service::{ProblemRef, Reply, ServiceStats, SolverService};
pub use snapshot::{DeepCloneStore, SnapId, SnapshotStore, StorePageStats};
pub use solver::{luby, model_satisfies, SolveResult, Solver, SolverStats};
