//! Indexed max-heap over variable activities (the VSIDS order).
//!
//! A binary heap with an inverse index so that `decrease`/`increase`-key
//! and membership tests are O(log n)/O(1) — the structure MiniSat calls
//! `Heap<VarOrderLt>`.

use crate::lit::Var;

/// Max-heap of variables ordered by an external activity array.
#[derive(Debug, Clone, Default)]
pub struct VarHeap {
    heap: Vec<Var>,
    /// Position of each variable in `heap`, or `usize::MAX` if absent.
    index: Vec<usize>,
}

const ABSENT: usize = usize::MAX;

impl VarHeap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        VarHeap::default()
    }

    /// Number of queued variables.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no variables are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns `true` if `var` is in the heap.
    pub fn contains(&self, var: Var) -> bool {
        self.index.get(var.index()).copied().unwrap_or(ABSENT) != ABSENT
    }

    fn ensure(&mut self, var: Var) {
        if self.index.len() <= var.index() {
            self.index.resize(var.index() + 1, ABSENT);
        }
    }

    /// Inserts `var` (no-op if present).
    pub fn insert(&mut self, var: Var, activity: &[f64]) {
        self.ensure(var);
        if self.contains(var) {
            return;
        }
        self.heap.push(var);
        self.index[var.index()] = self.heap.len() - 1;
        self.sift_up(self.heap.len() - 1, activity);
    }

    /// Removes and returns the most active variable.
    pub fn pop(&mut self, activity: &[f64]) -> Option<Var> {
        let top = *self.heap.first()?;
        let last = self.heap.pop().expect("non-empty");
        self.index[top.index()] = ABSENT;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.index[last.index()] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Discards the current heap and re-inserts variables `0..nvars` in
    /// ascending order. The resulting layout is a pure function of
    /// `(nvars, activity)` — the *snapshot normal form* of the decision
    /// order, reproduced identically by every solver that rebuilds from
    /// the same activities (ties resolved by insertion order).
    pub fn rebuild(&mut self, nvars: usize, activity: &[f64]) {
        self.heap.clear();
        self.index.clear();
        self.index.resize(nvars, ABSENT);
        for v in 0..nvars {
            let var = Var(v as u32);
            self.heap.push(var);
            self.index[v] = self.heap.len() - 1;
            self.sift_up(self.heap.len() - 1, activity);
        }
    }

    /// Restores the heap property after `var`'s activity increased.
    pub fn bumped(&mut self, var: Var, activity: &[f64]) {
        if let Some(&pos) = self.index.get(var.index()) {
            if pos != ABSENT {
                self.sift_up(pos, activity);
            }
        }
    }

    fn less(&self, a: usize, b: usize, activity: &[f64]) -> bool {
        // Max-heap: parent must have the *larger* activity.
        activity[self.heap[a].index()] > activity[self.heap[b].index()]
    }

    fn swap(&mut self, a: usize, b: usize) {
        self.heap.swap(a, b);
        self.index[self.heap[a].index()] = a;
        self.index[self.heap[b].index()] = b;
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.less(i, parent, activity) {
                self.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut best = i;
            if l < self.heap.len() && self.less(l, best, activity) {
                best = l;
            }
            if r < self.heap.len() && self.less(r, best, activity) {
                best = r;
            }
            if best == i {
                return;
            }
            self.swap(i, best);
            i = best;
        }
    }

    #[cfg(test)]
    fn check_invariants(&self, activity: &[f64]) {
        for i in 1..self.heap.len() {
            let parent = (i - 1) / 2;
            assert!(
                activity[self.heap[parent].index()] >= activity[self.heap[i].index()],
                "heap property violated at {i}"
            );
        }
        for (i, &v) in self.heap.iter().enumerate() {
            assert_eq!(self.index[v.index()], i, "inverse index broken");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_activity_order() {
        let activity = vec![0.5, 3.0, 1.0, 2.0];
        let mut heap = VarHeap::new();
        for i in 0..4 {
            heap.insert(Var(i), &activity);
        }
        heap.check_invariants(&activity);
        let order: Vec<u32> = std::iter::from_fn(|| heap.pop(&activity))
            .map(|v| v.0)
            .collect();
        assert_eq!(order, vec![1, 3, 2, 0]);
    }

    #[test]
    fn insert_is_idempotent() {
        let activity = vec![1.0, 2.0];
        let mut heap = VarHeap::new();
        heap.insert(Var(0), &activity);
        heap.insert(Var(0), &activity);
        assert_eq!(heap.len(), 1);
    }

    #[test]
    fn bumped_reorders() {
        let mut activity = vec![1.0, 2.0, 3.0];
        let mut heap = VarHeap::new();
        for i in 0..3 {
            heap.insert(Var(i), &activity);
        }
        // Var 0 becomes the most active.
        activity[0] = 10.0;
        heap.bumped(Var(0), &activity);
        heap.check_invariants(&activity);
        assert_eq!(heap.pop(&activity), Some(Var(0)));
    }

    #[test]
    fn contains_tracks_membership() {
        let activity = vec![1.0; 4];
        let mut heap = VarHeap::new();
        heap.insert(Var(2), &activity);
        assert!(heap.contains(Var(2)));
        assert!(!heap.contains(Var(1)));
        assert!(!heap.contains(Var(3)));
        heap.pop(&activity);
        assert!(!heap.contains(Var(2)));
        assert!(heap.is_empty());
    }

    #[test]
    fn random_ops_keep_invariants() {
        // Deterministic pseudo-random workout.
        let n = 64usize;
        let mut activity: Vec<f64> = (0..n).map(|i| (i * 7919 % 97) as f64).collect();
        let mut heap = VarHeap::new();
        let mut rng = 0x12345u64;
        for step in 0..2000 {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            let v = Var((rng % n as u64) as u32);
            match step % 3 {
                0 => heap.insert(v, &activity),
                1 => {
                    activity[v.index()] += 5.0;
                    heap.bumped(v, &activity);
                }
                _ => {
                    heap.pop(&activity);
                }
            }
            if step % 100 == 0 {
                heap.check_invariants(&activity);
            }
        }
        heap.check_invariants(&activity);
    }
}
