//! Tseitin-encoded boolean circuits and bit-vectors.
//!
//! The bridge between symbolic execution and SAT: `lwsnap-symex`
//! bit-blasts its expression DAG through this builder. Each gate adds the
//! standard Tseitin clauses; bit-vectors are little-endian literal
//! vectors with ripple-carry arithmetic.

use crate::dimacs::Cnf;
use crate::lit::{Lit, Var};

/// A literal that is constant-true or constant-false, or a real literal.
///
/// Constants are folded eagerly so trivial circuits produce no clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CLit {
    /// Constant false.
    False,
    /// Constant true.
    True,
    /// A solver literal.
    Lit(Lit),
}

impl CLit {
    /// Negation (constant-folding).
    #[allow(clippy::should_implement_trait)] // used as a plain method everywhere
    pub fn not(self) -> CLit {
        match self {
            CLit::False => CLit::True,
            CLit::True => CLit::False,
            CLit::Lit(l) => CLit::Lit(!l),
        }
    }

    /// From a boolean constant.
    pub fn constant(b: bool) -> CLit {
        if b {
            CLit::True
        } else {
            CLit::False
        }
    }
}

/// A little-endian bit-vector of circuit literals.
pub type Bv = Vec<CLit>;

/// A Tseitin circuit builder accumulating CNF clauses.
#[derive(Debug, Default, Clone)]
pub struct Circuit {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Circuit {
        Circuit::default()
    }

    /// Allocates a fresh variable, returning its positive literal.
    pub fn fresh(&mut self) -> CLit {
        let v = Var(self.num_vars as u32);
        self.num_vars += 1;
        CLit::Lit(v.pos())
    }

    /// Allocates an input bit-vector of `width` fresh bits.
    pub fn fresh_bv(&mut self, width: usize) -> Bv {
        (0..width).map(|_| self.fresh()).collect()
    }

    /// A constant bit-vector of `width` bits holding `value`.
    pub fn const_bv(&self, value: u64, width: usize) -> Bv {
        (0..width)
            .map(|i| CLit::constant(value >> i & 1 != 0))
            .collect()
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The accumulated clauses.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Converts into a [`Cnf`].
    pub fn to_cnf(&self) -> Cnf {
        Cnf {
            num_vars: self.num_vars,
            clauses: self.clauses.clone(),
        }
    }

    fn emit(&mut self, clause: &[CLit]) {
        // Drop clauses containing True; drop False literals.
        let mut out = Vec::with_capacity(clause.len());
        for &c in clause {
            match c {
                CLit::True => return,
                CLit::False => {}
                CLit::Lit(l) => out.push(l),
            }
        }
        self.clauses.push(out);
    }

    /// Asserts that `lit` holds.
    pub fn assert_true(&mut self, lit: CLit) {
        self.emit(&[lit]);
    }

    /// `out = a ∧ b`.
    pub fn and(&mut self, a: CLit, b: CLit) -> CLit {
        match (a, b) {
            (CLit::False, _) | (_, CLit::False) => CLit::False,
            (CLit::True, x) | (x, CLit::True) => x,
            _ => {
                let out = self.fresh();
                self.emit(&[out.not(), a]);
                self.emit(&[out.not(), b]);
                self.emit(&[out, a.not(), b.not()]);
                out
            }
        }
    }

    /// `out = a ∨ b`.
    pub fn or(&mut self, a: CLit, b: CLit) -> CLit {
        self.and(a.not(), b.not()).not()
    }

    /// `out = a ⊕ b`.
    pub fn xor(&mut self, a: CLit, b: CLit) -> CLit {
        match (a, b) {
            (CLit::False, x) | (x, CLit::False) => x,
            (CLit::True, x) | (x, CLit::True) => x.not(),
            _ => {
                let out = self.fresh();
                self.emit(&[out.not(), a, b]);
                self.emit(&[out.not(), a.not(), b.not()]);
                self.emit(&[out, a, b.not()]);
                self.emit(&[out, a.not(), b]);
                out
            }
        }
    }

    /// `out = if sel { t } else { e }`.
    pub fn mux(&mut self, sel: CLit, t: CLit, e: CLit) -> CLit {
        let a = self.and(sel, t);
        let b = self.and(sel.not(), e);
        self.or(a, b)
    }

    /// `out = (a == b)` for single bits.
    pub fn bit_eq(&mut self, a: CLit, b: CLit) -> CLit {
        self.xor(a, b).not()
    }

    // -- bit-vector operations -------------------------------------------

    /// Bitwise and.
    pub fn bv_and(&mut self, a: &Bv, b: &Bv) -> Bv {
        a.iter().zip(b).map(|(&x, &y)| self.and(x, y)).collect()
    }

    /// Bitwise or.
    pub fn bv_or(&mut self, a: &Bv, b: &Bv) -> Bv {
        a.iter().zip(b).map(|(&x, &y)| self.or(x, y)).collect()
    }

    /// Bitwise xor.
    pub fn bv_xor(&mut self, a: &Bv, b: &Bv) -> Bv {
        a.iter().zip(b).map(|(&x, &y)| self.xor(x, y)).collect()
    }

    /// Bitwise not.
    pub fn bv_not(&self, a: &Bv) -> Bv {
        a.iter().map(|&x| x.not()).collect()
    }

    /// Ripple-carry addition (truncating, two's complement).
    pub fn bv_add(&mut self, a: &Bv, b: &Bv) -> Bv {
        debug_assert_eq!(a.len(), b.len());
        let mut carry = CLit::False;
        let mut out = Vec::with_capacity(a.len());
        for (&x, &y) in a.iter().zip(b) {
            let xy = self.xor(x, y);
            let sum = self.xor(xy, carry);
            let c1 = self.and(x, y);
            let c2 = self.and(xy, carry);
            carry = self.or(c1, c2);
            out.push(sum);
        }
        out
    }

    /// Two's-complement subtraction.
    pub fn bv_sub(&mut self, a: &Bv, b: &Bv) -> Bv {
        // a - b = a + ~b + 1.
        let nb = self.bv_not(b);
        let one = self.const_bv(1, a.len());
        let t = self.bv_add(&nb, &one);
        self.bv_add(a, &t)
    }

    /// Shift-and-add multiplication (truncating).
    pub fn bv_mul(&mut self, a: &Bv, b: &Bv) -> Bv {
        let width = a.len();
        let mut acc = self.const_bv(0, width);
        for (i, &bit) in b.iter().enumerate() {
            // partial = (a << i) AND-ed with bit.
            let mut partial = vec![CLit::False; width];
            for j in 0..width - i {
                partial[i + j] = self.and(a[j], bit);
            }
            acc = self.bv_add(&acc, &partial);
        }
        acc
    }

    /// Equality of two bit-vectors.
    pub fn bv_eq(&mut self, a: &Bv, b: &Bv) -> CLit {
        debug_assert_eq!(a.len(), b.len());
        let mut acc = CLit::True;
        for (&x, &y) in a.iter().zip(b) {
            let eq = self.bit_eq(x, y);
            acc = self.and(acc, eq);
        }
        acc
    }

    /// Unsigned less-than.
    pub fn bv_ult(&mut self, a: &Bv, b: &Bv) -> CLit {
        debug_assert_eq!(a.len(), b.len());
        // From the MSB down: a < b iff at the first differing bit, a=0,b=1.
        let mut result = CLit::False;
        let mut equal_so_far = CLit::True;
        for (&x, &y) in a.iter().zip(b).rev() {
            let lt_here = self.and(x.not(), y);
            let contrib = self.and(equal_so_far, lt_here);
            result = self.or(result, contrib);
            let eq = self.bit_eq(x, y);
            equal_so_far = self.and(equal_so_far, eq);
        }
        result
    }

    /// Unsigned less-or-equal.
    pub fn bv_ule(&mut self, a: &Bv, b: &Bv) -> CLit {
        let gt = self.bv_ult(b, a);
        gt.not()
    }

    /// Signed less-than (two's complement).
    pub fn bv_slt(&mut self, a: &Bv, b: &Bv) -> CLit {
        let w = a.len();
        debug_assert!(w >= 1);
        let (sa, sb) = (a[w - 1], b[w - 1]);
        // Different signs: a<b iff a negative. Same signs: unsigned compare.
        let diff = self.xor(sa, sb);
        let ult = self.bv_ult(a, b);
        self.mux(diff, sa, ult)
    }

    /// Extracts a concrete value for `bv` from a solver model.
    pub fn bv_value(bv: &Bv, model: &[bool]) -> u64 {
        let mut out = 0u64;
        for (i, &bit) in bv.iter().enumerate() {
            let set = match bit {
                CLit::True => true,
                CLit::False => false,
                CLit::Lit(l) => {
                    let v = model.get(l.var().index()).copied().unwrap_or(false);
                    v != l.sign()
                }
            };
            if set {
                out |= 1 << i;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    /// Checks a binary op circuit against a concrete oracle over 4-bit
    /// inputs by constraining inputs to constants and solving.
    fn check_binop(
        op: impl Fn(&mut Circuit, &Bv, &Bv) -> Bv,
        oracle: impl Fn(u64, u64) -> u64,
        width: usize,
    ) {
        let mask = (1u64 << width) - 1;
        for a in 0..1u64 << width {
            for b in 0..1u64 << width {
                let mut c = Circuit::new();
                let av = c.const_bv(a, width);
                let bv = c.const_bv(b, width);
                let out = op(&mut c, &av, &bv);
                // Constant inputs fold: the result must already be constant.
                let got = Circuit::bv_value(&out, &[]);
                assert_eq!(got, oracle(a, b) & mask, "op({a},{b}) width {width}");
            }
        }
    }

    #[test]
    fn constant_folding_add_sub_mul() {
        check_binop(|c, a, b| c.bv_add(a, b), |a, b| a.wrapping_add(b), 4);
        check_binop(|c, a, b| c.bv_sub(a, b), |a, b| a.wrapping_sub(b), 4);
        check_binop(|c, a, b| c.bv_mul(a, b), |a, b| a.wrapping_mul(b), 3);
        check_binop(|c, a, b| c.bv_and(a, b), |a, b| a & b, 4);
        check_binop(|c, a, b| c.bv_or(a, b), |a, b| a | b, 4);
        check_binop(|c, a, b| c.bv_xor(a, b), |a, b| a ^ b, 4);
    }

    #[test]
    fn symbolic_addition_solves() {
        // Find x such that x + 3 == 10 (8-bit).
        let mut c = Circuit::new();
        let x = c.fresh_bv(8);
        let three = c.const_bv(3, 8);
        let ten = c.const_bv(10, 8);
        let sum = c.bv_add(&x, &three);
        let eq = c.bv_eq(&sum, &ten);
        c.assert_true(eq);
        let mut s = c.to_cnf().to_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(Circuit::bv_value(&x, &s.model()), 7);
    }

    #[test]
    fn symbolic_multiplication_factors() {
        // Find x,y > 1 with x*y == 35 (8-bit): {5,7}.
        let mut c = Circuit::new();
        let x = c.fresh_bv(8);
        let y = c.fresh_bv(8);
        let prod = c.bv_mul(&x, &y);
        let target = c.const_bv(35, 8);
        let eq = c.bv_eq(&prod, &target);
        c.assert_true(eq);
        let one = c.const_bv(1, 8);
        let xgt = c.bv_ult(&one, &x);
        let ygt = c.bv_ult(&one, &y);
        c.assert_true(xgt);
        c.assert_true(ygt);
        // Also bound inputs below 16 to exclude wrap-around factorisations.
        let sixteen = c.const_bv(16, 8);
        let xlt = c.bv_ult(&x, &sixteen);
        let ylt = c.bv_ult(&y, &sixteen);
        c.assert_true(xlt);
        c.assert_true(ylt);
        let mut s = c.to_cnf().to_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
        let m = s.model();
        let (xv, yv) = (Circuit::bv_value(&x, &m), Circuit::bv_value(&y, &m));
        assert_eq!(xv * yv, 35, "got {xv} * {yv}");
    }

    #[test]
    fn comparisons_exhaustive_4bit() {
        for a in 0..16u64 {
            for b in 0..16u64 {
                let mut c = Circuit::new();
                let av = c.const_bv(a, 4);
                let bv = c.const_bv(b, 4);
                assert_eq!(c.bv_ult(&av, &bv), CLit::constant(a < b), "{a} <u {b}");
                assert_eq!(c.bv_ule(&av, &bv), CLit::constant(a <= b));
                assert_eq!(c.bv_eq(&av, &bv), CLit::constant(a == b));
                let sa = (a as i64) << 60 >> 60; // sign-extend 4-bit
                let sb = (b as i64) << 60 >> 60;
                assert_eq!(c.bv_slt(&av, &bv), CLit::constant(sa < sb), "{sa} <s {sb}");
            }
        }
    }

    #[test]
    fn unsat_circuit() {
        // x < x is unsatisfiable.
        let mut c = Circuit::new();
        let x = c.fresh_bv(6);
        let lt = c.bv_ult(&x, &x);
        c.assert_true(lt);
        let mut s = c.to_cnf().to_solver();
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn mux_selects() {
        let mut c = Circuit::new();
        let s = c.fresh();
        let out = c.mux(s, CLit::True, CLit::False);
        // out == s.
        let eq = c.bit_eq(out, s);
        let ne = eq.not();
        c.assert_true(ne);
        let mut solver = c.to_cnf().to_solver();
        assert_eq!(solver.solve(), SolveResult::Unsat);
    }
}
