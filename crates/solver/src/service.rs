//! The multi-path incremental solver service (paper §3.2).
//!
//! "One could use lightweight snapshots directly to create a multi-path
//! incremental SAT/SMT solver service, built using a single-path
//! incremental solver. The service waits for client requests consisting
//! of an opaque reference to a previously solved problem `p` and an
//! incremental constraint `q`, and returns the solution to `p∧q` together
//! with an opaque reference to that new problem."
//!
//! This module is that service. The "lightweight snapshot" of a solved
//! problem is a clone of the solver state — clause database, *learnt
//! clauses*, variable activities, saved phases — so every child query
//! starts from all the inference its parent already performed. The
//! from-scratch baseline (`solve_scratch`) re-derives everything, which is
//! exactly the waste experiment E5 quantifies.

use crate::lit::Lit;
use crate::solver::{SolveResult, Solver, SolverStats};

/// Opaque reference to a previously solved problem in the service's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemRef(u32);

struct ProblemNode {
    solver: Solver,
    parent: Option<ProblemRef>,
    result: SolveResult,
    depth: u32,
}

/// Counters for the service.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Queries served.
    pub queries: u64,
    /// Solver conflicts spent across all queries.
    pub total_conflicts: u64,
    /// Solver propagations across all queries.
    pub total_propagations: u64,
    /// Live problem snapshots.
    pub live_problems: usize,
}

/// A multi-path incremental SAT service.
pub struct SolverService {
    nodes: Vec<Option<ProblemNode>>,
    stats: ServiceStats,
}

impl Default for SolverService {
    fn default() -> Self {
        Self::new()
    }
}

/// Reply to a [`SolverService::solve`] request.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Opaque reference to the new problem `p∧q`.
    pub problem: ProblemRef,
    /// SAT/UNSAT.
    pub result: SolveResult,
    /// The model, if SAT.
    pub model: Option<Vec<bool>>,
    /// Conflicts this query cost (the incremental-saving metric).
    pub conflicts: u64,
}

impl SolverService {
    /// Creates a service containing only the empty root problem.
    pub fn new() -> Self {
        let root = ProblemNode {
            solver: Solver::new(),
            parent: None,
            result: SolveResult::Sat,
            depth: 0,
        };
        SolverService {
            nodes: vec![Some(root)],
            stats: ServiceStats::default(),
        }
    }

    /// The root (empty, trivially SAT) problem.
    pub fn root(&self) -> ProblemRef {
        ProblemRef(0)
    }

    /// Service counters.
    pub fn stats(&self) -> ServiceStats {
        let mut s = self.stats;
        s.live_problems = self.nodes.iter().filter(|n| n.is_some()).count();
        s
    }

    fn node(&self, r: ProblemRef) -> Option<&ProblemNode> {
        self.nodes.get(r.0 as usize).and_then(Option::as_ref)
    }

    /// The cached result of an already-solved problem.
    pub fn result_of(&self, r: ProblemRef) -> Option<SolveResult> {
        self.node(r).map(|n| n.result)
    }

    /// Depth of a problem in the derivation tree.
    pub fn depth_of(&self, r: ProblemRef) -> Option<u32> {
        self.node(r).map(|n| n.depth)
    }

    /// Solves `parent ∧ added`, returning the reply with an opaque
    /// reference to the new problem.
    ///
    /// The parent snapshot is immutable: solving a child never perturbs
    /// it, so any number of divergent `q`s can be layered on the same `p`
    /// — the "multi-path" in the name.
    pub fn solve(&mut self, parent: ProblemRef, added: &[Vec<Lit>]) -> Option<Reply> {
        let parent_node = self.node(parent)?;
        let parent_depth = parent_node.depth;
        // The lightweight snapshot: fork the solved parent state.
        let mut solver = parent_node.solver.clone();
        let before = solver.stats();
        for clause in added {
            solver.add_clause(clause);
        }
        let result = solver.solve();
        let after = solver.stats();
        let conflicts = after.conflicts - before.conflicts;
        self.stats.queries += 1;
        self.stats.total_conflicts += conflicts;
        self.stats.total_propagations += after.propagations - before.propagations;
        let model = (result == SolveResult::Sat).then(|| solver.model());
        let node = ProblemNode {
            solver,
            parent: Some(parent),
            result,
            depth: parent_depth + 1,
        };
        self.nodes.push(Some(node));
        let problem = ProblemRef((self.nodes.len() - 1) as u32);
        Some(Reply {
            problem,
            result,
            model,
            conflicts,
        })
    }

    /// Releases a problem snapshot (its children remain valid — they own
    /// complete solver states).
    pub fn release(&mut self, r: ProblemRef) {
        if r.0 == 0 {
            return; // the root is permanent
        }
        if let Some(slot) = self.nodes.get_mut(r.0 as usize) {
            *slot = None;
        }
    }

    /// Chain of ancestors of `r`, nearest first.
    pub fn ancestry(&self, r: ProblemRef) -> Vec<ProblemRef> {
        let mut out = Vec::new();
        let mut cur = self.node(r).and_then(|n| n.parent);
        while let Some(p) = cur {
            out.push(p);
            cur = self.node(p).and_then(|n| n.parent);
        }
        out
    }

    /// Baseline: solve a whole clause set from scratch (no reuse).
    /// Returns the result and the solver stats it cost.
    pub fn solve_scratch(clauses: &[Vec<Lit>]) -> (SolveResult, SolverStats) {
        let mut solver = Solver::new();
        for clause in clauses {
            solver.add_clause(clause);
        }
        let result = solver.solve();
        (result, solver.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::IncrementalFamily;
    use crate::lit::Lit;

    fn lits(c: &[i64]) -> Vec<Lit> {
        c.iter().map(|&v| Lit::from_dimacs(v)).collect()
    }

    #[test]
    fn root_is_sat() {
        let svc = SolverService::new();
        assert_eq!(svc.result_of(svc.root()), Some(SolveResult::Sat));
        assert_eq!(svc.depth_of(svc.root()), Some(0));
    }

    #[test]
    fn incremental_chain() {
        let mut svc = SolverService::new();
        let p = svc
            .solve(svc.root(), &[lits(&[1, 2]), lits(&[-1, 2])])
            .unwrap();
        assert_eq!(p.result, SolveResult::Sat);
        // p ∧ ¬2 forces 1-related conflict: (1∨2), (¬1∨2), ¬2 → UNSAT.
        let q = svc.solve(p.problem, &[lits(&[-2])]).unwrap();
        assert_eq!(q.result, SolveResult::Unsat);
        // The parent is untouched and can branch again.
        let q2 = svc.solve(p.problem, &[lits(&[1])]).unwrap();
        assert_eq!(q2.result, SolveResult::Sat);
        assert_eq!(svc.depth_of(q2.problem), Some(2));
        assert_eq!(svc.ancestry(q2.problem), vec![p.problem, svc.root()]);
    }

    #[test]
    fn multi_path_divergence() {
        // Layer contradictory qs on the same p; each child is isolated.
        let mut svc = SolverService::new();
        let p = svc.solve(svc.root(), &[lits(&[1, 2, 3])]).unwrap();
        let a = svc.solve(p.problem, &[lits(&[1])]).unwrap();
        let b = svc.solve(p.problem, &[lits(&[-1]), lits(&[2])]).unwrap();
        assert_eq!(a.result, SolveResult::Sat);
        assert_eq!(b.result, SolveResult::Sat);
        let am = a.model.unwrap();
        let bm = b.model.unwrap();
        assert!(am[0], "branch a fixed x1=true");
        assert!(!bm[0] && bm[1], "branch b fixed x1=false, x2=true");
    }

    #[test]
    fn model_satisfies_whole_stack() {
        let fam = IncrementalFamily::new(25, 4, 3);
        let mut svc = SolverService::new();
        let base = svc.solve(svc.root(), &fam.base().clauses).unwrap();
        let mut cur = base;
        let mut all = fam.base().clauses;
        for i in 0..3 {
            let inc = fam.increment(i);
            all.extend(inc.clone());
            let reply = svc.solve(cur.problem, &inc).unwrap();
            if reply.result == SolveResult::Sat {
                let m = reply.model.as_ref().unwrap();
                for clause in &all {
                    assert!(
                        clause.iter().any(|l| {
                            let v = m.get(l.var().index()).copied().unwrap_or(false);
                            v != l.sign()
                        }),
                        "clause unsatisfied after increment {i}"
                    );
                }
            }
            cur = reply;
        }
    }

    #[test]
    fn incremental_cheaper_than_scratch_on_related_queries() {
        // The E4 shape at test scale: a chain of increments solved
        // incrementally must not cost more total conflicts than solving
        // the final formula from scratch... on average. We assert the
        // weaker, deterministic property that the incremental *final
        // step* costs less than the scratch solve of the full stack,
        // which holds because most inference is inherited.
        let fam = IncrementalFamily::new(40, 6, 17);
        let mut svc = SolverService::new();
        let mut cur = svc.solve(svc.root(), &fam.base().clauses).unwrap();
        for i in 0..4 {
            cur = svc.solve(cur.problem, &fam.increment(i)).unwrap();
        }
        let (scratch_result, scratch_stats) =
            SolverService::solve_scratch(&fam.combined(4).clauses);
        assert_eq!(cur.result, scratch_result, "same answer both ways");
        assert!(
            cur.conflicts <= scratch_stats.conflicts.max(1) * 3,
            "final incremental step ({}) should not dwarf scratch ({})",
            cur.conflicts,
            scratch_stats.conflicts
        );
    }

    #[test]
    fn release_frees_but_children_survive() {
        let mut svc = SolverService::new();
        let p = svc.solve(svc.root(), &[lits(&[1])]).unwrap();
        let q = svc.solve(p.problem, &[lits(&[2])]).unwrap();
        svc.release(p.problem);
        assert_eq!(svc.result_of(p.problem), None);
        assert_eq!(svc.result_of(q.problem), Some(SolveResult::Sat));
        // Solving from a released ref fails gracefully.
        assert!(svc.solve(p.problem, &[lits(&[3])]).is_none());
        // Root cannot be released.
        svc.release(svc.root());
        assert!(svc.result_of(svc.root()).is_some());
    }

    #[test]
    fn stats_accumulate() {
        let mut svc = SolverService::new();
        let p = svc.solve(svc.root(), &[lits(&[1, 2])]).unwrap();
        svc.solve(p.problem, &[lits(&[-1])]).unwrap();
        let st = svc.stats();
        assert_eq!(st.queries, 2);
        assert_eq!(st.live_problems, 3, "root + two children");
    }
}
