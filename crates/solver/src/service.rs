//! The multi-path incremental solver service (paper §3.2).
//!
//! "One could use lightweight snapshots directly to create a multi-path
//! incremental SAT/SMT solver service, built using a single-path
//! incremental solver. The service waits for client requests consisting
//! of an opaque reference to a previously solved problem `p` and an
//! incremental constraint `q`, and returns the solution to `p∧q` together
//! with an opaque reference to that new problem."
//!
//! This module is that service. The "lightweight snapshot" of a solved
//! problem is a clone of the solver state — clause database, *learnt
//! clauses*, variable activities, saved phases — so every child query
//! starts from all the inference its parent already performed. The
//! from-scratch baseline (`solve_scratch`) re-derives everything, which is
//! exactly the waste experiment E5 quantifies.
//!
//! ## Memory bound and eviction
//!
//! Snapshots are cheap relative to solving but not free: a long-running
//! service accumulating one solver clone per query would grow without
//! bound. [`SolverService::set_snapshot_capacity`] arms an LRU eviction
//! policy: when the number of *resident* solver snapshots exceeds the
//! capacity, the least-recently-used unpinned snapshot is dropped. The
//! node itself survives as a skeleton — its constraint edge, result and
//! parent link — so a later query against an evicted problem is answered
//! by **replaying its constraint path from the nearest resident
//! ancestor**: the paper's system-level-backtracking trick applied to the
//! service's own memory budget. The root is always resident, so replay
//! always terminates. [`ServiceStats`] counts snapshot hits against
//! re-derivations (and the conflicts re-derivation cost), which is the
//! service-level analogue of experiment E5.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use lwsnap_trace as trace;

use crate::lit::Lit;
use crate::snapshot::{DeepCloneStore, SnapId, SnapshotStore, StorePageStats};
use crate::solver::{SolveResult, Solver, SolverStats};

/// Opaque reference to a previously solved problem in the service's tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemRef(u32);

impl ProblemRef {
    /// The dense index behind the reference.
    ///
    /// Exposed so distributed front-ends (the sharded service) can embed
    /// the reference in a wire-level id; within one service instance the
    /// reference should stay opaque.
    #[inline]
    pub fn index(self) -> u32 {
        self.0
    }

    /// Rebuilds a reference from [`ProblemRef::index`]. The caller is
    /// responsible for only rebuilding indices obtained from the same
    /// service instance.
    #[inline]
    pub fn from_index(index: u32) -> ProblemRef {
        ProblemRef(index)
    }
}

struct ProblemNode {
    /// Handle to the solved snapshot in the store; `None` once evicted
    /// (re-derivable by replay).
    snap: Option<SnapId>,
    parent: Option<ProblemRef>,
    /// The constraint edge: clauses added on top of `parent` to form
    /// this problem. Retained after eviction and release so descendants
    /// stay derivable.
    constraint: Vec<Vec<Lit>>,
    result: SolveResult,
    depth: u32,
    /// Direct children still occupying slots (live or tombstoned).
    /// A released node with no children is reaped outright, cascading
    /// up through released ancestors — so leaf-release traffic does not
    /// accumulate tombstones.
    children: u32,
    /// Released nodes are tombstones: invisible to queries, but their
    /// constraint edge still carries replay for live descendants.
    released: bool,
    /// Pinned nodes are never evicted (the root is implicitly pinned).
    pinned: bool,
    /// LRU stamp (service-wide logical clock).
    last_use: u64,
}

/// Counters for the service.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Queries served.
    pub queries: u64,
    /// Solver conflicts spent across all queries.
    pub total_conflicts: u64,
    /// Solver propagations across all queries.
    pub total_propagations: u64,
    /// Live (unreleased) problems in the tree.
    pub live_problems: usize,
    /// Problems whose solver snapshot is resident in memory.
    pub resident_snapshots: usize,
    /// Queries whose parent snapshot was resident (no replay needed).
    pub snapshot_hits: u64,
    /// Queries whose parent had to be re-derived by constraint replay.
    pub rederivations: u64,
    /// Clauses re-added during replays (the re-derivation work metric).
    pub replayed_clauses: u64,
    /// Solver conflicts spent inside replays (not billed to any query).
    pub rederive_conflicts: u64,
    /// Snapshots dropped by the LRU eviction policy.
    pub evictions: u64,
    /// Bytes actually held by the snapshot store, counting storage
    /// shared between snapshots **once** (what the eviction budget
    /// compares against).
    pub resident_bytes: usize,
    /// Physical pages mapped by two or more resident snapshots (0 for
    /// non-page-granular stores).
    pub shared_pages: u64,
    /// Physical pages private to exactly one resident snapshot (0 for
    /// non-page-granular stores).
    pub private_pages: u64,
    /// Shared pages copied on first divergent write by snapshot puts
    /// (0 for non-page-granular stores).
    pub cow_page_copies: u64,
    /// Fresh pages materialized from the zero page by snapshot puts
    /// (0 for non-page-granular stores).
    pub zero_fills: u64,
    /// Bytes written into page frames by snapshot puts (0 for
    /// non-page-granular stores).
    pub bytes_written: u64,
}

/// A multi-path incremental SAT service.
pub struct SolverService {
    nodes: Vec<Option<ProblemNode>>,
    /// Where resident snapshots actually live: the deep-clone baseline
    /// by default, or a page-granular CoW store
    /// ([`SolverService::with_store`]). Residency counts and the byte
    /// budget are the store's own accounting, so shared pages are
    /// priced once.
    store: Box<dyn SnapshotStore>,
    stats: ServiceStats,
    /// Maximum resident solver snapshots (`None` = unbounded).
    capacity: Option<usize>,
    /// Maximum bytes of resident solver snapshots (`None` = unbounded).
    /// When set, the LRU evicts by *cost* — a few huge snapshots go
    /// before many tiny ones — instead of by raw count.
    budget: Option<usize>,
    /// Logical clock for LRU stamps.
    clock: u64,
    /// Lazy-deletion min-heap of `(last_use, index)` eviction
    /// candidates: every residency touch pushes a fresh entry; stale
    /// entries (stamp no longer matching the node) are discarded on
    /// pop. Keeps victim selection O(log n) amortised instead of a
    /// full-table scan per eviction.
    lru: BinaryHeap<Reverse<(u64, u32)>>,
}

impl Default for SolverService {
    fn default() -> Self {
        Self::new()
    }
}

/// Reply to a [`SolverService::solve`] request.
#[derive(Debug, Clone)]
pub struct Reply {
    /// Opaque reference to the new problem `p∧q`.
    pub problem: ProblemRef,
    /// SAT/UNSAT.
    pub result: SolveResult,
    /// The model, if SAT.
    pub model: Option<Vec<bool>>,
    /// Conflicts this query cost (the incremental-saving metric).
    pub conflicts: u64,
    /// `true` if the parent snapshot had been evicted and was re-derived
    /// by constraint replay to serve this query.
    pub rederived: bool,
}

impl SolverService {
    /// Creates a service containing only the empty root problem, with no
    /// memory bound, backed by the deep-clone conformance store.
    pub fn new() -> Self {
        Self::with_store(Box::new(DeepCloneStore::new()))
    }

    /// Creates a service over an explicit snapshot store — the
    /// page-granular CoW store from `lwsnap-snapstore`, or anything
    /// else implementing [`SnapshotStore`].
    pub fn with_store(mut store: Box<dyn SnapshotStore>) -> Self {
        let root_snap = store.put(None, &Solver::new());
        let root = ProblemNode {
            snap: Some(root_snap),
            parent: None,
            constraint: Vec::new(),
            result: SolveResult::Sat,
            depth: 0,
            children: 0,
            released: false,
            pinned: true,
            last_use: 0,
        };
        SolverService {
            nodes: vec![Some(root)],
            store,
            stats: ServiceStats::default(),
            capacity: None,
            budget: None,
            clock: 0,
            lru: BinaryHeap::new(),
        }
    }

    /// Creates a service bounded to at most `capacity` resident solver
    /// snapshots (the root always counts as one and is never evicted).
    pub fn with_capacity(capacity: usize) -> Self {
        let mut svc = Self::new();
        svc.set_snapshot_capacity(Some(capacity));
        svc
    }

    /// Sets (or clears) the resident-snapshot bound. Lowering the bound
    /// evicts immediately.
    pub fn set_snapshot_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity.map(|c| c.max(1));
        self.enforce_capacity(None);
    }

    /// The configured resident-snapshot bound.
    pub fn snapshot_capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Sets (or clears) the resident-snapshot **byte budget**: the LRU
    /// then evicts until the summed [`Solver::footprint_bytes`] of
    /// resident snapshots fits, so eviction pressure tracks what
    /// snapshots actually cost rather than how many there are.
    /// Lowering the budget evicts immediately. Pinned snapshots (and
    /// the root) never count as victims, so the effective floor is
    /// whatever the pinned set occupies.
    pub fn set_snapshot_budget(&mut self, budget: Option<usize>) {
        self.budget = budget;
        self.enforce_capacity(None);
    }

    /// The configured resident-snapshot byte budget.
    pub fn snapshot_budget(&self) -> Option<usize> {
        self.budget
    }

    /// Bytes currently held by the snapshot store (shared storage
    /// counted once).
    pub fn resident_bytes(&self) -> usize {
        self.store.resident_bytes()
    }

    /// Name of the snapshot store backend in use.
    pub fn store_name(&self) -> &'static str {
        self.store.name()
    }

    /// Physical page accounting of the snapshot store (zeros for the
    /// deep-clone baseline).
    pub fn page_stats(&self) -> StorePageStats {
        self.store.page_stats()
    }

    /// Whether the resident set exceeds either the count capacity or
    /// the byte budget.
    fn over_limits(&self) -> bool {
        self.capacity.is_some_and(|c| self.store.len() > c)
            || self.budget.is_some_and(|b| self.store.resident_bytes() > b)
    }

    /// The root (empty, trivially SAT) problem.
    pub fn root(&self) -> ProblemRef {
        ProblemRef(0)
    }

    /// Service counters.
    pub fn stats(&self) -> ServiceStats {
        let mut s = self.stats;
        s.live_problems = self.nodes.iter().flatten().filter(|n| !n.released).count();
        s.resident_snapshots = self.store.len();
        s.resident_bytes = self.store.resident_bytes();
        let pages = self.store.page_stats();
        s.shared_pages = pages.shared_pages;
        s.private_pages = pages.private_pages;
        let mem = self.store.mem_stats();
        s.cow_page_copies = mem.cow_page_copies;
        s.zero_fills = mem.zero_fills;
        s.bytes_written = mem.bytes_written;
        debug_assert_eq!(
            self.store.len(),
            self.nodes
                .iter()
                .flatten()
                .filter(|n| n.snap.is_some())
                .count(),
            "store residency drifted from the node table"
        );
        s
    }

    fn node(&self, r: ProblemRef) -> Option<&ProblemNode> {
        self.nodes
            .get(r.0 as usize)
            .and_then(Option::as_ref)
            .filter(|n| !n.released)
    }

    /// Like [`SolverService::node`] but sees released tombstones too —
    /// replay walks through them.
    fn raw_node(&self, r: ProblemRef) -> Option<&ProblemNode> {
        self.nodes.get(r.0 as usize).and_then(Option::as_ref)
    }

    /// The cached result of an already-solved problem.
    pub fn result_of(&self, r: ProblemRef) -> Option<SolveResult> {
        self.node(r).map(|n| n.result)
    }

    /// Depth of a problem in the derivation tree.
    pub fn depth_of(&self, r: ProblemRef) -> Option<u32> {
        self.node(r).map(|n| n.depth)
    }

    /// Whether the problem's solver snapshot is currently resident (not
    /// evicted). `None` if the reference is dead.
    pub fn is_resident(&self, r: ProblemRef) -> Option<bool> {
        self.node(r).map(|n| n.snap.is_some())
    }

    /// Pins a problem: its snapshot is never evicted. No-op on dead refs.
    pub fn pin(&mut self, r: ProblemRef) {
        if let Some(node) = self.nodes.get_mut(r.0 as usize).and_then(Option::as_mut) {
            if !node.released {
                node.pinned = true;
            }
        }
    }

    /// Unpins a problem (the root stays pinned regardless).
    pub fn unpin(&mut self, r: ProblemRef) {
        if r.0 == 0 {
            return;
        }
        if let Some(node) = self.nodes.get_mut(r.0 as usize).and_then(Option::as_mut) {
            node.pinned = false;
            // Pinned entries are discarded from the LRU heap on pop, so
            // a freshly unpinned resident node needs a new candidacy.
            if node.snap.is_some() {
                self.lru.push(Reverse((node.last_use, r.0)));
            }
        }
    }

    fn next_stamp(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// A store put wrapped in its observability: a `SnapPut` span whose
    /// payload is the pages this put dirtied, plus the put-latency
    /// histogram and dirty-rate counters.
    fn put_traced(&mut self, parent: Option<SnapId>, solver: &Solver, problem: u32) -> SnapId {
        let t0 = trace::now_ns();
        let before = self.store.mem_stats();
        let snap = self.store.put(parent, solver);
        let after = self.store.mem_stats();
        let dirtied = (after.cow_page_copies - before.cow_page_copies)
            + (after.zero_fills - before.zero_fills);
        trace::span(trace::Kind::SnapPut, t0, problem as u64, dirtied);
        let reg = trace::Registry::global();
        reg.snap_put_ns.record(trace::now_ns().saturating_sub(t0));
        reg.pages_dirtied.add(dirtied);
        reg.bytes_written
            .add(after.bytes_written - before.bytes_written);
        snap
    }

    /// A solved solver for `r`, cloned from the resident snapshot or
    /// re-derived by replaying constraint edges from the nearest resident
    /// ancestor. Returns `None` for dead references.
    fn materialize(&mut self, r: ProblemRef) -> Option<(Solver, bool)> {
        self.node(r)?;
        let stamp = self.next_stamp();
        if let Some(snap) = self.nodes[r.0 as usize].as_ref().and_then(|n| n.snap) {
            let solver = self
                .store
                .get(snap)
                .expect("resident snapshot must be retrievable");
            let node = self.nodes[r.0 as usize].as_mut().unwrap();
            node.last_use = stamp;
            if !node.pinned {
                self.lru.push(Reverse((stamp, r.0)));
            }
            self.stats.snapshot_hits += 1;
            trace::instant(trace::Kind::SnapHit, r.0 as u64, 0);
            trace::Registry::global().snapshot_hits.inc();
            return Some((solver, false));
        }
        // Metrics stay live even when the trace recorder is switched
        // off, so time with the raw clock (span() self-gates).
        let rederive_t0 = trace::now_ns();
        // Evicted: walk up to the nearest resident ancestor, then replay
        // the constraint edges downward. The root is always resident, so
        // the walk terminates even through released tombstones.
        let mut chain = vec![r];
        let mut cur = self.raw_node(r)?.parent?;
        loop {
            let node = self.raw_node(cur)?;
            if node.snap.is_some() {
                break;
            }
            chain.push(cur);
            cur = node.parent?;
        }
        let ancestor_snap = self.raw_node(cur)?.snap?;
        let mut solver = self.store.get(ancestor_snap)?;
        let before = solver.stats();
        let mut replayed = 0u64;
        // One solve per edge, not one solve at the end: each original
        // state was produced by solving at its own derivation step, and
        // the witness model depends on that trajectory (learnt clauses,
        // activity, saved phases). Batching the clauses would reproduce
        // the verdicts but not the bit-identical intermediate states.
        let mut result = SolveResult::Sat;
        for &link in chain.iter().rev() {
            let node = self.raw_node(link)?;
            for clause in &node.constraint {
                solver.add_clause(clause);
                replayed += 1;
            }
            result = solver.solve();
        }
        debug_assert_eq!(
            result,
            self.raw_node(r).map(|n| n.result).unwrap(),
            "replay must reproduce the recorded result"
        );
        let after = solver.stats();
        self.stats.rederivations += 1;
        self.stats.replayed_clauses += replayed;
        self.stats.rederive_conflicts += after.conflicts - before.conflicts;
        trace::span(
            trace::Kind::SnapRederive,
            rederive_t0,
            r.0 as u64,
            chain.len() as u64,
        );
        trace::Registry::global()
            .rederive_ns
            .record(trace::now_ns().saturating_sub(rederive_t0));
        // Cache the re-derived snapshot back (as a delta against the
        // ancestor it was replayed from): the query touching it makes it
        // the most recently used node by definition.
        let snap = self.put_traced(Some(ancestor_snap), &solver, r.0);
        let node = self.nodes[r.0 as usize].as_mut()?;
        node.snap = Some(snap);
        node.last_use = stamp;
        if !node.pinned {
            self.lru.push(Reverse((stamp, r.0)));
        }
        self.enforce_capacity(Some(r));
        Some((solver, true))
    }

    /// Evicts LRU snapshots until the resident set fits both the count
    /// capacity and the byte budget. `protect` shields one reference
    /// (the node a query is being served from) from immediate eviction.
    ///
    /// Victims come off the lazy-deletion heap: an entry is live only if
    /// its stamp still matches the node's `last_use` (newer touches push
    /// newer entries, orphaning the old ones). Pinned, evicted, reaped
    /// and stale entries are simply discarded, so the work per eviction
    /// is O(log n) amortised over touches — never a table scan.
    fn enforce_capacity(&mut self, protect: Option<ProblemRef>) {
        if self.capacity.is_none() && self.budget.is_none() {
            return;
        }
        let mut deferred: Option<Reverse<(u64, u32)>> = None;
        while self.over_limits() {
            let Some(Reverse((stamp, index))) = self.lru.pop() else {
                break; // everything left is pinned/protected
            };
            let live = self
                .nodes
                .get(index as usize)
                .and_then(Option::as_ref)
                .is_some_and(|n| n.snap.is_some() && !n.pinned && n.last_use == stamp);
            if !live {
                continue; // stale heap entry
            }
            if protect == Some(ProblemRef(index)) {
                // Still a valid candidate — put it back after the loop.
                deferred = Some(Reverse((stamp, index)));
                continue;
            }
            let node = self.nodes[index as usize].as_mut().unwrap();
            let snap = node.snap.take().expect("liveness checked above");
            let before = self.store.resident_bytes();
            self.store.remove(snap);
            self.stats.evictions += 1;
            trace::instant(
                trace::Kind::SnapEvict,
                index as u64,
                (before - self.store.resident_bytes()) as u64,
            );
            trace::Registry::global().evictions.inc();
        }
        if let Some(entry) = deferred {
            self.lru.push(entry);
        }
    }

    /// Solves `parent ∧ added`, returning the reply with an opaque
    /// reference to the new problem.
    ///
    /// The parent snapshot is immutable: solving a child never perturbs
    /// it, so any number of divergent `q`s can be layered on the same `p`
    /// — the "multi-path" in the name. If the parent snapshot was evicted
    /// it is re-derived transparently (see the module docs).
    pub fn solve(&mut self, parent: ProblemRef, added: &[Vec<Lit>]) -> Option<Reply> {
        let parent_depth = self.node(parent)?.depth;
        // The lightweight snapshot: fork the solved parent state.
        let (mut solver, rederived) = self.materialize(parent)?;
        let before = solver.stats();
        for clause in added {
            solver.add_clause(clause);
        }
        let solve_t0 = trace::now_ns();
        let result = solver.solve();
        let after = solver.stats();
        let conflicts = after.conflicts - before.conflicts;
        self.stats.queries += 1;
        // The child problem will occupy the next node slot.
        trace::span(
            trace::Kind::SolverRun,
            solve_t0,
            self.nodes.len() as u64,
            conflicts,
        );
        trace::Registry::global()
            .solve_ns
            .record(trace::now_ns().saturating_sub(solve_t0));
        self.stats.total_conflicts += conflicts;
        self.stats.total_propagations += after.propagations - before.propagations;
        let model = (result == SolveResult::Sat).then(|| solver.model());
        let stamp = self.next_stamp();
        // Store the child as a delta against the parent snapshot
        // materialize() just touched (still resident — nothing evicts
        // between there and here), so a CoW store shares every page the
        // child did not dirty.
        let parent_snap = self.nodes[parent.0 as usize].as_ref().and_then(|n| n.snap);
        let snap = self.put_traced(parent_snap, &solver, self.nodes.len() as u32);
        let node = ProblemNode {
            snap: Some(snap),
            parent: Some(parent),
            constraint: added.to_vec(),
            result,
            depth: parent_depth + 1,
            children: 0,
            released: false,
            pinned: false,
            last_use: stamp,
        };
        self.nodes.push(Some(node));
        let problem = ProblemRef((self.nodes.len() - 1) as u32);
        if let Some(parent_node) = self.nodes[parent.0 as usize].as_mut() {
            parent_node.children += 1;
        }
        self.lru.push(Reverse((stamp, problem.0)));
        self.enforce_capacity(Some(problem));
        Some(Reply {
            problem,
            result,
            model,
            conflicts,
            rederived,
        })
    }

    /// Releases a problem: the heavy solver snapshot is freed immediately
    /// and the reference goes dead for queries. If the node still has
    /// children its constraint edge is retained as a tombstone so the
    /// descendants remain derivable (they replay through it if their own
    /// snapshots get evicted); a childless node is reaped outright,
    /// cascading up through released ancestors — so solve-then-release
    /// traffic does not accumulate per-query garbage.
    pub fn release(&mut self, r: ProblemRef) {
        if r.0 == 0 {
            return; // the root is permanent
        }
        let freed = match self.nodes.get_mut(r.0 as usize).and_then(Option::as_mut) {
            Some(node) if !node.released => {
                node.released = true;
                node.pinned = false;
                node.snap.take()
            }
            _ => return,
        };
        if let Some(snap) = freed {
            self.store.remove(snap);
        }
        self.reap(r);
    }

    /// Frees `r`'s slot if it is a childless tombstone, then walks up
    /// freeing every released ancestor this leaves childless. Reaped
    /// nodes can never be needed again: replay only ever walks from a
    /// live descendant, and they have none.
    fn reap(&mut self, mut r: ProblemRef) {
        loop {
            if r.0 == 0 {
                return; // the root is never reaped
            }
            let Some(node) = self.nodes.get(r.0 as usize).and_then(Option::as_ref) else {
                return;
            };
            if !node.released || node.children > 0 {
                return;
            }
            let parent = node.parent;
            self.nodes[r.0 as usize] = None;
            match parent {
                Some(p) => {
                    let Some(parent_node) =
                        self.nodes.get_mut(p.0 as usize).and_then(Option::as_mut)
                    else {
                        return;
                    };
                    parent_node.children -= 1;
                    r = p;
                }
                None => return,
            }
        }
    }

    /// Chain of ancestors of `r`, nearest first (released ancestors
    /// included — the chain reflects derivation, not liveness).
    pub fn ancestry(&self, r: ProblemRef) -> Vec<ProblemRef> {
        let mut out = Vec::new();
        let mut cur = self.raw_node(r).and_then(|n| n.parent);
        while let Some(p) = cur {
            out.push(p);
            cur = self.raw_node(p).and_then(|n| n.parent);
        }
        out
    }

    /// The constraint clauses on the edge `parent(r) → r` (empty for the
    /// root). `None` for unknown references.
    pub fn constraint_of(&self, r: ProblemRef) -> Option<&[Vec<Lit>]> {
        self.raw_node(r).map(|n| n.constraint.as_slice())
    }

    /// Baseline: solve a whole clause set from scratch (no reuse).
    /// Returns the result and the solver stats it cost.
    pub fn solve_scratch(clauses: &[Vec<Lit>]) -> (SolveResult, SolverStats) {
        let mut solver = Solver::new();
        for clause in clauses {
            solver.add_clause(clause);
        }
        let result = solver.solve();
        (result, solver.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::IncrementalFamily;
    use crate::lit::Lit;

    fn lits(c: &[i64]) -> Vec<Lit> {
        c.iter().map(|&v| Lit::from_dimacs(v)).collect()
    }

    #[test]
    fn root_is_sat() {
        let svc = SolverService::new();
        assert_eq!(svc.result_of(svc.root()), Some(SolveResult::Sat));
        assert_eq!(svc.depth_of(svc.root()), Some(0));
    }

    #[test]
    fn incremental_chain() {
        let mut svc = SolverService::new();
        let p = svc
            .solve(svc.root(), &[lits(&[1, 2]), lits(&[-1, 2])])
            .unwrap();
        assert_eq!(p.result, SolveResult::Sat);
        // p ∧ ¬2 forces 1-related conflict: (1∨2), (¬1∨2), ¬2 → UNSAT.
        let q = svc.solve(p.problem, &[lits(&[-2])]).unwrap();
        assert_eq!(q.result, SolveResult::Unsat);
        // The parent is untouched and can branch again.
        let q2 = svc.solve(p.problem, &[lits(&[1])]).unwrap();
        assert_eq!(q2.result, SolveResult::Sat);
        assert_eq!(svc.depth_of(q2.problem), Some(2));
        assert_eq!(svc.ancestry(q2.problem), vec![p.problem, svc.root()]);
    }

    #[test]
    fn multi_path_divergence() {
        // Layer contradictory qs on the same p; each child is isolated.
        let mut svc = SolverService::new();
        let p = svc.solve(svc.root(), &[lits(&[1, 2, 3])]).unwrap();
        let a = svc.solve(p.problem, &[lits(&[1])]).unwrap();
        let b = svc.solve(p.problem, &[lits(&[-1]), lits(&[2])]).unwrap();
        assert_eq!(a.result, SolveResult::Sat);
        assert_eq!(b.result, SolveResult::Sat);
        let am = a.model.unwrap();
        let bm = b.model.unwrap();
        assert!(am[0], "branch a fixed x1=true");
        assert!(!bm[0] && bm[1], "branch b fixed x1=false, x2=true");
    }

    #[test]
    fn model_satisfies_whole_stack() {
        let fam = IncrementalFamily::new(25, 4, 3);
        let mut svc = SolverService::new();
        let base = svc.solve(svc.root(), &fam.base().clauses).unwrap();
        let mut cur = base;
        let mut all = fam.base().clauses;
        for i in 0..3 {
            let inc = fam.increment(i);
            all.extend(inc.clone());
            let reply = svc.solve(cur.problem, &inc).unwrap();
            if reply.result == SolveResult::Sat {
                let m = reply.model.as_ref().unwrap();
                assert!(
                    crate::solver::model_satisfies(&all, m),
                    "model unsatisfied after increment {i}"
                );
            }
            cur = reply;
        }
    }

    #[test]
    fn incremental_cheaper_than_scratch_on_related_queries() {
        // The E4 shape at test scale: a chain of increments solved
        // incrementally must not cost more total conflicts than solving
        // the final formula from scratch... on average. We assert the
        // weaker, deterministic property that the incremental *final
        // step* costs less than the scratch solve of the full stack,
        // which holds because most inference is inherited.
        let fam = IncrementalFamily::new(40, 6, 17);
        let mut svc = SolverService::new();
        let mut cur = svc.solve(svc.root(), &fam.base().clauses).unwrap();
        for i in 0..4 {
            cur = svc.solve(cur.problem, &fam.increment(i)).unwrap();
        }
        let (scratch_result, scratch_stats) =
            SolverService::solve_scratch(&fam.combined(4).clauses);
        assert_eq!(cur.result, scratch_result, "same answer both ways");
        assert!(
            cur.conflicts <= scratch_stats.conflicts.max(1) * 3,
            "final incremental step ({}) should not dwarf scratch ({})",
            cur.conflicts,
            scratch_stats.conflicts
        );
    }

    #[test]
    fn release_frees_but_children_survive() {
        let mut svc = SolverService::new();
        let p = svc.solve(svc.root(), &[lits(&[1])]).unwrap();
        let q = svc.solve(p.problem, &[lits(&[2])]).unwrap();
        svc.release(p.problem);
        assert_eq!(svc.result_of(p.problem), None);
        assert_eq!(svc.result_of(q.problem), Some(SolveResult::Sat));
        // Solving from a released ref fails gracefully.
        assert!(svc.solve(p.problem, &[lits(&[3])]).is_none());
        // Root cannot be released.
        svc.release(svc.root());
        assert!(svc.result_of(svc.root()).is_some());
    }

    #[test]
    fn stats_accumulate() {
        let mut svc = SolverService::new();
        let p = svc.solve(svc.root(), &[lits(&[1, 2])]).unwrap();
        svc.solve(p.problem, &[lits(&[-1])]).unwrap();
        let st = svc.stats();
        assert_eq!(st.queries, 2);
        assert_eq!(st.live_problems, 3, "root + two children");
        assert_eq!(st.resident_snapshots, 3, "nothing evicted by default");
        assert_eq!(st.snapshot_hits, 2, "both parents were resident");
        assert_eq!(st.rederivations, 0);
    }

    /// Satellite: the release leak-audit. Freeing interior nodes that
    /// still have solved children must drop them from `live_problems`,
    /// leave every child answerable, and keep the tombstones replayable.
    #[test]
    fn release_interior_nodes_leak_audit() {
        let mut svc = SolverService::new();
        let a = svc.solve(svc.root(), &[lits(&[1, 2])]).unwrap();
        let b = svc.solve(a.problem, &[lits(&[2, 3])]).unwrap();
        let c = svc.solve(b.problem, &[lits(&[3, 4])]).unwrap();
        let d = svc.solve(b.problem, &[lits(&[-3]), lits(&[4])]).unwrap();
        assert_eq!(svc.stats().live_problems, 5, "root + a,b,c,d");

        // Free the interior chain a→b while c and d still hang off b.
        svc.release(a.problem);
        svc.release(b.problem);
        let st = svc.stats();
        assert_eq!(st.live_problems, 3, "root + c + d after interior frees");
        assert_eq!(
            st.resident_snapshots, 3,
            "released interior snapshots freed immediately"
        );

        // Released refs are dead for every query path.
        assert_eq!(svc.result_of(a.problem), None);
        assert_eq!(svc.depth_of(b.problem), None);
        assert!(svc.solve(b.problem, &[lits(&[5])]).is_none());
        assert_eq!(svc.is_resident(a.problem), None);

        // The children still answer — both from their own snapshots...
        let c2 = svc.solve(c.problem, &[lits(&[5])]).unwrap();
        assert_eq!(c2.result, SolveResult::Sat);
        assert!(!c2.rederived, "child snapshot was resident");
        // ...and after their own eviction, by replay *through* the
        // released tombstones down from the root.
        svc.set_snapshot_capacity(Some(1));
        assert_eq!(svc.is_resident(d.problem), Some(false), "evicted by cap");
        svc.set_snapshot_capacity(None);
        let d2 = svc.solve(d.problem, &[lits(&[5])]).unwrap();
        assert_eq!(d2.result, SolveResult::Sat);
        assert!(d2.rederived, "evicted child re-derived through tombstones");
        let m = d2.model.unwrap();
        // d's path pinned ¬3 ∧ 4; the replayed state must still honour it.
        assert!(!m[2] && m[3], "replayed constraints hold: {m:?}");
        assert!(svc.stats().rederivations >= 1);
        assert!(svc.stats().replayed_clauses >= 4, "a+b+d edges replayed");
    }

    #[test]
    fn eviction_rederives_transparently() {
        let fam = IncrementalFamily::new(20, 3, 9);
        let mut svc = SolverService::with_capacity(2);
        let base = svc.solve(svc.root(), &fam.base().clauses).unwrap();
        let mut refs = vec![base.problem];
        let mut cur = base.problem;
        for i in 0..5 {
            let reply = svc.solve(cur, &fam.increment(i)).unwrap();
            cur = reply.problem;
            refs.push(cur);
        }
        let st = svc.stats();
        assert!(st.evictions >= 4, "capacity 2 must evict on a 6-chain");
        assert!(
            st.resident_snapshots <= 3,
            "root + capacity bound (got {})",
            st.resident_snapshots
        );
        // Every historical ref still answers, with the recorded result
        // intact and a correct model for the *full* path.
        for (i, &r) in refs.iter().enumerate() {
            let reply = svc.solve(r, &[]).unwrap();
            assert_eq!(reply.result, svc.result_of(r).unwrap(), "ref {i}");
            if let Some(m) = &reply.model {
                let mut stack = fam.base().clauses;
                for j in 0..i as u64 {
                    stack.extend(fam.increment(j));
                }
                assert!(
                    crate::solver::model_satisfies(&stack, m),
                    "ref {i}: replayed model violates its path"
                );
            }
        }
        assert!(svc.stats().rederivations > 0, "the chain forced replays");
    }

    /// Solve-then-release traffic must not accumulate per-query garbage:
    /// childless tombstones are reaped outright, cascading up through
    /// released ancestors.
    #[test]
    fn leaf_release_reaps_slots_and_cascades() {
        let mut svc = SolverService::new();
        let a = svc.solve(svc.root(), &[lits(&[1])]).unwrap();
        let b = svc.solve(a.problem, &[lits(&[2])]).unwrap();
        // Releasing the interior node keeps a tombstone (b depends on it)…
        svc.release(a.problem);
        assert!(svc.constraint_of(a.problem).is_some(), "tombstone retained");
        // …but releasing the leaf reaps it AND cascades into a.
        svc.release(b.problem);
        assert!(svc.constraint_of(b.problem).is_none(), "leaf slot reaped");
        assert!(svc.constraint_of(a.problem).is_none(), "cascade freed a");
        let st = svc.stats();
        assert_eq!(st.live_problems, 1, "only the root remains");
        assert_eq!(st.resident_snapshots, 1, "only the root snapshot");
        // The classic one-shot client loop stays O(1) in retained nodes.
        for v in 1..=20i64 {
            let q = svc.solve(svc.root(), &[lits(&[v])]).unwrap();
            svc.release(q.problem);
        }
        assert_eq!(svc.stats().live_problems, 1, "no per-query garbage");
        // Double release is idempotent; the refs stay dead.
        svc.release(b.problem);
        assert_eq!(svc.result_of(b.problem), None);
    }

    /// Byte-budget eviction is cost-aware: a few huge snapshots blow
    /// the budget and get evicted while many tiny ones stay resident —
    /// a raw count cap over the same tree (9 resident snapshots) would
    /// have evicted nothing at all.
    #[test]
    fn byte_budget_evicts_huge_snapshots_before_many_tiny_ones() {
        let mut svc = SolverService::new();
        let root_cost = svc.stats().resident_bytes;
        // A couple of huge snapshots first (least recently used):
        // hundreds of clauses over 120 vars each.
        let fam = IncrementalFamily::new(120, 3, 5);
        let huge: Vec<ProblemRef> = (0..2)
            .map(|_| svc.solve(svc.root(), &fam.base().clauses).unwrap().problem)
            .collect();
        let huge_pair = svc.stats().resident_bytes - root_cost;
        // Then many tiny snapshots: one unit clause each.
        let tiny: Vec<ProblemRef> = (1..=8i64)
            .map(|v| svc.solve(svc.root(), &[lits(&[v])]).unwrap().problem)
            .collect();
        let full_cost = svc.stats().resident_bytes;
        assert!(
            huge_pair / 2 > (full_cost - root_cost - huge_pair),
            "one huge snapshot outweighs all eight tiny ones combined"
        );

        // Budget: the root and every tiny snapshot fit; the huge pair
        // does not. A count cap would need to drop to < 9 snapshots to
        // evict anything here — the byte budget evicts exactly the two
        // huge ones (also the LRU-oldest) and nothing else.
        let budget = full_cost - huge_pair;
        svc.set_snapshot_budget(Some(budget));
        let st = svc.stats();
        assert_eq!(st.evictions, 2, "exactly the huge pair evicted");
        assert!(st.resident_bytes <= budget, "budget respected");
        assert!(
            huge.iter().all(|&r| svc.is_resident(r) == Some(false)),
            "both huge snapshots evicted"
        );
        assert!(
            tiny.iter().all(|&r| svc.is_resident(r) == Some(true)),
            "every tiny snapshot still resident"
        );
        assert_eq!(st.resident_snapshots, 9, "root + 8 tiny");

        // Evicted huge problems still answer by replay (which may evict
        // tiny LRU victims to make room for the re-derived snapshot).
        let reply = svc.solve(huge[0], &[]).unwrap();
        assert_eq!(reply.result, svc.result_of(huge[0]).unwrap());
        assert!(reply.rederived);
        assert!(svc.stats().resident_bytes <= budget + huge_pair);
    }

    /// The budget tracks releases and re-derivations without drifting.
    #[test]
    fn byte_budget_accounting_survives_release_and_rederive() {
        let mut svc = SolverService::new();
        let a = svc.solve(svc.root(), &[lits(&[1, 2])]).unwrap();
        let b = svc.solve(a.problem, &[lits(&[3])]).unwrap();
        let before = svc.stats().resident_bytes;
        assert!(before > 0);
        // Evict b via a 1-snapshot... use a tiny budget instead: only
        // pinned root survives.
        svc.set_snapshot_budget(Some(1));
        let st = svc.stats();
        assert_eq!(st.resident_snapshots, 1, "only the pinned root left");
        assert!(st.resident_bytes < before);
        // Re-derivation restores the cost, then release drops it again.
        svc.set_snapshot_budget(None);
        let b2 = svc.solve(b.problem, &[]).unwrap();
        assert!(b2.rederived);
        let mid = svc.stats().resident_bytes;
        assert!(mid > st.resident_bytes);
        svc.release(b.problem);
        svc.release(a.problem);
        assert!(svc.stats().resident_bytes < mid);
    }

    #[test]
    fn pinning_protects_from_eviction() {
        let mut svc = SolverService::with_capacity(2);
        let a = svc.solve(svc.root(), &[lits(&[1])]).unwrap();
        svc.pin(a.problem);
        let mut cur = a.problem;
        for v in 2..6 {
            cur = svc.solve(cur, &[lits(&[v])]).unwrap().problem;
        }
        assert_eq!(svc.is_resident(a.problem), Some(true), "pinned survives");
        svc.unpin(a.problem);
        cur = svc.solve(cur, &[lits(&[6])]).unwrap().problem;
        let _ = cur;
        assert_eq!(svc.is_resident(a.problem), Some(false), "unpinned evicts");
        // The root is never evictable even via unpin.
        svc.unpin(svc.root());
        assert_eq!(svc.is_resident(svc.root()), Some(true));
    }

    #[test]
    fn problem_ref_index_roundtrip() {
        let mut svc = SolverService::new();
        let p = svc.solve(svc.root(), &[lits(&[1])]).unwrap();
        let r = ProblemRef::from_index(p.problem.index());
        assert_eq!(r, p.problem);
        assert_eq!(svc.result_of(r), Some(SolveResult::Sat));
    }
}
