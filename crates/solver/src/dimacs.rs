//! DIMACS CNF reading and writing.

use crate::lit::Lit;

/// A parsed CNF formula.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Declared variable count (may exceed the variables actually used).
    pub num_vars: usize,
    /// The clauses.
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Creates an empty formula.
    pub fn new(num_vars: usize) -> Cnf {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Adds a clause from DIMACS integers.
    pub fn clause(&mut self, lits: &[i64]) -> &mut Self {
        self.clauses
            .push(lits.iter().map(|&v| Lit::from_dimacs(v)).collect());
        self
    }

    /// Loads the formula into a fresh solver.
    pub fn to_solver(&self) -> crate::solver::Solver {
        let mut s = crate::solver::Solver::new();
        s.ensure_vars(self.num_vars);
        for c in &self.clauses {
            s.add_clause(c);
        }
        s
    }
}

/// DIMACS parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DimacsError {
    /// 1-based line number.
    pub line: usize,
    /// Description.
    pub msg: String,
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for DimacsError {}

/// Parses DIMACS CNF text.
pub fn parse_dimacs(text: &str) -> Result<Cnf, DimacsError> {
    let mut cnf = Cnf::default();
    let mut current: Vec<Lit> = Vec::new();
    let mut seen_header = false;
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') || line.starts_with('%') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let parts: Vec<&str> = rest.split_whitespace().collect();
            if parts.len() != 3 || parts[0] != "cnf" {
                return Err(DimacsError {
                    line: line_no,
                    msg: format!("bad header `{line}`"),
                });
            }
            cnf.num_vars = parts[1].parse().map_err(|_| DimacsError {
                line: line_no,
                msg: "bad var count".into(),
            })?;
            seen_header = true;
            continue;
        }
        if !seen_header {
            return Err(DimacsError {
                line: line_no,
                msg: "clause before header".into(),
            });
        }
        for tok in line.split_whitespace() {
            let v: i64 = tok.parse().map_err(|_| DimacsError {
                line: line_no,
                msg: format!("bad literal `{tok}`"),
            })?;
            if v == 0 {
                cnf.clauses.push(std::mem::take(&mut current));
            } else {
                if v.unsigned_abs() as usize > cnf.num_vars {
                    return Err(DimacsError {
                        line: line_no,
                        msg: format!("literal {v} exceeds declared {} vars", cnf.num_vars),
                    });
                }
                current.push(Lit::from_dimacs(v));
            }
        }
    }
    if !current.is_empty() {
        // Tolerate a missing final 0, as many tools emit it.
        cnf.clauses.push(current);
    }
    Ok(cnf)
}

/// Renders a formula as DIMACS text.
pub fn write_dimacs(cnf: &Cnf) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "p cnf {} {}", cnf.num_vars, cnf.clauses.len());
    for clause in &cnf.clauses {
        for lit in clause {
            let _ = write!(out, "{} ", lit.to_dimacs());
        }
        let _ = writeln!(out, "0");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn parse_simple() {
        let cnf = parse_dimacs("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses.len(), 2);
        assert_eq!(
            cnf.clauses[0],
            vec![Lit::from_dimacs(1), Lit::from_dimacs(-2)]
        );
    }

    #[test]
    fn parse_multiline_clause_and_missing_zero() {
        let cnf = parse_dimacs("p cnf 2 1\n1\n-2\n0\np_extra_ignored? no").unwrap_err();
        // `p_extra_ignored? no` is a bad header line starting with p.
        assert!(cnf.msg.contains("bad header"));
        let cnf = parse_dimacs("p cnf 2 1\n1\n-2").unwrap();
        assert_eq!(cnf.clauses.len(), 1);
        assert_eq!(cnf.clauses[0].len(), 2);
    }

    #[test]
    fn errors() {
        assert!(parse_dimacs("1 2 0")
            .unwrap_err()
            .msg
            .contains("before header"));
        assert!(parse_dimacs("p cnf 1 1\n5 0")
            .unwrap_err()
            .msg
            .contains("exceeds"));
        assert!(parse_dimacs("p cnf 1 1\nxyz 0")
            .unwrap_err()
            .msg
            .contains("bad literal"));
    }

    #[test]
    fn roundtrip_and_solve() {
        let mut cnf = Cnf::new(3);
        cnf.clause(&[1, 2]).clause(&[-1, 3]).clause(&[-2, -3]);
        let text = write_dimacs(&cnf);
        let back = parse_dimacs(&text).unwrap();
        assert_eq!(back, cnf);
        assert_eq!(back.to_solver().solve(), SolveResult::Sat);
    }
}
