//! `lwsat` — a DIMACS CNF solver front-end.
//!
//! ```text
//! lwsat <file.cnf>          solve; print s SAT/UNSAT + v model lines
//! lwsat --gen-php <holes>   print the PHP(holes+1, holes) instance
//! lwsat --gen-ksat <vars> <clauses> <seed>
//!                           print a random 3-SAT instance
//! ```
//!
//! Output follows the SAT-competition convention (`s` / `v` lines), so the
//! solver can be scripted against standard tooling.

use std::process::ExitCode;

use lwsnap_solver::{parse_dimacs, pigeonhole, random_ksat, write_dimacs, SolveResult, Var};

fn usage() -> ExitCode {
    eprintln!(
        "usage: lwsat <file.cnf>\n       lwsat --gen-php <holes>\n       \
         lwsat --gen-ksat <vars> <clauses> <seed>"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--gen-php") => {
            let Some(holes) = args.get(1).and_then(|v| v.parse().ok()) else {
                return usage();
            };
            print!("{}", write_dimacs(&pigeonhole(holes)));
            ExitCode::SUCCESS
        }
        Some("--gen-ksat") => {
            let parsed: Option<(usize, usize, u64)> = (|| {
                Some((
                    args.get(1)?.parse().ok()?,
                    args.get(2)?.parse().ok()?,
                    args.get(3)?.parse().ok()?,
                ))
            })();
            let Some((vars, clauses, seed)) = parsed else {
                return usage();
            };
            print!("{}", write_dimacs(&random_ksat(vars, clauses, 3, seed)));
            ExitCode::SUCCESS
        }
        Some(path) if !path.starts_with('-') => solve_file(path),
        _ => usage(),
    }
}

fn solve_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("lwsat: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cnf = match parse_dimacs(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lwsat: {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut solver = cnf.to_solver();
    let start = std::time::Instant::now();
    let result = solver.solve();
    let elapsed = start.elapsed();
    let stats = solver.stats();
    eprintln!(
        "c {} vars, {} clauses | {} decisions, {} conflicts, {} propagations, {} restarts | {elapsed:?}",
        cnf.num_vars,
        cnf.clauses.len(),
        stats.decisions,
        stats.conflicts,
        stats.propagations,
        stats.restarts,
    );
    match result {
        SolveResult::Unsat => {
            println!("s UNSATISFIABLE");
            ExitCode::from(20)
        }
        SolveResult::Sat => {
            println!("s SATISFIABLE");
            let mut line = String::from("v");
            for i in 0..cnf.num_vars {
                let lit = match solver.model_value(Var(i as u32)) {
                    Some(true) | None => (i as i64) + 1,
                    Some(false) => -((i as i64) + 1),
                };
                line.push_str(&format!(" {lit}"));
                if line.len() > 72 {
                    println!("{line}");
                    line = String::from("v");
                }
            }
            println!("{line} 0");
            ExitCode::from(10)
        }
    }
}
