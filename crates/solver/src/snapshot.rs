//! Snapshot storage behind the service: the [`SnapshotStore`] trait,
//! the deep-clone conformance baseline, and the **lossless sectioned
//! codec** page-granular stores build on.
//!
//! The paper's claim is that a snapshot should cost O(dirty state), not
//! O(whole state). [`crate::service::SolverService`] therefore talks to
//! its snapshots only through [`SnapshotStore`]: `put` a solved solver
//! (optionally as a delta against its parent snapshot), `get` it back
//! **bit-identical**, `remove` it when the eviction policy says so. The
//! in-crate [`DeepCloneStore`] keeps whole cloned solvers — exactly the
//! pre-store behaviour, retained as the conformance baseline — while
//! `lwsnap-snapstore`'s CoW store lays the encoded state onto the
//! persistent radix page table of `lwsnap-mem` so a child snapshot pays
//! only for the pages it dirtied.
//!
//! ## The codec
//!
//! [`encode`] serializes a [`Solver`] into [`NUM_SECTIONS`] independent
//! byte sections, one per field, so a page-granular store can give each
//! section its own fixed base address: a field that did not change
//! between parent and child produces byte-identical pages at identical
//! offsets, and the store's compare-before-write keeps them physically
//! shared. Three layout rules protect that stability:
//!
//! * **Fixed section bases** — growth of one section never shifts
//!   another's bytes.
//! * **Essential state only** — purely derived state (watch lists, the
//!   decision heap, the `seen` scratch array) is not serialized at all.
//!   Those structures record the *search path*, not the state, and are
//!   reshuffled wholesale by every solve; [`decode`] rebuilds them with
//!   the solver's own normalization pass instead.
//! * **Snapshot normal form** — the solver canonicalizes its derived
//!   state after every solve (clause literals sorted, watches picked
//!   deterministically, stale per-variable fields zeroed), so the
//!   sections that *are* serialized differ between parent and child only
//!   where the state genuinely differs.
//!
//! The encoding is exact for quiescent solvers (decision level 0,
//! propagation complete — the only states the service snapshots): every
//! essential field round-trips bit-for-bit (`f64`s travel as raw bits)
//! and the rebuilt derived state is byte-identical to the live solver's,
//! so a decoded solver replays decisions, propagations and conflicts
//! identically to the original — the property that keeps verdicts AND
//! witnesses bit-identical across store backends.

use crate::heap::VarHeap;
use crate::lit::{Lbool, Lit};
use crate::solver::{Solver, SolverStats};

/// Number of sections [`encode`] produces (section 0 is the header).
pub const NUM_SECTIONS: usize = 13;

/// Exact byte length of the header section (section 0): its own length
/// word, the per-section byte-length table, the scalar fields, and the
/// run counters.
pub const HEADER_LEN: usize = 8 + NUM_SECTIONS * 8 + 4 * 8 + 6 * 8 + 1;

// Section indices (section 0 is the header).
const SEC_ARENA: usize = 1;
const SEC_CLAUSES: usize = 2;
const SEC_LEARNTS: usize = 3;
const SEC_LEARNT_ACT: usize = 4;
const SEC_ASSIGNS: usize = 5;
const SEC_LEVEL: usize = 6;
const SEC_REASON: usize = 7;
const SEC_TRAIL: usize = 8;
const SEC_TRAIL_LIM: usize = 9;
const SEC_ACTIVITY: usize = 10;
const SEC_POLARITY: usize = 11;
const SEC_MODEL: usize = 12;

/// Generation-stamped handle to a snapshot inside a [`SnapshotStore`].
///
/// Slots are recycled; the generation makes a stale handle (kept across
/// a `remove`) a detectable dead reference instead of silently aliasing
/// whatever snapshot reused the slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SnapId {
    idx: u32,
    gen: u32,
}

impl SnapId {
    /// Builds a handle from its raw parts (store implementations only).
    #[inline]
    pub fn new(idx: u32, gen: u32) -> SnapId {
        SnapId { idx, gen }
    }

    /// The slot index.
    #[inline]
    pub fn idx(self) -> u32 {
        self.idx
    }

    /// The slot generation the handle was minted under.
    #[inline]
    pub fn gen(self) -> u32 {
        self.gen
    }
}

/// Physical page accounting of a store, for the residency stats.
///
/// A page is *shared* if more than one resident snapshot maps it,
/// *private* if exactly one does. Stores without page granularity (the
/// deep-clone baseline) report zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorePageStats {
    /// Distinct physical pages resident in the store.
    pub total_pages: u64,
    /// Distinct pages mapped by two or more snapshots.
    pub shared_pages: u64,
    /// Distinct pages mapped by exactly one snapshot.
    pub private_pages: u64,
}

/// Cumulative write-path accounting of a store: how much actual page
/// dirtying the snapshots cost. Counters only grow; stores without
/// page granularity report zeros.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreMemStats {
    /// Shared pages copied on first divergent write (CoW breaks).
    pub cow_page_copies: u64,
    /// Fresh pages materialized from the zero page.
    pub zero_fills: u64,
    /// Bytes written into page frames by snapshot puts.
    pub bytes_written: u64,
}

/// Storage backend for solver snapshots.
///
/// The contract the service relies on: `get(put(parent, s))` returns a
/// solver **bit-identical** to `s` — same verdicts, same witnesses,
/// same future behaviour — regardless of how the store represents it
/// internally. `parent` is a sharing hint: a page-granular store lays
/// the child over the parent's pages so only the dirtied ones cost
/// memory; a store may ignore it entirely.
pub trait SnapshotStore: Send {
    /// Stores a snapshot of `solver`, optionally as a delta against the
    /// (still-resident) `parent` snapshot.
    fn put(&mut self, parent: Option<SnapId>, solver: &Solver) -> SnapId;

    /// Reconstructs the snapshot. `None` for stale or removed handles.
    fn get(&self, id: SnapId) -> Option<Solver>;

    /// Drops the snapshot, freeing whatever storage was private to it.
    /// Returns `false` for stale or already-removed handles.
    fn remove(&mut self, id: SnapId) -> bool;

    /// Number of snapshots currently resident.
    fn len(&self) -> usize;

    /// `true` if no snapshots are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Actual bytes held by the store, counting storage shared between
    /// snapshots **once** — the number the eviction budget compares.
    fn resident_bytes(&self) -> usize;

    /// Physical page accounting (zeros for non-page-granular stores).
    fn page_stats(&self) -> StorePageStats {
        StorePageStats::default()
    }

    /// Cumulative write-path accounting (zeros for stores that don't
    /// track page dirtying).
    fn mem_stats(&self) -> StoreMemStats {
        StoreMemStats::default()
    }

    /// Human-readable backend name (for logs and stats dumps).
    fn name(&self) -> &'static str;
}

// ---------------------------------------------------------------------
// Deep-clone baseline store.
// ---------------------------------------------------------------------

/// The conformance baseline: every snapshot is a whole cloned
/// [`Solver`], priced at [`Solver::footprint_bytes`] — exactly what the
/// service did before the store abstraction existed. No sharing, no
/// deltas; `resident_bytes` is the plain sum of footprints.
#[derive(Default)]
pub struct DeepCloneStore {
    slots: Vec<Option<(Solver, usize)>>,
    gens: Vec<u32>,
    free: Vec<u32>,
    total: usize,
    live: usize,
}

impl DeepCloneStore {
    /// An empty store.
    pub fn new() -> DeepCloneStore {
        DeepCloneStore::default()
    }
}

impl SnapshotStore for DeepCloneStore {
    fn put(&mut self, _parent: Option<SnapId>, solver: &Solver) -> SnapId {
        let cost = solver.footprint_bytes();
        self.total += cost;
        self.live += 1;
        let entry = Some((solver.clone(), cost));
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = entry;
                SnapId::new(idx, self.gens[idx as usize])
            }
            None => {
                self.slots.push(entry);
                self.gens.push(0);
                SnapId::new((self.slots.len() - 1) as u32, 0)
            }
        }
    }

    fn get(&self, id: SnapId) -> Option<Solver> {
        if *self.gens.get(id.idx() as usize)? != id.gen() {
            return None;
        }
        self.slots[id.idx() as usize]
            .as_ref()
            .map(|(s, _)| s.clone())
    }

    fn remove(&mut self, id: SnapId) -> bool {
        let Some(&gen) = self.gens.get(id.idx() as usize) else {
            return false;
        };
        if gen != id.gen() {
            return false;
        }
        match self.slots[id.idx() as usize].take() {
            Some((_, cost)) => {
                self.total -= cost;
                self.live -= 1;
                self.gens[id.idx() as usize] = gen.wrapping_add(1);
                self.free.push(id.idx());
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn resident_bytes(&self) -> usize {
        self.total
    }

    fn name(&self) -> &'static str {
        "deep-clone"
    }
}

// ---------------------------------------------------------------------
// The sectioned codec.
// ---------------------------------------------------------------------

fn put_u32s(out: &mut Vec<u8>, vals: impl IntoIterator<Item = u32>) {
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_u64s(out: &mut Vec<u8>, vals: impl IntoIterator<Item = u64>) {
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn put_f64s(out: &mut Vec<u8>, vals: &[f64]) {
    for v in vals {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
}

fn lbool_to_u8(b: Lbool) -> u8 {
    match b {
        Lbool::Undef => 0,
        Lbool::True => 1,
        Lbool::False => 2,
    }
}

fn lbool_from_u8(b: u8) -> Option<Lbool> {
    match b {
        0 => Some(Lbool::Undef),
        1 => Some(Lbool::True),
        2 => Some(Lbool::False),
        _ => None,
    }
}

/// Serializes `solver` into [`NUM_SECTIONS`] byte sections. Section 0
/// is the header (its own length, the per-section length table, the
/// scalar fields); the rest are one field each, at fixed indices, so a
/// page-granular store can assign each a fixed base address.
///
/// The solver must be quiescent (decision level 0, propagation
/// complete) — the state every solve leaves behind and the only state
/// the service snapshots. Derived state (watch lists, decision heap,
/// `seen`) is deliberately not serialized; [`decode`] rebuilds it.
pub fn encode(solver: &Solver) -> Vec<Vec<u8>> {
    debug_assert!(solver.trail_lim.is_empty(), "encode mid-solve");
    debug_assert_eq!(solver.qhead, solver.trail.len(), "encode mid-propagation");
    let mut sections: Vec<Vec<u8>> = vec![Vec::new(); NUM_SECTIONS];

    put_u32s(&mut sections[SEC_ARENA], solver.arena.iter().copied());
    put_u32s(&mut sections[SEC_CLAUSES], solver.clauses.iter().copied());
    put_u32s(&mut sections[SEC_LEARNTS], solver.learnts.iter().copied());
    put_f64s(&mut sections[SEC_LEARNT_ACT], &solver.learnt_act);
    sections[SEC_ASSIGNS].extend(solver.assigns.iter().map(|&b| lbool_to_u8(b)));
    put_u32s(&mut sections[SEC_LEVEL], solver.level.iter().copied());
    put_u32s(&mut sections[SEC_REASON], solver.reason.iter().copied());
    put_u32s(&mut sections[SEC_TRAIL], solver.trail.iter().map(|l| l.0));
    put_u64s(
        &mut sections[SEC_TRAIL_LIM],
        solver.trail_lim.iter().map(|&v| v as u64),
    );
    put_f64s(&mut sections[SEC_ACTIVITY], &solver.activity);
    sections[SEC_POLARITY].extend(solver.polarity.iter().map(|&b| b as u8));
    sections[SEC_MODEL].extend(solver.model.iter().map(|&b| lbool_to_u8(b)));

    // Header last: it carries every section's final byte length.
    let mut header = Vec::with_capacity(HEADER_LEN);
    put_u64s(&mut header, [HEADER_LEN as u64]);
    put_u64s(&mut header, [HEADER_LEN as u64]); // lengths[0] = header itself
    for sec in &sections[1..] {
        put_u64s(&mut header, [sec.len() as u64]);
    }
    put_u64s(&mut header, [solver.qhead as u64]);
    put_u64s(&mut header, [solver.var_inc.to_bits()]);
    put_u64s(&mut header, [solver.cla_inc.to_bits()]);
    put_u64s(&mut header, [solver.max_learnts.to_bits()]);
    let st = &solver.stats;
    put_u64s(
        &mut header,
        [
            st.decisions,
            st.propagations,
            st.conflicts,
            st.restarts,
            st.learnt_clauses,
            st.removed_clauses,
        ],
    );
    header.push(solver.ok as u8);
    debug_assert_eq!(header.len(), HEADER_LEN);
    sections[0] = header;
    sections
}

/// Reads the header's self-declared byte length from its first bytes
/// (≥ 8 required). `None` if the prefix is too short or implausible.
pub fn header_len(prefix: &[u8]) -> Option<usize> {
    let len = u64::from_le_bytes(prefix.get(..8)?.try_into().ok()?) as usize;
    (len == HEADER_LEN).then_some(len)
}

/// Parses the per-section byte-length table out of a full header.
pub fn section_lengths(header: &[u8]) -> Option<[usize; NUM_SECTIONS]> {
    if header.len() < HEADER_LEN || header_len(header).is_none() {
        return None;
    }
    let mut lens = [0usize; NUM_SECTIONS];
    for (i, len) in lens.iter_mut().enumerate() {
        let at = 8 + i * 8;
        *len = u64::from_le_bytes(header[at..at + 8].try_into().unwrap()) as usize;
    }
    (lens[0] == HEADER_LEN).then_some(lens)
}

/// Little-endian cursor over one section.
struct Cur<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cur<'a> {
    fn new(buf: &'a [u8]) -> Cur<'a> {
        Cur { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let out = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(out)
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn decode_u32s(sec: &[u8]) -> Option<Vec<u32>> {
    if !sec.len().is_multiple_of(4) {
        return None;
    }
    Some(
        sec.chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect(),
    )
}

fn decode_f64s(sec: &[u8]) -> Option<Vec<f64>> {
    if !sec.len().is_multiple_of(8) {
        return None;
    }
    Some(
        sec.chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect(),
    )
}

fn decode_usizes(sec: &[u8]) -> Option<Vec<usize>> {
    if !sec.len().is_multiple_of(8) {
        return None;
    }
    Some(
        sec.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()) as usize)
            .collect(),
    )
}

/// Validates that every cref in `refs` points at a well-formed clause
/// record inside `arena` (in-bounds, length ≥ 2, the `learnt` header
/// bit matching the list it came from, all literals within `nvars`).
fn validate_crefs(arena: &[u32], refs: &[u32], learnt: bool, nvars: usize) -> bool {
    refs.iter().all(|&cref| {
        let at = cref as usize;
        let Some(&header) = arena.get(at) else {
            return false;
        };
        if (header & 1 != 0) != learnt {
            return false;
        }
        let len = (header >> 1) as usize;
        if len < 2 || at + 1 + len > arena.len() {
            return false;
        }
        arena[at + 1..at + 1 + len]
            .iter()
            .all(|&l| Lit(l).var().index() < nvars)
    })
}

/// Reconstructs a [`Solver`] from sections produced by [`encode`].
/// `None` if the sections are malformed or mutually inconsistent (a
/// corrupted store surfaces as a dead snapshot, never a panic or a
/// silently wrong solver).
///
/// Derived state — watch lists, the decision heap, the `seen` scratch
/// array — is rebuilt by the solver's own normalization pass, which is
/// deterministic and idempotent: a decoded solver is byte-identical to
/// the (normalized) solver that was encoded.
pub fn decode(sections: &[Vec<u8>]) -> Option<Solver> {
    if sections.len() != NUM_SECTIONS {
        return None;
    }
    let mut h = Cur::new(&sections[0]);
    let declared = h.u64()? as usize;
    if declared != HEADER_LEN || sections[0].len() != HEADER_LEN {
        return None;
    }
    let mut lens = [0usize; NUM_SECTIONS];
    for len in lens.iter_mut() {
        *len = h.u64()? as usize;
    }
    for (sec, &len) in sections.iter().zip(&lens) {
        if sec.len() != len {
            return None;
        }
    }
    let qhead = h.u64()? as usize;
    let var_inc = h.f64()?;
    let cla_inc = h.f64()?;
    let max_learnts = h.f64()?;
    let stats = SolverStats {
        decisions: h.u64()?,
        propagations: h.u64()?,
        conflicts: h.u64()?,
        restarts: h.u64()?,
        learnt_clauses: h.u64()?,
        removed_clauses: h.u64()?,
    };
    let ok = match h.take(1)?[0] {
        0 => false,
        1 => true,
        _ => return None,
    };
    if !h.done() {
        return None;
    }

    let assigns: Vec<Lbool> = sections[SEC_ASSIGNS]
        .iter()
        .map(|&b| lbool_from_u8(b))
        .collect::<Option<_>>()?;
    let nvars = assigns.len();

    let mut solver = Solver {
        arena: decode_u32s(&sections[SEC_ARENA])?,
        clauses: decode_u32s(&sections[SEC_CLAUSES])?,
        learnts: decode_u32s(&sections[SEC_LEARNTS])?,
        learnt_act: decode_f64s(&sections[SEC_LEARNT_ACT])?,
        watches: vec![Vec::new(); 2 * nvars],
        assigns,
        level: decode_u32s(&sections[SEC_LEVEL])?,
        reason: decode_u32s(&sections[SEC_REASON])?,
        trail: decode_u32s(&sections[SEC_TRAIL])?
            .into_iter()
            .map(Lit)
            .collect(),
        trail_lim: decode_usizes(&sections[SEC_TRAIL_LIM])?,
        qhead,
        activity: decode_f64s(&sections[SEC_ACTIVITY])?,
        var_inc,
        cla_inc,
        order: VarHeap::new(),
        polarity: sections[SEC_POLARITY].iter().map(|&b| b != 0).collect(),
        seen: vec![false; nvars],
        ok,
        model: sections[SEC_MODEL]
            .iter()
            .map(|&b| lbool_from_u8(b))
            .collect::<Option<_>>()?,
        max_learnts,
        stats,
    };
    // Cross-field sanity. Per-variable arrays must agree on the variable
    // count; the trail must be a quiescent level-0 prefix (encode only
    // accepts quiescent solvers); every clause reference must point at a
    // well-formed arena record, since the normalization pass below walks
    // them to rebuild the watch lists.
    if solver.level.len() != nvars
        || solver.reason.len() != nvars
        || solver.activity.len() != nvars
        || solver.polarity.len() != nvars
        || solver.learnt_act.len() != solver.learnts.len()
        || !solver.trail_lim.is_empty()
        || solver.qhead != solver.trail.len()
        || solver.trail.iter().any(|l| l.var().index() >= nvars)
        || !validate_crefs(&solver.arena, &solver.clauses, false, nvars)
        || !validate_crefs(&solver.arena, &solver.learnts, true, nvars)
    {
        return None;
    }
    // Rebuild the derived state (watches, decision heap, seen) into the
    // snapshot normal form — the same pass every solve ends with.
    solver.normalize();
    Some(solver)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::IncrementalFamily;
    use crate::solver::SolveResult;

    fn worked_solver() -> Solver {
        // A solver with real search history: learnt clauses, bumped
        // activities, saved phases, a non-trivial heap.
        let fam = IncrementalFamily::new(60, 4, 23);
        let mut s = Solver::new();
        for c in &fam.combined(2).clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        s
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let s = worked_solver();
        let enc = encode(&s);
        let back = decode(&enc).expect("own encoding decodes");
        // Bit-identity is checked through the codec itself: identical
        // states must re-encode to identical bytes.
        assert_eq!(encode(&back), enc);
    }

    #[test]
    fn roundtrip_preserves_future_behaviour() {
        let fam = IncrementalFamily::new(60, 4, 23);
        let mut original = worked_solver();
        let mut restored = decode(&encode(&original)).unwrap();
        for i in 0..3 {
            for c in &fam.increment(i) {
                original.add_clause(c);
                restored.add_clause(c);
            }
            let (a, b) = (original.solve(), restored.solve());
            assert_eq!(a, b, "verdicts diverged at increment {i}");
            assert_eq!(original.model(), restored.model(), "witness diverged");
            assert_eq!(original.stats(), restored.stats(), "search diverged");
        }
        assert_eq!(encode(&original), encode(&restored));
    }

    #[test]
    fn empty_solver_roundtrips() {
        let s = Solver::new();
        let enc = encode(&s);
        assert_eq!(enc[0].len(), HEADER_LEN);
        let back = decode(&enc).unwrap();
        assert_eq!(encode(&back), enc);
    }

    #[test]
    fn equal_states_encode_equal() {
        // The point of the snapshot normal form: the same semantic state
        // reached through clone-then-solve re-encodes identically, so a
        // CoW child dirties only the pages of fields that truly changed.
        let s = worked_solver();
        let twice = {
            let mut t = s.clone();
            // Re-solving an already-satisfied formula at quiescence makes
            // no decisions and learns nothing...
            assert_eq!(t.solve(), SolveResult::Sat);
            t
        };
        // ...but does bump the stats; equality must hold section by
        // section for everything except the header.
        let (a, b) = (encode(&s), encode(&twice));
        for i in 1..NUM_SECTIONS {
            assert_eq!(a[i], b[i], "section {i} diverged");
        }
    }

    #[test]
    fn header_tables_are_consistent() {
        let s = worked_solver();
        let enc = encode(&s);
        assert_eq!(header_len(&enc[0]), Some(HEADER_LEN));
        let lens = section_lengths(&enc[0]).unwrap();
        for (sec, &len) in enc.iter().zip(&lens) {
            assert_eq!(sec.len(), len);
        }
    }

    #[test]
    fn corrupt_sections_decode_to_none() {
        let s = worked_solver();
        let mut enc = encode(&s);
        enc[SEC_ASSIGNS].push(9); // not a valid Lbool
        assert!(decode(&enc).is_none());
        let mut enc = encode(&s);
        enc[SEC_LEVEL].pop(); // per-var array out of step
        assert!(decode(&enc).is_none());
        let mut enc = encode(&s);
        enc[0][0] = 0xff; // implausible header length
        assert!(decode(&enc).is_none());
        let mut enc = encode(&s);
        // Dangling clause reference (same section length, so only the
        // cref validation can catch it).
        let last = enc[SEC_CLAUSES].len() - 4;
        enc[SEC_CLAUSES][last..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&enc).is_none());
        assert!(decode(&[]).is_none());
    }

    #[test]
    fn deep_clone_store_contract() {
        let mut store = DeepCloneStore::new();
        assert!(store.is_empty());
        let s = worked_solver();
        let id = store.put(None, &s);
        assert_eq!(store.len(), 1);
        assert_eq!(store.resident_bytes(), s.footprint_bytes());
        let back = store.get(id).unwrap();
        assert_eq!(encode(&back), encode(&s));
        assert!(store.remove(id));
        assert!(!store.remove(id), "double remove is detected");
        assert_eq!(store.resident_bytes(), 0);
        // Slot reuse bumps the generation: the stale handle stays dead.
        let id2 = store.put(None, &s);
        assert_eq!(id2.idx(), id.idx(), "slot recycled");
        assert_ne!(id2.gen(), id.gen());
        assert!(store.get(id).is_none(), "stale handle is dead");
        assert!(store.get(id2).is_some());
    }
}
