//! Workload generators for the solver experiments.
//!
//! Each generator produces a [`Cnf`] family whose difficulty and structure
//! are controllable, so the incremental-solving experiments can sweep
//! "how related are `p` and `p∧q`" deterministically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dimacs::Cnf;

/// Uniform random k-SAT with `clauses` clauses over `vars` variables.
///
/// The classic hardness knob is the ratio `clauses/vars` (~4.26 is the
/// 3-SAT phase transition). Deterministic in `seed`.
pub fn random_ksat(vars: usize, clauses: usize, k: usize, seed: u64) -> Cnf {
    assert!(vars >= k && k >= 1, "need at least k variables");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cnf = Cnf::new(vars);
    for _ in 0..clauses {
        let mut clause: Vec<i64> = Vec::with_capacity(k);
        while clause.len() < k {
            let v = rng.gen_range(1..=vars as i64);
            if clause.iter().any(|&c| c.abs() == v) {
                continue;
            }
            clause.push(if rng.gen_bool(0.5) { v } else { -v });
        }
        cnf.clause(&clause);
    }
    cnf
}

/// The pigeonhole principle PHP(holes+1, holes): provably UNSAT and
/// exponentially hard for resolution — a worst-case CDCL workload.
pub fn pigeonhole(holes: usize) -> Cnf {
    let pigeons = holes + 1;
    let var = |p: usize, h: usize| (p * holes + h + 1) as i64;
    let mut cnf = Cnf::new(pigeons * holes);
    // Every pigeon sits somewhere.
    for p in 0..pigeons {
        let clause: Vec<i64> = (0..holes).map(|h| var(p, h)).collect();
        cnf.clause(&clause);
    }
    // No two pigeons share a hole.
    for h in 0..holes {
        for a in 0..pigeons {
            for b in a + 1..pigeons {
                cnf.clause(&[-var(a, h), -var(b, h)]);
            }
        }
    }
    cnf
}

/// K-colouring of a random graph (Erdős–Rényi `G(n, p)`).
///
/// Variables `x(v,c)` = vertex `v` has colour `c`. SAT iff the sampled
/// graph is k-colourable.
pub fn graph_coloring(vertices: usize, edge_prob: f64, colors: usize, seed: u64) -> Cnf {
    let mut rng = StdRng::seed_from_u64(seed);
    let var = |v: usize, c: usize| (v * colors + c + 1) as i64;
    let mut cnf = Cnf::new(vertices * colors);
    for v in 0..vertices {
        // At least one colour.
        let clause: Vec<i64> = (0..colors).map(|c| var(v, c)).collect();
        cnf.clause(&clause);
        // At most one colour.
        for a in 0..colors {
            for b in a + 1..colors {
                cnf.clause(&[-var(v, a), -var(v, b)]);
            }
        }
    }
    for u in 0..vertices {
        for v in u + 1..vertices {
            if rng.gen_bool(edge_prob) {
                for c in 0..colors {
                    cnf.clause(&[-var(u, c), -var(v, c)]);
                }
            }
        }
    }
    cnf
}

/// An incremental query family for experiments E4/E5.
///
/// `base(seed)` is a satisfiable random 3-SAT instance `p`; `increment(i)`
/// produces the extra clauses `qᵢ` (a handful of random clauses over the
/// same variables). Solving `p ∧ q₀ ∧ … ∧ qᵢ` incrementally should beat
/// re-solving from scratch by reusing learnt clauses.
pub struct IncrementalFamily {
    /// Variables in the family.
    pub vars: usize,
    seed: u64,
    base_clauses: usize,
    inc_clauses: usize,
}

impl IncrementalFamily {
    /// Creates a family over `vars` variables.
    ///
    /// The base gets `ratio ≈ 3.5` clauses/var (satisfiable region for
    /// 3-SAT), each increment `inc_clauses` more.
    pub fn new(vars: usize, inc_clauses: usize, seed: u64) -> Self {
        IncrementalFamily {
            vars,
            seed,
            base_clauses: (vars as f64 * 3.5) as usize,
            inc_clauses,
        }
    }

    /// The base problem `p`.
    pub fn base(&self) -> Cnf {
        random_ksat(self.vars, self.base_clauses, 3, self.seed)
    }

    /// The `i`-th increment `qᵢ` (clauses only; same variable space).
    pub fn increment(&self, i: u64) -> Vec<Vec<crate::lit::Lit>> {
        let cnf = random_ksat(
            self.vars,
            self.inc_clauses,
            3,
            self.seed ^ (0x9e37_79b9 + i),
        );
        cnf.clauses
    }

    /// The full formula `p ∧ q₀ ∧ … ∧ q_{upto-1}` as one CNF (for the
    /// from-scratch baseline).
    pub fn combined(&self, upto: u64) -> Cnf {
        let mut cnf = self.base();
        for i in 0..upto {
            cnf.clauses.extend(self.increment(i));
        }
        cnf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::SolveResult;

    #[test]
    fn random_ksat_shape() {
        let cnf = random_ksat(20, 50, 3, 7);
        assert_eq!(cnf.num_vars, 20);
        assert_eq!(cnf.clauses.len(), 50);
        for c in &cnf.clauses {
            assert_eq!(c.len(), 3);
            // No repeated variables inside a clause.
            let mut vars: Vec<u32> = c.iter().map(|l| l.var().0).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3);
        }
    }

    #[test]
    fn random_ksat_deterministic() {
        assert_eq!(random_ksat(10, 30, 3, 42), random_ksat(10, 30, 3, 42));
        assert_ne!(random_ksat(10, 30, 3, 42), random_ksat(10, 30, 3, 43));
    }

    #[test]
    fn underconstrained_is_sat_overconstrained_unsat_tendency() {
        // ratio 2.0: almost surely SAT.
        let mut s = random_ksat(50, 100, 3, 1).to_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn pigeonhole_unsat() {
        for holes in 2..=4 {
            let mut s = pigeonhole(holes).to_solver();
            assert_eq!(s.solve(), SolveResult::Unsat, "PHP({},{holes})", holes + 1);
        }
    }

    #[test]
    fn triangle_needs_three_colors() {
        // A complete graph K3 with edge_prob 1.0.
        let mut two = graph_coloring(3, 1.0, 2, 5).to_solver();
        assert_eq!(two.solve(), SolveResult::Unsat);
        let mut three = graph_coloring(3, 1.0, 3, 5).to_solver();
        assert_eq!(three.solve(), SolveResult::Sat);
    }

    #[test]
    fn coloring_model_is_proper() {
        let n = 8;
        let colors = 4;
        let cnf = graph_coloring(n, 0.5, colors, 99);
        let mut s = cnf.to_solver();
        if s.solve() == SolveResult::Sat {
            let m = s.model();
            for v in 0..n {
                let assigned: Vec<usize> = (0..colors).filter(|&c| m[v * colors + c]).collect();
                assert_eq!(assigned.len(), 1, "vertex {v} colours: {assigned:?}");
            }
        }
    }

    #[test]
    fn incremental_family_consistent() {
        let fam = IncrementalFamily::new(30, 5, 11);
        let combined = fam.combined(3);
        assert_eq!(
            combined.clauses.len(),
            fam.base().clauses.len() + 3 * 5,
            "combined = base + increments"
        );
        // Increments are deterministic.
        assert_eq!(fam.increment(1), fam.increment(1));
        assert_ne!(fam.increment(1), fam.increment(2));
    }
}
