//! Variables, literals, and three-valued assignments.
//!
//! MiniSat-style encodings: a variable is a dense index, a literal packs
//! the variable and its sign into one `u32` (`var << 1 | sign`), and an
//! assignment is a three-valued [`Lbool`].

use core::fmt;

/// A propositional variable (0-based dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub u32);

impl Var {
    /// The variable's dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    #[inline]
    pub fn pos(self) -> Lit {
        Lit(self.0 << 1)
    }

    /// The negative literal of this variable.
    #[inline]
    #[allow(clippy::should_implement_trait)] // pairs with `pos`, not an operator
    pub fn neg(self) -> Lit {
        Lit(self.0 << 1 | 1)
    }

    /// Literal with an explicit sign (`true` = negated).
    #[inline]
    pub fn lit(self, negated: bool) -> Lit {
        Lit(self.0 << 1 | negated as u32)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub u32);

impl Lit {
    /// The underlying variable.
    #[inline]
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` if this is the negated literal.
    #[inline]
    pub fn sign(self) -> bool {
        self.0 & 1 != 0
    }

    /// Dense index (for watch lists etc.).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a literal from a DIMACS integer (non-zero).
    ///
    /// # Panics
    ///
    /// Panics on zero.
    pub fn from_dimacs(value: i64) -> Lit {
        assert!(value != 0, "DIMACS literal cannot be 0");
        let var = Var((value.unsigned_abs() - 1) as u32);
        var.lit(value < 0)
    }

    /// Converts back to DIMACS convention (1-based, sign = negation).
    pub fn to_dimacs(self) -> i64 {
        let v = self.var().0 as i64 + 1;
        if self.sign() {
            -v
        } else {
            v
        }
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    #[inline]
    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_dimacs())
    }
}

/// Three-valued assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Lbool {
    /// Assigned true.
    True,
    /// Assigned false.
    False,
    /// Unassigned.
    #[default]
    Undef,
}

impl Lbool {
    /// Truth value of a literal under this variable assignment.
    #[inline]
    pub fn of_lit(self, lit: Lit) -> Lbool {
        match (self, lit.sign()) {
            (Lbool::Undef, _) => Lbool::Undef,
            (Lbool::True, false) | (Lbool::False, true) => Lbool::True,
            _ => Lbool::False,
        }
    }

    /// From a boolean.
    #[inline]
    pub fn from_bool(b: bool) -> Lbool {
        if b {
            Lbool::True
        } else {
            Lbool::False
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_encoding() {
        let v = Var(3);
        assert_eq!(v.pos().index(), 6);
        assert_eq!(v.neg().index(), 7);
        assert_eq!(v.pos().var(), v);
        assert!(!v.pos().sign());
        assert!(v.neg().sign());
        assert_eq!(!v.pos(), v.neg());
        assert_eq!(!!v.pos(), v.pos());
        assert_eq!(v.lit(true), v.neg());
    }

    #[test]
    fn dimacs_roundtrip() {
        for val in [1i64, -1, 5, -42] {
            assert_eq!(Lit::from_dimacs(val).to_dimacs(), val);
        }
        assert_eq!(Lit::from_dimacs(1).var(), Var(0));
        assert_eq!(format!("{}", Lit::from_dimacs(-3)), "-3");
    }

    #[test]
    #[should_panic(expected = "cannot be 0")]
    fn dimacs_zero_panics() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn lbool_of_lit() {
        let v = Var(0);
        assert_eq!(Lbool::True.of_lit(v.pos()), Lbool::True);
        assert_eq!(Lbool::True.of_lit(v.neg()), Lbool::False);
        assert_eq!(Lbool::False.of_lit(v.pos()), Lbool::False);
        assert_eq!(Lbool::False.of_lit(v.neg()), Lbool::True);
        assert_eq!(Lbool::Undef.of_lit(v.pos()), Lbool::Undef);
        assert_eq!(Lbool::Undef.of_lit(v.neg()), Lbool::Undef);
    }
}
