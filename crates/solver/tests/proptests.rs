//! Property tests: the CDCL solver against brute force, and solver
//! invariants that must hold on arbitrary formulas.

use lwsnap_solver::{Cnf, Lit, SolveResult, Var};
use proptest::prelude::*;

/// Random CNF over at most 10 variables (brute-forceable).
fn cnf_strategy() -> impl Strategy<Value = Cnf> {
    let clause = proptest::collection::vec((1i64..=10, any::<bool>()), 1..5).prop_map(|lits| {
        lits.into_iter()
            .map(|(v, neg)| if neg { -v } else { v })
            .collect::<Vec<i64>>()
    });
    proptest::collection::vec(clause, 0..40).prop_map(|clauses| {
        let mut cnf = Cnf::new(10);
        for c in &clauses {
            cnf.clause(c);
        }
        cnf
    })
}

/// Exhaustive SAT check over 2^10 assignments.
fn brute_force(cnf: &Cnf) -> bool {
    'outer: for bits in 0..1u32 << cnf.num_vars {
        for clause in &cnf.clauses {
            let satisfied = clause.iter().any(|l| {
                let val = bits >> l.var().0 & 1 == 1;
                val != l.sign()
            });
            if !satisfied {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn model_satisfies(cnf: &Cnf, model: &[bool]) -> bool {
    lwsnap_solver::model_satisfies(&cnf.clauses, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CDCL agrees with brute force on every random formula.
    #[test]
    fn cdcl_matches_brute_force(cnf in cnf_strategy()) {
        let mut solver = cnf.to_solver();
        let expected = brute_force(&cnf);
        let got = solver.solve() == SolveResult::Sat;
        prop_assert_eq!(got, expected, "formula: {:?}", cnf);
        if got {
            prop_assert!(model_satisfies(&cnf, &solver.model()), "bogus model");
        }
    }

    /// Solving twice gives the same verdict (restarts/learning are sound).
    #[test]
    fn solve_is_idempotent(cnf in cnf_strategy()) {
        let mut solver = cnf.to_solver();
        let first = solver.solve();
        let second = solver.solve();
        prop_assert_eq!(first, second);
    }

    /// Solving under assumptions equals solving a clone with those
    /// assumptions added as unit clauses.
    #[test]
    fn assumptions_equal_unit_clauses(
        cnf in cnf_strategy(),
        assumps in proptest::collection::vec((0u32..10, any::<bool>()), 0..4),
    ) {
        // Dedup contradictory/duplicate assumptions to keep both sides
        // well-defined.
        let mut seen = std::collections::HashMap::new();
        let mut lits = Vec::new();
        for (v, neg) in assumps {
            if seen.insert(v, neg).is_none() {
                lits.push(Var(v).lit(neg));
            }
        }

        let mut with_assumps = cnf.to_solver();
        let a = with_assumps.solve_under(&lits);

        let mut with_units = cnf.to_solver();
        for &l in &lits {
            with_units.add_clause(&[l]);
        }
        let b = with_units.solve();
        prop_assert_eq!(a, b);

        // And the original formula's verdict is unaffected afterwards.
        let mut base = cnf.to_solver();
        prop_assert_eq!(with_assumps.solve(), base.solve());
    }

    /// Adding a clause never turns UNSAT into SAT (monotonicity).
    #[test]
    fn adding_clauses_is_monotone(cnf in cnf_strategy(), extra in 1i64..=10) {
        let mut solver = cnf.to_solver();
        let before = solver.solve();
        solver.add_clause(&[Lit::from_dimacs(extra)]);
        let after = solver.solve();
        if before == SolveResult::Unsat {
            prop_assert_eq!(after, SolveResult::Unsat);
        }
    }

    /// DIMACS round-trips.
    #[test]
    fn dimacs_roundtrip(cnf in cnf_strategy()) {
        let text = lwsnap_solver::write_dimacs(&cnf);
        let back = lwsnap_solver::parse_dimacs(&text).unwrap();
        prop_assert_eq!(back, cnf);
    }
}
