//! Hash-consed symbolic expression DAG.
//!
//! Three widths exist: 1-bit (branch conditions), 8-bit (symbolic input
//! bytes and extracted bytes), and 64-bit (everything the guest computes).
//! Construction constant-folds, so fully-concrete subtrees never allocate
//! nodes. The pool is append-only: expression ids stay valid across every
//! forked path, which is what lets path constraints ride inside engine
//! snapshots as plain data.
//!
//! [`SharedPool`] extends that property across *threads*: the parallel
//! symex driver hands stolen paths (and their `ExprId`-bearing shadows)
//! between workers, so every worker must intern into — and resolve ids
//! against — one pool. `SharedPool` is the `Arc<RwLock<_>>`-backed
//! handle that makes the ids globally meaningful: interning takes the
//! write lock (short, append-only), while feasibility checks (the
//! expensive SAT part) solve against a [`SharedPool::snapshot`] taken
//! under a briefly held read lock, so solving never blocks interning.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Index of an expression in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(pub u32);

/// 64-bit binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (low 64 bits).
    Mul,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (count masked to 63).
    Shl,
    /// Logical right shift (count masked to 63).
    Shr,
}

/// Comparison operators (produce 1-bit values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equality.
    Eq,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
}

/// One DAG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A symbolic input byte (width 8).
    Input {
        /// Dense input identifier.
        id: u32,
    },
    /// A 64-bit constant.
    Const {
        /// The value.
        v: u64,
    },
    /// 64-bit binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand (width 64).
        a: ExprId,
        /// Right operand (width 64).
        b: ExprId,
    },
    /// Byte `byte` of a 64-bit expression (width 8).
    Extract8 {
        /// Source (width 64).
        e: ExprId,
        /// Byte index 0..8 (little-endian).
        byte: u8,
    },
    /// Zero-extend a byte-width expression to 64 bits.
    ZExt8 {
        /// Source (width 8).
        e: ExprId,
    },
    /// Comparison of two 64-bit expressions (width 1).
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        a: ExprId,
        /// Right operand.
        b: ExprId,
    },
    /// Boolean negation (width 1).
    Not1 {
        /// Source (width 1).
        e: ExprId,
    },
}

/// Expression width classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// Boolean.
    W1,
    /// Byte.
    W8,
    /// Word.
    W64,
}

/// Append-only hash-consing expression pool.
#[derive(Debug, Default, Clone)]
pub struct ExprPool {
    nodes: Vec<Expr>,
    dedup: HashMap<Expr, ExprId>,
}

impl ExprPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ExprPool::default()
    }

    /// Number of distinct nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Reads a node.
    pub fn node(&self, id: ExprId) -> Expr {
        self.nodes[id.0 as usize]
    }

    fn intern(&mut self, node: Expr) -> ExprId {
        if let Some(&id) = self.dedup.get(&node) {
            return id;
        }
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.dedup.insert(node, id);
        id
    }

    /// Width of an expression.
    pub fn width(&self, id: ExprId) -> Width {
        match self.node(id) {
            Expr::Input { .. } | Expr::Extract8 { .. } => Width::W8,
            Expr::Cmp { .. } | Expr::Not1 { .. } => Width::W1,
            Expr::Const { .. } | Expr::Bin { .. } | Expr::ZExt8 { .. } => Width::W64,
        }
    }

    /// A fresh symbolic input byte.
    pub fn input(&mut self, id: u32) -> ExprId {
        self.intern(Expr::Input { id })
    }

    /// A 64-bit constant.
    pub fn constant(&mut self, v: u64) -> ExprId {
        self.intern(Expr::Const { v })
    }

    fn const_of(&self, id: ExprId) -> Option<u64> {
        match self.node(id) {
            Expr::Const { v } => Some(v),
            _ => None,
        }
    }

    /// Binary operation with constant folding.
    pub fn bin(&mut self, op: BinOp, a: ExprId, b: ExprId) -> ExprId {
        debug_assert_eq!(self.width(a), Width::W64, "bin lhs must be 64-bit");
        debug_assert_eq!(self.width(b), Width::W64, "bin rhs must be 64-bit");
        if let (Some(x), Some(y)) = (self.const_of(a), self.const_of(b)) {
            return self.constant(eval_bin(op, x, y));
        }
        // Identity folds.
        match (op, self.const_of(a), self.const_of(b)) {
            (BinOp::Add | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr, _, Some(0)) => {
                return a
            }
            (BinOp::Add | BinOp::Or | BinOp::Xor, Some(0), _) => return b,
            (BinOp::Mul, _, Some(1)) => return a,
            (BinOp::Mul, Some(1), _) => return b,
            (BinOp::And | BinOp::Mul, _, Some(0)) | (BinOp::And | BinOp::Mul, Some(0), _) => {
                return self.constant(0)
            }
            _ => {}
        }
        self.intern(Expr::Bin { op, a, b })
    }

    /// Extracts byte `byte` of `e` (width 8).
    pub fn extract8(&mut self, e: ExprId, byte: u8) -> ExprId {
        debug_assert!(byte < 8);
        debug_assert_eq!(self.width(e), Width::W64);
        if let Some(v) = self.const_of(e) {
            return self.constant(v >> (8 * byte) & 0xff);
        }
        // extract(zext(x), 0) == x.
        if byte == 0 {
            if let Expr::ZExt8 { e: inner } = self.node(e) {
                return inner;
            }
        }
        self.intern(Expr::Extract8 { e, byte })
    }

    /// Zero-extends a byte expression to 64 bits.
    pub fn zext8(&mut self, e: ExprId) -> ExprId {
        match self.width(e) {
            Width::W64 => e, // constants are already 64-bit
            Width::W8 => self.intern(Expr::ZExt8 { e }),
            Width::W1 => panic!("zext8 of boolean"),
        }
    }

    /// Comparison with constant folding.
    pub fn cmp(&mut self, op: CmpOp, a: ExprId, b: ExprId) -> ExprId {
        if let (Some(x), Some(y)) = (self.const_of(a), self.const_of(b)) {
            return self.constant(eval_cmp(op, x, y) as u64);
        }
        self.intern(Expr::Cmp { op, a, b })
    }

    /// Boolean negation with folding.
    pub fn not1(&mut self, e: ExprId) -> ExprId {
        if let Some(v) = self.const_of(e) {
            return self.constant((v == 0) as u64);
        }
        if let Expr::Not1 { e: inner } = self.node(e) {
            return inner;
        }
        self.intern(Expr::Not1 { e })
    }

    /// Returns `true` if the expression is a constant.
    pub fn is_const(&self, id: ExprId) -> bool {
        self.const_of(id).is_some()
    }

    /// Evaluates an expression under a concrete input assignment.
    pub fn eval(&self, id: ExprId, inputs: &HashMap<u32, u8>) -> u64 {
        match self.node(id) {
            Expr::Input { id } => *inputs.get(&id).unwrap_or(&0) as u64,
            Expr::Const { v } => v,
            Expr::Bin { op, a, b } => eval_bin(op, self.eval(a, inputs), self.eval(b, inputs)),
            Expr::Extract8 { e, byte } => self.eval(e, inputs) >> (8 * byte) & 0xff,
            Expr::ZExt8 { e } => self.eval(e, inputs),
            Expr::Cmp { op, a, b } => {
                eval_cmp(op, self.eval(a, inputs), self.eval(b, inputs)) as u64
            }
            Expr::Not1 { e } => (self.eval(e, inputs) == 0) as u64,
        }
    }
}

/// A cloneable, thread-safe handle onto one [`ExprPool`].
///
/// Every clone interns into the same pool, so an [`ExprId`] minted by
/// one thread resolves identically on every other — the invariant the
/// parallel symex driver relies on when a worker steals a path whose
/// [`crate::Shadow`] carries constraints built elsewhere. Mutating
/// constructors take the write lock briefly; long computations (path
/// feasibility solves) clone a [`SharedPool::snapshot`] and run with no
/// lock held at all, so solver work on one worker never stalls another
/// worker's execution.
#[derive(Debug, Default, Clone)]
pub struct SharedPool(Arc<RwLock<ExprPool>>);

impl SharedPool {
    /// A new handle onto a fresh, empty pool.
    pub fn new() -> Self {
        SharedPool::default()
    }

    /// Runs `f` with shared (read) access to the underlying pool. Keep
    /// `f` short: while any reader is inside, writers (interning
    /// workers) block — for long work such as a SAT solve, take a
    /// [`SharedPool::snapshot`] instead.
    pub fn with<R>(&self, f: impl FnOnce(&ExprPool) -> R) -> R {
        f(&self.0.read().unwrap())
    }

    /// Clones the current pool contents under a briefly held read lock.
    /// The pool is append-only, so a snapshot resolves every `ExprId`
    /// minted up to this point — feasibility checks solve against the
    /// snapshot without blocking other workers' interning (cloning a
    /// few thousand nodes costs microseconds; a solve costs
    /// milliseconds).
    pub fn snapshot(&self) -> ExprPool {
        self.0.read().unwrap().clone()
    }

    /// Number of distinct nodes.
    pub fn len(&self) -> usize {
        self.0.read().unwrap().len()
    }

    /// Returns `true` if the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.0.read().unwrap().is_empty()
    }

    /// Reads a node.
    pub fn node(&self, id: ExprId) -> Expr {
        self.0.read().unwrap().node(id)
    }

    /// Width of an expression.
    pub fn width(&self, id: ExprId) -> Width {
        self.0.read().unwrap().width(id)
    }

    /// A fresh symbolic input byte.
    pub fn input(&self, id: u32) -> ExprId {
        self.0.write().unwrap().input(id)
    }

    /// A 64-bit constant.
    pub fn constant(&self, v: u64) -> ExprId {
        self.0.write().unwrap().constant(v)
    }

    /// Binary operation with constant folding.
    pub fn bin(&self, op: BinOp, a: ExprId, b: ExprId) -> ExprId {
        self.0.write().unwrap().bin(op, a, b)
    }

    /// Extracts byte `byte` of `e` (width 8).
    pub fn extract8(&self, e: ExprId, byte: u8) -> ExprId {
        self.0.write().unwrap().extract8(e, byte)
    }

    /// Zero-extends a byte expression to 64 bits.
    pub fn zext8(&self, e: ExprId) -> ExprId {
        self.0.write().unwrap().zext8(e)
    }

    /// Comparison with constant folding.
    pub fn cmp(&self, op: CmpOp, a: ExprId, b: ExprId) -> ExprId {
        self.0.write().unwrap().cmp(op, a, b)
    }

    /// Boolean negation with folding.
    pub fn not1(&self, e: ExprId) -> ExprId {
        self.0.write().unwrap().not1(e)
    }

    /// Returns `true` if the expression is a constant.
    pub fn is_const(&self, id: ExprId) -> bool {
        self.0.read().unwrap().is_const(id)
    }

    /// Evaluates an expression under a concrete input assignment.
    pub fn eval(&self, id: ExprId, inputs: &HashMap<u32, u8>) -> u64 {
        self.0.read().unwrap().eval(id, inputs)
    }
}

fn eval_bin(op: BinOp, x: u64, y: u64) -> u64 {
    match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl(y as u32 & 63),
        BinOp::Shr => x.wrapping_shr(y as u32 & 63),
    }
}

fn eval_cmp(op: CmpOp, x: u64, y: u64) -> bool {
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ult => x < y,
        CmpOp::Ule => x <= y,
        CmpOp::Slt => (x as i64) < (y as i64),
        CmpOp::Sle => (x as i64) <= (y as i64),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut p = ExprPool::new();
        let a = p.input(0);
        let b = p.input(0);
        assert_eq!(a, b);
        let za = p.zext8(a);
        let five = p.constant(5);
        let e1 = p.bin(BinOp::Add, za, five);
        let e2 = p.bin(BinOp::Add, za, five);
        assert_eq!(e1, e2);
        assert_eq!(p.len(), 4, "input, zext, const, add");
    }

    #[test]
    fn constant_folding() {
        let mut p = ExprPool::new();
        let a = p.constant(10);
        let b = p.constant(3);
        let add = p.bin(BinOp::Add, a, b);
        assert_eq!(p.node(add), Expr::Const { v: 13 });
        let mul = p.bin(BinOp::Mul, a, b);
        assert_eq!(p.node(mul), Expr::Const { v: 30 });
        let lt = p.cmp(CmpOp::Ult, b, a);
        assert_eq!(p.node(lt), Expr::Const { v: 1 });
        let t = p.constant(1);
        let nt = p.not1(t);
        assert_eq!(p.node(nt), Expr::Const { v: 0 });
    }

    #[test]
    fn identity_folds() {
        let mut p = ExprPool::new();
        let x0 = p.input(0);
        let x = p.zext8(x0);
        let zero = p.constant(0);
        let one = p.constant(1);
        assert_eq!(p.bin(BinOp::Add, x, zero), x);
        assert_eq!(p.bin(BinOp::Add, zero, x), x);
        assert_eq!(p.bin(BinOp::Mul, x, one), x);
        assert_eq!(p.bin(BinOp::Mul, x, zero), zero);
        assert_eq!(p.bin(BinOp::And, zero, x), zero);
        assert_eq!(p.bin(BinOp::Shl, x, zero), x);
        let eq = p.cmp(CmpOp::Eq, x, one);
        let nn = p.not1(eq);
        assert_eq!(p.not1(nn), eq, "double negation folds");
    }

    #[test]
    fn extract_of_zext_folds() {
        let mut p = ExprPool::new();
        let byte = p.input(3);
        let word = p.zext8(byte);
        assert_eq!(p.extract8(word, 0), byte);
        assert_ne!(p.extract8(word, 1), byte);
    }

    #[test]
    fn widths() {
        let mut p = ExprPool::new();
        let i = p.input(0);
        assert_eq!(p.width(i), Width::W8);
        let z = p.zext8(i);
        assert_eq!(p.width(z), Width::W64);
        let c = p.cmp(CmpOp::Eq, z, z);
        assert_eq!(p.width(c), Width::W1);
        let x = p.extract8(z, 3);
        assert_eq!(p.width(x), Width::W8);
    }

    #[test]
    fn eval_matches_semantics() {
        let mut p = ExprPool::new();
        // expr = (in0 * 3 + in1) ^ 0xff
        let in0 = p.input(0);
        let in1 = p.input(1);
        let z0 = p.zext8(in0);
        let z1 = p.zext8(in1);
        let three = p.constant(3);
        let mul = p.bin(BinOp::Mul, z0, three);
        let add = p.bin(BinOp::Add, mul, z1);
        let ff = p.constant(0xff);
        let expr = p.bin(BinOp::Xor, add, ff);
        let mut inputs = HashMap::new();
        inputs.insert(0, 7u8);
        inputs.insert(1, 5u8);
        assert_eq!(p.eval(expr, &inputs), (7u64 * 3 + 5) ^ 0xff);
        // Missing inputs default to 0.
        assert_eq!(p.eval(expr, &HashMap::new()), 0xff);
    }
}
