//! Bit-blasting: expression DAG → Tseitin circuit → SAT.
//!
//! Path feasibility and test-case generation both reduce to one
//! question — "is this conjunction of 1-bit expressions satisfiable, and
//! if so, what are the input bytes?" — answered either by a local
//! `lwsnap-solver` instance ([`check_path`]) or by any
//! [`SolverBackend`] — in-process sharded service, worker pool, or a
//! remote `lwsnapd` over the pipelined wire protocol
//! ([`check_path_on`]). Both routes produce bit-identical verdicts and
//! witnesses; see [`check_path_on`] for how that determinism is pinned.

use std::collections::HashMap;
use std::io;

use lwsnap_service::{ProblemId, SolverBackend};
use lwsnap_solver::{Bv, CLit, Circuit, Cnf, Lit, SolveResult, Solver};

use crate::expr::{BinOp, CmpOp, Expr, ExprId, ExprPool};

/// A bit-blasting session over one expression pool.
pub struct Blaster<'p> {
    pool: &'p ExprPool,
    circuit: Circuit,
    memo: HashMap<ExprId, Bv>,
    inputs: HashMap<u32, Bv>,
}

/// Outcome of a feasibility query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Feasibility {
    /// Satisfiable, with one concrete assignment of the input bytes.
    Sat(HashMap<u32, u8>),
    /// Unsatisfiable.
    Unsat,
}

impl<'p> Blaster<'p> {
    /// Creates a blaster for `pool`.
    pub fn new(pool: &'p ExprPool) -> Self {
        Blaster {
            pool,
            circuit: Circuit::new(),
            memo: HashMap::new(),
            inputs: HashMap::new(),
        }
    }

    /// Bit-vector for an expression (width per node kind).
    fn blast(&mut self, id: ExprId) -> Bv {
        if let Some(bv) = self.memo.get(&id) {
            return bv.clone();
        }
        let bv = match self.pool.node(id) {
            Expr::Input { id: input } => self
                .inputs
                .entry(input)
                .or_insert_with(|| self.circuit.fresh_bv(8))
                .clone(),
            Expr::Const { v } => self.circuit.const_bv(v, 64),
            Expr::Bin { op, a, b } => {
                let av = self.blast(a);
                let bv = self.blast(b);
                match op {
                    BinOp::Add => self.circuit.bv_add(&av, &bv),
                    BinOp::Sub => self.circuit.bv_sub(&av, &bv),
                    BinOp::Mul => self.circuit.bv_mul(&av, &bv),
                    BinOp::And => self.circuit.bv_and(&av, &bv),
                    BinOp::Or => self.circuit.bv_or(&av, &bv),
                    BinOp::Xor => self.circuit.bv_xor(&av, &bv),
                    BinOp::Shl => self.shift(&av, &bv, false),
                    BinOp::Shr => self.shift(&av, &bv, true),
                }
            }
            Expr::Extract8 { e, byte } => {
                let ev = self.blast(e);
                ev[8 * byte as usize..8 * (byte as usize + 1)].to_vec()
            }
            Expr::ZExt8 { e } => {
                let mut ev = self.blast(e);
                ev.resize(64, CLit::False);
                ev
            }
            Expr::Cmp { op, a, b } => {
                let av = self.blast(a);
                let bv = self.blast(b);
                let bit = match op {
                    CmpOp::Eq => self.circuit.bv_eq(&av, &bv),
                    CmpOp::Ult => self.circuit.bv_ult(&av, &bv),
                    CmpOp::Ule => self.circuit.bv_ule(&av, &bv),
                    CmpOp::Slt => self.circuit.bv_slt(&av, &bv),
                    CmpOp::Sle => {
                        let gt = self.circuit.bv_slt(&bv, &av);
                        gt.not()
                    }
                };
                vec![bit]
            }
            Expr::Not1 { e } => {
                let ev = self.blast(e);
                vec![ev[0].not()]
            }
        };
        self.memo.insert(id, bv.clone());
        bv
    }

    /// Barrel shifter for variable shift amounts (6 mux stages).
    #[allow(clippy::needless_range_loop)] // index math is the algorithm here
    fn shift(&mut self, value: &Bv, amount: &Bv, right: bool) -> Bv {
        let mut cur = value.clone();
        for stage in 0..6 {
            let dist = 1usize << stage;
            let sel = amount[stage];
            let mut shifted = vec![CLit::False; 64];
            for i in 0..64 {
                let src = if right {
                    i + dist
                } else {
                    i.wrapping_sub(dist)
                };
                if src < 64 {
                    shifted[i] = cur[src];
                }
            }
            cur = cur
                .iter()
                .zip(&shifted)
                .map(|(&keep, &shift)| self.circuit.mux(sel, shift, keep))
                .collect();
        }
        cur
    }

    /// Asserts a 1-bit expression with the given polarity.
    pub fn assert_cond(&mut self, cond: ExprId, polarity: bool) {
        let bv = self.blast(cond);
        debug_assert_eq!(bv.len(), 1, "condition must be 1-bit");
        let lit = if polarity { bv[0] } else { bv[0].not() };
        self.circuit.assert_true(lit);
    }

    /// The accumulated assertions as a CNF formula (the payload a
    /// [`SolverBackend`] query ships).
    pub fn cnf(&self) -> Cnf {
        self.circuit.to_cnf()
    }

    /// Maps a solver model (or UNSAT, `None`) back to a feasibility
    /// verdict with concrete input bytes.
    pub fn feasibility_from_model(&self, model: Option<&[bool]>) -> Feasibility {
        match model {
            None => Feasibility::Unsat,
            Some(model) => {
                let mut inputs = HashMap::new();
                for (&id, bv) in &self.inputs {
                    inputs.insert(id, Circuit::bv_value(bv, model) as u8);
                }
                Feasibility::Sat(inputs)
            }
        }
    }

    /// Solves the accumulated assertions with a local solver.
    pub fn solve(&self) -> Feasibility {
        let mut solver: Solver = self.cnf().to_solver();
        match solver.solve() {
            SolveResult::Unsat => Feasibility::Unsat,
            SolveResult::Sat => self.feasibility_from_model(Some(&solver.model())),
        }
    }
}

/// Convenience: checks whether `constraints` (cond, polarity) are jointly
/// satisfiable, returning a witness input assignment.
pub fn check_path(pool: &ExprPool, constraints: &[(ExprId, bool)]) -> Feasibility {
    let mut blaster = Blaster::new(pool);
    for &(cond, polarity) in constraints {
        blaster.assert_cond(cond, polarity);
    }
    blaster.solve()
}

/// [`check_path`] routed through a [`SolverBackend`]: the CNF is
/// submitted as one incremental solve against `root` (the caller's
/// session root on that backend) and the transient problem is released
/// after the verdict.
///
/// ## Determinism
///
/// The verdict *and the witness bytes* are bit-identical to the local
/// [`check_path`]: the first submitted clause is the tautology
/// `(v_max ∨ ¬v_max)`, which the solver drops semantically but which
/// forces it to allocate all `num_vars` variables up front — the same
/// allocation order [`Cnf::to_solver`] produces — so the deterministic
/// search visits identical states either way. This is what lets
/// [`crate::par_explore`] swap backends without perturbing its merged
/// test-case report.
///
/// Transport failures surface as `Err`; in-process backends never
/// fail.
pub fn check_path_on(
    backend: &dyn SolverBackend,
    root: ProblemId,
    pool: &ExprPool,
    constraints: &[(ExprId, bool)],
) -> io::Result<Feasibility> {
    let mut blaster = Blaster::new(pool);
    for &(cond, polarity) in constraints {
        blaster.assert_cond(cond, polarity);
    }
    let cnf = blaster.cnf();
    let mut clauses: Vec<Vec<Lit>> = Vec::with_capacity(cnf.clauses.len() + 1);
    if cnf.num_vars > 0 {
        let n = cnf.num_vars as i64;
        clauses.push(vec![Lit::from_dimacs(n), Lit::from_dimacs(-n)]);
    }
    clauses.extend(cnf.clauses);
    let reply = backend.solve(root, clauses)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            "backend session root is dead or unknown",
        )
    })?;
    let feasibility = blaster.feasibility_from_model(reply.model.as_deref());
    backend.release(reply.problem)?;
    Ok(feasibility)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, CmpOp};

    #[test]
    fn solve_linear_equation() {
        // x*3 + 7 == 52  → x = 15.
        let mut p = ExprPool::new();
        let x0 = p.input(0);
        let x = p.zext8(x0);
        let three = p.constant(3);
        let seven = p.constant(7);
        let target = p.constant(52);
        let mul = p.bin(BinOp::Mul, x, three);
        let add = p.bin(BinOp::Add, mul, seven);
        let cond = p.cmp(CmpOp::Eq, add, target);
        match check_path(&p, &[(cond, true)]) {
            Feasibility::Sat(inputs) => assert_eq!(inputs[&0], 15),
            Feasibility::Unsat => panic!("should be SAT"),
        }
    }

    #[test]
    fn contradictory_path_unsat() {
        let mut p = ExprPool::new();
        let x0 = p.input(0);
        let x = p.zext8(x0);
        let five = p.constant(5);
        let eq5 = p.cmp(CmpOp::Eq, x, five);
        assert_eq!(
            check_path(&p, &[(eq5, true), (eq5, false)]),
            Feasibility::Unsat
        );
    }

    #[test]
    fn multi_byte_constraint() {
        // Two input bytes forming a 16-bit LE word w == 0xbeef.
        let mut p = ExprPool::new();
        let b0 = p.input(0);
        let b1 = p.input(1);
        let z0 = p.zext8(b0);
        let z1 = p.zext8(b1);
        let eight = p.constant(8);
        let hi = p.bin(BinOp::Shl, z1, eight);
        let word = p.bin(BinOp::Or, z0, hi);
        let target = p.constant(0xbeef);
        let cond = p.cmp(CmpOp::Eq, word, target);
        match check_path(&p, &[(cond, true)]) {
            Feasibility::Sat(inputs) => {
                assert_eq!(inputs[&0], 0xef);
                assert_eq!(inputs[&1], 0xbe);
            }
            Feasibility::Unsat => panic!("should be SAT"),
        }
    }

    #[test]
    fn witness_validates_by_evaluation() {
        // Mixed conditions; verify the witness through ExprPool::eval.
        let mut p = ExprPool::new();
        let a0 = p.input(0);
        let b0 = p.input(1);
        let a = p.zext8(a0);
        let b = p.zext8(b0);
        let sum = p.bin(BinOp::Add, a, b);
        let hundred = p.constant(100);
        let c1 = p.cmp(CmpOp::Ult, hundred, sum); // a+b > 100
        let c2 = p.cmp(CmpOp::Ult, a, b); // a < b
        match check_path(&p, &[(c1, true), (c2, true)]) {
            Feasibility::Sat(inputs) => {
                assert_eq!(p.eval(c1, &inputs), 1);
                assert_eq!(p.eval(c2, &inputs), 1);
            }
            Feasibility::Unsat => panic!("should be SAT"),
        }
    }

    #[test]
    fn variable_shift_blasts() {
        // (1 << x) == 16 → x = 4 (x is a symbolic byte).
        let mut p = ExprPool::new();
        let x0 = p.input(0);
        let x = p.zext8(x0);
        let one = p.constant(1);
        let sixteen = p.constant(16);
        let shl = p.bin(BinOp::Shl, one, x);
        let cond = p.cmp(CmpOp::Eq, shl, sixteen);
        match check_path(&p, &[(cond, true)]) {
            Feasibility::Sat(inputs) => {
                assert_eq!(1u64 << (inputs[&0] & 63), 16);
            }
            Feasibility::Unsat => panic!("should be SAT"),
        }
    }

    #[test]
    fn signed_comparison() {
        // x <s 0 with x a zero-extended byte is UNSAT (always >= 0).
        let mut p = ExprPool::new();
        let x0 = p.input(0);
        let x = p.zext8(x0);
        let zero = p.constant(0);
        let cond = p.cmp(CmpOp::Slt, x, zero);
        assert_eq!(check_path(&p, &[(cond, true)]), Feasibility::Unsat);
    }
}
