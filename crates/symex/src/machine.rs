//! The symbolic SVM-64 interpreter: an engine [`Guest`] that forks at
//! symbolic branches.
//!
//! This is the reproduction of the paper's S2E use case (§3.2): "each
//! partial candidate corresponds to a different state of the VM
//! (consisting of the concrete state augmented with symbolic data and
//! symbolic constraints), executed up to the point where a symbolic
//! branch condition is encountered. The evaluation of an extension is the
//! \[execution\] until it terminates or reaches the next symbolic branch."
//!
//! Mechanically: concrete state lives in the ordinary [`GuestState`]
//! (registers + snapshottable address space); symbolic data rides along
//! as a [`Shadow`] stored in the snapshot's `ext` slot. At a branch whose
//! condition is symbolic the interpreter issues the equivalent of
//! `sys_guess(2)`; the backtracking engine snapshots the whole VM state
//! and schedules both outcomes. Infeasible directions are pruned with the
//! SAT solver; completed paths yield concrete test inputs (KLEE-style).
//!
//! Supported symbolic data flow: integer arithmetic/logic, shifts,
//! byte-granular memory, comparisons and all conditional branches.
//! Deliberately unsupported (the path faults, soundly): symbolic
//! addresses, symbolic divisors, symbolic `sar`/`test`, sign-extending
//! loads of symbolic bytes.

use std::collections::HashMap;
use std::sync::Arc;

use lwsnap_core::{
    handle_syscall, Exit, Guest, GuestFault, GuestState, InterposePolicy, Reg, SyscallEffect,
};
use lwsnap_vm::{Instr, Opcode, INSTR_SIZE};

use crate::blast::{check_path, check_path_on, Feasibility};
use crate::expr::{BinOp, CmpOp, ExprId, SharedPool};
use lwsnap_service::{ProblemId, SolverBackend};

/// Syscall number for `make_symbolic(addr, len)`.
pub const SYS_MAKE_SYMBOLIC: u64 = 1100;

/// Per-path symbolic state, carried inside snapshots via `ext`.
#[derive(Clone, Default)]
pub struct Shadow {
    /// Symbolic register values (64-bit exprs), `None` = concrete.
    regs: [Option<ExprId>; 16],
    /// Symbolic memory bytes (8-bit exprs).
    mem: HashMap<u64, ExprId>,
    /// Operands of the last `cmp` if at least one was symbolic.
    last_cmp: Option<(ExprId, ExprId)>,
    /// A symbolic branch waiting for the engine's guess outcome.
    pending: Option<Pending>,
    /// The path condition: (condition, polarity) pairs.
    constraints: Vec<(ExprId, bool)>,
    /// Number of symbolic input bytes created so far.
    n_inputs: u32,
}

#[derive(Clone, Copy)]
struct Pending {
    cond: ExprId,
    target: u64,
}

impl Shadow {
    /// The path constraints accumulated on this path.
    pub fn constraints(&self) -> &[(ExprId, bool)] {
        &self.constraints
    }

    /// Number of symbolic input bytes.
    pub fn num_inputs(&self) -> u32 {
        self.n_inputs
    }
}

/// How a completed path ended.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum PathEnd {
    /// Normal `exit(code)`.
    Exit(i64),
    /// A guest fault (the bug-finding case).
    Fault(String),
}

/// A generated test case: concrete inputs driving one explored path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCase {
    /// How the path ended.
    pub end: PathEnd,
    /// Concrete input bytes, dense by symbolic-input id.
    pub inputs: Vec<u8>,
    /// Number of branch constraints on the path.
    pub constraints: usize,
    /// Guess depth of the path.
    pub depth: u64,
}

impl TestCase {
    /// The canonical ordering for verdict comparison: by concrete
    /// inputs, then depth, constraint count and path end. Scheduling-
    /// independent, so sorting with it makes a parallel exploration's
    /// verdicts directly `==`-comparable to a sequential run's.
    pub fn canonical_cmp(&self, other: &TestCase) -> std::cmp::Ordering {
        self.inputs
            .cmp(&other.inputs)
            .then(self.depth.cmp(&other.depth))
            .then(self.constraints.cmp(&other.constraints))
            .then(self.end.cmp(&other.end))
    }

    /// Sorts `cases` into [`TestCase::canonical_cmp`] order.
    pub fn canonical_sort(cases: &mut [TestCase]) {
        cases.sort_by(TestCase::canonical_cmp);
    }
}

/// Counters for a symbolic execution run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SymStats {
    /// Symbolic branches forked.
    pub forks: u64,
    /// Solver feasibility checks.
    pub solver_checks: u64,
    /// Paths pruned as infeasible.
    pub infeasible_pruned: u64,
    /// Test cases generated.
    pub tests_generated: u64,
    /// Instructions interpreted.
    pub instructions: u64,
}

/// How feasibility queries reach a solver.
enum QueryRoute {
    /// A fresh local solver per query (zero-transport baseline).
    Local,
    /// Through a [`SolverBackend`] — the in-process sharded service,
    /// a worker pool, or a remote `lwsnapd` over the pipelined wire.
    Backend {
        backend: Arc<dyn SolverBackend>,
        root: ProblemId,
    },
}

/// The symbolic executor (implements [`Guest`]).
pub struct SymExec {
    /// The (append-only, shared) expression pool. A [`SharedPool`]
    /// handle: executors built with [`SymExec::with_pool`] intern into
    /// the same pool, which is what lets the parallel driver move
    /// `ExprId`-bearing shadows between worker threads.
    pub pool: SharedPool,
    /// Encapsulation policy for ordinary syscalls.
    pub policy: InterposePolicy,
    /// Per-resume instruction budget.
    pub max_steps: u64,
    /// Run counters.
    pub stats: SymStats,
    /// Test cases generated from completed paths.
    pub cases: Vec<TestCase>,
    /// Where feasibility queries are solved.
    route: QueryRoute,
}

impl Default for SymExec {
    fn default() -> Self {
        Self::new()
    }
}

/// A register value: always-present concrete part + optional expr.
#[derive(Clone, Copy)]
struct Val {
    c: u64,
    e: Option<ExprId>,
}

impl Val {
    fn concrete(c: u64) -> Val {
        Val { c, e: None }
    }
}

impl SymExec {
    /// Creates a symbolic executor with default policy and budget.
    pub fn new() -> Self {
        Self::with_pool(SharedPool::new())
    }

    /// Creates a symbolic executor interning into an existing shared
    /// pool — the constructor the parallel driver uses so that all
    /// workers resolve each other's expression ids.
    pub fn with_pool(pool: SharedPool) -> Self {
        SymExec {
            pool,
            policy: InterposePolicy::default(),
            max_steps: 50_000_000,
            stats: SymStats::default(),
            cases: Vec::new(),
            route: QueryRoute::Local,
        }
    }

    /// Like [`SymExec::with_pool`], but feasibility queries are solved
    /// through `backend` under the given session id instead of a local
    /// per-query solver. Verdicts and witnesses are bit-identical to
    /// the local route (see [`check_path_on`]); what changes is *where*
    /// the solving happens — a shared in-process service, a worker
    /// pool, or a remote daemon.
    ///
    /// # Panics
    ///
    /// Panics if the backend cannot resolve the session root (remote
    /// transport failure). In-process backends are infallible.
    pub fn with_backend(pool: SharedPool, backend: Arc<dyn SolverBackend>, session: u64) -> Self {
        let root = backend
            .session_root(session)
            .expect("solver backend transport failure resolving session root");
        let mut exec = Self::with_pool(pool);
        exec.route = QueryRoute::Backend { backend, root };
        exec
    }

    /// Checks the joint feasibility of `constraints` over the current
    /// pool snapshot, via whichever route this executor was built with.
    ///
    /// # Panics
    ///
    /// Panics on a backend transport failure (loudly, rather than
    /// silently mispruning a path). In-process routes never fail.
    fn check_constraints(&self, constraints: &[(ExprId, bool)]) -> Feasibility {
        // Snapshot, then solve lock-free: holding the read lock across
        // the SAT solve would stall every other worker's interning.
        let snapshot = self.pool.snapshot();
        match &self.route {
            QueryRoute::Local => check_path(&snapshot, constraints),
            QueryRoute::Backend { backend, root } => {
                check_path_on(backend.as_ref(), *root, &snapshot, constraints)
                    .unwrap_or_else(|e| panic!("solver backend transport failure: {e}"))
            }
        }
    }

    fn expr_of(&mut self, v: Val) -> ExprId {
        match v.e {
            Some(e) => e,
            None => self.pool.constant(v.c),
        }
    }

    fn get_reg(&self, st: &GuestState, shadow: &Shadow, r: Reg) -> Val {
        Val {
            c: st.regs.get(r),
            e: shadow.regs[r.index()],
        }
    }

    fn set_reg(&mut self, st: &mut GuestState, shadow: &mut Shadow, r: Reg, v: Val) {
        st.regs.set(r, v.c);
        shadow.regs[r.index()] = v.e.filter(|&e| !self.pool.is_const(e));
    }

    /// Reads `size` bytes at `addr`, composing symbolic bytes if present.
    fn load(
        &mut self,
        st: &mut GuestState,
        shadow: &Shadow,
        addr: u64,
        size: usize,
    ) -> Result<Val, GuestFault> {
        let mut buf = [0u8; 8];
        st.mem
            .read_bytes(addr, &mut buf[..size])
            .map_err(GuestFault::Memory)?;
        let concrete = u64::from_le_bytes(buf);
        let any_symbolic = (0..size).any(|i| shadow.mem.contains_key(&(addr + i as u64)));
        if !any_symbolic {
            return Ok(Val::concrete(concrete));
        }
        let mut expr = self.pool.constant(0);
        #[allow(clippy::needless_range_loop)] // i is an address offset, not just an index
        for i in 0..size {
            let byte = match shadow.mem.get(&(addr + i as u64)) {
                Some(&e) => self.pool.zext8(e),
                None => self.pool.constant(buf[i] as u64),
            };
            let sh = self.pool.constant(8 * i as u64);
            let shifted = self.pool.bin(BinOp::Shl, byte, sh);
            expr = self.pool.bin(BinOp::Or, expr, shifted);
        }
        Ok(Val {
            c: concrete,
            e: Some(expr).filter(|&e| !self.pool.is_const(e)),
        })
    }

    /// Writes `size` bytes at `addr`, tracking symbolic bytes.
    fn store(
        &mut self,
        st: &mut GuestState,
        shadow: &mut Shadow,
        addr: u64,
        size: usize,
        v: Val,
    ) -> Result<(), GuestFault> {
        let bytes = v.c.to_le_bytes();
        st.mem
            .write_bytes(addr, &bytes[..size])
            .map_err(GuestFault::Memory)?;
        match v.e {
            Some(e) => {
                for i in 0..size {
                    let byte = self.pool.extract8(e, i as u8);
                    if self.pool.is_const(byte) {
                        shadow.mem.remove(&(addr + i as u64));
                    } else {
                        shadow.mem.insert(addr + i as u64, byte);
                    }
                }
            }
            None => {
                for i in 0..size {
                    shadow.mem.remove(&(addr + i as u64));
                }
            }
        }
        Ok(())
    }

    /// Requires a concrete value (symbolic → sound fault).
    fn require_concrete(v: Val, what: &str) -> Result<u64, GuestFault> {
        match v.e {
            None => Ok(v.c),
            Some(_) => Err(GuestFault::Other(format!("symbolic {what} unsupported"))),
        }
    }

    fn branch_cond(&mut self, op: Opcode, a: ExprId, b: ExprId) -> (ExprId, bool) {
        // Returns (condition, polarity-for-taken).
        match op {
            Opcode::Jz => (self.pool.cmp(CmpOp::Eq, a, b), true),
            Opcode::Jnz => (self.pool.cmp(CmpOp::Eq, a, b), false),
            Opcode::Jl => (self.pool.cmp(CmpOp::Slt, a, b), true),
            Opcode::Jge => (self.pool.cmp(CmpOp::Slt, a, b), false),
            Opcode::Jle => (self.pool.cmp(CmpOp::Sle, a, b), true),
            Opcode::Jg => (self.pool.cmp(CmpOp::Sle, a, b), false),
            Opcode::Jb => (self.pool.cmp(CmpOp::Ult, a, b), true),
            Opcode::Jae => (self.pool.cmp(CmpOp::Ult, a, b), false),
            Opcode::Jbe => (self.pool.cmp(CmpOp::Ule, a, b), true),
            Opcode::Ja => (self.pool.cmp(CmpOp::Ule, a, b), false),
            _ => unreachable!("not a conditional branch"),
        }
    }

    /// Finishes a path: solve its constraints and record a test case.
    fn finish_path(&mut self, st: &GuestState, shadow: &Shadow, end: PathEnd) {
        self.stats.solver_checks += 1;
        match self.check_constraints(&shadow.constraints) {
            Feasibility::Sat(model) => {
                let mut inputs = vec![0u8; shadow.n_inputs as usize];
                for (id, byte) in model {
                    if (id as usize) < inputs.len() {
                        inputs[id as usize] = byte;
                    }
                }
                self.cases.push(TestCase {
                    end,
                    inputs,
                    constraints: shadow.constraints.len(),
                    depth: st.depth,
                });
                self.stats.tests_generated += 1;
            }
            Feasibility::Unsat => {
                // Should have been pruned at the fork; count it anyway.
                self.stats.infeasible_pruned += 1;
            }
        }
    }

    fn save_shadow(st: &mut GuestState, shadow: Shadow) {
        st.ext = Some(Arc::new(shadow));
    }

    fn take_shadow(st: &GuestState) -> Shadow {
        st.ext
            .as_ref()
            .and_then(|e| e.clone().downcast::<Shadow>().ok())
            .map(|arc| (*arc).clone())
            .unwrap_or_default()
    }
}

/// Sets concrete flags exactly like the concrete interpreter.
fn set_cmp_flags(st: &mut GuestState, a: u64, b: u64) {
    let (res, borrow) = a.overflowing_sub(b);
    st.regs.flags.zf = res == 0;
    st.regs.flags.sf = (res as i64) < 0;
    st.regs.flags.cf = borrow;
    st.regs.flags.of = ((a ^ b) & (a ^ res)) >> 63 != 0;
}

fn cond_holds(op: Opcode, st: &GuestState) -> bool {
    let f = st.regs.flags;
    match op {
        Opcode::Jmp => true,
        Opcode::Jz => f.zf,
        Opcode::Jnz => !f.zf,
        Opcode::Jl => f.sf != f.of,
        Opcode::Jle => f.zf || f.sf != f.of,
        Opcode::Jg => !f.zf && f.sf == f.of,
        Opcode::Jge => f.sf == f.of,
        Opcode::Jb => f.cf,
        Opcode::Jbe => f.cf || f.zf,
        Opcode::Ja => !f.cf && !f.zf,
        Opcode::Jae => !f.cf,
        _ => unreachable!(),
    }
}

impl Guest for SymExec {
    fn resume(&mut self, st: &mut GuestState) -> Exit {
        let mut shadow = Self::take_shadow(st);

        // Apply the engine's decision for a pending symbolic branch.
        if let Some(p) = shadow.pending.take() {
            let taken = st.regs.get(Reg::Rax) == 1;
            shadow.constraints.push((p.cond, taken));
            self.stats.solver_checks += 1;
            if self.check_constraints(&shadow.constraints) == Feasibility::Unsat {
                self.stats.infeasible_pruned += 1;
                Self::save_shadow(st, shadow);
                return Exit::Fail;
            }
            if taken {
                st.regs.rip = p.target;
            }
        }

        let mut buf = [0u8; 16];
        loop {
            if st.steps >= self.max_steps {
                Self::save_shadow(st, shadow);
                return Exit::Fault(GuestFault::StepBudget);
            }
            st.steps += 1;
            self.stats.instructions += 1;
            let rip = st.regs.rip;
            if let Err(fault) = st.mem.fetch_bytes(rip, &mut buf) {
                let end = PathEnd::Fault(format!("fetch fault: {fault}"));
                self.finish_path(st, &shadow, end);
                Self::save_shadow(st, shadow);
                return Exit::Fault(GuestFault::Memory(fault));
            }
            let Some(ins) = Instr::decode(&buf) else {
                self.finish_path(st, &shadow, PathEnd::Fault(format!("illegal at {rip:#x}")));
                Self::save_shadow(st, shadow);
                return Exit::Fault(GuestFault::IllegalInstruction { rip });
            };
            st.regs.rip = rip.wrapping_add(INSTR_SIZE);

            match self.exec(st, &mut shadow, ins) {
                Ok(None) => {}
                Ok(Some(exit)) => {
                    if let Exit::Exit { code } = exit {
                        self.finish_path(st, &shadow, PathEnd::Exit(code));
                    }
                    Self::save_shadow(st, shadow);
                    return exit;
                }
                Err(fault) => {
                    self.finish_path(st, &shadow, PathEnd::Fault(fault.to_string()));
                    Self::save_shadow(st, shadow);
                    return Exit::Fault(fault);
                }
            }
        }
    }
}

impl SymExec {
    /// Executes one instruction; `Ok(Some(exit))` traps to the engine.
    fn exec(
        &mut self,
        st: &mut GuestState,
        shadow: &mut Shadow,
        ins: Instr,
    ) -> Result<Option<Exit>, GuestFault> {
        let immu = ins.imm as u64;
        match ins.op {
            Opcode::MovRI => self.set_reg(st, shadow, ins.dst, Val::concrete(immu)),
            Opcode::MovRR => {
                let v = self.get_reg(st, shadow, ins.src);
                self.set_reg(st, shadow, ins.dst, v);
            }

            Opcode::Ld1 | Opcode::Ld2 | Opcode::Ld4 | Opcode::Ld8 => {
                let base = self.get_reg(st, shadow, ins.src);
                let addr = Self::require_concrete(base, "load address")?.wrapping_add(immu);
                let size = match ins.op {
                    Opcode::Ld1 => 1,
                    Opcode::Ld2 => 2,
                    Opcode::Ld4 => 4,
                    _ => 8,
                };
                let v = self.load(st, shadow, addr, size)?;
                self.set_reg(st, shadow, ins.dst, v);
            }
            Opcode::Lds1 | Opcode::Lds2 | Opcode::Lds4 => {
                let base = self.get_reg(st, shadow, ins.src);
                let addr = Self::require_concrete(base, "load address")?.wrapping_add(immu);
                let size = match ins.op {
                    Opcode::Lds1 => 1,
                    Opcode::Lds2 => 2,
                    _ => 4,
                };
                let v = self.load(st, shadow, addr, size)?;
                if v.e.is_some() {
                    return Err(GuestFault::Other(
                        "sign-extending load of symbolic data unsupported".into(),
                    ));
                }
                let c = match size {
                    1 => v.c as u8 as i8 as i64 as u64,
                    2 => v.c as u16 as i16 as i64 as u64,
                    _ => v.c as u32 as i32 as i64 as u64,
                };
                self.set_reg(st, shadow, ins.dst, Val::concrete(c));
            }
            Opcode::St1 | Opcode::St2 | Opcode::St4 | Opcode::St8 => {
                let base = self.get_reg(st, shadow, ins.dst);
                let addr = Self::require_concrete(base, "store address")?.wrapping_add(immu);
                let size = match ins.op {
                    Opcode::St1 => 1,
                    Opcode::St2 => 2,
                    Opcode::St4 => 4,
                    _ => 8,
                };
                let v = self.get_reg(st, shadow, ins.src);
                self.store(st, shadow, addr, size, v)?;
            }

            Opcode::Add
            | Opcode::AddI
            | Opcode::Sub
            | Opcode::SubI
            | Opcode::Mul
            | Opcode::MulI
            | Opcode::And
            | Opcode::AndI
            | Opcode::Or
            | Opcode::OrI
            | Opcode::Xor
            | Opcode::XorI
            | Opcode::Shl
            | Opcode::ShlI
            | Opcode::Shr
            | Opcode::ShrI => {
                let a = self.get_reg(st, shadow, ins.dst);
                let (b, is_imm) = match ins.op {
                    Opcode::Add
                    | Opcode::Sub
                    | Opcode::Mul
                    | Opcode::And
                    | Opcode::Or
                    | Opcode::Xor
                    | Opcode::Shl
                    | Opcode::Shr => (self.get_reg(st, shadow, ins.src), false),
                    _ => (Val::concrete(immu), true),
                };
                let _ = is_imm;
                let op = match ins.op {
                    Opcode::Add | Opcode::AddI => BinOp::Add,
                    Opcode::Sub | Opcode::SubI => BinOp::Sub,
                    Opcode::Mul | Opcode::MulI => BinOp::Mul,
                    Opcode::And | Opcode::AndI => BinOp::And,
                    Opcode::Or | Opcode::OrI => BinOp::Or,
                    Opcode::Xor | Opcode::XorI => BinOp::Xor,
                    Opcode::Shl | Opcode::ShlI => BinOp::Shl,
                    _ => BinOp::Shr,
                };
                let c = match op {
                    BinOp::Add => a.c.wrapping_add(b.c),
                    BinOp::Sub => a.c.wrapping_sub(b.c),
                    BinOp::Mul => a.c.wrapping_mul(b.c),
                    BinOp::And => a.c & b.c,
                    BinOp::Or => a.c | b.c,
                    BinOp::Xor => a.c ^ b.c,
                    BinOp::Shl => a.c.wrapping_shl(b.c as u32 & 63),
                    BinOp::Shr => a.c.wrapping_shr(b.c as u32 & 63),
                };
                let e = if a.e.is_some() || b.e.is_some() {
                    let ae = self.expr_of(a);
                    let be = self.expr_of(b);
                    Some(self.pool.bin(op, ae, be))
                } else {
                    None
                };
                self.set_reg(st, shadow, ins.dst, Val { c, e });
            }
            Opcode::Udiv | Opcode::UdivI | Opcode::Urem | Opcode::UremI => {
                let a = self.get_reg(st, shadow, ins.dst);
                let b = match ins.op {
                    Opcode::Udiv | Opcode::Urem => self.get_reg(st, shadow, ins.src),
                    _ => Val::concrete(immu),
                };
                let av = Self::require_concrete(a, "division operand")?;
                let bv = Self::require_concrete(b, "division operand")?;
                if bv == 0 {
                    return Err(GuestFault::Other("division by zero".into()));
                }
                let c = if matches!(ins.op, Opcode::Udiv | Opcode::UdivI) {
                    av / bv
                } else {
                    av % bv
                };
                self.set_reg(st, shadow, ins.dst, Val::concrete(c));
            }
            Opcode::Sar | Opcode::SarI => {
                let a = self.get_reg(st, shadow, ins.dst);
                let b = match ins.op {
                    Opcode::Sar => self.get_reg(st, shadow, ins.src),
                    _ => Val::concrete(immu),
                };
                let av = Self::require_concrete(a, "sar operand")?;
                let bv = Self::require_concrete(b, "sar operand")?;
                let c = ((av as i64).wrapping_shr(bv as u32 & 63)) as u64;
                self.set_reg(st, shadow, ins.dst, Val::concrete(c));
            }
            Opcode::Neg => {
                let a = self.get_reg(st, shadow, ins.dst);
                let c = a.c.wrapping_neg();
                let e = a.e.map(|e| {
                    let zero = self.pool.constant(0);
                    self.pool.bin(BinOp::Sub, zero, e)
                });
                self.set_reg(st, shadow, ins.dst, Val { c, e });
            }
            Opcode::Not => {
                let a = self.get_reg(st, shadow, ins.dst);
                let c = !a.c;
                let e = a.e.map(|e| {
                    let ones = self.pool.constant(u64::MAX);
                    self.pool.bin(BinOp::Xor, e, ones)
                });
                self.set_reg(st, shadow, ins.dst, Val { c, e });
            }

            Opcode::Cmp | Opcode::CmpI => {
                let a = self.get_reg(st, shadow, ins.dst);
                let b = match ins.op {
                    Opcode::Cmp => self.get_reg(st, shadow, ins.src),
                    _ => Val::concrete(immu),
                };
                set_cmp_flags(st, a.c, b.c);
                shadow.last_cmp = if a.e.is_some() || b.e.is_some() {
                    let ae = self.expr_of(a);
                    let be = self.expr_of(b);
                    Some((ae, be))
                } else {
                    None
                };
            }
            Opcode::Test => {
                let a = self.get_reg(st, shadow, ins.dst);
                let b = self.get_reg(st, shadow, ins.src);
                if a.e.is_some() || b.e.is_some() {
                    return Err(GuestFault::Other("symbolic test unsupported".into()));
                }
                let res = a.c & b.c;
                st.regs.flags.zf = res == 0;
                st.regs.flags.sf = (res as i64) < 0;
                st.regs.flags.cf = false;
                st.regs.flags.of = false;
                shadow.last_cmp = None;
            }

            Opcode::Jmp => st.regs.rip = immu,
            Opcode::Jz
            | Opcode::Jnz
            | Opcode::Jl
            | Opcode::Jle
            | Opcode::Jg
            | Opcode::Jge
            | Opcode::Jb
            | Opcode::Jbe
            | Opcode::Ja
            | Opcode::Jae => {
                if let Some((a, b)) = shadow.last_cmp {
                    let (cond, taken_polarity) = self.branch_cond(ins.op, a, b);
                    if !self.pool.is_const(cond) {
                        // Symbolic branch: fork via the engine. Extension
                        // 1 = condition holds with `taken_polarity`.
                        let (cond, target) = if taken_polarity {
                            (cond, immu)
                        } else {
                            // Normalise: extension 1 always means "the
                            // stored cond is true", so invert for
                            // negative-polarity jumps.
                            (self.pool.not1(cond), immu)
                        };
                        shadow.pending = Some(Pending { cond, target });
                        self.stats.forks += 1;
                        return Ok(Some(Exit::Guess { n: 2, hint: None }));
                    }
                    // Condition folded to a constant: concrete branch.
                    let holds =
                        matches!(self.pool.node(cond), crate::expr::Expr::Const { v } if v == 1);
                    let jump = if taken_polarity { holds } else { !holds };
                    if jump {
                        st.regs.rip = immu;
                    }
                } else if cond_holds(ins.op, st) {
                    st.regs.rip = immu;
                }
            }

            Opcode::Call => {
                let ret = st.regs.rip;
                let sp = st.regs.get(Reg::Rsp).wrapping_sub(8);
                self.store(st, shadow, sp, 8, Val::concrete(ret))?;
                st.regs.set(Reg::Rsp, sp);
                shadow.regs[Reg::Rsp.index()] = None;
                st.regs.rip = immu;
            }
            Opcode::Ret => {
                let sp = st.regs.get(Reg::Rsp);
                let v = self.load(st, shadow, sp, 8)?;
                let ret = Self::require_concrete(v, "return address")?;
                st.regs.set(Reg::Rsp, sp.wrapping_add(8));
                st.regs.rip = ret;
            }
            Opcode::Push => {
                let v = self.get_reg(st, shadow, ins.src);
                let sp = st.regs.get(Reg::Rsp).wrapping_sub(8);
                self.store(st, shadow, sp, 8, v)?;
                st.regs.set(Reg::Rsp, sp);
            }
            Opcode::Pop => {
                let sp = st.regs.get(Reg::Rsp);
                let v = self.load(st, shadow, sp, 8)?;
                st.regs.set(Reg::Rsp, sp.wrapping_add(8));
                self.set_reg(st, shadow, ins.dst, v);
            }

            Opcode::Syscall => {
                let nr = st.regs.get(Reg::Rax);
                if nr == SYS_MAKE_SYMBOLIC {
                    let addr = st.regs.get(Reg::Rdi);
                    let len = st.regs.get(Reg::Rsi).min(4096);
                    // Bytes must be mapped; contents become inputs.
                    let mut probe = vec![0u8; len as usize];
                    st.mem
                        .read_bytes(addr, &mut probe)
                        .map_err(GuestFault::Memory)?;
                    for i in 0..len {
                        let id = shadow.n_inputs;
                        shadow.n_inputs += 1;
                        let e = self.pool.input(id);
                        shadow.mem.insert(addr + i, e);
                    }
                    st.regs.set_return(0);
                } else {
                    match handle_syscall(st, &self.policy) {
                        SyscallEffect::Continue => {}
                        SyscallEffect::Trap(exit) => return Ok(Some(exit)),
                    }
                }
            }
            Opcode::Nop => {}
        }
        Ok(None)
    }
}
