//! Canned guest programs for symbolic execution tests and benches.

/// A guest with a "bug" guarded by a linear condition on one symbolic
/// byte: `if (x*3 + 7 == 52) crash; else exit(0)`. The crash input is
/// `x = 15`.
pub fn linear_crash_source() -> String {
    r#"
.text
_start:
    mov  rdi, buf
    mov  rsi, 1
    mov  rax, 1100     ; make_symbolic(buf, 1)
    syscall
    mov  r12, buf
    ld1  rbx, [r12]
    mul  rbx, 3
    add  rbx, 7
    cmp  rbx, 52
    jnz  ok
    mov  rcx, 1
    udiv rcx, 0        ; the bug: reached only when x*3+7 == 52
ok:
    mov  rdi, 0
    mov  rax, 60
    syscall
.data
buf: .space 1
"#
    .to_owned()
}

/// A byte-by-byte password check over `password.len()` symbolic bytes.
///
/// Any mismatch exits with code 1; a full match exits with code 42.
/// Symbolic execution must reconstruct the password from the branches.
pub fn password_source(password: &[u8]) -> String {
    use std::fmt::Write as _;
    let mut checks = String::new();
    for (i, &b) in password.iter().enumerate() {
        let _ = write!(
            checks,
            r#"
    ld1  rbx, [r12+{i}]
    cmp  rbx, {b}
    jnz  wrong
"#
        );
    }
    format!(
        r#"
.text
_start:
    mov  rdi, buf
    mov  rsi, {len}
    mov  rax, 1100     ; make_symbolic(buf, len)
    syscall
    mov  r12, buf
{checks}
    mov  rdi, 42       ; correct password
    mov  rax, 60
    syscall
wrong:
    mov  rdi, 1
    mov  rax, 60
    syscall
.data
buf: .space {len}
"#,
        len = password.len(),
        checks = checks,
    )
}

/// A guest that branches `depth` times on independent symbolic bytes
/// (each byte compared against 128), producing `2^depth` feasible paths.
/// Used to measure paths/second under different forking backends.
pub fn branch_tree_source(depth: u64) -> String {
    branch_tree_with_state_source(depth, 0)
}

/// Like [`branch_tree_source`], but the guest first dirties
/// `state_pages` pages of private state — modelling the paper's S2E
/// scenario where "address spaces \[are\] measured in GB": the cost of
/// *copying* the VM state at each fork grows with `state_pages`, while
/// CoW snapshot forking stays flat.
pub fn branch_tree_with_state_source(depth: u64, state_pages: u64) -> String {
    let state_bytes = (state_pages.max(1)) * 4096;
    format!(
        r#"
.text
_start:
    ; materialise the big VM state the paths will share
    mov  rcx, 0
fill:
    cmp  rcx, {state_pages}
    jae  filled
    mov  rbx, rcx
    mul  rbx, 4096
    add  rbx, state
    st8  [rbx], rcx
    add  rcx, 1
    jmp  fill
filled:
    mov  rdi, buf
    mov  rsi, {depth}
    mov  rax, 1100
    syscall
    mov  r12, buf
    mov  r13, 0         ; level
    mov  r14, 0         ; accumulated bits
loop:
    cmp  r13, {depth}
    jae  done
    mov  rbx, r12
    add  rbx, r13
    ld1  rcx, [rbx]
    cmp  rcx, 128
    jb   low
    or   r14, 1
low:
    shl  r14, 1
    add  r13, 1
    jmp  loop
done:
    mov  rdi, 0
    mov  rax, 60
    syscall
.data
buf: .space {depth}
.align 4096
state: .space {state_bytes}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{PathEnd, SymExec};
    use lwsnap_core::strategy::Dfs;
    use lwsnap_core::{Engine, EngineConfig, FaultPolicy, StopReason};
    use lwsnap_vm::assemble_source;

    fn explore(src: &str) -> (SymExec, lwsnap_core::RunResult) {
        let prog = assemble_source(src).unwrap();
        let mut exec = SymExec::new();
        let config = EngineConfig {
            fault_policy: FaultPolicy::FailPath,
            ..Default::default()
        };
        let mut engine = Engine::with_config(Dfs::new(), config);
        let result = engine.run(&mut exec, prog.boot().unwrap());
        (exec, result)
    }

    #[test]
    fn linear_crash_finds_magic_input() {
        let (exec, result) = explore(&linear_crash_source());
        assert_eq!(result.stop, StopReason::Exhausted);
        assert_eq!(exec.stats.forks, 1, "one symbolic branch");
        // Two feasible paths: crash and clean exit.
        let crash: Vec<_> = exec
            .cases
            .iter()
            .filter(|c| matches!(c.end, PathEnd::Fault(_)))
            .collect();
        assert_eq!(crash.len(), 1);
        assert_eq!(crash[0].inputs, vec![15], "3*15+7 == 52");
        let clean: Vec<_> = exec
            .cases
            .iter()
            .filter(|c| c.end == PathEnd::Exit(0))
            .collect();
        assert_eq!(clean.len(), 1);
        assert_ne!(clean[0].inputs[0], 15);
    }

    #[test]
    fn password_recovered_from_branches() {
        let password = b"bomb";
        let (exec, _) = explore(&password_source(password));
        // Paths: one failure per prefix length + one success = len+1.
        assert_eq!(exec.cases.len(), password.len() + 1);
        let success: Vec<_> = exec
            .cases
            .iter()
            .filter(|c| c.end == PathEnd::Exit(42))
            .collect();
        assert_eq!(success.len(), 1);
        assert_eq!(
            success[0].inputs,
            password.to_vec(),
            "password reconstructed"
        );
        // Every failing test case genuinely differs from the password at
        // its first divergence.
        for case in &exec.cases {
            if case.end == PathEnd::Exit(1) {
                assert_ne!(case.inputs, password.to_vec());
            }
        }
    }

    #[test]
    fn branch_tree_explores_all_paths() {
        let depth = 4;
        let (exec, result) = explore(&branch_tree_source(depth));
        assert_eq!(result.stop, StopReason::Exhausted);
        assert_eq!(exec.stats.forks, (1 << depth) - 1, "forks = internal nodes");
        assert_eq!(exec.cases.len(), 1 << depth, "2^depth feasible leaves");
        // All generated inputs are distinct paths: dedupe by the branch
        // pattern (byte >= 128).
        let mut patterns: Vec<Vec<bool>> = exec
            .cases
            .iter()
            .map(|c| c.inputs.iter().map(|&b| b >= 128).collect())
            .collect();
        patterns.sort();
        patterns.dedup();
        assert_eq!(
            patterns.len(),
            1 << depth,
            "every path has a distinct witness"
        );
    }

    #[test]
    fn infeasible_paths_pruned() {
        // if (x < 10) { if (x > 200) unreachable; } — inner true-branch
        // is infeasible and must be pruned by the solver.
        let src = r#"
.text
_start:
    mov  rdi, buf
    mov  rsi, 1
    mov  rax, 1100
    syscall
    mov  r12, buf
    ld1  rbx, [r12]
    cmp  rbx, 10
    jae  done
    cmp  rbx, 200
    jbe  done
    mov  rcx, 1
    udiv rcx, 0        ; unreachable bug
done:
    mov  rdi, 0
    mov  rax, 60
    syscall
.data
buf: .space 1
"#;
        let (exec, _) = explore(src);
        assert!(
            exec.stats.infeasible_pruned >= 1,
            "solver pruned the contradiction"
        );
        assert!(
            exec.cases
                .iter()
                .all(|c| !matches!(c.end, PathEnd::Fault(_))),
            "the unreachable bug must not be reported"
        );
    }
}
