//! # lwsnap-symex — symbolic execution with snapshot-based state forking
//!
//! The paper's first motivating application (§2) is S2E: multi-path
//! analysis of binaries where "at the core of S2E exploration is a
//! conceptual fork of the entire state of the VM". This crate is that
//! application, rebuilt on lightweight snapshots:
//!
//! * concrete VM state = the ordinary snapshottable
//!   [`lwsnap_core::GuestState`] (SVM-64 registers + paged memory);
//! * symbolic data = an expression [`expr::ExprPool`] shadow riding in
//!   the snapshot's `ext` slot;
//! * state forking = `sys_guess(2)` at every branch whose condition is
//!   symbolic — the engine's snapshot tree *is* the execution tree;
//! * feasibility & test generation = bit-blasting ([`blast`]) into the
//!   `lwsnap-solver` CDCL core.
//!
//! Where S2E modifies "about 2 KLOC spread in QEMU's code base" to
//! intercept writes, here containment is free: the MMU's copy-on-write
//! does it.
//!
//! ```
//! use lwsnap_core::{Engine, strategy::Dfs};
//! use lwsnap_symex::{SymExec, PathEnd, programs::linear_crash_source};
//! use lwsnap_vm::assemble_source;
//!
//! let prog = assemble_source(&linear_crash_source()).unwrap();
//! let mut exec = SymExec::new();
//! Engine::new(Dfs::new()).run(&mut exec, prog.boot().unwrap());
//! // The crashing input (x = 15, since 3x+7 == 52) was synthesised:
//! assert!(exec.cases.iter().any(|c| matches!(c.end, PathEnd::Fault(_)) && c.inputs == [15]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blast;
pub mod expr;
pub mod machine;
pub mod par;
pub mod programs;

pub use blast::{check_path, check_path_on, Blaster, Feasibility};
pub use expr::{BinOp, CmpOp, Expr, ExprId, ExprPool, SharedPool, Width};
pub use machine::{PathEnd, Shadow, SymExec, SymStats, TestCase, SYS_MAKE_SYMBOLIC};
pub use par::{par_explore, par_explore_on, par_explore_with, ParExploreResult};
