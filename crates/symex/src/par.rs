//! The parallel symbolic-execution driver: multi-path exploration on
//! the lock-free work-stealing engine.
//!
//! This is the ROADMAP's "parallel symex driver on top of the lock-free
//! deque": [`par_explore`] runs the same S2E-style exploration as a
//! sequential [`crate::SymExec`] run, but forks path-constraint
//! snapshots into [`lwsnap_core::ParallelEngine`] so that independent
//! paths execute — and, crucially, solve their feasibility queries — on
//! N worker threads at once.
//!
//! ## How the pieces fit
//!
//! * Concrete state forks for free: a path's registers/memory ride in
//!   the engine's immutable snapshots, exactly as in a sequential run.
//! * Symbolic state forks as data: the [`crate::Shadow`] (symbolic
//!   registers, memory bytes and the path condition) rides in the
//!   snapshot's `ext` slot. Its `ExprId`s are resolved against one
//!   [`SharedPool`] shared by every worker, so a stolen path's
//!   constraints mean the same thing on the thief as on the victim.
//! * Each worker owns a private [`crate::SymExec`] (interner handle +
//!   local counters + local test cases); when the run drains, per-worker
//!   verdicts are merged into one canonically ordered report.
//!
//! ## Determinism
//!
//! Which worker explores which path is racy; the *verdicts* are not.
//! Pruning and test generation depend only on each path's constraint
//! set, so the merged [`ParExploreResult::cases`] is the same multiset
//! as a sequential run's — [`par_explore`] additionally sorts it into a
//! canonical order so equal explorations compare equal with `==`.
//!
//! ```
//! use lwsnap_symex::{par_explore, PathEnd, programs::linear_crash_source};
//! use lwsnap_vm::assemble_source;
//!
//! let prog = assemble_source(&linear_crash_source()).unwrap();
//! let report = par_explore(prog.boot().unwrap(), 4);
//! // The crashing input (x = 15, since 3x+7 == 52) is still found:
//! assert!(report
//!     .cases
//!     .iter()
//!     .any(|c| matches!(c.end, PathEnd::Fault(_)) && c.inputs == [15]));
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use lwsnap_core::{Exit, Guest, GuestState, ParallelConfig, ParallelEngine, ParallelRunResult};
use lwsnap_service::{ServiceConfig, ShardedService, SolverBackend};

use crate::expr::SharedPool;
use crate::machine::{SymExec, SymStats, TestCase};

/// The merged outcome of a parallel exploration.
#[derive(Debug)]
pub struct ParExploreResult {
    /// The engine-level result (stop reason, transcript, engine stats,
    /// per-worker engine stats).
    pub run: ParallelRunResult,
    /// Per-path verdicts from every worker, in canonical order (sorted
    /// by concrete inputs, then depth/constraints/end), so two runs of
    /// the same program compare equal regardless of scheduling.
    pub cases: Vec<TestCase>,
    /// Symbolic-execution counters summed over workers.
    pub stats: SymStats,
    /// The shared expression pool (e.g. for re-validating witnesses
    /// with [`SharedPool::eval`]).
    pub pool: SharedPool,
}

/// What each worker drops into the shared sink when it finishes.
#[derive(Default)]
struct Merged {
    cases: Vec<TestCase>,
    stats: SymStats,
}

impl Merged {
    fn absorb(&mut self, exec: &mut SymExec) {
        self.cases.append(&mut exec.cases);
        let s = exec.stats;
        self.stats.forks += s.forks;
        self.stats.solver_checks += s.solver_checks;
        self.stats.infeasible_pruned += s.infeasible_pruned;
        self.stats.tests_generated += s.tests_generated;
        self.stats.instructions += s.instructions;
    }
}

/// A per-worker guest: a private [`SymExec`] on the shared pool, whose
/// verdicts drain into the run-wide sink when the worker retires.
struct ParWorker {
    exec: SymExec,
    sink: Arc<Mutex<Merged>>,
}

impl Guest for ParWorker {
    fn resume(&mut self, st: &mut GuestState) -> Exit {
        self.exec.resume(st)
    }
}

impl Drop for ParWorker {
    fn drop(&mut self) {
        self.sink.lock().unwrap().absorb(&mut self.exec);
    }
}

/// Explores every feasible path of the program booted into `root` on
/// `workers` threads, merging per-path verdicts. See the module docs.
///
/// Feasibility queries flow through the [`SolverBackend`] trait — by
/// default an in-process [`ShardedService`] sized so concurrent
/// workers' queries rarely share a shard lock. Swap the backend with
/// [`par_explore_on`] to solve on a worker pool or a remote `lwsnapd`
/// without touching the driver.
pub fn par_explore(root: GuestState, workers: usize) -> ParExploreResult {
    par_explore_with(ParallelConfig::new(workers), root)
}

/// [`par_explore`] with explicit engine limits / fault policy.
pub fn par_explore_with(config: ParallelConfig, root: GuestState) -> ParExploreResult {
    // One in-process backend shared by all workers; 2× shards so two
    // workers hashing onto the same shard stays the exception.
    let backend = Arc::new(ShardedService::new(ServiceConfig::new(config.workers * 2)));
    par_explore_on(config, root, backend)
}

/// [`par_explore_with`] against an arbitrary [`SolverBackend`]: every
/// worker's feasibility queries are solved by `backend` (each worker
/// under its own session id). The merged verdicts are bit-identical
/// across backends — see [`crate::blast::check_path_on`] — so this is
/// purely a deployment knob: in-process for latency, a pool for
/// parallelism beyond the exploration workers, a remote daemon to move
/// constraint solving off-box entirely (the paper's solver-service
/// vision closing the loop).
pub fn par_explore_on(
    config: ParallelConfig,
    root: GuestState,
    backend: Arc<dyn SolverBackend>,
) -> ParExploreResult {
    let pool = SharedPool::new();
    let sink: Arc<Mutex<Merged>> = Arc::default();
    let next_session = AtomicU64::new(0);
    let run = ParallelEngine::with_config(config).run(
        || {
            let session = next_session.fetch_add(1, Ordering::Relaxed);
            ParWorker {
                exec: SymExec::with_backend(pool.clone(), Arc::clone(&backend), session),
                sink: Arc::clone(&sink),
            }
        },
        root,
    );
    // All workers have joined, so every ParWorker has dropped and the
    // sink holds the complete merge.
    let merged = std::mem::take(&mut *sink.lock().unwrap());
    let mut cases = merged.cases;
    TestCase::canonical_sort(&mut cases);
    ParExploreResult {
        run,
        cases,
        stats: merged.stats,
        pool,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::PathEnd;
    use crate::programs::{branch_tree_source, linear_crash_source, password_source};
    use lwsnap_core::{strategy::Dfs, Engine, StopReason};
    use lwsnap_vm::assemble_source;

    /// Sequential baseline: explore with one SymExec and return its
    /// canonically sorted cases.
    fn sequential_cases(src: &str) -> (Vec<TestCase>, SymStats) {
        let prog = assemble_source(src).unwrap();
        let mut exec = SymExec::new();
        Engine::new(Dfs::new()).run(&mut exec, prog.boot().unwrap());
        let mut cases = exec.cases;
        TestCase::canonical_sort(&mut cases);
        (cases, exec.stats)
    }

    #[test]
    fn par_explore_matches_sequential_verdicts() {
        let src = branch_tree_source(5);
        let (seq_cases, seq_stats) = sequential_cases(&src);
        assert!(!seq_cases.is_empty());
        for workers in [1usize, 2, 4] {
            let prog = assemble_source(&src).unwrap();
            let report = par_explore(prog.boot().unwrap(), workers);
            assert_eq!(report.run.stop, StopReason::Exhausted);
            assert_eq!(
                report.cases, seq_cases,
                "verdict set differs at {workers} workers"
            );
            assert_eq!(report.stats.forks, seq_stats.forks);
            assert_eq!(report.stats.tests_generated, seq_stats.tests_generated);
        }
    }

    #[test]
    fn par_explore_finds_the_crash() {
        let prog = assemble_source(&linear_crash_source()).unwrap();
        let report = par_explore(prog.boot().unwrap(), 3);
        assert!(report
            .cases
            .iter()
            .any(|c| matches!(c.end, PathEnd::Fault(_)) && c.inputs == [15]));
    }

    #[test]
    fn par_explore_cracks_the_password() {
        let password = b"hi!";
        let prog = assemble_source(&password_source(password)).unwrap();
        let report = par_explore(prog.boot().unwrap(), 4);
        // Exactly one accepting path (exit 42), and its synthesised
        // input is the password itself.
        let accepting: Vec<_> = report
            .cases
            .iter()
            .filter(|c| c.end == PathEnd::Exit(42))
            .collect();
        assert_eq!(accepting.len(), 1);
        assert_eq!(accepting[0].inputs, password);
    }

    /// The driver is written once against [`SolverBackend`]: the same
    /// exploration over a worker-pool backend and over a **remote**
    /// `lwsnapd` (pipelined TCP) yields the exact verdicts of the
    /// sequential local run.
    #[test]
    fn par_explore_is_backend_agnostic() {
        use lwsnap_service::{PipelinedClient, Server, WorkerPool};

        let src = branch_tree_source(4);
        let (seq_cases, _) = sequential_cases(&src);
        assert!(!seq_cases.is_empty());

        // Worker-pool backend.
        let service = Arc::new(ShardedService::new(ServiceConfig::new(4)));
        let pool = WorkerPool::new(Arc::clone(&service), 2);
        let prog = assemble_source(&src).unwrap();
        let report = par_explore_on(
            ParallelConfig::new(2),
            prog.boot().unwrap(),
            Arc::new(pool.client()),
        );
        assert_eq!(report.cases, seq_cases, "pool backend diverged");
        pool.shutdown();

        // Remote backend: symbolic execution whose feasibility queries
        // travel the pipelined wire to an lwsnapd over loopback.
        let server = Server::start("127.0.0.1:0", ServiceConfig::new(4), 2).unwrap();
        let remote = Arc::new(PipelinedClient::connect(server.local_addr()).unwrap());
        let prog = assemble_source(&src).unwrap();
        let report = par_explore_on(ParallelConfig::new(2), prog.boot().unwrap(), remote);
        assert_eq!(report.cases, seq_cases, "remote backend diverged");
        assert!(
            server.service().stats().total().queries >= report.stats.solver_checks,
            "remote service actually served the checks"
        );
        server.shutdown();
    }

    /// The cluster is just another backend: the same exploration with
    /// feasibility queries consistent-hashed over a 3-node in-process
    /// `lwsnapd` cluster yields the exact sequential verdicts, with
    /// every node actually serving traffic.
    #[test]
    fn par_explore_runs_unmodified_over_a_cluster() {
        use lwsnap_service::Cluster;

        let src = branch_tree_source(4);
        let (seq_cases, _) = sequential_cases(&src);
        assert!(!seq_cases.is_empty());

        let cluster = Cluster::start_local(3, ServiceConfig::new(4), 2).unwrap();
        let backend = Arc::new(cluster.connect().unwrap());
        let prog = assemble_source(&src).unwrap();
        let report = par_explore_on(
            ParallelConfig::new(3),
            prog.boot().unwrap(),
            backend.clone(),
        );
        assert_eq!(report.cases, seq_cases, "cluster backend diverged");
        let fleet = lwsnap_service::SolverBackend::node_stats(&*backend).unwrap();
        assert!(
            fleet.total().queries >= report.stats.solver_checks,
            "cluster actually served the checks"
        );
        cluster.shutdown();
    }

    #[test]
    fn workers_share_one_pool() {
        let prog = assemble_source(&branch_tree_source(4)).unwrap();
        let report = par_explore(prog.boot().unwrap(), 4);
        assert!(
            !report.pool.is_empty(),
            "interned nodes live in the shared pool"
        );
        // Witnesses re-validate against the shared pool: every reported
        // SAT case satisfies being *a* completed path (smoke check that
        // ids survived cross-worker transfer).
        assert!(report.stats.solver_checks >= report.cases.len() as u64);
    }
}
