//! The passive replica store: each node's copy of the constraint path
//! logs shipped to it by sessions homed elsewhere on the ring.
//!
//! Replication rides on the same observation that powers in-node
//! eviction: a solver snapshot is a **pure function of the clause path
//! from its root**. So the replica of a session is not a snapshot copy
//! — it is the session's path log, a set of `(problem, parent,
//! clauses)` edges, recorded here as bytes and solved by nobody until
//! the moment it is needed. Recording an edge costs a hash-map insert;
//! the solving cost of replication is deferred entirely to failover,
//! which is the rare path.
//!
//! Edges arrive on two planes that may overlap during a rollout: the
//! client fans [`crate::Request::Replicate`] frames, and the session's
//! home node fans [`crate::Request::Forward`] frames itself. Both are
//! idempotent — `Forward` by its home-assigned sequence number, and
//! every record by the derived problem's wire id — so the two planes
//! (and chaos-duplicated frames) never double-count.
//!
//! On failover (or a planned drain) the client sends
//! [`crate::Request::Promote`]; [`ReplicaStore::promote`] then walks
//! each requested problem's parent chain back to a session root (local
//! index 0 — every node's fresh root solver is identical) or to an
//! already-promoted ancestor, and replays the edges downward through
//! the node's own [`ShardedService`]. Because the solver is
//! deterministic in the clause path, the promoted problems answer
//! **bit-identical verdicts and models** to the originals — the
//! property `tests/replication.rs` proptests.
//!
//! ## Bounded `replica_bytes`: compaction
//!
//! A long-lived session's path log grows without bound. When a byte
//! budget is configured ([`ReplicaStore::set_budget`]) and the store
//! exceeds it, linear parent chains are collapsed into single
//! **composite edges**: an edge whose sole child extends its tail is
//! merged into that child, concatenating their segment lists. Each
//! segment keeps its original wire id and its original clause batch, so
//! replay still issues **one solve per original solve** — the exact
//! trajectory — and promotion stays bit-identical for verdicts AND
//! witness models (proptested). What compaction reclaims is the
//! per-edge bookkeeping overhead; the clause bytes themselves are the
//! irreducible replay input.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use lwsnap_trace as trace;

use crate::protocol::clauses_to_lits;
use crate::sharded::{ProblemId, ShardedService};

/// Accounted bookkeeping overhead per stored edge (hash-map slots,
/// parent pointer, segment vector) — what compaction reclaims.
const EDGE_OVERHEAD: u64 = 64;

/// Accounted bookkeeping overhead per segment inside an edge (wire id,
/// index entry, clause vector header) — irreducible, like the clauses.
const SEGMENT_OVERHEAD: u64 = 32;

/// One original derivation step: `problem` was derived from the
/// previous segment (or the edge's parent) by adding `clauses`.
struct Segment {
    /// Wire id (home-node coordinates) of the derived problem.
    problem: u64,
    /// The incremental constraint, DIMACS literals.
    clauses: Vec<Vec<i64>>,
}

impl Segment {
    fn bytes(&self) -> u64 {
        SEGMENT_OVERHEAD
            + self
                .clauses
                .iter()
                .map(|c| 4 + 8 * c.len() as u64)
                .sum::<u64>()
    }
}

/// One stored path-log edge: possibly composite (several original
/// derivation steps chained tail-to-head by compaction).
struct Edge {
    /// Wire id of the problem the FIRST segment was derived from.
    parent: u64,
    /// The derivation steps, oldest first; never empty.
    segments: Vec<Segment>,
}

impl Edge {
    /// Accounted footprint, for the `replica_bytes` counter.
    fn bytes(&self) -> u64 {
        EDGE_OVERHEAD + self.segments.iter().map(Segment::bytes).sum::<u64>()
    }

    /// The last segment's problem id — the edge's key in the log.
    fn tail(&self) -> u64 {
        self.segments.last().expect("edges are never empty").problem
    }
}

/// One replicated session's path log.
#[derive(Default)]
struct SessionLog {
    /// Stored edges, keyed by their tail segment's wire id.
    edges: HashMap<u64, Edge>,
    /// Every recorded segment's wire id → the key of the edge holding
    /// it. Survives compaction, so parent pointers and promotions keep
    /// resolving interior ids of composite edges.
    index: HashMap<u64, u64>,
    /// Home-node `Forward` sequence numbers already applied.
    seqs: HashSet<u64>,
    /// Released problems whose segments are *retained* because a live
    /// descendant's replay path still runs through them. When the
    /// descendants are forgotten too, their edges cascade out
    /// ([`ReplicaStore::forget`]).
    tombstones: HashSet<u64>,
}

#[derive(Default)]
struct StoreInner {
    /// Path logs per replicated session.
    sessions: HashMap<u64, SessionLog>,
    /// Memo of already-replayed problems: old wire id → promoted wire
    /// id on THIS node. Shared across sessions (home-node wire ids are
    /// globally unique: the node id is packed into them), so chains
    /// promoted piecemeal replay each edge once.
    promoted: HashMap<u64, u64>,
    /// Byte budget; exceeding it triggers compaction.
    budget: Option<u64>,
    /// Counters surfaced through [`crate::StatsSummary`].
    bytes: u64,
    promotions: u64,
    failovers: u64,
    compactions: u64,
}

/// Per-node passive replica store; see the module docs. All methods
/// take `&self` (one internal mutex) — the reactor records and promotes
/// inline, while tests may poke at it from the host thread.
#[derive(Default)]
pub struct ReplicaStore {
    inner: Mutex<StoreInner>,
}

/// Replication counters: `(replica_bytes, replica_promotions,
/// failovers)`.
pub type ReplicaCounters = (u64, u64, u64);

impl ReplicaStore {
    /// An empty store with no byte budget.
    pub fn new() -> ReplicaStore {
        ReplicaStore::default()
    }

    /// An empty store that compacts whenever its accounted bytes exceed
    /// `budget`.
    pub fn with_budget(budget: Option<u64>) -> ReplicaStore {
        let store = ReplicaStore::default();
        store.inner.lock().unwrap().budget = budget;
        store
    }

    /// Sets (or clears) the compaction byte budget.
    pub fn set_budget(&self, budget: Option<u64>) {
        self.inner.lock().unwrap().budget = budget;
    }

    /// Records one path-log edge: on `session`'s home node, `problem`
    /// was derived from `parent` by adding `clauses`. Idempotent per
    /// problem id — a problem already recorded (even inside a composite
    /// edge) is left untouched, so the client-fanned and server-fanned
    /// replication planes never double-count.
    pub fn record(&self, session: u64, problem: u64, parent: u64, clauses: Vec<Vec<i64>>) {
        let mut inner = self.inner.lock().unwrap();
        record_locked(&mut inner, session, problem, parent, clauses);
    }

    /// Records one server-forwarded edge, idempotent by the home node's
    /// per-session sequence number: returns `false` (and records
    /// nothing) if `seq` was already applied — a duplicated frame.
    pub fn record_seq(
        &self,
        session: u64,
        seq: u64,
        problem: u64,
        parent: u64,
        clauses: Vec<Vec<i64>>,
    ) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if !inner.sessions.entry(session).or_default().seqs.insert(seq) {
            return false;
        }
        record_locked(&mut inner, session, problem, parent, clauses);
        true
    }

    /// Number of stored edges for `session` (composite edges count
    /// once).
    pub fn session_edges(&self, session: u64) -> usize {
        self.inner
            .lock()
            .unwrap()
            .sessions
            .get(&session)
            .map_or(0, |log| log.edges.len())
    }

    /// Session ids with at least one stored edge — what a surviving
    /// peer iterates when it self-promotes after detecting a death.
    pub fn sessions(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .inner
            .lock()
            .unwrap()
            .sessions
            .keys()
            .copied()
            .collect();
        ids.sort_unstable();
        ids
    }

    /// Every recorded problem id of `session`, interior segments of
    /// composite edges included.
    pub fn session_problems(&self, session: u64) -> Vec<u64> {
        let inner = self.inner.lock().unwrap();
        let mut ids: Vec<u64> = inner
            .sessions
            .get(&session)
            .map_or_else(Vec::new, |log| log.index.keys().copied().collect());
        ids.sort_unstable();
        ids
    }

    /// Replica GC: the client released `problems` on the session's
    /// home node, so their recorded edges will never be promoted —
    /// drop them and reclaim their bytes. **Child-aware**: an edge
    /// some *live* problem's replay path still runs through is kept
    /// (tombstoned) and cascades out when its last descendant is
    /// forgotten, so a release deep in a chain never breaks replay of
    /// the problems derived from it. Returns the number of edges
    /// dropped (now, including cascades from earlier tombstones).
    pub fn forget(&self, session: u64, problems: &[u64]) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let st = &mut *inner;
        let Some(log) = st.sessions.get_mut(&session) else {
            return 0;
        };
        let SessionLog {
            edges,
            index,
            seqs: _,
            tombstones,
        } = log;
        tombstones.extend(problems.iter().copied());
        let mut removed = 0usize;
        let mut freed = 0u64;
        loop {
            // An edge is removable once every segment in it is released
            // AND no stored edge's parent pointer resolves into it.
            let live_parent_keys: HashSet<u64> = edges
                .values()
                .filter_map(|e| index.get(&e.parent).copied())
                .collect();
            let victim = edges
                .iter()
                .find(|(key, e)| {
                    !live_parent_keys.contains(*key)
                        && e.segments.iter().all(|s| tombstones.contains(&s.problem))
                })
                .map(|(&key, _)| key);
            let Some(victim) = victim else { break };
            if let Some(edge) = edges.remove(&victim) {
                freed += edge.bytes();
                removed += 1;
                for seg in &edge.segments {
                    index.remove(&seg.problem);
                    tombstones.remove(&seg.problem);
                }
            }
        }
        // Tombstones for ids with no recorded segment are dead weight.
        tombstones.retain(|p| index.contains_key(p));
        if log.edges.is_empty() {
            st.sessions.remove(&session);
        }
        st.bytes -= freed;
        removed
    }

    /// Current `(replica_bytes, replica_promotions, failovers)`.
    pub fn counters(&self) -> ReplicaCounters {
        let inner = self.inner.lock().unwrap();
        (inner.bytes, inner.promotions, inner.failovers)
    }

    /// Linear chains collapsed into composite edges so far.
    pub fn compactions(&self) -> u64 {
        self.inner.lock().unwrap().compactions
    }

    /// Promotes `session`'s replica onto `service` (this node's own
    /// tree): every problem in `problems` — **plus every other problem
    /// recorded for the session**, so a client that never saw an edge
    /// (another client drove it) still receives its remap — whose
    /// recorded path can be walked back to a session root or an
    /// already-promoted ancestor is replayed, and `(old wire id,
    /// promoted wire id)` pairs are returned, request order first.
    /// Problems with no recorded path (or a broken chain) are silently
    /// omitted — the client treats them as unrecoverable.
    pub fn promote(
        &self,
        service: &ShardedService,
        session: u64,
        problems: &[u64],
    ) -> Vec<(u64, u64)> {
        let promote_t0 = trace::now_ns();
        let mut inner = self.inner.lock().unwrap();
        inner.failovers += 1;
        let mut requested: Vec<u64> = problems.to_vec();
        let mut seen: HashSet<u64> = problems.iter().copied().collect();
        if let Some(log) = inner.sessions.get(&session) {
            let mut extras: Vec<u64> = log
                .index
                .keys()
                .filter(|p| seen.insert(**p))
                .copied()
                .collect();
            extras.sort_unstable();
            requested.extend(extras);
        }
        let mut mapping = Vec::with_capacity(requested.len());
        for &problem in &requested {
            if let Some(new) = promote_one(&mut inner, service, session, problem) {
                mapping.push((problem, new));
            }
        }
        trace::span(
            trace::Kind::ReplPromote,
            promote_t0,
            session,
            mapping.len() as u64,
        );
        trace::Registry::global()
            .promotions
            .add(mapping.len() as u64);
        mapping
    }
}

/// The unlocked record path shared by [`ReplicaStore::record`] and
/// [`ReplicaStore::record_seq`].
fn record_locked(
    st: &mut StoreInner,
    session: u64,
    problem: u64,
    parent: u64,
    clauses: Vec<Vec<i64>>,
) {
    let log = st.sessions.entry(session).or_default();
    if log.index.contains_key(&problem) {
        return;
    }
    let edge = Edge {
        parent,
        segments: vec![Segment { problem, clauses }],
    };
    st.bytes += edge.bytes();
    log.index.insert(problem, problem);
    log.edges.insert(problem, edge);
    if st.budget.is_some_and(|b| st.bytes > b) {
        compact_locked(st);
    }
}

/// Collapses every mergeable linear link in every session: an edge
/// whose SOLE child extends its tail is merged into that child
/// (segments concatenated, the child inheriting the merged-away edge's
/// parent). The segment index keeps resolving interior ids, so replay
/// and GC semantics are unchanged — only the per-edge overhead is
/// reclaimed.
fn compact_locked(st: &mut StoreInner) {
    let mut saved = 0u64;
    let mut merges = 0u64;
    for log in st.sessions.values_mut() {
        loop {
            // Child census: how many stored edges hang off each edge
            // key, and (when unique) which one.
            let mut children: HashMap<u64, (usize, u64)> = HashMap::new();
            for (&ck, e) in &log.edges {
                if let Some(&pk) = log.index.get(&e.parent) {
                    let slot = children.entry(pk).or_insert((0, ck));
                    slot.0 += 1;
                    slot.1 = ck;
                }
            }
            let target = children.iter().find_map(|(&pk, &(n, ck))| {
                (n == 1 && log.edges[&ck].parent == log.edges[&pk].tail()).then_some((pk, ck))
            });
            let Some((pk, ck)) = target else { break };
            let parent_edge = log.edges.remove(&pk).expect("census key is stored");
            for seg in &parent_edge.segments {
                log.index.insert(seg.problem, ck);
            }
            let child = log.edges.get_mut(&ck).expect("census child is stored");
            child.parent = parent_edge.parent;
            let mut segments = parent_edge.segments;
            segments.append(&mut child.segments);
            child.segments = segments;
            saved += EDGE_OVERHEAD;
            merges += 1;
        }
    }
    st.bytes -= saved;
    st.compactions += merges;
}

/// Replays one problem's path onto `service`, memoizing every segment.
fn promote_one(
    st: &mut StoreInner,
    service: &ShardedService,
    session: u64,
    problem: u64,
) -> Option<u64> {
    // Walk up to a promoted ancestor or a root, collecting the edge
    // keys of the unreplayed suffix (child-most first).
    let mut chain: Vec<u64> = Vec::new();
    {
        let StoreInner {
            sessions, promoted, ..
        } = st;
        let mut cur = problem;
        loop {
            if promoted.contains_key(&cur) {
                break;
            }
            if cur as u32 == 0 {
                // A session root: local index 0. Every node's fresh
                // root solver is identical, so this node's root at the
                // same shard index is the bit-identical replay base.
                let shard = (cur >> 32) as u16 as usize % service.num_shards();
                let root = service.root(shard)?.to_wire();
                promoted.insert(cur, root);
                break;
            }
            let log = sessions.get(&session)?;
            let &key = log.index.get(&cur)?;
            chain.push(key);
            cur = log.edges.get(&key)?.parent;
        }
    }
    // Replay downward, oldest edge first, one solve PER SEGMENT — the
    // witness model depends on the exact solve trajectory, so composite
    // edges must replay their original step boundaries, never a merged
    // clause batch.
    for &key in chain.iter().rev() {
        let StoreInner {
            sessions,
            promoted,
            promotions,
            ..
        } = st;
        let edge = sessions.get(&session)?.edges.get(&key)?;
        let mut parent = *promoted.get(&edge.parent)?;
        for seg in &edge.segments {
            if let Some(&done) = promoted.get(&seg.problem) {
                parent = done;
                continue;
            }
            let lits = clauses_to_lits(&seg.clauses);
            let reply = service.solve(ProblemId::from_wire(parent), &lits)?;
            let new = reply.problem.to_wire();
            promoted.insert(seg.problem, new);
            *promotions += 1;
            parent = new;
        }
    }
    st.promoted.get(&problem).copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ServiceConfig;
    use lwsnap_solver::SolveResult;

    fn wire(node: u16, shard: u16, local: u32) -> u64 {
        (node as u64) << 48 | (shard as u64) << 32 | local as u64
    }

    #[test]
    fn unknown_problems_are_omitted_not_errors() {
        let store = ReplicaStore::new();
        let svc = ShardedService::new(ServiceConfig::new(2).with_node_id(1));
        assert_eq!(store.promote(&svc, 7, &[wire(0, 0, 5)]), vec![]);
        let (_, promotions, failovers) = store.counters();
        assert_eq!((promotions, failovers), (0, 1));
    }

    #[test]
    fn shared_prefixes_replay_once() {
        let store = ReplicaStore::new();
        // Home node 0's tree: root → a (x1) → {b (x2), c (¬x2)}.
        let (root, a, b, c) = (wire(0, 1, 0), wire(0, 1, 1), wire(0, 1, 2), wire(0, 1, 3));
        store.record(9, a, root, vec![vec![1]]);
        store.record(9, b, a, vec![vec![2]]);
        store.record(9, c, a, vec![vec![-2]]);
        let svc = ShardedService::new(ServiceConfig::new(2).with_node_id(1));
        let mapping = store.promote(&svc, 9, &[a, b, c]);
        assert_eq!(mapping.len(), 3);
        let (_, promotions, _) = store.counters();
        assert_eq!(promotions, 3, "edge `a` replayed once, not three times");
        for (old, new) in &mapping {
            assert_eq!(ProblemId::from_wire(*new).node(), 1);
            assert_ne!(old, new);
            assert_eq!(
                svc.result_of(ProblemId::from_wire(*new)),
                Some(SolveResult::Sat)
            );
        }
        // b and c really diverge on the replica too.
        let (_, b2) = mapping[1];
        let sat = svc
            .solve(ProblemId::from_wire(b2), &clauses_to_lits(&[vec![2]]))
            .unwrap();
        assert_eq!(sat.result, SolveResult::Sat);
    }

    #[test]
    fn forget_drops_released_edges_and_their_bytes() {
        let store = ReplicaStore::new();
        let (root, a, b) = (wire(0, 0, 0), wire(0, 0, 1), wire(0, 0, 2));
        store.record(5, a, root, vec![vec![1, 2, 3]]);
        store.record(5, b, root, vec![vec![-1]]);
        let (full, ..) = store.counters();
        assert_eq!(store.forget(5, &[a]), 1);
        assert_eq!(store.session_edges(5), 1);
        assert!(store.counters().0 < full);
        assert_eq!(store.forget(5, &[b]), 1);
        assert_eq!(store.session_edges(5), 0);
        assert_eq!(store.counters().0, 0, "all replica bytes reclaimed");
        // Forgetting unknown problems or sessions is a no-op.
        assert_eq!(store.forget(5, &[a]), 0);
        assert_eq!(store.forget(99, &[a]), 0);
    }

    #[test]
    fn forget_keeps_edges_live_descendants_replay_through() {
        let store = ReplicaStore::new();
        // root → a → b → c; release a and b while c stays live.
        let (root, a, b, c) = (wire(0, 1, 0), wire(0, 1, 1), wire(0, 1, 2), wire(0, 1, 3));
        store.record(9, a, root, vec![vec![1]]);
        store.record(9, b, a, vec![vec![2]]);
        store.record(9, c, b, vec![vec![3]]);
        assert_eq!(store.forget(9, &[a, b]), 0, "c still replays through them");
        assert_eq!(store.session_edges(9), 3);
        // c must still be promotable — the whole chain replays.
        let svc = ShardedService::new(ServiceConfig::new(2).with_node_id(1));
        let mapping = store.promote(&svc, 9, &[c]);
        assert!(mapping.iter().any(|&(old, _)| old == c));
        let promoted_c = mapping.iter().find(|&&(old, _)| old == c).unwrap().1;
        assert_eq!(
            svc.result_of(ProblemId::from_wire(promoted_c)),
            Some(SolveResult::Sat)
        );
        // Releasing c cascades the whole tombstoned chain out.
        assert_eq!(store.forget(9, &[c]), 3);
        assert_eq!(store.session_edges(9), 0);
        assert_eq!(store.counters().0, 0);
    }

    #[test]
    fn byte_counter_tracks_recorded_payload_size() {
        let store = ReplicaStore::new();
        store.record(1, wire(0, 0, 1), wire(0, 0, 0), vec![vec![1, -2]]);
        let (bytes, ..) = store.counters();
        assert!(bytes > 0);
        // Re-recording the same problem replaces, not accumulates.
        store.record(1, wire(0, 0, 1), wire(0, 0, 0), vec![vec![1, -2]]);
        assert_eq!(store.counters().0, bytes);
        assert_eq!(store.session_edges(1), 1);
    }

    #[test]
    fn forward_frames_are_idempotent_by_seq() {
        let store = ReplicaStore::new();
        let (root, a, b) = (wire(0, 0, 0), wire(0, 0, 1), wire(0, 0, 2));
        assert!(store.record_seq(3, 0, a, root, vec![vec![1]]));
        let (bytes, ..) = store.counters();
        // A chaos-duplicated frame: same seq, applied nothing.
        assert!(!store.record_seq(3, 0, a, root, vec![vec![1]]));
        assert_eq!(store.counters().0, bytes);
        assert_eq!(store.session_edges(3), 1);
        // The client-fanned copy of the same edge: new plane, no seq,
        // deduplicated by problem id instead.
        store.record(3, a, root, vec![vec![1]]);
        assert_eq!(store.counters().0, bytes);
        assert_eq!(store.session_edges(3), 1);
        // A genuinely new edge under a new seq lands.
        assert!(store.record_seq(3, 1, b, a, vec![vec![2]]));
        assert_eq!(store.session_edges(3), 2);
    }

    #[test]
    fn budget_compaction_collapses_linear_chains() {
        let store = ReplicaStore::with_budget(Some(1));
        let session = 11u64;
        let chain: Vec<u64> = (0..=16).map(|i| wire(0, 1, i)).collect();
        for i in 1..chain.len() {
            store.record(session, chain[i], chain[i - 1], vec![vec![i as i64]]);
        }
        // The whole linear chain lives in ONE composite edge, and the
        // byte counter reflects only per-segment + clause costs plus a
        // single edge overhead.
        assert_eq!(store.session_edges(session), 1);
        assert!(store.compactions() > 0);
        let (bytes, ..) = store.counters();
        let floor = EDGE_OVERHEAD + 16 * (SEGMENT_OVERHEAD + 4 + 8);
        assert_eq!(bytes, floor, "compacted to the accounting floor");
        // Promotion still replays per ORIGINAL step: 16 promotions, and
        // every interior id resolves.
        let svc = ShardedService::new(ServiceConfig::new(2).with_node_id(1));
        let mapping = store.promote(&svc, session, &[chain[8], *chain.last().unwrap()]);
        assert_eq!(store.counters().1, 16, "one solve per original step");
        for (_, new) in &mapping {
            assert_eq!(
                svc.result_of(ProblemId::from_wire(*new)),
                Some(SolveResult::Sat)
            );
        }
        assert_eq!(mapping.len(), 16, "full session mapping returned");
    }

    #[test]
    fn late_children_replay_through_compacted_interiors() {
        let store = ReplicaStore::with_budget(Some(1));
        let (root, a, b, c) = (wire(0, 1, 0), wire(0, 1, 1), wire(0, 1, 2), wire(0, 1, 3));
        store.record(9, a, root, vec![vec![1]]);
        // `a` and `b` form a linear link and compact into one composite
        // edge before `c` (a second child of `a`) ever arrives.
        store.record(9, b, a, vec![vec![2]]);
        assert_eq!(store.session_edges(9), 1);
        store.record(9, c, a, vec![vec![-2]]);
        // `c` parents on an INTERIOR segment of the composite; the
        // segment index resolves it, so the fork is representable and
        // no further merge happens across it.
        assert_eq!(store.session_edges(9), 2);
        let svc = ShardedService::new(ServiceConfig::new(2).with_node_id(1));
        let mapping = store.promote(&svc, 9, &[b, c]);
        assert_eq!(mapping.len(), 3, "a, b and c all promoted");
        for (_, new) in &mapping {
            assert_eq!(
                svc.result_of(ProblemId::from_wire(*new)),
                Some(SolveResult::Sat)
            );
        }
    }

    #[test]
    fn promote_returns_the_full_session_mapping() {
        // A client that never logged an edge still gets the remaps it
        // needs: promote with an EMPTY request returns everything the
        // store knows about the session.
        let store = ReplicaStore::new();
        let (root, a, b) = (wire(0, 1, 0), wire(0, 1, 1), wire(0, 1, 2));
        store.record(9, a, root, vec![vec![1]]);
        store.record(9, b, a, vec![vec![2]]);
        let svc = ShardedService::new(ServiceConfig::new(2).with_node_id(1));
        let mapping = store.promote(&svc, 9, &[]);
        assert_eq!(mapping.len(), 2);
        assert!(mapping.iter().any(|&(old, _)| old == a));
        assert!(mapping.iter().any(|&(old, _)| old == b));
    }
}
