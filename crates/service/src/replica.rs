//! The passive replica store: each node's copy of the constraint path
//! logs shipped to it by sessions homed elsewhere on the ring.
//!
//! Replication rides on the same observation that powers in-node
//! eviction: a solver snapshot is a **pure function of the clause path
//! from its root**. So the replica of a session is not a snapshot copy
//! — it is the session's path log, a set of `(problem, parent,
//! clauses)` edges, recorded here as bytes and solved by nobody until
//! the moment it is needed. Recording an edge costs a hash-map insert;
//! the solving cost of replication is deferred entirely to failover,
//! which is the rare path.
//!
//! On failover (or a planned drain) the client sends
//! [`crate::Request::Promote`]; [`ReplicaStore::promote`] then walks
//! each requested problem's parent chain back to a session root (local
//! index 0 — every node's fresh root solver is identical) or to an
//! already-promoted ancestor, and replays the edges downward through
//! the node's own [`ShardedService`]. Because the solver is
//! deterministic in the clause path, the promoted problems answer
//! **bit-identical verdicts and models** to the originals — the
//! property `tests/replication.rs` proptests.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;

use crate::protocol::clauses_to_lits;
use crate::sharded::{ProblemId, ShardedService};

/// One recorded derivation edge of a session's path log.
struct Edge {
    /// Wire id (home-node coordinates) of the parent problem.
    parent: u64,
    /// The incremental constraint, DIMACS literals.
    clauses: Vec<Vec<i64>>,
}

impl Edge {
    /// Approximate payload footprint, for the `replica_bytes` counter.
    fn bytes(&self) -> u64 {
        16 + self
            .clauses
            .iter()
            .map(|c| 4 + 8 * c.len() as u64)
            .sum::<u64>()
    }
}

#[derive(Default)]
struct StoreInner {
    /// Path-log edges per replicated session, keyed by the derived
    /// problem's home-node wire id.
    sessions: HashMap<u64, HashMap<u64, Edge>>,
    /// Memo of already-replayed problems: old wire id → promoted wire
    /// id on THIS node. Shared across sessions (home-node wire ids are
    /// globally unique: the node id is packed into them), so chains
    /// promoted piecemeal replay each edge once.
    promoted: HashMap<u64, u64>,
    /// Per-session released problems whose edges are *retained* because
    /// a live descendant's replay path still runs through them. When
    /// the descendants are forgotten too, these edges cascade out
    /// ([`ReplicaStore::forget`]).
    tombstones: HashMap<u64, HashSet<u64>>,
    /// Counters surfaced through [`crate::StatsSummary`].
    bytes: u64,
    promotions: u64,
    failovers: u64,
}

/// Per-node passive replica store; see the module docs. All methods
/// take `&self` (one internal mutex) — the reactor records and promotes
/// inline, while tests may poke at it from the host thread.
#[derive(Default)]
pub struct ReplicaStore {
    inner: Mutex<StoreInner>,
}

/// Replication counters: `(replica_bytes, replica_promotions,
/// failovers)`.
pub type ReplicaCounters = (u64, u64, u64);

impl ReplicaStore {
    /// An empty store.
    pub fn new() -> ReplicaStore {
        ReplicaStore::default()
    }

    /// Records one path-log edge: on `session`'s home node, `problem`
    /// was derived from `parent` by adding `clauses`. Idempotent per
    /// problem id (re-records replace, byte count adjusted).
    pub fn record(&self, session: u64, problem: u64, parent: u64, clauses: Vec<Vec<i64>>) {
        let mut inner = self.inner.lock().unwrap();
        let edge = Edge { parent, clauses };
        inner.bytes += edge.bytes();
        if let Some(old) = inner
            .sessions
            .entry(session)
            .or_default()
            .insert(problem, edge)
        {
            inner.bytes -= old.bytes();
        }
    }

    /// Number of edges recorded for `session`.
    pub fn session_edges(&self, session: u64) -> usize {
        self.inner
            .lock()
            .unwrap()
            .sessions
            .get(&session)
            .map_or(0, HashMap::len)
    }

    /// Replica GC: the client released `problems` on the session's
    /// home node, so their recorded edges will never be promoted —
    /// drop them and reclaim their bytes. **Child-aware**: an edge
    /// some *live* problem's replay path still runs through is kept
    /// (tombstoned) and cascades out when its last descendant is
    /// forgotten, so a release deep in a chain never breaks replay of
    /// the problems derived from it. Returns the number of edges
    /// dropped (now, including cascades from earlier tombstones).
    pub fn forget(&self, session: u64, problems: &[u64]) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let st = &mut *inner;
        let Some(edges) = st.sessions.get_mut(&session) else {
            return 0;
        };
        let tombs = st.tombstones.entry(session).or_default();
        tombs.extend(problems.iter().copied());
        let mut removed = 0usize;
        let mut freed = 0u64;
        loop {
            let live_parents: HashSet<u64> = edges.values().map(|e| e.parent).collect();
            let victim = tombs
                .iter()
                .copied()
                .find(|p| edges.contains_key(p) && !live_parents.contains(p));
            let Some(victim) = victim else { break };
            if let Some(edge) = edges.remove(&victim) {
                freed += edge.bytes();
                removed += 1;
            }
            tombs.remove(&victim);
        }
        // Tombstones for ids with no recorded edge are dead weight.
        tombs.retain(|p| edges.contains_key(p));
        if tombs.is_empty() {
            st.tombstones.remove(&session);
        }
        if edges.is_empty() {
            st.sessions.remove(&session);
        }
        st.bytes -= freed;
        removed
    }

    /// Current `(replica_bytes, replica_promotions, failovers)`.
    pub fn counters(&self) -> ReplicaCounters {
        let inner = self.inner.lock().unwrap();
        (inner.bytes, inner.promotions, inner.failovers)
    }

    /// Promotes `session`'s replica onto `service` (this node's own
    /// tree): every problem in `problems` whose recorded path can be
    /// walked back to a session root or an already-promoted ancestor is
    /// replayed, and `(old wire id, promoted wire id)` pairs are
    /// returned in request order. Problems with no recorded path (or a
    /// broken chain) are silently omitted — the client treats them as
    /// unrecoverable.
    pub fn promote(
        &self,
        service: &ShardedService,
        session: u64,
        problems: &[u64],
    ) -> Vec<(u64, u64)> {
        let mut inner = self.inner.lock().unwrap();
        inner.failovers += 1;
        let mut mapping = Vec::with_capacity(problems.len());
        for &problem in problems {
            if let Some(new) = promote_one(&mut inner, service, session, problem) {
                mapping.push((problem, new));
            }
        }
        mapping
    }
}

/// Replays one problem's path onto `service`, memoizing every edge.
fn promote_one(
    inner: &mut StoreInner,
    service: &ShardedService,
    session: u64,
    problem: u64,
) -> Option<u64> {
    // Walk up to a promoted ancestor or a root, collecting the
    // unreplayed suffix of the chain.
    let mut chain: Vec<u64> = Vec::new();
    let mut cur = problem;
    let base = loop {
        if let Some(&new) = inner.promoted.get(&cur) {
            break new;
        }
        if cur as u32 == 0 {
            // A session root: local index 0. Every node's fresh root
            // solver is identical, so this node's root at the same
            // shard index is the bit-identical replay base.
            let shard = (cur >> 32) as u16 as usize % service.num_shards();
            break service.root(shard)?.to_wire();
        }
        let edge = inner.sessions.get(&session)?.get(&cur)?;
        chain.push(cur);
        cur = edge.parent;
    };
    // Replay downward, oldest edge first.
    let mut parent = base;
    for &old in chain.iter().rev() {
        let edge = inner.sessions.get(&session)?.get(&old)?;
        let lits = clauses_to_lits(&edge.clauses);
        let reply = service.solve(ProblemId::from_wire(parent), &lits)?;
        let new = reply.problem.to_wire();
        inner.promoted.insert(old, new);
        inner.promotions += 1;
        parent = new;
    }
    Some(parent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ServiceConfig;
    use lwsnap_solver::SolveResult;

    fn wire(node: u16, shard: u16, local: u32) -> u64 {
        (node as u64) << 48 | (shard as u64) << 32 | local as u64
    }

    #[test]
    fn unknown_problems_are_omitted_not_errors() {
        let store = ReplicaStore::new();
        let svc = ShardedService::new(ServiceConfig::new(2).with_node_id(1));
        assert_eq!(store.promote(&svc, 7, &[wire(0, 0, 5)]), vec![]);
        let (_, promotions, failovers) = store.counters();
        assert_eq!((promotions, failovers), (0, 1));
    }

    #[test]
    fn shared_prefixes_replay_once() {
        let store = ReplicaStore::new();
        // Home node 0's tree: root → a (x1) → {b (x2), c (¬x2)}.
        let (root, a, b, c) = (wire(0, 1, 0), wire(0, 1, 1), wire(0, 1, 2), wire(0, 1, 3));
        store.record(9, a, root, vec![vec![1]]);
        store.record(9, b, a, vec![vec![2]]);
        store.record(9, c, a, vec![vec![-2]]);
        let svc = ShardedService::new(ServiceConfig::new(2).with_node_id(1));
        let mapping = store.promote(&svc, 9, &[a, b, c]);
        assert_eq!(mapping.len(), 3);
        let (_, promotions, _) = store.counters();
        assert_eq!(promotions, 3, "edge `a` replayed once, not three times");
        for (old, new) in &mapping {
            assert_eq!(ProblemId::from_wire(*new).node(), 1);
            assert_ne!(old, new);
            assert_eq!(
                svc.result_of(ProblemId::from_wire(*new)),
                Some(SolveResult::Sat)
            );
        }
        // b and c really diverge on the replica too.
        let (_, b2) = mapping[1];
        let sat = svc
            .solve(ProblemId::from_wire(b2), &clauses_to_lits(&[vec![2]]))
            .unwrap();
        assert_eq!(sat.result, SolveResult::Sat);
    }

    #[test]
    fn forget_drops_released_edges_and_their_bytes() {
        let store = ReplicaStore::new();
        let (root, a, b) = (wire(0, 0, 0), wire(0, 0, 1), wire(0, 0, 2));
        store.record(5, a, root, vec![vec![1, 2, 3]]);
        store.record(5, b, root, vec![vec![-1]]);
        let (full, ..) = store.counters();
        assert_eq!(store.forget(5, &[a]), 1);
        assert_eq!(store.session_edges(5), 1);
        assert!(store.counters().0 < full);
        assert_eq!(store.forget(5, &[b]), 1);
        assert_eq!(store.session_edges(5), 0);
        assert_eq!(store.counters().0, 0, "all replica bytes reclaimed");
        // Forgetting unknown problems or sessions is a no-op.
        assert_eq!(store.forget(5, &[a]), 0);
        assert_eq!(store.forget(99, &[a]), 0);
    }

    #[test]
    fn forget_keeps_edges_live_descendants_replay_through() {
        let store = ReplicaStore::new();
        // root → a → b → c; release a and b while c stays live.
        let (root, a, b, c) = (wire(0, 1, 0), wire(0, 1, 1), wire(0, 1, 2), wire(0, 1, 3));
        store.record(9, a, root, vec![vec![1]]);
        store.record(9, b, a, vec![vec![2]]);
        store.record(9, c, b, vec![vec![3]]);
        assert_eq!(store.forget(9, &[a, b]), 0, "c still replays through them");
        assert_eq!(store.session_edges(9), 3);
        // c must still be promotable — the whole chain replays.
        let svc = ShardedService::new(ServiceConfig::new(2).with_node_id(1));
        let mapping = store.promote(&svc, 9, &[c]);
        assert_eq!(mapping.len(), 1);
        assert_eq!(
            svc.result_of(ProblemId::from_wire(mapping[0].1)),
            Some(SolveResult::Sat)
        );
        // Releasing c cascades the whole tombstoned chain out.
        assert_eq!(store.forget(9, &[c]), 3);
        assert_eq!(store.session_edges(9), 0);
        assert_eq!(store.counters().0, 0);
    }

    #[test]
    fn byte_counter_tracks_recorded_payload_size() {
        let store = ReplicaStore::new();
        store.record(1, wire(0, 0, 1), wire(0, 0, 0), vec![vec![1, -2]]);
        let (bytes, ..) = store.counters();
        assert!(bytes > 0);
        // Re-recording the same problem replaces, not accumulates.
        store.record(1, wire(0, 0, 1), wire(0, 0, 0), vec![vec![1, -2]]);
        assert_eq!(store.counters().0, bytes);
        assert_eq!(store.session_edges(1), 1);
    }
}
