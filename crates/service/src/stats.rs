//! Per-shard / per-worker counters and their cluster-level aggregation.

use std::time::Duration;

use lwsnap_solver::ServiceStats;

/// Counters for one worker thread of a [`crate::pool::WorkerPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs executed by this worker.
    pub jobs: u64,
    /// Wall-clock time spent executing jobs (excludes queue waits).
    pub busy: Duration,
}

/// The service-wide view: one [`ServiceStats`] per shard.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ServiceStats>,
}

impl ClusterStats {
    /// Sums the per-shard counters into one aggregate.
    pub fn total(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for s in &self.shards {
            total.queries += s.queries;
            total.total_conflicts += s.total_conflicts;
            total.total_propagations += s.total_propagations;
            total.live_problems += s.live_problems;
            total.resident_snapshots += s.resident_snapshots;
            total.snapshot_hits += s.snapshot_hits;
            total.rederivations += s.rederivations;
            total.replayed_clauses += s.replayed_clauses;
            total.rederive_conflicts += s.rederive_conflicts;
            total.evictions += s.evictions;
            total.resident_bytes += s.resident_bytes;
        }
        total
    }

    /// Fraction of queries served straight from a resident snapshot
    /// (1.0 when nothing was ever evicted). `None` before any query.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.total();
        let lookups = total.snapshot_hits + total.rederivations;
        (lookups > 0).then(|| total.snapshot_hits as f64 / lookups as f64)
    }
}

impl From<&ClusterStats> for crate::protocol::StatsSummary {
    fn from(cluster: &ClusterStats) -> Self {
        let t = cluster.total();
        crate::protocol::StatsSummary {
            shards: cluster.shards.len() as u32,
            queries: t.queries,
            live_problems: t.live_problems as u64,
            resident_snapshots: t.resident_snapshots as u64,
            snapshot_hits: t.snapshot_hits,
            rederivations: t.rederivations,
            replayed_clauses: t.replayed_clauses,
            rederive_conflicts: t.rederive_conflicts,
            evictions: t.evictions,
            total_conflicts: t.total_conflicts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_across_shards() {
        let a = ServiceStats {
            queries: 3,
            snapshot_hits: 2,
            rederivations: 1,
            live_problems: 4,
            ..Default::default()
        };
        let b = ServiceStats {
            queries: 5,
            snapshot_hits: 5,
            evictions: 2,
            live_problems: 6,
            ..Default::default()
        };
        let cluster = ClusterStats { shards: vec![a, b] };
        let total = cluster.total();
        assert_eq!(total.queries, 8);
        assert_eq!(total.snapshot_hits, 7);
        assert_eq!(total.rederivations, 1);
        assert_eq!(total.evictions, 2);
        assert_eq!(total.live_problems, 10);
        assert_eq!(cluster.hit_rate(), Some(7.0 / 8.0));
    }

    #[test]
    fn hit_rate_undefined_before_traffic() {
        let cluster = ClusterStats {
            shards: vec![ServiceStats::default()],
        };
        assert_eq!(cluster.hit_rate(), None);
    }
}
