//! Per-shard / per-worker counters and their cluster-level aggregation.

use std::time::Duration;

use lwsnap_solver::ServiceStats;

use crate::protocol::StatsSummary;
use crate::router::NodeId;

/// Counters for one worker thread of a [`crate::pool::WorkerPool`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs executed by this worker.
    pub jobs: u64,
    /// Wall-clock time spent executing jobs (excludes queue waits).
    pub busy: Duration,
}

/// The service-wide view: one [`ServiceStats`] per shard.
#[derive(Debug, Clone)]
pub struct ClusterStats {
    /// Per-shard counters, indexed by shard.
    pub shards: Vec<ServiceStats>,
}

impl ClusterStats {
    /// Sums the per-shard counters into one aggregate.
    pub fn total(&self) -> ServiceStats {
        let mut total = ServiceStats::default();
        for s in &self.shards {
            total.queries += s.queries;
            total.total_conflicts += s.total_conflicts;
            total.total_propagations += s.total_propagations;
            total.live_problems += s.live_problems;
            total.resident_snapshots += s.resident_snapshots;
            total.snapshot_hits += s.snapshot_hits;
            total.rederivations += s.rederivations;
            total.replayed_clauses += s.replayed_clauses;
            total.rederive_conflicts += s.rederive_conflicts;
            total.evictions += s.evictions;
            total.resident_bytes += s.resident_bytes;
            total.shared_pages += s.shared_pages;
            total.private_pages += s.private_pages;
            total.cow_page_copies += s.cow_page_copies;
            total.zero_fills += s.zero_fills;
            total.bytes_written += s.bytes_written;
        }
        total
    }

    /// Fraction of queries served straight from a resident snapshot
    /// (1.0 when nothing was ever evicted). `None` before any query.
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.total();
        let lookups = total.snapshot_hits + total.rederivations;
        (lookups > 0).then(|| total.snapshot_hits as f64 / lookups as f64)
    }
}

/// Cross-node statistics with the node dimension kept: one
/// [`StatsSummary`] per cluster node, in node-id order. The fleet-level
/// analogue of [`ClusterStats`] (which keeps the *shard* dimension
/// inside one node) — summing happens only on demand, in [`total`],
/// so per-node hit/rederive/evict attribution is never silently lost.
///
/// [`total`]: FleetStats::total
#[derive(Debug, Clone, Default)]
pub struct FleetStats {
    /// Per-node summaries: `(node id, that node's aggregate)`.
    pub nodes: Vec<(NodeId, StatsSummary)>,
}

impl FleetStats {
    /// Sums the per-node summaries into one cluster-wide aggregate
    /// (`shards` becomes the cluster-total shard count).
    pub fn total(&self) -> StatsSummary {
        let mut total = StatsSummary::default();
        for (_, summary) in &self.nodes {
            total.absorb(summary);
        }
        total
    }

    /// The summary of one node, if it is a member.
    pub fn node(&self, node: NodeId) -> Option<&StatsSummary> {
        self.nodes.iter().find(|(n, _)| *n == node).map(|(_, s)| s)
    }
}

impl From<&ClusterStats> for crate::protocol::StatsSummary {
    fn from(cluster: &ClusterStats) -> Self {
        let t = cluster.total();
        crate::protocol::StatsSummary {
            shards: cluster.shards.len() as u32,
            queries: t.queries,
            live_problems: t.live_problems as u64,
            resident_snapshots: t.resident_snapshots as u64,
            snapshot_hits: t.snapshot_hits,
            rederivations: t.rederivations,
            replayed_clauses: t.replayed_clauses,
            rederive_conflicts: t.rederive_conflicts,
            evictions: t.evictions,
            total_conflicts: t.total_conflicts,
            resident_bytes: t.resident_bytes as u64,
            shared_pages: t.shared_pages,
            private_pages: t.private_pages,
            cow_page_copies: t.cow_page_copies,
            zero_fills: t.zero_fills,
            bytes_written: t.bytes_written,
            // Replication and heartbeat counters live in the reactor's
            // ReplicaStore and Forwarder, not in the shard stats; the
            // server overlays them.
            failovers: 0,
            replica_promotions: 0,
            replica_bytes: 0,
            heartbeat_misses: 0,
            compactions: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_across_shards() {
        let a = ServiceStats {
            queries: 3,
            snapshot_hits: 2,
            rederivations: 1,
            live_problems: 4,
            ..Default::default()
        };
        let b = ServiceStats {
            queries: 5,
            snapshot_hits: 5,
            evictions: 2,
            live_problems: 6,
            ..Default::default()
        };
        let cluster = ClusterStats { shards: vec![a, b] };
        let total = cluster.total();
        assert_eq!(total.queries, 8);
        assert_eq!(total.snapshot_hits, 7);
        assert_eq!(total.rederivations, 1);
        assert_eq!(total.evictions, 2);
        assert_eq!(total.live_problems, 10);
        assert_eq!(cluster.hit_rate(), Some(7.0 / 8.0));
    }

    #[test]
    fn fleet_totals_keep_and_sum_the_node_dimension() {
        let a = StatsSummary {
            shards: 4,
            queries: 10,
            snapshot_hits: 9,
            rederivations: 1,
            evictions: 2,
            ..Default::default()
        };
        let b = StatsSummary {
            shards: 4,
            queries: 6,
            snapshot_hits: 6,
            ..Default::default()
        };
        let fleet = FleetStats {
            nodes: vec![(0, a), (2, b)],
        };
        let total = fleet.total();
        assert_eq!(total.shards, 8, "cluster-total shard count");
        assert_eq!(total.queries, 16);
        assert_eq!(total.snapshot_hits, 15);
        // Per-node attribution survives: node 0 owns all the evictions.
        assert_eq!(fleet.node(0).unwrap().evictions, 2);
        assert_eq!(fleet.node(2).unwrap().evictions, 0);
        assert_eq!(fleet.node(1), None);
    }

    #[test]
    fn hit_rate_undefined_before_traffic() {
        let cluster = ClusterStats {
            shards: vec![ServiceStats::default()],
        };
        assert_eq!(cluster.hit_rate(), None);
    }
}
