//! The sharded problem-tree store.
//!
//! [`ProblemId`]s are hashed across N shards; each shard is one
//! [`SolverService`] behind its own mutex, so sessions working on
//! unrelated problem trees never contend. A problem's children live in
//! its shard by construction (a child forks its parent's snapshot), so
//! routing is a pure function of the id — no cross-shard coordination,
//! no global lock.

use std::sync::Mutex;

use lwsnap_solver::{Lit, ProblemRef, ServiceStats, SolveResult, SolverService};

use crate::stats::ClusterStats;

/// Configuration for a [`ShardedService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards (independently locked problem trees).
    pub shards: usize,
    /// Per-shard resident-snapshot bound (`None` = unbounded). The
    /// whole-service memory budget is `shards × snapshot_capacity`
    /// solver snapshots.
    pub snapshot_capacity: Option<usize>,
    /// Per-shard resident-snapshot **byte budget** (`None` =
    /// unbounded): bounds the summed clause-database + assignment
    /// footprint ([`lwsnap_solver::Solver::footprint_bytes`]) of the
    /// resident snapshots, so the LRU evicts a few huge snapshots
    /// before many tiny ones. Composes with `snapshot_capacity`;
    /// whichever limit is exceeded first triggers eviction.
    pub snapshot_budget_bytes: Option<usize>,
}

impl ServiceConfig {
    /// A config with `shards` shards and no memory bound.
    pub fn new(shards: usize) -> Self {
        ServiceConfig {
            shards: shards.max(1),
            snapshot_capacity: None,
            snapshot_budget_bytes: None,
        }
    }

    /// Sets the per-shard resident-snapshot bound.
    pub fn with_snapshot_capacity(mut self, capacity: usize) -> Self {
        self.snapshot_capacity = Some(capacity);
        self
    }

    /// Sets the per-shard resident-snapshot byte budget.
    pub fn with_snapshot_budget(mut self, bytes: usize) -> Self {
        self.snapshot_budget_bytes = Some(bytes);
        self
    }
}

/// A service-wide problem reference: shard index plus the in-shard
/// [`ProblemRef`]. Packs into a `u64` for the wire protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemId {
    shard: u32,
    local: u32,
}

impl ProblemId {
    /// The shard this problem lives in.
    #[inline]
    pub fn shard(self) -> usize {
        self.shard as usize
    }

    /// The in-shard reference.
    #[inline]
    pub fn local(self) -> ProblemRef {
        ProblemRef::from_index(self.local)
    }

    /// Packs the id for the wire (`shard` in the high 32 bits).
    #[inline]
    pub fn to_wire(self) -> u64 {
        (self.shard as u64) << 32 | self.local as u64
    }

    /// Unpacks a wire id **without validation** — the shard index may
    /// name a shard the service does not have (such ids answer `None`
    /// on use). Transport front ends should prefer
    /// [`ProblemId::from_wire_checked`], which rejects malformed ids at
    /// decode time with a typed error.
    #[inline]
    pub fn from_wire(wire: u64) -> ProblemId {
        ProblemId {
            shard: (wire >> 32) as u32,
            local: wire as u32,
        }
    }

    /// Unpacks a wire id, validating the shard index against the
    /// service's shard count. A shard index at or beyond `num_shards`
    /// is a decode error ([`crate::protocol::ProtoError::BadShard`]),
    /// not a silently-dead reference — so corrupt or cross-cluster ids
    /// are surfaced to the client instead of aliasing into "unknown
    /// problem" answers.
    #[inline]
    pub fn from_wire_checked(
        wire: u64,
        num_shards: usize,
    ) -> Result<ProblemId, crate::protocol::ProtoError> {
        let id = ProblemId::from_wire(wire);
        if id.shard() >= num_shards {
            return Err(crate::protocol::ProtoError::BadShard(id.shard() as u64));
        }
        Ok(id)
    }
}

/// Reply to a [`ShardedService::solve`] request.
#[derive(Debug, Clone)]
pub struct SolveReply {
    /// Reference to the new problem `p∧q`.
    pub problem: ProblemId,
    /// SAT/UNSAT.
    pub result: SolveResult,
    /// The model, if SAT.
    pub model: Option<Vec<bool>>,
    /// Conflicts this query cost.
    pub conflicts: u64,
    /// Whether the parent snapshot had to be re-derived (eviction miss).
    pub rederived: bool,
}

/// N independently locked [`SolverService`] shards behind one façade.
///
/// All methods take `&self`: the type is `Sync` and any number of
/// threads (the worker pool, TCP connection handlers, in-process
/// clients) may call into it concurrently. Only the target shard is
/// locked, for exactly the duration of one request.
pub struct ShardedService {
    shards: Vec<Mutex<SolverService>>,
}

impl ShardedService {
    /// Builds the service: `config.shards` empty shards, each containing
    /// its root problem, each bounded by `config.snapshot_capacity`.
    pub fn new(config: ServiceConfig) -> Self {
        let shards = (0..config.shards.max(1))
            .map(|_| {
                let mut svc = SolverService::new();
                svc.set_snapshot_capacity(config.snapshot_capacity);
                svc.set_snapshot_budget(config.snapshot_budget_bytes);
                Mutex::new(svc)
            })
            .collect();
        ShardedService { shards }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The root problem of shard `shard` (empty, trivially SAT).
    pub fn root(&self, shard: usize) -> Option<ProblemId> {
        (shard < self.shards.len()).then_some(ProblemId {
            shard: shard as u32,
            local: 0,
        })
    }

    /// The root a new client session should branch from: sessions are
    /// hashed across shards (Fibonacci hashing) so concurrent sessions
    /// spread out and unrelated trees never share a lock.
    pub fn session_root(&self, session: u64) -> ProblemId {
        let hash = session.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let shard = (hash >> 32) as usize % self.shards.len();
        ProblemId {
            shard: shard as u32,
            local: 0,
        }
    }

    fn shard(&self, id: ProblemId) -> Option<&Mutex<SolverService>> {
        self.shards.get(id.shard())
    }

    /// Solves `parent ∧ added`; see [`SolverService::solve`]. Locks only
    /// the parent's shard. `None` for dead or malformed references.
    pub fn solve(&self, parent: ProblemId, added: &[Vec<Lit>]) -> Option<SolveReply> {
        let mut shard = self.shard(parent)?.lock().unwrap();
        let reply = shard.solve(parent.local(), added)?;
        Some(SolveReply {
            problem: ProblemId {
                shard: parent.shard,
                local: reply.problem.index(),
            },
            result: reply.result,
            model: reply.model,
            conflicts: reply.conflicts,
            rederived: reply.rederived,
        })
    }

    /// Releases a problem snapshot in its shard.
    pub fn release(&self, id: ProblemId) {
        if let Some(shard) = self.shard(id) {
            shard.lock().unwrap().release(id.local());
        }
    }

    /// Pins a problem against eviction.
    pub fn pin(&self, id: ProblemId) {
        if let Some(shard) = self.shard(id) {
            shard.lock().unwrap().pin(id.local());
        }
    }

    /// The cached result of an already-solved problem.
    pub fn result_of(&self, id: ProblemId) -> Option<SolveResult> {
        self.shard(id)?.lock().unwrap().result_of(id.local())
    }

    /// Depth of a problem in its shard's derivation tree.
    pub fn depth_of(&self, id: ProblemId) -> Option<u32> {
        self.shard(id)?.lock().unwrap().depth_of(id.local())
    }

    /// Whether the problem's snapshot is resident (not evicted).
    pub fn is_resident(&self, id: ProblemId) -> Option<bool> {
        self.shard(id)?.lock().unwrap().is_resident(id.local())
    }

    /// Per-shard counters plus the aggregate.
    pub fn stats(&self) -> ClusterStats {
        let shards: Vec<ServiceStats> = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap().stats())
            .collect();
        ClusterStats { shards }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(c: &[i64]) -> Vec<Lit> {
        c.iter().map(|&v| Lit::from_dimacs(v)).collect()
    }

    #[test]
    fn wire_roundtrip() {
        let id = ProblemId {
            shard: 7,
            local: 123,
        };
        assert_eq!(ProblemId::from_wire(id.to_wire()), id);
        assert_eq!(id.shard(), 7);
        assert_eq!(id.local(), ProblemRef::from_index(123));
    }

    #[test]
    fn sessions_spread_over_shards() {
        let svc = ShardedService::new(ServiceConfig::new(4));
        let mut seen = std::collections::HashSet::new();
        for session in 0..64u64 {
            seen.insert(svc.session_root(session).shard());
        }
        assert!(seen.len() >= 3, "64 sessions hit ≥3 of 4 shards: {seen:?}");
    }

    #[test]
    fn shards_are_independent_trees() {
        let svc = ShardedService::new(ServiceConfig::new(2));
        let a = svc.solve(svc.root(0).unwrap(), &[lits(&[1])]).unwrap();
        let b = svc.solve(svc.root(1).unwrap(), &[lits(&[-1])]).unwrap();
        assert_eq!(a.result, SolveResult::Sat);
        assert_eq!(b.result, SolveResult::Sat);
        assert_ne!(a.problem.shard(), b.problem.shard());
        // Contradictory facts coexist because the trees are disjoint.
        assert!(a.model.unwrap()[0]);
        assert!(!b.model.unwrap()[0]);
        let total = svc.stats().total();
        assert_eq!(total.queries, 2);
        assert_eq!(total.live_problems, 4, "2 roots + 2 children");
    }

    #[test]
    fn malformed_ids_fail_gracefully() {
        let svc = ShardedService::new(ServiceConfig::new(2));
        let bogus_shard = ProblemId::from_wire(99u64 << 32);
        assert!(svc.solve(bogus_shard, &[lits(&[1])]).is_none());
        assert_eq!(svc.result_of(bogus_shard), None);
        let bogus_local = ProblemId::from_wire(500);
        assert!(svc.solve(bogus_local, &[lits(&[1])]).is_none());
        assert!(svc.root(5).is_none());
    }

    #[test]
    fn checked_wire_decode_rejects_bad_shards() {
        use crate::protocol::ProtoError;
        let svc = ShardedService::new(ServiceConfig::new(4));
        // In-range ids decode to themselves.
        let good = ProblemId { shard: 3, local: 9 };
        assert_eq!(
            ProblemId::from_wire_checked(good.to_wire(), svc.num_shards()),
            Ok(good)
        );
        // Out-of-range shard indices are decode errors, not silently
        // dead references.
        let bad = (4u64 << 32) | 1;
        assert_eq!(
            ProblemId::from_wire_checked(bad, svc.num_shards()),
            Err(ProtoError::BadShard(4))
        );
        assert_eq!(
            ProblemId::from_wire_checked(u64::MAX, svc.num_shards()),
            Err(ProtoError::BadShard(u32::MAX as u64))
        );
    }

    #[test]
    fn byte_budget_applies_per_shard() {
        // A tight per-shard byte budget forces evictions on the loaded
        // shard only; stats surface the resident footprint.
        let svc = ShardedService::new(ServiceConfig::new(2).with_snapshot_budget(1));
        let root = svc.root(0).unwrap();
        let mut cur = root;
        for v in 1..=4 {
            cur = svc.solve(cur, &[lits(&[v])]).unwrap().problem;
        }
        let stats = svc.stats();
        assert!(stats.shards[0].evictions > 0, "budget forced evictions");
        assert_eq!(stats.shards[1].evictions, 0, "other shard untouched");
        assert!(stats.total().resident_bytes > 0);
        // Evicted ancestors still answer via replay.
        let reply = svc.solve(root, &[lits(&[5])]).unwrap();
        assert_eq!(reply.result, SolveResult::Sat);
    }

    #[test]
    fn eviction_applies_per_shard() {
        let svc = ShardedService::new(ServiceConfig::new(2).with_snapshot_capacity(2));
        let root = svc.root(0).unwrap();
        let mut cur = root;
        for v in 1..=5 {
            cur = svc.solve(cur, &[lits(&[v])]).unwrap().problem;
        }
        let stats = svc.stats();
        assert!(stats.shards[0].evictions > 0, "chain exceeded capacity");
        assert_eq!(stats.shards[1].evictions, 0, "other shard untouched");
        // Evicted ancestors still answer via replay.
        let reply = svc.solve(root, &[lits(&[6])]).unwrap();
        assert_eq!(reply.result, SolveResult::Sat);
    }
}
