//! The sharded problem-tree store.
//!
//! [`ProblemId`]s are hashed across N shards; each shard is one
//! [`SolverService`] behind its own mutex, so sessions working on
//! unrelated problem trees never contend. A problem's children live in
//! its shard by construction (a child forks its parent's snapshot), so
//! routing is a pure function of the id — no cross-shard coordination,
//! no global lock.
//!
//! Since the cluster refactor the id is **placement-aware**: it names
//! the owning *node* (a `lwsnapd` instance, [`crate::router::NodeId`])
//! as well as the shard inside it, so a reference minted anywhere in a
//! cluster routes back to its home node without any lookup table — the
//! id *is* the route. A single-process deployment is simply the
//! degenerate node-0 cluster; every pre-cluster wire id decodes
//! unchanged (node 0).

use std::sync::Mutex;

use lwsnap_snapstore::CowStore;
use lwsnap_solver::{
    DeepCloneStore, Lit, ProblemRef, ServiceStats, SnapshotStore, SolveResult, SolverService,
};

use crate::router::NodeId;
use crate::stats::ClusterStats;

/// Which snapshot-store backend each shard runs on.
///
/// The two stores are **behaviourally identical** — bit-identical
/// verdicts and witnesses on any derive/evict/release interleaving
/// (enforced by conformance proptests in `lwsnap-snapstore`) — and
/// differ only in cost: [`StoreKind::Cow`] shares unchanged
/// page-granular frames between a snapshot and its parent, so a chain
/// of derived problems costs its *deltas*, while
/// [`StoreKind::DeepClone`] prices every snapshot at its full
/// footprint. Under the same `snapshot_budget_bytes` the CoW store
/// therefore keeps several times more snapshots resident.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum StoreKind {
    /// One full serialized solver image per snapshot — the simple
    /// conformance baseline.
    DeepClone,
    /// Page-granular copy-on-write frames on the persistent radix page
    /// table (`lwsnap-snapstore`): a child holds only the pages it
    /// dirtied since its parent. The default.
    #[default]
    Cow,
}

impl StoreKind {
    /// Builds one store instance of this kind (each shard gets its own).
    pub fn build(self) -> Box<dyn SnapshotStore> {
        match self {
            StoreKind::DeepClone => Box::new(DeepCloneStore::new()),
            StoreKind::Cow => Box::new(CowStore::new()),
        }
    }

    /// Parses a `--store` flag value (`"deep-clone"` / `"cow"`).
    pub fn parse(name: &str) -> Option<StoreKind> {
        match name {
            "deep-clone" | "deepclone" | "deep_clone" => Some(StoreKind::DeepClone),
            "cow" => Some(StoreKind::Cow),
            _ => None,
        }
    }
}

/// Configuration for a [`ShardedService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Number of shards (independently locked problem trees).
    pub shards: usize,
    /// Per-shard resident-snapshot bound (`None` = unbounded). The
    /// whole-service memory budget is `shards × snapshot_capacity`
    /// solver snapshots.
    pub snapshot_capacity: Option<usize>,
    /// Per-shard resident-snapshot **byte budget** (`None` =
    /// unbounded): bounds the summed clause-database + assignment
    /// footprint ([`lwsnap_solver::Solver::footprint_bytes`]) of the
    /// resident snapshots, so the LRU evicts a few huge snapshots
    /// before many tiny ones. Composes with `snapshot_capacity`;
    /// whichever limit is exceeded first triggers eviction.
    pub snapshot_budget_bytes: Option<usize>,
    /// This instance's cluster node id (stamped into every
    /// [`ProblemId`] it mints; `0` for single-node deployments). Ids
    /// carrying a different node id are foreign — the wire front end
    /// rejects them with a typed error, the in-process API answers
    /// `None`.
    pub node_id: NodeId,
    /// Snapshot-store backend for every shard (default:
    /// [`StoreKind::Cow`] — page-granular CoW deltas; the deep-clone
    /// baseline remains available for conformance comparison).
    pub store: StoreKind,
    /// Byte budget for this node's passive [`crate::ReplicaStore`]
    /// (`None` = unbounded): exceeding it collapses linear path-log
    /// chains into composite edges (replay-equivalent compaction; see
    /// the replica module docs). Only meaningful for servers — the
    /// in-process service never holds replicas.
    pub replica_budget_bytes: Option<usize>,
}

impl ServiceConfig {
    /// A config with `shards` shards (clamped to `1..=u16::MAX`), no
    /// memory bound, node id 0.
    pub fn new(shards: usize) -> Self {
        ServiceConfig {
            shards: shards.clamp(1, u16::MAX as usize),
            snapshot_capacity: None,
            snapshot_budget_bytes: None,
            node_id: 0,
            store: StoreKind::default(),
            replica_budget_bytes: None,
        }
    }

    /// Sets the snapshot-store backend.
    pub fn with_store(mut self, store: StoreKind) -> Self {
        self.store = store;
        self
    }

    /// Sets the cluster node id.
    pub fn with_node_id(mut self, node: NodeId) -> Self {
        self.node_id = node;
        self
    }

    /// Sets the per-shard resident-snapshot bound.
    pub fn with_snapshot_capacity(mut self, capacity: usize) -> Self {
        self.snapshot_capacity = Some(capacity);
        self
    }

    /// Sets the per-shard resident-snapshot byte budget.
    pub fn with_snapshot_budget(mut self, bytes: usize) -> Self {
        self.snapshot_budget_bytes = Some(bytes);
        self
    }

    /// Sets the per-node replica-store byte budget (compaction bound).
    pub fn with_replica_budget(mut self, bytes: usize) -> Self {
        self.replica_budget_bytes = Some(bytes);
        self
    }
}

/// A cluster-wide problem reference — the **placement-aware id**: the
/// owning node, the shard inside it, and the in-shard [`ProblemRef`].
/// Packs into a `u64` for the wire protocol (node ⋅ shard ⋅ local as
/// 16 ⋅ 16 ⋅ 32 bits), so a reference is its own route: no directory
/// lookup ever stands between an id and the snapshot it names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ProblemId {
    node: NodeId,
    shard: u16,
    local: u32,
}

impl ProblemId {
    pub(crate) fn new(node: NodeId, shard: usize, local: u32) -> ProblemId {
        ProblemId {
            node,
            shard: shard as u16,
            local,
        }
    }

    /// The cluster node this problem lives on (0 for single-node
    /// deployments).
    #[inline]
    pub fn node(self) -> NodeId {
        self.node
    }

    /// The shard this problem lives in (within its node).
    #[inline]
    pub fn shard(self) -> usize {
        self.shard as usize
    }

    /// The in-shard reference.
    #[inline]
    pub fn local(self) -> ProblemRef {
        ProblemRef::from_index(self.local)
    }

    /// Packs the id for the wire: `node` in bits 48..64, `shard` in
    /// bits 32..48, `local` in the low 32. Node-0 ids are bit-identical
    /// to the pre-cluster `(shard << 32) | local` packing.
    #[inline]
    pub fn to_wire(self) -> u64 {
        (self.node as u64) << 48 | (self.shard as u64) << 32 | self.local as u64
    }

    /// Unpacks a wire id **without validation** — the node or shard may
    /// name a home the service does not have (such ids answer `None`
    /// on use). Transport front ends should prefer
    /// [`ProblemId::from_wire_checked`], which rejects malformed ids at
    /// decode time with a typed error.
    #[inline]
    pub fn from_wire(wire: u64) -> ProblemId {
        ProblemId {
            node: (wire >> 48) as u16,
            shard: (wire >> 32) as u16,
            local: wire as u32,
        }
    }

    /// Unpacks a wire id, validating the placement against the serving
    /// node: an id routed to the wrong node is a decode error
    /// ([`crate::protocol::ProtoError::WrongNode`] — the consistent-hash
    /// router sent it to the wrong place, or the cluster map is stale),
    /// and a shard index at or beyond `num_shards` is
    /// [`crate::protocol::ProtoError::BadShard`]. Neither aliases into a
    /// silently-dead reference: corrupt or misrouted ids surface to the
    /// client as typed errors.
    #[inline]
    pub fn from_wire_checked(
        wire: u64,
        node: NodeId,
        num_shards: usize,
    ) -> Result<ProblemId, crate::protocol::ProtoError> {
        let id = ProblemId::from_wire(wire);
        if id.node() != node {
            return Err(crate::protocol::ProtoError::WrongNode {
                got: id.node() as u64,
                expected: node as u64,
            });
        }
        if id.shard() >= num_shards {
            return Err(crate::protocol::ProtoError::BadShard(id.shard() as u64));
        }
        Ok(id)
    }
}

/// Reply to a [`ShardedService::solve`] request.
#[derive(Debug, Clone)]
pub struct SolveReply {
    /// Reference to the new problem `p∧q`.
    pub problem: ProblemId,
    /// SAT/UNSAT.
    pub result: SolveResult,
    /// The model, if SAT.
    pub model: Option<Vec<bool>>,
    /// Conflicts this query cost.
    pub conflicts: u64,
    /// Whether the parent snapshot had to be re-derived (eviction miss).
    pub rederived: bool,
}

/// N independently locked [`SolverService`] shards behind one façade.
///
/// All methods take `&self`: the type is `Sync` and any number of
/// threads (the worker pool, TCP connection handlers, in-process
/// clients) may call into it concurrently. Only the target shard is
/// locked, for exactly the duration of one request.
pub struct ShardedService {
    node: NodeId,
    shards: Vec<Mutex<SolverService>>,
}

impl ShardedService {
    /// Builds the service: `config.shards` empty shards, each containing
    /// its root problem, each bounded by `config.snapshot_capacity`.
    /// The shard count is clamped to `1..=u16::MAX` — the id's shard
    /// field is 16 bits, and an unclamped count (the `shards` field is
    /// public) would silently alias ids across shards on truncation.
    pub fn new(config: ServiceConfig) -> Self {
        let shards = (0..config.shards.clamp(1, u16::MAX as usize))
            .map(|_| {
                let mut svc = SolverService::with_store(config.store.build());
                svc.set_snapshot_capacity(config.snapshot_capacity);
                svc.set_snapshot_budget(config.snapshot_budget_bytes);
                Mutex::new(svc)
            })
            .collect();
        ShardedService {
            node: config.node_id,
            shards,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// This instance's cluster node id (stamped into every id it mints).
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Name of the snapshot-store backend the shards run on.
    pub fn store_name(&self) -> &'static str {
        self.shards[0].lock().unwrap().store_name()
    }

    /// The root problem of shard `shard` (empty, trivially SAT).
    pub fn root(&self, shard: usize) -> Option<ProblemId> {
        (shard < self.shards.len()).then_some(ProblemId::new(self.node, shard, 0))
    }

    /// The root a new client session should branch from: sessions are
    /// hashed across shards (Fibonacci hashing, shared with
    /// [`crate::router::session_shard`] so client-side placement
    /// agrees) — concurrent sessions spread out and unrelated trees
    /// never share a lock.
    pub fn session_root(&self, session: u64) -> ProblemId {
        let shard = crate::router::session_shard(session, self.shards.len());
        ProblemId::new(self.node, shard, 0)
    }

    /// Resolves an id to its shard: `None` for a foreign node's id or
    /// an out-of-range shard (dead-reference semantics — the wire front
    /// end rejects both *before* this point, with typed errors).
    fn shard(&self, id: ProblemId) -> Option<&Mutex<SolverService>> {
        if id.node() != self.node {
            return None;
        }
        self.shards.get(id.shard())
    }

    /// Solves `parent ∧ added`; see [`SolverService::solve`]. Locks only
    /// the parent's shard. `None` for dead or malformed references.
    pub fn solve(&self, parent: ProblemId, added: &[Vec<Lit>]) -> Option<SolveReply> {
        let mut shard = self.shard(parent)?.lock().unwrap();
        let reply = shard.solve(parent.local(), added)?;
        Some(SolveReply {
            problem: ProblemId::new(self.node, parent.shard(), reply.problem.index()),
            result: reply.result,
            model: reply.model,
            conflicts: reply.conflicts,
            rederived: reply.rederived,
        })
    }

    /// Releases a problem snapshot in its shard.
    pub fn release(&self, id: ProblemId) {
        if let Some(shard) = self.shard(id) {
            shard.lock().unwrap().release(id.local());
        }
    }

    /// Pins a problem against eviction.
    pub fn pin(&self, id: ProblemId) {
        if let Some(shard) = self.shard(id) {
            shard.lock().unwrap().pin(id.local());
        }
    }

    /// The cached result of an already-solved problem.
    pub fn result_of(&self, id: ProblemId) -> Option<SolveResult> {
        self.shard(id)?.lock().unwrap().result_of(id.local())
    }

    /// Depth of a problem in its shard's derivation tree.
    pub fn depth_of(&self, id: ProblemId) -> Option<u32> {
        self.shard(id)?.lock().unwrap().depth_of(id.local())
    }

    /// Whether the problem's snapshot is resident (not evicted).
    pub fn is_resident(&self, id: ProblemId) -> Option<bool> {
        self.shard(id)?.lock().unwrap().is_resident(id.local())
    }

    /// Per-shard counters plus the aggregate.
    pub fn stats(&self) -> ClusterStats {
        let shards: Vec<ServiceStats> = self
            .shards
            .iter()
            .map(|s| s.lock().unwrap().stats())
            .collect();
        ClusterStats { shards }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(c: &[i64]) -> Vec<Lit> {
        c.iter().map(|&v| Lit::from_dimacs(v)).collect()
    }

    #[test]
    fn wire_roundtrip() {
        let id = ProblemId::new(0, 7, 123);
        assert_eq!(ProblemId::from_wire(id.to_wire()), id);
        assert_eq!(id.node(), 0);
        assert_eq!(id.shard(), 7);
        assert_eq!(id.local(), ProblemRef::from_index(123));
        // Node-0 packing is bit-identical to the pre-cluster format.
        assert_eq!(id.to_wire(), 7u64 << 32 | 123);
        // A cluster-placed id round-trips all three coordinates.
        let placed = ProblemId::new(5, 3, 9);
        assert_eq!(placed.to_wire(), 5u64 << 48 | 3u64 << 32 | 9);
        assert_eq!(ProblemId::from_wire(placed.to_wire()), placed);
        assert_eq!(placed.node(), 5);
    }

    #[test]
    fn service_stamps_its_node_id() {
        let svc = ShardedService::new(ServiceConfig::new(2).with_node_id(3));
        assert_eq!(svc.node_id(), 3);
        let root = svc.session_root(11);
        assert_eq!(root.node(), 3);
        let reply = svc.solve(root, &[lits(&[1])]).unwrap();
        assert_eq!(reply.problem.node(), 3, "children inherit the node");
        // A foreign node's id is a dead reference in-process.
        let foreign = ProblemId::new(4, root.shard(), 0);
        assert!(svc.solve(foreign, &[lits(&[1])]).is_none());
        assert_eq!(svc.result_of(foreign), None);
    }

    #[test]
    fn sessions_spread_over_shards() {
        let svc = ShardedService::new(ServiceConfig::new(4));
        let mut seen = std::collections::HashSet::new();
        for session in 0..64u64 {
            seen.insert(svc.session_root(session).shard());
        }
        assert!(seen.len() >= 3, "64 sessions hit ≥3 of 4 shards: {seen:?}");
    }

    #[test]
    fn shards_are_independent_trees() {
        let svc = ShardedService::new(ServiceConfig::new(2));
        let a = svc.solve(svc.root(0).unwrap(), &[lits(&[1])]).unwrap();
        let b = svc.solve(svc.root(1).unwrap(), &[lits(&[-1])]).unwrap();
        assert_eq!(a.result, SolveResult::Sat);
        assert_eq!(b.result, SolveResult::Sat);
        assert_ne!(a.problem.shard(), b.problem.shard());
        // Contradictory facts coexist because the trees are disjoint.
        assert!(a.model.unwrap()[0]);
        assert!(!b.model.unwrap()[0]);
        let total = svc.stats().total();
        assert_eq!(total.queries, 2);
        assert_eq!(total.live_problems, 4, "2 roots + 2 children");
    }

    #[test]
    fn malformed_ids_fail_gracefully() {
        let svc = ShardedService::new(ServiceConfig::new(2));
        let bogus_shard = ProblemId::from_wire(99u64 << 32);
        assert!(svc.solve(bogus_shard, &[lits(&[1])]).is_none());
        assert_eq!(svc.result_of(bogus_shard), None);
        let bogus_local = ProblemId::from_wire(500);
        assert!(svc.solve(bogus_local, &[lits(&[1])]).is_none());
        assert!(svc.root(5).is_none());
    }

    #[test]
    fn checked_wire_decode_rejects_bad_shards_and_wrong_nodes() {
        use crate::protocol::ProtoError;
        let svc = ShardedService::new(ServiceConfig::new(4));
        // In-range ids decode to themselves.
        let good = ProblemId::new(0, 3, 9);
        assert_eq!(
            ProblemId::from_wire_checked(good.to_wire(), svc.node_id(), svc.num_shards()),
            Ok(good)
        );
        // Out-of-range shard indices are decode errors, not silently
        // dead references.
        let bad = (4u64 << 32) | 1;
        assert_eq!(
            ProblemId::from_wire_checked(bad, 0, svc.num_shards()),
            Err(ProtoError::BadShard(4))
        );
        // An id routed to the wrong node is the typed routing error —
        // checked BEFORE the shard, since a foreign node's shard layout
        // is unknowable here.
        let foreign = ProblemId::new(2, 1, 5).to_wire();
        assert_eq!(
            ProblemId::from_wire_checked(foreign, 0, svc.num_shards()),
            Err(ProtoError::WrongNode {
                got: 2,
                expected: 0
            })
        );
        assert_eq!(
            ProblemId::from_wire_checked(u64::MAX, 0, svc.num_shards()),
            Err(ProtoError::WrongNode {
                got: u16::MAX as u64,
                expected: 0
            })
        );
        // The same garbage id is a shard error on the node it names.
        assert_eq!(
            ProblemId::from_wire_checked(u64::MAX, u16::MAX, svc.num_shards()),
            Err(ProtoError::BadShard(u16::MAX as u64))
        );
    }

    #[test]
    fn store_kinds_agree_on_verdicts_and_witnesses() {
        let cow = ShardedService::new(ServiceConfig::new(2));
        let deep = ShardedService::new(ServiceConfig::new(2).with_store(StoreKind::DeepClone));
        assert_eq!(cow.store_name(), "cow-page");
        assert_eq!(deep.store_name(), "deep-clone");
        let steps: Vec<Vec<Vec<Lit>>> = vec![
            vec![lits(&[1, 2]), lits(&[-1, 3])],
            vec![lits(&[-2])],
            vec![lits(&[-3, -1])],
        ];
        let (mut pc, mut pd) = (cow.root(0).unwrap(), deep.root(0).unwrap());
        for added in &steps {
            let rc = cow.solve(pc, added).unwrap();
            let rd = deep.solve(pd, added).unwrap();
            assert_eq!(rc.result, rd.result);
            assert_eq!(rc.model, rd.model, "bit-identical witnesses");
            pc = rc.problem;
            pd = rd.problem;
        }
    }

    #[test]
    fn store_kind_parses_flag_values() {
        assert_eq!(StoreKind::parse("cow"), Some(StoreKind::Cow));
        assert_eq!(StoreKind::parse("deep-clone"), Some(StoreKind::DeepClone));
        assert_eq!(StoreKind::parse("deepclone"), Some(StoreKind::DeepClone));
        assert_eq!(StoreKind::parse("bogus"), None);
        assert_eq!(StoreKind::default(), StoreKind::Cow);
    }

    #[test]
    fn cow_store_shares_pages_across_shard_snapshots() {
        // A multi-page base snapshot, then small derivations: the
        // children dirty a few delta pages and share the rest.
        let svc = ShardedService::new(ServiceConfig::new(1));
        let base = lwsnap_solver::random_ksat(600, 1200, 3, 7);
        let mut cur = svc
            .solve(svc.root(0).unwrap(), &base.clauses)
            .unwrap()
            .problem;
        for v in 1..=3 {
            cur = svc.solve(cur, &[lits(&[v])]).unwrap().problem;
        }
        let total = svc.stats().total();
        assert!(
            total.shared_pages > 0,
            "derivation chain shares pages: {total:?}"
        );
        assert!(total.resident_bytes > 0);
    }

    #[test]
    fn byte_budget_applies_per_shard() {
        // A tight per-shard byte budget forces evictions on the loaded
        // shard only; stats surface the resident footprint.
        let svc = ShardedService::new(ServiceConfig::new(2).with_snapshot_budget(1));
        let root = svc.root(0).unwrap();
        let mut cur = root;
        for v in 1..=4 {
            cur = svc.solve(cur, &[lits(&[v])]).unwrap().problem;
        }
        let stats = svc.stats();
        assert!(stats.shards[0].evictions > 0, "budget forced evictions");
        assert_eq!(stats.shards[1].evictions, 0, "other shard untouched");
        assert!(stats.total().resident_bytes > 0);
        // Evicted ancestors still answer via replay.
        let reply = svc.solve(root, &[lits(&[5])]).unwrap();
        assert_eq!(reply.result, SolveResult::Sat);
    }

    #[test]
    fn eviction_applies_per_shard() {
        let svc = ShardedService::new(ServiceConfig::new(2).with_snapshot_capacity(2));
        let root = svc.root(0).unwrap();
        let mut cur = root;
        for v in 1..=5 {
            cur = svc.solve(cur, &[lits(&[v])]).unwrap().problem;
        }
        let stats = svc.stats();
        assert!(stats.shards[0].evictions > 0, "chain exceeded capacity");
        assert_eq!(stats.shards[1].evictions, 0, "other shard untouched");
        // Evicted ancestors still answer via replay.
        let reply = svc.solve(root, &[lits(&[6])]).unwrap();
        assert_eq!(reply.result, SolveResult::Sat);
    }
}
