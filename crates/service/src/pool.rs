//! The worker pool: M threads executing solve requests concurrently.
//!
//! Requests flow through one shared [`Injector`] — the lock-free
//! segment-list queue from `lwsnap_core::workqueue` — so a client can
//! inject a whole batch of independent queries with a single atomic
//! tail swap and the pool fans them out across workers, each pop one
//! `fetch_add` on the head segment's claim cursor. True parallelism
//! comes from sharding: two jobs on different shards solve
//! concurrently; two jobs on the same shard serialise on that shard's
//! lock (and nothing else).

use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use lwsnap_core::workqueue::Injector;
use lwsnap_solver::Lit;
use lwsnap_trace as trace;

use crate::sharded::{ProblemId, ShardedService, SolveReply};
use crate::stats::WorkerStats;

/// A completion callback: invoked exactly once with the reply (or
/// dropped uninvoked if the pool shuts down before serving the job —
/// the drop is the cancellation signal, e.g. an `mpsc::Sender` going
/// away).
type Complete = Box<dyn FnOnce(Option<SolveReply>) + Send>;

enum Job {
    Solve {
        parent: ProblemId,
        clauses: Vec<Vec<Lit>>,
        complete: Complete,
        /// Submission instant (trace clock) — queue-wait attribution.
        queued_at: u64,
    },
    Release {
        id: ProblemId,
    },
}

/// A fixed pool of worker threads serving a [`ShardedService`].
pub struct WorkerPool {
    service: Arc<ShardedService>,
    injector: Arc<Injector<Job>>,
    workers: Vec<JoinHandle<WorkerStats>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (clamped to ≥ 1) over `service`.
    pub fn new(service: Arc<ShardedService>, workers: usize) -> Self {
        let injector: Arc<Injector<Job>> = Arc::new(Injector::new());
        let handles = (0..workers.max(1))
            .map(|index| {
                let service = Arc::clone(&service);
                let injector = Arc::clone(&injector);
                std::thread::spawn(move || worker_loop(&service, &injector, index))
            })
            .collect();
        WorkerPool {
            service,
            injector,
            workers: handles,
        }
    }

    /// A cloneable handle for submitting requests.
    pub fn client(&self) -> PoolClient {
        PoolClient {
            service: Arc::clone(&self.service),
            injector: Arc::clone(&self.injector),
        }
    }

    /// The service this pool executes against.
    pub fn service(&self) -> &Arc<ShardedService> {
        &self.service
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently queued (not yet claimed by a worker) — a racy but
    /// bounded backpressure signal for admission control.
    pub fn queue_depth(&self) -> usize {
        self.injector.len()
    }

    /// Drains the queue, stops the workers and returns their counters.
    /// In-flight and already-queued jobs complete; new submissions are
    /// rejected (clients observe `None` replies).
    pub fn shutdown(self) -> Vec<WorkerStats> {
        self.injector.close();
        let stats: Vec<WorkerStats> = self
            .workers
            .into_iter()
            .map(|w| w.join().expect("worker panicked"))
            .collect();
        // The lock-free injector's close is advisory under races: a
        // submit that passed the closed check concurrently with close()
        // may be accepted after the workers' final drain. Quiesce those
        // in-flight producers, then drop whatever jobs remain — their
        // reply senders close, so blocked clients observe `None`
        // instead of hanging on a job nobody will ever execute.
        self.injector.quiesce();
        while self.injector.try_pop().is_some() {}
        stats
    }
}

fn worker_loop(service: &ShardedService, injector: &Injector<Job>, index: usize) -> WorkerStats {
    let mut stats = WorkerStats::default();
    while let Some(job) = injector.pop() {
        let started = Instant::now();
        match job {
            Job::Solve {
                parent,
                clauses,
                complete,
                queued_at,
            } => {
                trace::span(trace::Kind::QueueWait, queued_at, index as u64, 0);
                trace::Registry::global()
                    .queue_wait_ns
                    .record(trace::now_ns().saturating_sub(queued_at));
                complete(service.solve(parent, &clauses))
            }
            Job::Release { id } => service.release(id),
        }
        stats.jobs += 1;
        stats.busy += started.elapsed();
    }
    stats
}

/// A reactor-owned completion mailbox: workers [`push`] finished
/// results from their threads, the reactor [`drain`]s the whole batch
/// under one lock acquisition per wakeup. Each reactor of the
/// multi-reactor front end owns exactly one, so completions never
/// funnel through a shared queue — the worker→reactor path scales
/// with the reactor count.
///
/// [`push`]: CompletionQueue::push
/// [`drain`]: CompletionQueue::drain
pub struct CompletionQueue<T> {
    items: Mutex<Vec<T>>,
    /// Deepest batch ever drained — the queue-depth stat the loadgen
    /// prints per reactor.
    peak: AtomicUsize,
}

impl<T> Default for CompletionQueue<T> {
    fn default() -> Self {
        CompletionQueue {
            items: Mutex::new(Vec::new()),
            peak: AtomicUsize::new(0),
        }
    }
}

impl<T> CompletionQueue<T> {
    /// An empty queue.
    pub fn new() -> CompletionQueue<T> {
        CompletionQueue::default()
    }

    /// Enqueues one completion; returns the queue depth after the push
    /// (callers typically follow with a poller notify).
    pub fn push(&self, item: T) -> usize {
        let mut items = self.items.lock().unwrap();
        items.push(item);
        let depth = items.len();
        drop(items);
        self.peak.fetch_max(depth, AtomicOrdering::Relaxed);
        depth
    }

    /// Takes the whole pending batch (oldest first).
    pub fn drain(&self) -> Vec<T> {
        std::mem::take(&mut *self.items.lock().unwrap())
    }

    /// Deepest the queue has ever been.
    pub fn peak_depth(&self) -> usize {
        self.peak.load(AtomicOrdering::Relaxed)
    }
}

/// Client handle onto a [`WorkerPool`]'s injector. Cloneable and
/// shareable across session threads.
#[derive(Clone)]
pub struct PoolClient {
    service: Arc<ShardedService>,
    injector: Arc<Injector<Job>>,
}

impl PoolClient {
    /// The service the pool executes against.
    pub fn service(&self) -> &Arc<ShardedService> {
        &self.service
    }

    /// Submits one solve request with an explicit completion callback,
    /// invoked on the worker thread that executes the job. This is the
    /// primitive the readiness-loop front end uses to route completions
    /// back to its reactor; most callers want [`PoolClient::submit`] or
    /// the [`crate::SolverBackend`] impl instead. If the pool shuts
    /// down before the job runs, the callback is dropped unexecuted.
    pub fn submit_with(
        &self,
        parent: ProblemId,
        clauses: Vec<Vec<Lit>>,
        complete: impl FnOnce(Option<SolveReply>) + Send + 'static,
    ) {
        self.injector.push(Job::Solve {
            parent,
            clauses,
            complete: Box::new(complete),
            queued_at: trace::now_ns(),
        });
    }

    /// Submits one solve request; the receiver yields the reply when a
    /// worker gets to it (`None` reply for dead references, `Err` on
    /// recv if the pool shut down first).
    pub fn submit(
        &self,
        parent: ProblemId,
        clauses: Vec<Vec<Lit>>,
    ) -> mpsc::Receiver<Option<SolveReply>> {
        let (tx, rx) = mpsc::channel();
        self.submit_with(parent, clauses, move |reply| {
            // A dropped receiver (client gave up) is not an error.
            let _ = tx.send(reply);
        });
        rx
    }

    /// Synchronous solve: submit and wait.
    pub fn solve(&self, parent: ProblemId, clauses: Vec<Vec<Lit>>) -> Option<SolveReply> {
        self.submit(parent, clauses).recv().unwrap_or(None)
    }

    /// Submits a batch of independent queries under **one** injector
    /// lock acquisition and waits for all replies, in request order.
    pub fn solve_batch(
        &self,
        requests: Vec<(ProblemId, Vec<Vec<Lit>>)>,
    ) -> Vec<Option<SolveReply>> {
        let mut receivers = Vec::with_capacity(requests.len());
        let jobs: Vec<Job> = requests
            .into_iter()
            .map(|(parent, clauses)| {
                let (tx, rx) = mpsc::channel();
                receivers.push(rx);
                Job::Solve {
                    parent,
                    clauses,
                    complete: Box::new(move |reply| {
                        let _ = tx.send(reply);
                    }),
                    queued_at: trace::now_ns(),
                }
            })
            .collect();
        self.injector.push_batch(jobs);
        receivers
            .into_iter()
            .map(|rx| rx.recv().unwrap_or(None))
            .collect()
    }

    /// Queues an asynchronous release (fire-and-forget).
    pub fn release(&self, id: ProblemId) {
        self.injector.push(Job::Release { id });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ServiceConfig;
    use lwsnap_solver::SolveResult;

    fn lits(c: &[i64]) -> Vec<Vec<Lit>> {
        vec![c.iter().map(|&v| Lit::from_dimacs(v)).collect()]
    }

    #[test]
    fn pool_solves_and_shuts_down() {
        let service = Arc::new(ShardedService::new(ServiceConfig::new(2)));
        let pool = WorkerPool::new(Arc::clone(&service), 3);
        let client = pool.client();
        let root = service.session_root(1);
        let p = client.solve(root, lits(&[1, 2])).unwrap();
        assert_eq!(p.result, SolveResult::Sat);
        let q = client.solve(p.problem, lits(&[-1])).unwrap();
        assert_eq!(q.result, SolveResult::Sat);
        assert_eq!(pool.queue_depth(), 0, "idle pool has an empty queue");
        let stats = pool.shutdown();
        assert_eq!(stats.len(), 3);
        assert_eq!(stats.iter().map(|w| w.jobs).sum::<u64>(), 2);
        // After shutdown, submissions resolve to None instead of hanging.
        assert!(client.solve(root, lits(&[3])).is_none());
    }

    #[test]
    fn batch_replies_in_request_order() {
        let service = Arc::new(ShardedService::new(ServiceConfig::new(4)));
        let pool = WorkerPool::new(Arc::clone(&service), 4);
        let client = pool.client();
        // One independent query per shard, plus one dead reference.
        let mut requests: Vec<(ProblemId, Vec<Vec<Lit>>)> = (0..4)
            .map(|s| {
                let root = service.root(s).unwrap();
                (root, lits(&[s as i64 + 1]))
            })
            .collect();
        requests.push((ProblemId::from_wire(77u64 << 32), lits(&[1])));
        let replies = client.solve_batch(requests);
        assert_eq!(replies.len(), 5);
        for (s, reply) in replies.iter().take(4).enumerate() {
            let reply = reply.as_ref().expect("live shard root");
            assert_eq!(reply.result, SolveResult::Sat);
            assert_eq!(reply.problem.shard(), s, "reply order matches");
        }
        assert!(replies[4].is_none(), "dead reference answers None");
        pool.shutdown();
    }

    #[test]
    fn completion_queue_batches_and_tracks_peak() {
        let q = CompletionQueue::new();
        assert_eq!(q.push(1), 1);
        assert_eq!(q.push(2), 2);
        assert_eq!(q.push(3), 3);
        assert_eq!(q.drain(), vec![1, 2, 3]);
        assert!(q.drain().is_empty());
        assert_eq!(q.push(4), 1, "depth resets after a drain");
        assert_eq!(q.peak_depth(), 3, "peak survives the drain");
    }

    #[test]
    fn concurrent_sessions_make_progress() {
        let service = Arc::new(ShardedService::new(ServiceConfig::new(4)));
        let pool = WorkerPool::new(Arc::clone(&service), 4);
        let sessions: Vec<_> = (0..8u64)
            .map(|session| {
                let client = pool.client();
                let service = Arc::clone(&service);
                std::thread::spawn(move || {
                    let mut cur = service.session_root(session);
                    for step in 0..4i64 {
                        let v = 1 + (session as i64 * 4 + step) % 8;
                        let reply = client.solve(cur, lits(&[v])).expect("live chain");
                        assert_eq!(reply.result, SolveResult::Sat);
                        cur = reply.problem;
                    }
                })
            })
            .collect();
        for s in sessions {
            s.join().unwrap();
        }
        assert_eq!(service.stats().total().queries, 32);
        let stats = pool.shutdown();
        assert_eq!(stats.iter().map(|w| w.jobs).sum::<u64>(), 32);
    }
}
