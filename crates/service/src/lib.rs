//! # lwsnap-service — the sharded, concurrent multi-path solver service
//!
//! The paper's §3.2 vision scaled out: clients hand in an opaque
//! reference to a solved problem plus an incremental constraint and get
//! back a solution and a new reference — except here the service is
//! **concurrent** (a worker pool executes solve requests in parallel),
//! **sharded** (problem trees are hashed across N independently locked
//! shards, so unrelated client sessions never contend) and
//! **memory-bounded** (each shard runs the LRU snapshot-eviction policy
//! of [`lwsnap_solver::SolverService`], transparently re-deriving evicted
//! problems by replaying their constraint path from the nearest resident
//! ancestor).
//!
//! The layering, bottom up:
//!
//! * [`lwsnap_solver::SolverService`] — the single-shard building block:
//!   one problem tree, snapshots, eviction (by count and/or byte
//!   budget), replay.
//! * [`sharded::ShardedService`] — N shards behind one façade;
//!   [`sharded::ProblemId`] routes a reference to its node and shard
//!   (the id is placement-aware: node ⋅ shard ⋅ local).
//! * [`router`] — cluster placement: the consistent-hash [`Ring`]
//!   (seeded rendezvous) mapping session roots to nodes, with exact
//!   minimal-disruption rebalancing.
//! * [`pool::WorkerPool`] — M worker threads pulling solve jobs from a
//!   shared [`lwsnap_core::workqueue::Injector`]; clients submit one job
//!   or a whole batch under one lock acquisition.
//! * [`backend`] — the **unified API**: the completion-based
//!   [`SolverBackend`] trait (`submit → Ticket`, `wait → reply`) that
//!   every layer above implements, so exploration drivers, load
//!   generators and tests are written once and run against any of
//!   them.
//! * [`protocol`] — length-prefixed frames, in two versions on one
//!   connection: legacy in-order v1 and tagged v2, whose correlation
//!   tags let one connection pipeline many in-flight solves with
//!   out-of-order completions.
//! * [`replica`] — the passive replica store: path logs shipped to a
//!   session's ring successor (by the client AND by the home node's own
//!   `Forward` plane), compacted under a byte budget, promoted by
//!   bit-identical replay when the home node dies or drains out.
//! * [`bufpool`] — pooled 64 KiB receive blocks and the zero-copy
//!   [`bufpool::FrameAssembler`] that parses frames in place, spilling
//!   (and counting) only the rare block-boundary bytes.
//! * [`net`] — the non-blocking front end: one epoll reactor **per
//!   core** (vendored [`polling`] shim), each with its own
//!   `SO_REUSEPORT` listener, connection table, buffer pool and
//!   completion queue, with per-connection write backpressure,
//!   scatter-gather (`writev`) response flushing, graceful shutdown,
//!   server-side edge forwarding and a peer heartbeat thread; the
//!   `lwsnapd` binary serves it.
//! * [`chaos`] — deterministic fault injection at the protocol
//!   boundary: seeded, content-keyed drops/duplications/delays of
//!   replication-plane frames, plus the loadgen kill schedule.
//! * [`client`] — [`TcpClient`] (blocking, v1), [`PipelinedClient`]
//!   (send-many/await-many, v2) and [`ClusterBackend`] (N pipelined
//!   connections behind the ring) — the latter two are the remote
//!   [`SolverBackend`]s, for one node and for a whole cluster.
//! * [`stats`] — per-shard and per-worker counters aggregated into one
//!   cluster view.
//!
//! ```
//! use lwsnap_service::{ServiceConfig, ShardedService};
//! use lwsnap_solver::{Lit, SolveResult};
//!
//! let service = ShardedService::new(ServiceConfig::new(4));
//! let root = service.session_root(42);
//! let p = service
//!     .solve(root, &[vec![Lit::from_dimacs(1), Lit::from_dimacs(2)]])
//!     .unwrap();
//! assert_eq!(p.result, SolveResult::Sat);
//! // Two divergent continuations of the same solved problem.
//! let q1 = service.solve(p.problem, &[vec![Lit::from_dimacs(-1)]]).unwrap();
//! let q2 = service.solve(p.problem, &[vec![Lit::from_dimacs(1)]]).unwrap();
//! assert_eq!(q1.result, SolveResult::Sat);
//! assert_eq!(q2.result, SolveResult::Sat);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod bufpool;
pub mod chaos;
pub mod client;
pub mod net;
pub mod pool;
pub mod protocol;
pub mod replica;
pub mod router;
pub mod sharded;
pub mod stats;

pub use backend::{SolverBackend, Ticket};
pub use bufpool::{BufferPool, FrameAssembler, Lease};
pub use chaos::{ChaosAction, ChaosPlan, ChaosPolicy};
pub use client::{ClusterBackend, Disconnected, NodeError, PipelinedClient, TcpClient};
pub use net::{Cluster, ReactorStatsView, Server};
pub use pool::{PoolClient, WorkerPool};
pub use protocol::{Request, Response, StatsSummary};
pub use replica::ReplicaStore;
pub use router::{NodeId, Placement, Ring};
pub use sharded::{ProblemId, ServiceConfig, ShardedService, SolveReply, StoreKind};
pub use stats::{ClusterStats, FleetStats, WorkerStats};
