//! The non-blocking TCP front end: **one reactor per core**, each an
//! independent epoll readiness loop (the vendored [`polling`] shim)
//! over its own `SO_REUSEPORT` listener, dispatching solve work into
//! the shared [`WorkerPool`].
//!
//! ## The reactor fan-out
//!
//! [`Server::start`] binds N listeners on one port with `SO_REUSEPORT`
//! set before bind ([`polling::bind_reuseport`]) and spawns N reactor
//! threads, each owning its own [`polling::Poller`] (epoll instance),
//! its own connection table, its own [`BufferPool`] of receive
//! blocks and its own [`CompletionQueue`]. The kernel shards incoming
//! connections across the accept queues by 4-tuple hash; a connection
//! is **pinned for life** to the reactor that accepted it, so no
//! cross-reactor locking ever touches per-connection state. The worker
//! pool stays shared — completions route back through the owning
//! reactor's queue and wake exactly that reactor's poller. (When
//! `SO_REUSEPORT` is unavailable — IPv6, exotic kernels — the front
//! end falls back to one reactor on a plain listener.)
//!
//! ## The zero-copy wire path
//!
//! * **Read side** — socket bytes land directly in a pooled 64 KiB
//!   block leased by the connection; frames are parsed **in place**
//!   ([`crate::protocol::parse_frame_ref`]) and the request is decoded
//!   straight out of the block — the old `inbuf` staging copy is gone.
//!   Only a frame that straddles a block boundary is copied (into a
//!   spill buffer), and those bytes are counted by the
//!   `net.rx_copy_bytes` trace counter so the benches can assert the
//!   copies stayed gone. Blocks recycle to the reactor's freelist when
//!   a connection closes (`net.pool_recycle`).
//! * **Write side** — responses queue as (header, payload) pairs and go
//!   out through corked scatter-gather writes
//!   ([`std::io::Write::write_vectored`], i.e. `writev`): the encoded
//!   payload `Vec` is handed to the kernel where it lies instead of
//!   being restaged through a flat `outbuf`.
//! * **Ordering** — v2 tagged requests complete out of order, written
//!   the moment they finish. Legacy v1 requests are answered strictly
//!   in request order per connection (a per-connection reorder map
//!   holds early completions), so old clients keep working unchanged.
//! * **Backpressure** — a connection whose unflushed output or
//!   in-flight count crosses the high-water mark stops being read (its
//!   read interest is not re-armed) until it drains, so one slow
//!   client can neither balloon server memory nor starve the pool.
//! * **Shutdown** — a client `Shutdown` request drains gracefully on
//!   every reactor: stop accepting, stop reading, finish in-flight
//!   solves, flush every output queue, then exit. Host-initiated
//!   shutdown (`Server::drop`) exits promptly without the flush
//!   guarantee.
//!
//! ## The server-to-server plane
//!
//! When [`Server::set_peers`] gives a node its cluster map, two things
//! start happening beside the client traffic:
//!
//! * **Edge forwarding** — every successful solve of a tracked session
//!   is forwarded by the home node itself ([`Request::Forward`]) to the
//!   session's ring successor, idempotent by per-session sequence
//!   number. The client's own `Replicate` fan-out still runs; the two
//!   planes are redundant, so a session stays replicated even when only
//!   one of its clients (or none) logs edges.
//! * **Heartbeats** — a detached thread pings every peer on a jittered
//!   timer ([`Request::Ping`]/[`Response::Pong`], carrying the
//!   membership epoch). Three consecutive misses declare a peer dead:
//!   the survivor promotes every session whose home was the dead node
//!   and whose replica it holds — *before* any client request trips
//!   over the corpse — and bumps the epoch so stale routers learn of
//!   the change from the next `Pong` they see.

use std::collections::{HashMap, VecDeque};
use std::io::{self, IoSlice, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use lwsnap_trace as trace;
use polling::{Event, Poller};

use crate::bufpool::{BufferPool, FrameAssembler};
use crate::chaos::{root_key, stable_key, ChaosAction, ChaosPolicy, PLANE_SERVER};
use crate::client::PipelinedClient;
use crate::pool::{CompletionQueue, PoolClient, WorkerPool};
use crate::protocol::{clauses_to_lits, Request, Response, StatsSummary, TAGGED};
use crate::replica::ReplicaStore;
use crate::router::{mix64, NodeId, Ring};
use crate::sharded::{ProblemId, ServiceConfig, ShardedService, SolveReply};
use crate::stats::WorkerStats;

/// Stop reading a connection whose unflushed output exceeds this. Also
/// the flush window for client-side corked batch writes
/// ([`crate::PipelinedClient::submit_batch`]), so both directions of
/// the wire share one backpressure bound.
pub(crate) const HIGH_WATER: usize = 1 << 20;
/// Resume reading once the unflushed output falls below this.
const LOW_WATER: usize = HIGH_WATER / 4;
/// Stop reading a connection with this many unanswered solves.
const MAX_INFLIGHT: usize = 1024;
/// Cork at most this many response frames into one `writev` (two
/// iovecs per frame — comfortably under every libc's `IOV_MAX`).
const MAX_WRITE_FRAMES: usize = 32;
/// Poller key of a reactor's listening socket; connections use
/// `idx + 1` (keys are per-poller, so every reactor reuses the range).
const KEY_LISTENER: usize = 0;
/// How long a graceful drain waits for peers to read their last
/// responses before giving up and exiting anyway.
const DRAIN_GRACE: std::time::Duration = std::time::Duration::from_secs(5);
/// Base interval between server-side heartbeat rounds (each round adds
/// seeded jitter so a fleet's probes do not synchronize).
const HEARTBEAT_INTERVAL: Duration = Duration::from_millis(50);
/// Read timeout on server-to-server connections: a peer that cannot
/// answer a `Ping` within this is counted as a miss.
const HEARTBEAT_TIMEOUT: Duration = Duration::from_secs(1);
/// Consecutive heartbeat misses before a peer is declared dead. The
/// hysteresis: a flapping peer that answers at least one ping in every
/// window of three never trips a failover.
const SUSPICION_THRESHOLD: u32 = 3;

// ---------------------------------------------------------------------
// The server-to-server replication/heartbeat plane.
// ---------------------------------------------------------------------

/// Peer-facing state of one node: the cluster map, lazy pipelined
/// connections to each peer, the session registry that attributes this
/// node's problems to their sessions, and the suspicion counters the
/// heartbeat thread maintains. Owned by [`Server`], shared with every
/// reactor (dispatch hooks) and the heartbeat thread.
///
/// Reactor-affinity note: this node keeps exactly ONE pipelined
/// connection per peer (`conns`), shared by the forward plane (worker
/// threads) and the heartbeat thread. On the receiving node that
/// connection is pinned to whichever reactor accepted it, so all
/// `Forward`/`Ping` traffic from one peer rides one reactor — the
/// peer plane never straddles the front-end fan-out.
pub(crate) struct Forwarder {
    node: NodeId,
    inner: Mutex<ForwardInner>,
    /// Total heartbeat probes that went unanswered (exported as
    /// [`StatsSummary::heartbeat_misses`]). Shared out through
    /// [`Server::heartbeat_miss_handle`] so the count stays readable
    /// after [`Server::wait`] has consumed the server.
    misses: Arc<AtomicU64>,
    /// Highest membership epoch seen anywhere: bumped locally when this
    /// node declares a peer dead, raised to the max carried by any
    /// `Ping` it receives, echoed in every `Pong`. A router holding a
    /// lower epoch knows its membership view is stale.
    epoch: AtomicU64,
    /// Whether the heartbeat thread has been spawned.
    hb_started: AtomicBool,
}

struct ForwardInner {
    /// The same seeded rendezvous ring every client uses, including
    /// this node — successor targets must agree across the fleet.
    ring: Ring,
    /// Peer id → address (this node excluded).
    peers: HashMap<NodeId, SocketAddr>,
    /// Lazily opened server-to-server connections.
    conns: HashMap<NodeId, Arc<PipelinedClient>>,
    /// Problem wire id (minted here) → `(owning session, content-stable
    /// chaos key)`. Roots register at `Root` dispatch, children at
    /// solve completion. The stable key hashes the problem's clause
    /// lineage ([`stable_key`]) so chaos decisions replay identically
    /// regardless of wire-id allocation order.
    sessions: HashMap<u64, (u64, u64)>,
    /// Per-session `Forward` sequence counters (the receiver dedupes
    /// by these, so the chaos harness may duplicate frames freely).
    seqs: HashMap<u64, u64>,
    /// Consecutive missed heartbeats per peer; reset by any `Pong`.
    suspicion: HashMap<NodeId, u32>,
    /// Fault-injection policy for the server replication plane.
    chaos: Option<Arc<ChaosPolicy>>,
}

/// Opens (or reuses) the pipelined connection to `peer`.
fn peer_conn(inner: &mut ForwardInner, peer: NodeId) -> Option<Arc<PipelinedClient>> {
    if let Some(conn) = inner.conns.get(&peer) {
        return Some(Arc::clone(conn));
    }
    let addr = *inner.peers.get(&peer)?;
    let client = PipelinedClient::connect(addr).ok()?;
    let _ = client.set_read_timeout(Some(HEARTBEAT_TIMEOUT));
    let client = Arc::new(client);
    inner.conns.insert(peer, Arc::clone(&client));
    Some(client)
}

/// Sends one fire-and-forget replication frame through the chaos
/// policy: drops swallow it, duplicates send it twice (the receiver
/// dedupes), delays sleep briefly first. `key` must identify the frame
/// by *content* (the [`stable_key`] of its clause lineage) so the
/// decision is replayable across runs and identical on both planes.
fn chaos_send(
    conn: &PipelinedClient,
    chaos: Option<&ChaosPolicy>,
    key: u64,
    request: &Request,
) -> io::Result<()> {
    let action = chaos.map_or(ChaosAction::Deliver, |p| p.decide(PLANE_SERVER, key));
    if action != ChaosAction::Deliver {
        trace::instant(trace::Kind::ChaosInject, key, PLANE_SERVER);
        trace::Registry::global().chaos_injections.inc();
    }
    match action {
        ChaosAction::Drop => Ok(()),
        ChaosAction::Deliver => conn.submit_forgotten(request),
        ChaosAction::Duplicate => {
            conn.submit_forgotten(request)?;
            conn.submit_forgotten(request)
        }
        ChaosAction::Delay(pause) => {
            std::thread::sleep(pause);
            conn.submit_forgotten(request)
        }
    }
}

impl Forwarder {
    fn new(node: NodeId) -> Forwarder {
        Forwarder {
            node,
            inner: Mutex::new(ForwardInner {
                ring: Ring::new([node], 0),
                peers: HashMap::new(),
                conns: HashMap::new(),
                sessions: HashMap::new(),
                seqs: HashMap::new(),
                suspicion: HashMap::new(),
                chaos: None,
            }),
            misses: Arc::new(AtomicU64::new(0)),
            epoch: AtomicU64::new(0),
            hb_started: AtomicBool::new(false),
        }
    }

    /// Installs the cluster map (this node may or may not be listed;
    /// the ring always includes it). Safe to call again on membership
    /// changes — connections to vanished peers are dropped.
    fn set_peers(&self, peers: &[(NodeId, SocketAddr)], seed: u64) {
        let mut ids: Vec<NodeId> = peers.iter().map(|&(id, _)| id).collect();
        if !ids.contains(&self.node) {
            ids.push(self.node);
        }
        let peer_map: HashMap<NodeId, SocketAddr> = peers
            .iter()
            .filter(|&&(id, _)| id != self.node)
            .map(|&(id, addr)| (id, addr))
            .collect();
        let mut inner = self.inner.lock().unwrap();
        inner.ring = Ring::new(ids, seed);
        inner.conns.retain(|id, _| peer_map.contains_key(id));
        inner.suspicion.retain(|id, _| peer_map.contains_key(id));
        inner.peers = peer_map;
    }

    fn set_chaos(&self, chaos: Option<Arc<ChaosPolicy>>) {
        self.inner.lock().unwrap().chaos = chaos;
    }

    fn has_peers(&self) -> bool {
        !self.inner.lock().unwrap().peers.is_empty()
    }

    /// Attributes a freshly minted session root to its session.
    fn register_root(&self, problem: u64, session: u64) {
        self.inner
            .lock()
            .unwrap()
            .sessions
            .insert(problem, (session, root_key(session)));
    }

    /// Forwards one derivation edge to the session's ring successor
    /// (and registers the child for future attribution). No-op for
    /// untracked parents and single-node rings.
    fn forward_edge(&self, parent: u64, problem: u64, clauses: Vec<Vec<i64>>) {
        let (conn, chaos, successor, session, seq, key) = {
            let mut inner = self.inner.lock().unwrap();
            let Some(&(session, parent_key)) = inner.sessions.get(&parent) else {
                return;
            };
            let key = stable_key(parent_key, &clauses);
            inner.sessions.insert(problem, (session, key));
            let Some(successor) = inner.ring.successor_for(session) else {
                return;
            };
            if successor == self.node {
                return;
            }
            let seq = {
                let counter = inner.seqs.entry(session).or_insert(0);
                let seq = *counter;
                *counter += 1;
                seq
            };
            let Some(conn) = peer_conn(&mut inner, successor) else {
                return;
            };
            (conn, inner.chaos.clone(), successor, session, seq, key)
        };
        trace::instant(trace::Kind::ReplForward, session, seq);
        trace::Registry::global().forwards.inc();
        let request = Request::Forward {
            session,
            seq,
            problem,
            parent,
            clauses,
        };
        if chaos_send(&conn, chaos.as_deref(), key, &request).is_err() {
            // The successor's connection died; drop it so the next
            // forward reconnects (its liveness is the heartbeat's job).
            self.inner.lock().unwrap().conns.remove(&successor);
        }
    }

    /// Mirrors a client `Release` onto the replication plane: drops the
    /// problem from the session registry and tells the session's
    /// successor to GC its copy of the edge.
    fn forget(&self, problem: u64) {
        let (conn, chaos, successor, session, key) = {
            let mut inner = self.inner.lock().unwrap();
            let Some((session, key)) = inner.sessions.remove(&problem) else {
                return;
            };
            let Some(successor) = inner.ring.successor_for(session) else {
                return;
            };
            if successor == self.node {
                return;
            }
            let Some(conn) = peer_conn(&mut inner, successor) else {
                return;
            };
            (conn, inner.chaos.clone(), successor, session, key)
        };
        let request = Request::Unreplicate {
            session,
            problems: vec![problem],
        };
        if chaos_send(&conn, chaos.as_deref(), key, &request).is_err() {
            self.inner.lock().unwrap().conns.remove(&successor);
        }
    }

    /// Folds an epoch seen on the wire into the local max; returns the
    /// (possibly raised) current value.
    fn observe_epoch(&self, seen: u64) -> u64 {
        self.epoch.fetch_max(seen, Ordering::AcqRel);
        self.epoch.load(Ordering::Acquire)
    }

    fn heartbeat_misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// One heartbeat round: ping every peer, track suspicion, and
    /// declare dead any peer that missed [`SUSPICION_THRESHOLD`]
    /// consecutive probes.
    fn heartbeat_round(&self, service: &Arc<ShardedService>, replicas: &Arc<ReplicaStore>) {
        let peers: Vec<NodeId> = {
            let inner = self.inner.lock().unwrap();
            let mut ids: Vec<NodeId> = inner.peers.keys().copied().collect();
            ids.sort_unstable();
            ids
        };
        let my_epoch = self.epoch.load(Ordering::Acquire);
        for peer in peers {
            let conn = {
                let mut inner = self.inner.lock().unwrap();
                peer_conn(&mut inner, peer)
            };
            let pong = conn.and_then(|c| {
                c.call(&Request::Ping {
                    sender: self.node as u64,
                    epoch: my_epoch,
                })
                .ok()
            });
            match pong {
                Some(Response::Pong { epoch, .. }) => {
                    trace::instant(trace::Kind::HbPong, peer as u64, epoch);
                    self.observe_epoch(epoch);
                    self.inner.lock().unwrap().suspicion.insert(peer, 0);
                }
                _ => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    trace::Registry::global().heartbeat_misses.inc();
                    let (dead, count) = {
                        let mut inner = self.inner.lock().unwrap();
                        inner.conns.remove(&peer);
                        let count = inner.suspicion.entry(peer).or_insert(0);
                        *count += 1;
                        (*count >= SUSPICION_THRESHOLD, *count)
                    };
                    trace::instant(trace::Kind::HbMiss, peer as u64, count as u64);
                    if dead {
                        self.declare_dead(peer, service, replicas);
                    }
                }
            }
        }
    }

    /// Removes a dead peer from the membership and promotes, by path
    /// replay, every session that was homed on it and replicated here.
    /// The victims are computed against the PRE-removal ring (only it
    /// can still say which sessions the dead node owned); the
    /// rendezvous successor property guarantees each one's post-removal
    /// owner is exactly the node holding its replica — this node.
    fn declare_dead(
        &self,
        dead: NodeId,
        service: &Arc<ShardedService>,
        replicas: &Arc<ReplicaStore>,
    ) {
        let victims: Vec<u64> = {
            let mut inner = self.inner.lock().unwrap();
            let victims = replicas
                .sessions()
                .into_iter()
                .filter(|&s| inner.ring.node_for(s) == Some(dead))
                .collect();
            if !inner.ring.remove_node(dead) {
                return; // already handled
            }
            inner.peers.remove(&dead);
            inner.conns.remove(&dead);
            inner.suspicion.remove(&dead);
            victims
        };
        trace::instant(trace::Kind::NodeDead, dead as u64, victims.len() as u64);
        trace::Registry::global().failovers.inc();
        self.epoch.fetch_add(1, Ordering::AcqRel);
        for session in victims {
            let problems = replicas.session_problems(session);
            let _ = replicas.promote(service, session, &problems);
        }
    }
}

/// The detached heartbeat loop: jittered sleeps (seeded by node id and
/// tick, so a fleet never phase-locks) punctuated by
/// [`Forwarder::heartbeat_round`]s. Exits when `hard_stop` is set; the
/// sleep is chunked so shutdown stays prompt.
fn heartbeat_loop(
    forwarder: Arc<Forwarder>,
    service: Arc<ShardedService>,
    replicas: Arc<ReplicaStore>,
    hard_stop: Arc<AtomicBool>,
) {
    let node = forwarder.node as u64;
    let mut tick = 0u64;
    while !hard_stop.load(Ordering::Acquire) {
        let half = (HEARTBEAT_INTERVAL.as_micros() as u64 / 2).max(1);
        let jitter = Duration::from_micros(mix64(node << 32 ^ tick) % half);
        let nap = HEARTBEAT_INTERVAL + jitter;
        let mut slept = Duration::ZERO;
        while slept < nap {
            if hard_stop.load(Ordering::Acquire) {
                return;
            }
            let chunk = Duration::from_millis(10).min(nap - slept);
            std::thread::sleep(chunk);
            slept += chunk;
        }
        tick += 1;
        forwarder.heartbeat_round(&service, &replicas);
    }
}

/// Default reactor count: one per core, capped so test harnesses that
/// stand up many in-process servers on big machines stay reasonable.
fn default_reactors() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get().min(8))
}

/// Binds the front end's listener(s). With `reactors > 1` on an IPv4
/// address this is N `SO_REUSEPORT` sockets sharing one port (the
/// first resolves an ephemeral port, the rest bind it); anywhere that
/// cannot work — IPv6, kernels without the option — it degrades to a
/// single plain listener, i.e. a one-reactor front end.
fn bind_front_end(addr: &str, reactors: usize) -> io::Result<(SocketAddr, Vec<TcpListener>)> {
    use std::net::ToSocketAddrs;
    let mut last_err = None;
    for sa in addr.to_socket_addrs()? {
        if reactors > 1 && sa.is_ipv4() {
            if let Ok(first) = polling::bind_reuseport(sa) {
                let bound = first.local_addr()?;
                let mut listeners = vec![first];
                while listeners.len() < reactors {
                    match polling::bind_reuseport(bound) {
                        Ok(l) => listeners.push(l),
                        Err(_) => break,
                    }
                }
                if listeners.len() == reactors {
                    return Ok((bound, listeners));
                }
                // Partial success is a config smell; drop the sockets
                // (freeing the port) and fall back to one listener.
                drop(listeners);
            }
        }
        match TcpListener::bind(sa) {
            Ok(l) => {
                let bound = l.local_addr()?;
                return Ok((bound, vec![l]));
            }
            Err(e) => last_err = Some(e),
        }
    }
    Err(last_err
        .unwrap_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "no usable address")))
}

/// Counters one reactor maintains about itself, shared with the
/// [`Server`] handle for scraping.
#[derive(Default)]
struct ReactorStats {
    accepted: AtomicU64,
    completions: AtomicU64,
}

/// A point-in-time snapshot of one reactor's front-end counters
/// ([`Server::reactor_stats`]).
#[derive(Debug, Clone, Default)]
pub struct ReactorStatsView {
    /// Connections this reactor has accepted since start.
    pub accepted: u64,
    /// Solve completions routed through this reactor's queue.
    pub completions: u64,
    /// Deepest the completion queue has ever been (batching depth).
    pub queue_peak: usize,
    /// Receive bytes this reactor copied (block-spanning frames only;
    /// ~0 per request on the zero-copy fast path).
    pub rx_copy_bytes: u64,
    /// Read blocks recycled through this reactor's freelist.
    pub pool_recycled: u64,
    /// Read blocks currently leased out to connections (zero once
    /// every connection has closed — the leak-audit number).
    pub pool_outstanding: usize,
    /// Read blocks parked on the freelist.
    pub pool_free: usize,
}

/// The server-side handle onto one running reactor: its waker plus the
/// shared pieces its stats snapshot reads from.
struct ReactorHandle {
    poller: Arc<Poller>,
    stats: Arc<ReactorStats>,
    bufpool: Arc<BufferPool>,
    completions: Arc<CompletionQueue<Completion>>,
    thread: Option<JoinHandle<()>>,
}

/// A running `lwsnapd` server: reactor threads + worker pool.
pub struct Server {
    addr: SocketAddr,
    service: Arc<ShardedService>,
    replicas: Arc<ReplicaStore>,
    forwarder: Arc<Forwarder>,
    hard_stop: Arc<AtomicBool>,
    reactors: Vec<ReactorHandle>,
    pool: Option<WorkerPool>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving a fresh [`ShardedService`] built from `config`
    /// with a `workers`-thread pool and one reactor per core. The
    /// config's [`ServiceConfig::replica_budget_bytes`] becomes the
    /// replica store's compaction budget.
    pub fn start(addr: &str, config: ServiceConfig, workers: usize) -> io::Result<Server> {
        Server::start_with(addr, config, workers, default_reactors())
    }

    /// Like [`Server::start`] with an explicit reactor count.
    /// `reactors > 1` needs `SO_REUSEPORT` on an IPv4 address;
    /// anywhere that cannot work, the front end falls back to one
    /// reactor on a plain listener.
    pub fn start_with(
        addr: &str,
        config: ServiceConfig,
        workers: usize,
        reactors: usize,
    ) -> io::Result<Server> {
        let budget = config.replica_budget_bytes.map(|b| b as u64);
        let service = Arc::new(ShardedService::new(config));
        Server::serve_inner(addr, service, workers, budget, reactors)
    }

    /// Like [`Server::start`] but over an existing service instance
    /// (no replica budget — the config already went into the service).
    pub fn serve(addr: &str, service: Arc<ShardedService>, workers: usize) -> io::Result<Server> {
        Server::serve_inner(addr, service, workers, None, default_reactors())
    }

    fn serve_inner(
        addr: &str,
        service: Arc<ShardedService>,
        workers: usize,
        replica_budget: Option<u64>,
        reactors: usize,
    ) -> io::Result<Server> {
        let (addr, listeners) = bind_front_end(addr, reactors.max(1))?;
        let pool = WorkerPool::new(Arc::clone(&service), workers);
        let hard_stop = Arc::new(AtomicBool::new(false));
        let draining = Arc::new(AtomicBool::new(false));
        let replicas = Arc::new(ReplicaStore::with_budget(replica_budget));
        let forwarder = Arc::new(Forwarder::new(service.node_id()));
        // Pollers come first so every reactor can wake all its siblings
        // on a drain.
        let mut armed = Vec::with_capacity(listeners.len());
        for listener in listeners {
            listener.set_nonblocking(true)?;
            let poller = Arc::new(Poller::new()?);
            poller.add(&listener, Event::readable(KEY_LISTENER))?;
            armed.push((listener, poller));
        }
        let all_pollers: Arc<Vec<Arc<Poller>>> =
            Arc::new(armed.iter().map(|(_, p)| Arc::clone(p)).collect());
        let mut handles = Vec::with_capacity(armed.len());
        for (index, (listener, poller)) in armed.into_iter().enumerate() {
            let stats = Arc::new(ReactorStats::default());
            let bufpool = BufferPool::new();
            let completions = Arc::new(CompletionQueue::new());
            let mut reactor = Reactor {
                listener,
                poller: Arc::clone(&poller),
                all_pollers: Arc::clone(&all_pollers),
                service: Arc::clone(&service),
                replicas: Arc::clone(&replicas),
                forwarder: Arc::clone(&forwarder),
                pool: pool.client(),
                completions: Arc::clone(&completions),
                hard_stop: Arc::clone(&hard_stop),
                draining: Arc::clone(&draining),
                bufpool: Arc::clone(&bufpool),
                stats: Arc::clone(&stats),
                conns: Vec::new(),
                free: Vec::new(),
                gens: Vec::new(),
                total_inflight: 0,
                drain_deadline: None,
            };
            let thread = std::thread::Builder::new()
                .name(format!("lwsnap-reactor-{index}"))
                .spawn(move || reactor.run())?;
            handles.push(ReactorHandle {
                poller,
                stats,
                bufpool,
                completions,
                thread: Some(thread),
            });
        }
        Ok(Server {
            addr,
            service,
            replicas,
            forwarder,
            hard_stop,
            reactors: handles,
            pool: Some(pool),
        })
    }

    /// Gives this node its cluster map — `(node id, address)` pairs,
    /// this node included or not — and the shared ring seed. Turns on
    /// the server-to-server plane: derivation edges of sessions homed
    /// here start streaming to their ring successors, and (once there
    /// is at least one peer) the heartbeat thread starts probing.
    /// Callable again on membership changes.
    pub fn set_peers(&self, peers: &[(NodeId, SocketAddr)], seed: u64) {
        self.forwarder.set_peers(peers, seed);
        if self.forwarder.has_peers() && !self.forwarder.hb_started.swap(true, Ordering::AcqRel) {
            let forwarder = Arc::clone(&self.forwarder);
            let service = Arc::clone(&self.service);
            let replicas = Arc::clone(&self.replicas);
            let hard_stop = Arc::clone(&self.hard_stop);
            // Detached on purpose: joining it would make kill_node wait
            // out an in-flight probe. It exits on hard_stop.
            std::thread::spawn(move || heartbeat_loop(forwarder, service, replicas, hard_stop));
        }
    }

    /// Installs (or clears) the fault-injection policy for this node's
    /// outgoing replication-plane frames.
    pub fn set_chaos(&self, chaos: Option<Arc<ChaosPolicy>>) {
        self.forwarder.set_chaos(chaos);
    }

    /// This node's current view of the membership epoch.
    pub fn epoch(&self) -> u64 {
        self.forwarder.epoch.load(Ordering::Acquire)
    }

    /// Heartbeat probes this node has seen go unanswered.
    pub fn heartbeat_misses(&self) -> u64 {
        self.forwarder.heartbeat_misses()
    }

    /// A clonable handle onto the heartbeat-miss counter, still
    /// readable after [`Server::wait`] has consumed the server.
    pub fn heartbeat_miss_handle(&self) -> Arc<AtomicU64> {
        self.forwarder.misses.clone()
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the server.
    pub fn service(&self) -> &Arc<ShardedService> {
        &self.service
    }

    /// The passive replica store behind the server (path logs shipped
    /// here by sessions homed on other nodes).
    pub fn replicas(&self) -> &Arc<ReplicaStore> {
        &self.replicas
    }

    /// Number of reactor threads serving this node's front end.
    pub fn reactors(&self) -> usize {
        self.reactors.len()
    }

    /// Per-reactor front-end counters, index-aligned with the reactor
    /// threads (`accepted` summed across entries is the node total).
    pub fn reactor_stats(&self) -> Vec<ReactorStatsView> {
        self.reactors
            .iter()
            .map(|r| ReactorStatsView {
                accepted: r.stats.accepted.load(Ordering::Relaxed),
                completions: r.stats.completions.load(Ordering::Relaxed),
                queue_peak: r.completions.peak_depth(),
                rx_copy_bytes: r.bufpool.copied_bytes(),
                pool_recycled: r.bufpool.recycled(),
                pool_outstanding: r.bufpool.outstanding(),
                pool_free: r.bufpool.free_blocks(),
            })
            .collect()
    }

    fn notify_all(&self) {
        for r in &self.reactors {
            let _ = r.poller.notify();
        }
    }

    /// Blocks until a client sends [`Request::Shutdown`] and the
    /// graceful drain completes on every reactor, then returns the
    /// worker counters.
    pub fn wait(mut self) -> Vec<WorkerStats> {
        for r in &mut self.reactors {
            if let Some(thread) = r.thread.take() {
                let _ = thread.join();
            }
        }
        match self.pool.take() {
            Some(pool) => pool.shutdown(),
            None => Vec::new(),
        }
    }

    /// Initiates prompt shutdown from the hosting process and waits for
    /// it (in-flight solves finish; unflushed responses may be lost).
    pub fn shutdown(self) -> Vec<WorkerStats> {
        self.hard_stop.store(true, Ordering::Release);
        self.notify_all();
        self.wait()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.hard_stop.store(true, Ordering::Release);
        self.notify_all();
        for r in &mut self.reactors {
            if let Some(thread) = r.thread.take() {
                let _ = thread.join();
            }
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

/// Where a response slots into its connection's output stream.
enum Slot {
    /// v2: echo this correlation tag, complete in any order.
    Tagged(u64),
    /// v1: the `seq`-th untagged request — completes in request order.
    Seq(u64),
}

/// A finished solve travelling from a worker back to the reactor.
struct Completion {
    idx: usize,
    gen: u64,
    slot: Slot,
    response: Response,
}

/// One encoded response frame awaiting the socket: the 4- or 12-byte
/// length/tag header and the payload it frames, written as separate
/// [`IoSlice`]s so the encoded payload is handed to the kernel where
/// it lies instead of being restaged through a flat output buffer.
struct OutFrame {
    header: [u8; 12],
    hlen: u8,
    payload: Vec<u8>,
}

impl OutFrame {
    fn new(slot: &Slot, payload: Vec<u8>) -> OutFrame {
        let mut header = [0u8; 12];
        let hlen = match slot {
            Slot::Tagged(tag) => {
                let len = (payload.len() + 8) as u32 | TAGGED;
                header[..4].copy_from_slice(&len.to_le_bytes());
                header[4..12].copy_from_slice(&tag.to_le_bytes());
                12u8
            }
            Slot::Seq(_) => {
                header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
                4u8
            }
        };
        OutFrame {
            header,
            hlen,
            payload,
        }
    }

    fn total_len(&self) -> usize {
        self.hlen as usize + self.payload.len()
    }
}

/// Per-connection state.
struct Conn {
    stream: TcpStream,
    /// In-place frame assembly over pooled read blocks.
    rx: FrameAssembler,
    /// Encoded frames awaiting the socket.
    out: VecDeque<OutFrame>,
    /// Bytes of the front frame already written.
    out_written: usize,
    /// Total unwritten bytes across the queue.
    out_bytes: usize,
    /// Sequence assigned to the next untagged request.
    v1_next_seq: u64,
    /// Sequence whose response must be written next.
    v1_next_flush: u64,
    /// Early (out-of-order) completions for untagged requests.
    v1_ready: HashMap<u64, Response>,
    /// Solves submitted to the pool, not yet completed.
    inflight: usize,
    /// Peer half-closed its send side: stop reading, flush what
    /// remains (the peer may still be reading), then close.
    peer_closed: bool,
    /// Transport hard-failed: discard everything and close.
    broken: bool,
    /// Fatal framing error: close as soon as the output buffer drains.
    close_after_flush: bool,
    /// Read interest withheld because of backpressure.
    paused: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out_bytes
    }

    /// Queues one encoded response frame for scatter-gather writeout.
    fn enqueue_frame(&mut self, slot: &Slot, response: &Response) {
        let frame = OutFrame::new(slot, response.encode());
        self.out_bytes += frame.total_len();
        self.out.push_back(frame);
    }

    /// Consumes `n` freshly written bytes off the front of the queue.
    fn advance_out(&mut self, n: usize) {
        self.out_bytes -= n;
        self.out_written += n;
        while let Some(front) = self.out.front() {
            let total = front.total_len();
            if self.out_written < total {
                break;
            }
            self.out_written -= total;
            self.out.pop_front();
        }
    }

    /// Routes a completed response: tagged frames are written
    /// immediately, v1 frames strictly in request order.
    fn complete(&mut self, slot: Slot, response: Response) {
        match slot {
            Slot::Tagged(_) => self.enqueue_frame(&slot, &response),
            Slot::Seq(seq) => {
                self.v1_ready.insert(seq, response);
                while let Some(resp) = self.v1_ready.remove(&self.v1_next_flush) {
                    let slot = Slot::Seq(self.v1_next_flush);
                    self.enqueue_frame(&slot, &resp);
                    self.v1_next_flush += 1;
                }
            }
        }
    }
}

struct Reactor {
    listener: TcpListener,
    poller: Arc<Poller>,
    /// Every reactor's poller, for fanning a drain wakeup out to the
    /// siblings (a client `Shutdown` lands on exactly one reactor).
    all_pollers: Arc<Vec<Arc<Poller>>>,
    service: Arc<ShardedService>,
    replicas: Arc<ReplicaStore>,
    forwarder: Arc<Forwarder>,
    pool: PoolClient,
    completions: Arc<CompletionQueue<Completion>>,
    hard_stop: Arc<AtomicBool>,
    /// Shared graceful-drain flag; any reactor's client `Shutdown`
    /// sets it for all of them.
    draining: Arc<AtomicBool>,
    /// This reactor's receive-block pool.
    bufpool: Arc<BufferPool>,
    stats: Arc<ReactorStats>,
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    /// Generation per slot: completions for a recycled slot are
    /// discarded instead of answering the wrong connection.
    gens: Vec<u64>,
    total_inflight: usize,
    /// Set when draining starts: after this instant the reactor exits
    /// even if some peer never drains its output buffer.
    drain_deadline: Option<std::time::Instant>,
}

impl Reactor {
    fn is_draining(&self) -> bool {
        self.draining.load(Ordering::Acquire)
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            // Infinite wait normally; during a drain, tick so the
            // deadline fires even if no peer produces another event.
            let timeout = self
                .is_draining()
                .then(|| std::time::Duration::from_millis(100));
            if self.poller.wait(&mut events, timeout).is_err() {
                break;
            }
            if self.hard_stop.load(Ordering::Acquire) {
                break;
            }
            // Only connections whose state changed need an epoll re-arm
            // (oneshot interests persist untouched otherwise), keeping
            // per-wakeup syscall cost proportional to the batch, not to
            // the total connection count.
            let mut touched: Vec<usize> = self.drain_completions();
            let mut accept_ready = false;
            for ev in events.drain(..) {
                if ev.key == KEY_LISTENER {
                    accept_ready = true;
                    self.accept_burst();
                } else {
                    self.service_conn(ev.key - 1, ev);
                    touched.push(ev.key - 1);
                }
            }
            // Backpressure release: a connection throttled mid-burst may
            // hold parsed-but-undispatched bytes in its receive block;
            // once completions freed capacity, resume from there (no
            // readable event will fire for bytes already in userspace).
            for idx in 0..self.conns.len() {
                let resume = self.conns[idx].as_ref().is_some_and(|c| {
                    c.rx.pending() > 0 && !c.close_after_flush && !Self::at_capacity(c)
                });
                if resume {
                    self.parse_and_dispatch(idx);
                    touched.push(idx);
                }
            }
            self.rearm(&touched);
            if accept_ready && !self.is_draining() {
                let _ = self
                    .poller
                    .modify(&self.listener, Event::readable(KEY_LISTENER));
            }
            if self.is_draining() {
                let deadline = *self
                    .drain_deadline
                    .get_or_insert_with(|| std::time::Instant::now() + DRAIN_GRACE);
                if self.total_inflight == 0
                    && (self.all_flushed() || std::time::Instant::now() >= deadline)
                {
                    break;
                }
            }
        }
    }

    /// Whether backpressure should stop reading/dispatching for now.
    fn at_capacity(conn: &Conn) -> bool {
        conn.inflight >= MAX_INFLIGHT || conn.pending_out() > HIGH_WATER
    }

    fn all_flushed(&self) -> bool {
        self.conns
            .iter()
            .flatten()
            .all(|c| c.pending_out() == 0 && c.v1_ready.is_empty())
    }

    fn accept_burst(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if self.is_draining() {
                        continue; // accept+drop: no new sessions
                    }
                    if stream.set_nonblocking(true).is_err() || stream.set_nodelay(true).is_err() {
                        continue;
                    }
                    self.stats.accepted.fetch_add(1, Ordering::Relaxed);
                    let conn = Conn {
                        stream,
                        rx: FrameAssembler::new(Arc::clone(&self.bufpool)),
                        out: VecDeque::new(),
                        out_written: 0,
                        out_bytes: 0,
                        v1_next_seq: 0,
                        v1_next_flush: 0,
                        v1_ready: HashMap::new(),
                        inflight: 0,
                        peer_closed: false,
                        broken: false,
                        close_after_flush: false,
                        paused: false,
                    };
                    let idx = match self.free.pop() {
                        Some(idx) => {
                            self.conns[idx] = Some(conn);
                            idx
                        }
                        None => {
                            self.conns.push(Some(conn));
                            self.gens.push(0);
                            self.conns.len() - 1
                        }
                    };
                    let stream = &self.conns[idx].as_ref().unwrap().stream;
                    if self.poller.add(stream, Event::readable(idx + 1)).is_err() {
                        self.conns[idx] = None;
                        self.free.push(idx);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
    }

    fn drain_completions(&mut self) -> Vec<usize> {
        let batch: Vec<Completion> = self.completions.drain();
        self.stats
            .completions
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let mut touched = Vec::with_capacity(batch.len());
        for c in batch {
            self.total_inflight -= 1;
            if self.gens.get(c.idx).copied() != Some(c.gen) {
                continue; // connection gone; the reply has no reader
            }
            touched.push(c.idx);
            let finished = match self.conns[c.idx].as_mut() {
                Some(conn) => {
                    conn.inflight -= 1;
                    conn.complete(c.slot, c.response);
                    Self::flush_conn(conn);
                    Self::should_drop(conn)
                }
                None => false,
            };
            if finished {
                self.drop_conn(c.idx);
            }
        }
        touched
    }

    /// A connection is finished when nothing can ever flow again.
    fn should_drop(conn: &Conn) -> bool {
        conn.broken
            || ((conn.peer_closed || conn.close_after_flush)
                && conn.inflight == 0
                && conn.pending_out() == 0)
    }

    fn drop_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            let _ = self.poller.delete(&conn.stream);
            self.gens[idx] += 1;
            self.free.push(idx);
        }
    }

    fn service_conn(&mut self, idx: usize, ev: Event) {
        let want_read = match self.conns.get_mut(idx).and_then(Option::as_mut) {
            Some(conn) => {
                if ev.writable {
                    Self::flush_conn(conn);
                }
                ev.readable && !conn.peer_closed && !conn.broken && !conn.close_after_flush
            }
            None => return,
        };
        if want_read {
            self.read_conn(idx);
        }
        let finished = self
            .conns
            .get(idx)
            .and_then(Option::as_ref)
            .map(Self::should_drop);
        if finished == Some(true) {
            self.drop_conn(idx);
        }
    }

    /// Writes the output queue until done or the socket fills: up to
    /// [`MAX_WRITE_FRAMES`] frames are corked into one `writev`
    /// ([`Write::write_vectored`]), header and payload as separate
    /// slices — the scatter-gather path that replaced `outbuf` staging.
    fn flush_conn(conn: &mut Conn) {
        while !conn.out.is_empty() {
            let mut slices: Vec<IoSlice<'_>> =
                Vec::with_capacity(2 * conn.out.len().min(MAX_WRITE_FRAMES));
            let mut skip = conn.out_written;
            for frame in conn.out.iter().take(MAX_WRITE_FRAMES) {
                let header = &frame.header[..frame.hlen as usize];
                if skip < header.len() {
                    slices.push(IoSlice::new(&header[skip..]));
                    if !frame.payload.is_empty() {
                        slices.push(IoSlice::new(&frame.payload));
                    }
                } else if skip - header.len() < frame.payload.len() {
                    slices.push(IoSlice::new(&frame.payload[skip - header.len()..]));
                }
                skip = 0; // only the front frame can be partially sent
            }
            match conn.stream.write_vectored(&slices) {
                Ok(0) => {
                    conn.broken = true;
                    break;
                }
                Ok(n) => conn.advance_out(n),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.broken = true;
                    break;
                }
            }
        }
    }

    /// Reads until the socket would block — bytes land directly in the
    /// connection's pooled receive block — then parses and dispatches
    /// every complete frame in place.
    fn read_conn(&mut self, idx: usize) {
        loop {
            {
                let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                    return;
                };
                let filled = {
                    let Conn { rx, stream, .. } = &mut *conn;
                    rx.fill(stream)
                };
                match filled {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(_) => {}
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        conn.broken = true;
                        break;
                    }
                }
            }
            self.parse_and_dispatch(idx);
            // Stop the burst once backpressure bites or framing died;
            // unread bytes stay in the kernel buffer (or in the block)
            // and resume when capacity frees.
            let stop = self
                .conns
                .get(idx)
                .and_then(Option::as_ref)
                .is_none_or(|c| c.close_after_flush || c.broken || Self::at_capacity(c));
            if stop {
                break;
            }
        }
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
            Self::flush_conn(conn);
        }
    }

    fn parse_and_dispatch(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            // A connection that hit a framing error answers nothing
            // more; one at capacity keeps its remaining bytes buffered
            // until completions free a slot.
            if conn.close_after_flush || Self::at_capacity(conn) {
                break;
            }
            // Decode while the frame still borrows the pool block — the
            // payload bytes never leave it on the fast path.
            let step = {
                let Conn {
                    rx, v1_next_seq, ..
                } = &mut *conn;
                rx.next(|frame| {
                    let slot = match frame.tag {
                        Some(tag) => Slot::Tagged(tag),
                        None => {
                            let seq = *v1_next_seq;
                            *v1_next_seq += 1;
                            Slot::Seq(seq)
                        }
                    };
                    (slot, Request::decode(frame.payload))
                })
            };
            match step {
                Ok(Some((slot, Ok(request)))) => self.dispatch(idx, slot, request),
                Ok(Some((slot, Err(e)))) => {
                    self.complete_inline(idx, slot, Response::Error(e.to_string()));
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is unrecoverable: answer, then close once
                    // the error frame (and anything before it) flushes.
                    let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                        return;
                    };
                    let seq = conn.v1_next_seq;
                    conn.v1_next_seq += 1;
                    conn.complete(Slot::Seq(seq), Response::Error(e.to_string()));
                    conn.close_after_flush = true;
                    break;
                }
            }
        }
    }

    /// Executes one decoded request: cheap ones inline, solves via
    /// the pool with a reactor-bound completion callback.
    fn dispatch(&mut self, idx: usize, slot: Slot, request: Request) {
        let num_shards = self.service.num_shards();
        let node = self.service.node_id();
        match request {
            Request::Root { session } => {
                let problem = self.service.session_root(session).to_wire();
                // The home node is its own replication fan-out point:
                // attributing the root here is what lets solve
                // completions forward their edges without the client's
                // help (the two-client under-replication fix).
                self.forwarder.register_root(problem, session);
                self.complete_inline(idx, slot, Response::Root { problem });
            }
            Request::Release { problem } => {
                let response = match ProblemId::from_wire_checked(problem, node, num_shards) {
                    Ok(id) => {
                        self.service.release(id);
                        self.forwarder.forget(problem);
                        Response::Released
                    }
                    Err(e) => Response::Error(e.to_string()),
                };
                self.complete_inline(idx, slot, response);
            }
            Request::Stats => {
                let response = Response::Stats(self.stats_summary());
                self.complete_inline(idx, slot, response);
            }
            Request::Stats2 => {
                // Refresh the point-in-time gauges so the snapshot's
                // counters and gauges describe the same instant.
                let stats = self.service.stats().total();
                let reg = trace::Registry::global();
                reg.resident_bytes.set(stats.resident_bytes as i64);
                reg.live_problems.set(stats.live_problems as i64);
                self.complete_inline(idx, slot, Response::Metrics(reg.snapshot()));
            }
            Request::TraceDump => {
                self.complete_inline(idx, slot, Response::Trace(trace::drain()));
            }
            Request::Shutdown => {
                // Ack with the final stats, then drain gracefully. The
                // flag is shared: wake every sibling reactor so each
                // starts its own drain tick.
                let response = Response::Stats(self.stats_summary());
                self.complete_inline(idx, slot, response);
                self.draining.store(true, Ordering::Release);
                for poller in self.all_pollers.iter() {
                    let _ = poller.notify();
                }
            }
            Request::Replicate {
                session,
                problem,
                parent,
                clauses,
            } => {
                // Passive: record the edge, solve nothing. Clients send
                // these fire-and-forget; the ack is discarded on
                // arrival but keeps their tag bookkeeping clean.
                self.replicas.record(session, problem, parent, clauses);
                self.complete_inline(idx, slot, Response::Released);
            }
            Request::Unreplicate { session, problems } => {
                // Replica GC: the client released these problems on
                // their home node; drop the dead edges (child-aware —
                // see [`crate::ReplicaStore::forget`]). Fire-and-forget
                // like Replicate, acked the same way.
                self.replicas.forget(session, &problems);
                self.complete_inline(idx, slot, Response::Released);
            }
            Request::Promote { session, problems } => {
                // Failover/drain replay: rare and latency-insensitive
                // next to a node death, so it runs inline on the
                // reactor rather than complicating the pool path.
                let mapping = self.replicas.promote(&self.service, session, &problems);
                // The promoted problems live HERE now: attribute them
                // so their future derivations forward to the session's
                // new successor.
                for &(_, new) in &mapping {
                    self.forwarder.register_root(new, session);
                }
                self.complete_inline(idx, slot, Response::Promoted { mapping });
            }
            Request::Forward {
                session,
                seq,
                problem,
                parent,
                clauses,
            } => {
                // The server-fanned twin of `Replicate`: the session's
                // home node streams its edges here. Idempotent by the
                // per-session sequence number (chaos may duplicate) AND
                // by problem id (the client plane ships the same edge).
                self.replicas
                    .record_seq(session, seq, problem, parent, clauses);
                self.complete_inline(idx, slot, Response::Released);
            }
            Request::Ping { sender, epoch } => {
                let _ = sender; // diagnostic only; clients send u64::MAX
                let epoch = self.forwarder.observe_epoch(epoch);
                let response = Response::Pong {
                    node: node as u64,
                    epoch,
                };
                self.complete_inline(idx, slot, response);
            }
            Request::Solve { parent, clauses } => {
                let parent_wire = parent;
                let parent = match ProblemId::from_wire_checked(parent, node, num_shards) {
                    Ok(id) => id,
                    Err(e) => {
                        self.complete_inline(idx, slot, Response::Error(e.to_string()));
                        return;
                    }
                };
                let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                    return;
                };
                conn.inflight += 1;
                self.total_inflight += 1;
                let completions = Arc::clone(&self.completions);
                let poller = Arc::clone(&self.poller);
                let forwarder = Arc::clone(&self.forwarder);
                let lits = clauses_to_lits(&clauses);
                let gen = self.gens[idx];
                let req_t0 = trace::now_ns();
                self.pool.submit_with(parent, lits, move |reply| {
                    // Forward the freshly derived edge BEFORE the reply
                    // is released to the client: by the time a caller
                    // can act on the new id, its replica copy is at
                    // least in flight to the successor.
                    if let Some(r) = &reply {
                        forwarder.forward_edge(parent_wire, r.problem.to_wire(), clauses);
                    }
                    let child = reply.as_ref().map_or(0, |r| r.problem.to_wire());
                    trace::span(trace::Kind::ReqSolve, req_t0, parent_wire, child);
                    let reg = trace::Registry::global();
                    reg.requests.inc();
                    reg.request_ns
                        .record(trace::now_ns().saturating_sub(req_t0));
                    let depth = completions.push(Completion {
                        idx,
                        gen,
                        slot,
                        response: solve_response(reply),
                    });
                    // Wake coalescing: a deeper queue means an earlier
                    // push already notified and the reactor has not
                    // drained yet — its eventfd read will see both.
                    if depth == 1 {
                        let _ = poller.notify();
                    }
                });
            }
        }
    }

    /// The node's stats summary with the replica-store counters
    /// overlaid (the [`crate::stats::ClusterStats`] conversion cannot
    /// know them — they live beside the service, not inside it).
    fn stats_summary(&self) -> StatsSummary {
        let mut summary: StatsSummary = (&self.service.stats()).into();
        let (bytes, promotions, failovers) = self.replicas.counters();
        summary.replica_bytes = bytes;
        summary.replica_promotions = promotions;
        summary.failovers = failovers;
        summary.compactions = self.replicas.compactions();
        summary.heartbeat_misses = self.forwarder.heartbeat_misses();
        summary
    }

    fn complete_inline(&mut self, idx: usize, slot: Slot, response: Response) {
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
            conn.complete(slot, response);
        }
    }

    /// Recomputes the (oneshot) interest of the connections touched
    /// this wakeup. Untouched connections keep whatever interest they
    /// had armed — their state cannot have changed.
    fn rearm(&mut self, touched: &[usize]) {
        let mut seen = std::collections::HashSet::with_capacity(touched.len());
        for &idx in touched {
            if !seen.insert(idx) {
                continue;
            }
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            conn.paused = if conn.paused {
                conn.pending_out() > LOW_WATER || conn.inflight >= MAX_INFLIGHT
            } else {
                conn.pending_out() > HIGH_WATER || conn.inflight >= MAX_INFLIGHT
            };
            let readable = !conn.paused
                && !conn.peer_closed
                && !conn.close_after_flush
                && !self.draining.load(Ordering::Acquire);
            let writable = conn.pending_out() > 0;
            let interest = Event {
                key: idx + 1,
                readable,
                writable,
            };
            if self.poller.modify(&conn.stream, interest).is_err() {
                self.drop_conn(idx);
            }
        }
    }
}

// ---------------------------------------------------------------------
// The in-process cluster harness.
// ---------------------------------------------------------------------

/// N `lwsnapd`-equivalent [`Server`]s in one process — the cluster-mode
/// test/bench harness. Each node is a full stack (own
/// [`ShardedService`] stamped with its node id, own worker pool, own
/// epoll reactor, own loopback port); only the process is shared, so a
/// [`crate::ClusterBackend`] connected to it exercises exactly the
/// cross-node paths a real deployment would, minus the speed of light.
///
/// ```no_run
/// # use lwsnap_service::{Cluster, ServiceConfig, SolverBackend};
/// # fn main() -> std::io::Result<()> {
/// let cluster = Cluster::start_local(3, ServiceConfig::new(4), 2)?;
/// let backend = cluster.connect()?;
/// let root = backend.session_root(42)?; // lands on ring-chosen node
/// # Ok(()) }
/// ```
pub struct Cluster {
    /// `None` marks a killed node (its slot keeps later indices stable).
    servers: Vec<Option<Server>>,
}

impl Cluster {
    /// Stands up `nodes` single-node servers on ephemeral loopback
    /// ports, node ids `0..nodes`, each a fresh [`ShardedService`] from
    /// `config` (the `node_id` field is overwritten per node) with a
    /// `workers`-thread pool.
    pub fn start_local(nodes: usize, config: ServiceConfig, workers: usize) -> io::Result<Cluster> {
        Cluster::start_local_with(nodes, config, workers, default_reactors())
    }

    /// Like [`Cluster::start_local`] with an explicit per-node reactor
    /// count (benches pin 1 vs N to measure the front-end fan-out).
    pub fn start_local_with(
        nodes: usize,
        config: ServiceConfig,
        workers: usize,
        reactors: usize,
    ) -> io::Result<Cluster> {
        let servers = (0..nodes.max(1) as u16)
            .map(|node| {
                let config = config.clone().with_node_id(node);
                Server::start_with("127.0.0.1:0", config, workers, reactors).map(Some)
            })
            .collect::<io::Result<_>>()?;
        let cluster = Cluster { servers };
        cluster.wire_peers();
        Ok(cluster)
    }

    /// (Re)installs the cluster map on every live node — ring seed 0,
    /// matching [`crate::ClusterBackend::connect`] — which turns on
    /// server-side edge forwarding and the peer heartbeat threads.
    fn wire_peers(&self) {
        let addrs = self.addrs();
        for server in self.servers.iter().flatten() {
            server.set_peers(&addrs, 0);
        }
    }

    /// The live nodes' `(node id, address)` pairs — the cluster map a
    /// [`crate::ClusterBackend`] connects from.
    pub fn addrs(&self) -> Vec<(u16, SocketAddr)> {
        self.servers
            .iter()
            .enumerate()
            .filter_map(|(node, s)| Some((node as u16, s.as_ref()?.local_addr())))
            .collect()
    }

    /// Connects a [`crate::ClusterBackend`] to every live node, with a
    /// generous default read timeout so a test or bench waiting on a
    /// node that dies silently (no FIN — a partition, a hung reactor)
    /// fails in bounded time instead of hanging the build forever.
    pub fn connect(&self) -> io::Result<crate::ClusterBackend> {
        let backend = crate::ClusterBackend::connect(&self.addrs())?;
        backend.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
        Ok(backend)
    }

    /// Starts a NEW node mid-run — the membership-growth hook — on the
    /// next free node id, with its own fresh service. Returns the `(node
    /// id, address)` pair to hand to
    /// [`crate::ClusterBackend::add_node`].
    pub fn add_node(
        &mut self,
        config: ServiceConfig,
        workers: usize,
    ) -> io::Result<(u16, SocketAddr)> {
        let node = self.servers.len() as u16;
        let server = Server::start("127.0.0.1:0", config.with_node_id(node), workers)?;
        let addr = server.local_addr();
        self.servers.push(Some(server));
        self.wire_peers();
        Ok((node, addr))
    }

    /// The service instance behind node `node` (for stats assertions).
    pub fn service(&self, node: u16) -> Option<&Arc<ShardedService>> {
        self.servers
            .get(node as usize)?
            .as_ref()
            .map(Server::service)
    }

    /// The [`Server`] behind node `node` (replica counters, epoch and
    /// heartbeat introspection for tests and the chaos harness).
    pub fn server(&self, node: u16) -> Option<&Server> {
        self.servers.get(node as usize)?.as_ref()
    }

    /// Installs one fault-injection policy on every live node's
    /// outgoing replication plane.
    pub fn set_chaos(&self, chaos: Option<Arc<ChaosPolicy>>) {
        for server in self.servers.iter().flatten() {
            server.set_chaos(chaos.clone());
        }
    }

    /// Number of live (unkilled) nodes.
    pub fn live_nodes(&self) -> usize {
        self.servers.iter().flatten().count()
    }

    /// Hard-kills one node (prompt reactor exit, connections dropped) —
    /// the failure-injection hook: clients with requests in flight on
    /// that node observe a connection error, other nodes are untouched.
    pub fn kill_node(&mut self, node: u16) {
        if let Some(server) = self.servers.get_mut(node as usize).and_then(Option::take) {
            server.shutdown();
        }
    }

    /// Shuts every remaining node down (prompt, in-flight solves
    /// finish).
    pub fn shutdown(mut self) {
        for server in self.servers.iter_mut().filter_map(Option::take) {
            server.shutdown();
        }
    }
}

fn solve_response(reply: Option<SolveReply>) -> Response {
    match reply {
        Some(reply) => Response::Solved {
            problem: reply.problem.to_wire(),
            sat: reply.result == lwsnap_solver::SolveResult::Sat,
            rederived: reply.rederived,
            conflicts: reply.conflicts,
            model: reply.model,
        },
        None => Response::Error("dead or unknown problem reference".into()),
    }
}
