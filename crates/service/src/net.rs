//! The `std::net` TCP front end: `lwsnapd`'s server loop and a matching
//! blocking client.
//!
//! One thread accepts connections; each connection gets a handler thread
//! that decodes [`Request`] frames and submits solve jobs to the shared
//! [`WorkerPool`] — so solver work is bounded by the pool size no matter
//! how many connections are open, and concurrent connections on
//! different shards solve in parallel.

use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::pool::{PoolClient, WorkerPool};
use crate::protocol::{
    clauses_to_lits, read_frame, write_frame, ProtoError, Request, Response, StatsSummary,
};
use crate::sharded::{ProblemId, ServiceConfig, ShardedService};
use crate::stats::WorkerStats;

/// A running `lwsnapd` server: acceptor thread + worker pool.
pub struct Server {
    addr: SocketAddr,
    service: Arc<ShardedService>,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    pool: Option<WorkerPool>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts serving a fresh [`ShardedService`] built from `config`
    /// with a `workers`-thread pool.
    pub fn start(addr: &str, config: ServiceConfig, workers: usize) -> io::Result<Server> {
        let service = Arc::new(ShardedService::new(config));
        Server::serve(addr, service, workers)
    }

    /// Like [`Server::start`] but over an existing service instance.
    pub fn serve(addr: &str, service: Arc<ShardedService>, workers: usize) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let pool = WorkerPool::new(Arc::clone(&service), workers);
        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            let client = pool.client();
            std::thread::spawn(move || accept_loop(listener, service, client, shutdown))
        };
        Ok(Server {
            addr,
            service,
            shutdown,
            acceptor: Some(acceptor),
            pool: Some(pool),
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service behind the server.
    pub fn service(&self) -> &Arc<ShardedService> {
        &self.service
    }

    /// Blocks until a client sends [`Request::Shutdown`], then tears the
    /// server down and returns the worker counters.
    pub fn wait(mut self) -> Vec<WorkerStats> {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        match self.pool.take() {
            Some(pool) => pool.shutdown(),
            None => Vec::new(),
        }
    }

    /// Initiates shutdown from the hosting process and waits for it.
    pub fn shutdown(self) -> Vec<WorkerStats> {
        self.shutdown.store(true, Ordering::Release);
        // Unblock the acceptor with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        self.wait()
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(pool) = self.pool.take() {
            pool.shutdown();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<ShardedService>,
    client: PoolClient,
    shutdown: Arc<AtomicBool>,
) {
    let self_addr = listener.local_addr().ok();
    for stream in listener.incoming() {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let service = Arc::clone(&service);
        let client = client.clone();
        let shutdown = Arc::clone(&shutdown);
        let unblock = self_addr;
        std::thread::spawn(move || {
            let asked_shutdown = handle_connection(stream, &service, &client).unwrap_or(false);
            if asked_shutdown {
                shutdown.store(true, Ordering::Release);
                if let Some(addr) = unblock {
                    let _ = TcpStream::connect(addr);
                }
            }
        });
    }
}

/// Serves one connection; `Ok(true)` if the client requested shutdown.
fn handle_connection(
    stream: TcpStream,
    service: &ShardedService,
    client: &PoolClient,
) -> io::Result<bool> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(payload) = read_frame(&mut reader)? {
        let (response, stop) = match Request::decode(&payload) {
            Err(e) => (Response::Error(e.to_string()), false),
            Ok(request) => execute(request, service, client),
        };
        write_frame(&mut writer, &response.encode())?;
        if stop {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Executes one request; the bool asks the server to shut down.
fn execute(request: Request, service: &ShardedService, client: &PoolClient) -> (Response, bool) {
    match request {
        Request::Root { session } => (
            Response::Root {
                problem: service.session_root(session).to_wire(),
            },
            false,
        ),
        Request::Solve { parent, clauses } => {
            let parent = ProblemId::from_wire(parent);
            match client.solve(parent, clauses_to_lits(&clauses)) {
                Some(reply) => (
                    Response::Solved {
                        problem: reply.problem.to_wire(),
                        sat: reply.result == lwsnap_solver::SolveResult::Sat,
                        rederived: reply.rederived,
                        conflicts: reply.conflicts,
                        model: reply.model,
                    },
                    false,
                ),
                None => (
                    Response::Error("dead or unknown problem reference".into()),
                    false,
                ),
            }
        }
        Request::Release { problem } => {
            service.release(ProblemId::from_wire(problem));
            (Response::Released, false)
        }
        Request::Stats => (Response::Stats((&service.stats()).into()), false),
        // Shutdown acks with the final stats snapshot.
        Request::Shutdown => (Response::Stats((&service.stats()).into()), true),
    }
}

/// A blocking client for the `lwsnapd` wire protocol.
pub struct TcpClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpClient {
    /// Connects to a running server.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// One request/response exchange.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))?;
        Response::decode(&payload).map_err(io::Error::from)
    }

    /// The root problem for a session id.
    pub fn session_root(&mut self, session: u64) -> io::Result<u64> {
        match self.call(&Request::Root { session })? {
            Response::Root { problem } => Ok(problem),
            other => Err(unexpected(other)),
        }
    }

    /// Solves `parent ∧ clauses` (DIMACS literals); returns the full
    /// [`Response::Solved`] payload or the server's error as `io::Error`.
    pub fn solve(&mut self, parent: u64, clauses: &[Vec<i64>]) -> io::Result<Response> {
        let response = self.call(&Request::Solve {
            parent,
            clauses: clauses.to_vec(),
        })?;
        match response {
            Response::Solved { .. } => Ok(response),
            Response::Error(msg) => Err(io::Error::new(io::ErrorKind::NotFound, msg)),
            other => Err(unexpected(other)),
        }
    }

    /// Releases a problem snapshot.
    pub fn release(&mut self, problem: u64) -> io::Result<()> {
        match self.call(&Request::Release { problem })? {
            Response::Released => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the aggregated service statistics.
    pub fn stats(&mut self) -> io::Result<StatsSummary> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to shut down; returns its final stats snapshot.
    pub fn shutdown_server(&mut self) -> io::Result<StatsSummary> {
        match self.call(&Request::Shutdown)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(response: Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        ProtoError::BadTag(match response {
            Response::Root { .. } => 1,
            Response::Solved { .. } => 2,
            Response::Released => 3,
            Response::Stats(_) => 4,
            Response::Error(_) => 5,
        }),
    )
}
