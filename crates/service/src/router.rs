//! Cluster routing: the consistent-hash ring mapping session roots to
//! `(node, shard)` placements.
//!
//! The [`Ring`] is implemented with **seeded rendezvous hashing**
//! (highest-random-weight): every key scores each node with a seeded
//! 64-bit mix and lands on the argmax. Rendezvous is the limiting case
//! of a vnode ring with infinitely many virtual nodes per physical
//! node, which buys two exact properties a finite-vnode ring only
//! approximates:
//!
//! * **Minimal disruption** — removing a node reassigns *exactly* the
//!   keys that lived on it (every other key keeps its argmax); adding a
//!   node only *steals* keys (no key moves between surviving nodes).
//! * **Tight balance** — each key picks its node independently and
//!   uniformly, so node shares concentrate at `1/N` with multinomial
//!   (not vnode-arc) tails; the "removing 1 of N nodes moves ≲ 1/N of
//!   keys" bound is property-tested in this module and in
//!   `tests/cluster.rs`.
//!
//! Lookups are `O(N)` in the node count — the right trade for solver
//! clusters of a few to a few dozen `lwsnapd` instances, where the
//! per-key scoring cost is noise next to a single SAT query.
//!
//! Placement composes with the in-node story: the ring picks the
//! **node**, then [`session_shard`] (the same Fibonacci hash
//! [`crate::ShardedService::session_root`] uses) picks the **shard**
//! inside it, so a [`Placement`] computed client-side agrees bit-for-bit
//! with what the chosen node itself would answer.

/// A cluster node identifier (stamped into [`crate::ProblemId`]s).
pub type NodeId = u16;

/// Where a session's problem tree lives: which node, which shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Placement {
    /// The owning node.
    pub node: NodeId,
    /// The shard inside that node.
    pub shard: usize,
}

/// SplitMix64: a full-avalanche 64-bit mixer (public-domain constants).
/// Public because every seeded decision in the cluster derives from it:
/// ring scoring here, retry jitter in the client, and the deterministic
/// fault-injection policy in [`crate::chaos`].
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The shard a session hashes onto inside one node (Fibonacci hashing;
/// must match [`crate::ShardedService::session_root`]).
#[inline]
pub fn session_shard(session: u64, num_shards: usize) -> usize {
    let hash = session.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (hash >> 32) as usize % num_shards.max(1)
}

/// The consistent-hash ring over a cluster's node ids; see the module
/// docs for the hashing scheme and its rebalance guarantees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ring {
    /// Member node ids, sorted and deduplicated.
    nodes: Vec<NodeId>,
    /// Seed folded into every score, so disjoint clusters sharing node
    /// ids still shuffle keys independently.
    seed: u64,
}

impl Ring {
    /// Builds a ring over `nodes` (duplicates collapsed) with `seed`
    /// folded into every placement score.
    pub fn new(nodes: impl IntoIterator<Item = NodeId>, seed: u64) -> Ring {
        let mut nodes: Vec<NodeId> = nodes.into_iter().collect();
        nodes.sort_unstable();
        nodes.dedup();
        Ring { nodes, seed }
    }

    /// The member node ids, sorted.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of member nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no members (every lookup answers `None`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Adds a node; placements of keys it does not win are unchanged.
    pub fn add_node(&mut self, node: NodeId) {
        if let Err(at) = self.nodes.binary_search(&node) {
            self.nodes.insert(at, node);
        }
    }

    /// Removes a node; only the keys it owned are reassigned. Returns
    /// whether the node was a member.
    pub fn remove_node(&mut self, node: NodeId) -> bool {
        match self.nodes.binary_search(&node) {
            Ok(at) => {
                self.nodes.remove(at);
                true
            }
            Err(_) => false,
        }
    }

    /// The rendezvous score of `key` on `node`.
    #[inline]
    fn score(&self, node: NodeId, key: u64) -> u64 {
        mix64(mix64(self.seed ^ key) ^ (node as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f))
    }

    /// The node owning `key` (`None` on an empty ring). Ties — already
    /// a 2⁻⁶⁴ event — break toward the smaller node id, keeping the
    /// answer independent of insertion order.
    pub fn node_for(&self, key: u64) -> Option<NodeId> {
        self.nodes
            .iter()
            .copied()
            .map(|n| (self.score(n, key), n))
            .max_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)))
            .map(|(_, n)| n)
    }

    /// Every member node ranked by descending rendezvous score for
    /// `key`: `ranked(key)[0]` is [`Ring::node_for`], `ranked(key)[1]`
    /// the successor, and so on — the node's full failover order.
    pub fn ranked(&self, key: u64) -> Vec<NodeId> {
        let mut scored: Vec<(u64, NodeId)> = self
            .nodes
            .iter()
            .copied()
            .map(|n| (self.score(n, key), n))
            .collect();
        // Descending score; ties (a 2⁻⁶⁴ event) toward the smaller id,
        // matching `node_for`.
        scored.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        scored.into_iter().map(|(_, n)| n).collect()
    }

    /// The ring successor of `key`: the second-highest-scoring node —
    /// which, by the rendezvous minimal-disruption property, is exactly
    /// the node `key` would land on if its owner were removed. That
    /// identity is what makes the successor the right replica target:
    /// after a failover OR a planned drain of the owner, the ring's new
    /// answer for `key` is the node already holding its replica.
    pub fn successor_for(&self, key: u64) -> Option<NodeId> {
        self.ranked(key).get(1).copied()
    }

    /// Full placement of a session root: ring-chosen node, then the
    /// node-local Fibonacci shard over `shards_per_node`.
    pub fn place(&self, session: u64, shards_per_node: usize) -> Option<Placement> {
        self.node_for(session).map(|node| Placement {
            node,
            shard: session_shard(session, shards_per_node),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashMap;

    #[test]
    fn empty_and_singleton_rings() {
        let empty = Ring::new([], 7);
        assert!(empty.is_empty());
        assert_eq!(empty.node_for(123), None);
        assert_eq!(empty.place(123, 4), None);
        let one = Ring::new([9], 7);
        for key in 0..64 {
            assert_eq!(one.node_for(key), Some(9));
        }
    }

    #[test]
    fn placement_shard_matches_sharded_service() {
        use crate::sharded::{ServiceConfig, ShardedService};
        let svc = ShardedService::new(ServiceConfig::new(8));
        let ring = Ring::new([0], 0);
        for session in 0..256u64 {
            let place = ring.place(session, 8).unwrap();
            assert_eq!(place.shard, svc.session_root(session).shard());
        }
    }

    #[test]
    fn duplicates_collapse_and_membership_updates() {
        let mut ring = Ring::new([3, 1, 3, 2, 1], 0);
        assert_eq!(ring.nodes(), &[1, 2, 3]);
        ring.add_node(2);
        assert_eq!(ring.len(), 3);
        assert!(ring.remove_node(2));
        assert!(!ring.remove_node(2));
        assert_eq!(ring.nodes(), &[1, 3]);
    }

    #[test]
    fn keys_spread_over_nodes() {
        let ring = Ring::new(0..4, 0xbeef);
        let mut counts = HashMap::new();
        for key in 0..4096u64 {
            *counts.entry(ring.node_for(key).unwrap()).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 4, "every node owns keys");
        for (&node, &count) in &counts {
            assert!(
                count > 4096 / 8 && count < 4096 / 2,
                "node {node} owns a wildly unbalanced {count}/4096"
            );
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The ISSUE's rebalance bound: removing 1 of N nodes moves at
        /// most ~2/N of the keys — and the keys that do move are
        /// EXACTLY the removed node's (every survivor's key is pinned).
        #[test]
        fn single_node_removal_moves_at_most_2_over_n(
            nodes in proptest::collection::vec(any::<u16>(), 2..9),
            seed in any::<u64>(),
            victim_selector in any::<usize>(),
        ) {
            let ring = Ring::new(nodes.iter().copied(), seed);
            if ring.len() < 2 {
                return; // duplicates collapsed below 2 nodes
            }
            let n = ring.len();
            let victim = ring.nodes()[victim_selector % n];
            let mut shrunk = ring.clone();
            shrunk.remove_node(victim);

            const KEYS: u64 = 4096;
            let mut moved = 0u64;
            for key in 0..KEYS {
                let before = ring.node_for(key).unwrap();
                let after = shrunk.node_for(key).unwrap();
                if before == victim {
                    moved += 1;
                } else {
                    prop_assert_eq!(
                        before, after,
                        "key {} moved off a surviving node", key
                    );
                }
            }
            // The moved set is exactly the victim's ownership share,
            // which concentrates at KEYS/n; 2/n is a ≥ 6σ ceiling at
            // 4096 keys.
            prop_assert!(
                moved <= 2 * KEYS / n as u64,
                "removal moved {}/{} keys with {} nodes (bound {})",
                moved, KEYS, n, 2 * KEYS / n as u64
            );
        }

        /// Adding a node only steals keys for itself: no key moves
        /// between pre-existing nodes.
        #[test]
        fn node_addition_only_steals(
            nodes in proptest::collection::vec(any::<u16>(), 1..8),
            newcomer in any::<u16>(),
            seed in any::<u64>(),
        ) {
            let ring = Ring::new(nodes.iter().copied(), seed);
            if ring.nodes().contains(&newcomer) {
                return; // already a member: addition is a no-op
            }
            let mut grown = ring.clone();
            grown.add_node(newcomer);
            for key in 0..2048u64 {
                let before = ring.node_for(key).unwrap();
                let after = grown.node_for(key).unwrap();
                prop_assert!(
                    after == before || after == newcomer,
                    "key {} hopped between old nodes", key
                );
            }
        }

        /// The successor IS the post-removal owner: for every key, the
        /// second-ranked node equals `node_for` on the ring with the
        /// owner removed. This identity is what lets failover promote
        /// a session on its replica and have the shrunk ring agree.
        #[test]
        fn successor_equals_owner_after_removal(
            nodes in proptest::collection::vec(any::<u16>(), 2..9),
            seed in any::<u64>(),
            keys in proptest::collection::vec(any::<u64>(), 1..64),
        ) {
            let ring = Ring::new(nodes.iter().copied(), seed);
            if ring.len() < 2 {
                return;
            }
            for &key in &keys {
                let owner = ring.node_for(key).unwrap();
                let ranked = ring.ranked(key);
                prop_assert_eq!(ranked[0], owner);
                prop_assert_eq!(ranked.len(), ring.len());
                let mut shrunk = ring.clone();
                shrunk.remove_node(owner);
                prop_assert_eq!(
                    ring.successor_for(key),
                    shrunk.node_for(key),
                    "successor disagrees with the shrunk ring for key {}", key
                );
            }
        }

        /// Placement is a pure function of (ring membership, seed, key):
        /// rebuilding the ring in any order answers identically.
        #[test]
        fn placement_is_membership_deterministic(
            nodes in proptest::collection::vec(any::<u16>(), 1..8),
            seed in any::<u64>(),
            keys in proptest::collection::vec(any::<u64>(), 1..64),
        ) {
            let ring = Ring::new(nodes.iter().copied(), seed);
            let mut reversed = nodes.clone();
            reversed.reverse();
            let rebuilt = Ring::new(reversed, seed);
            for &key in &keys {
                prop_assert_eq!(ring.node_for(key), rebuilt.node_for(key));
            }
        }
    }
}
