//! Wire-protocol clients: the blocking one-call-at-a-time
//! [`TcpClient`], the [`PipelinedClient`] that keeps many tagged
//! requests in flight on one connection, and the [`ClusterBackend`]
//! that spreads sessions over N pipelined connections — one per
//! cluster node — through the consistent-hash [`crate::router::Ring`].
//!
//! All of them speak the same `lwsnapd` protocol; the pipelined client
//! uses v2 tagged frames ([`crate::protocol::TAGGED`]) so the server
//! may complete its requests out of order, and both it and the cluster
//! backend implement [`crate::SolverBackend`] so drivers written
//! against the trait can run remotely — on one node or on a whole
//! cluster — unchanged.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, TryLockError};
use std::time::Duration;

use lwsnap_solver::{Lit, SolveResult};
use lwsnap_trace::{self as trace, Event, MetricsSnapshot};

use crate::backend::{foreign_ticket, SolverBackend, Ticket, TicketInner};
use crate::chaos::{root_key, stable_key, ChaosAction, ChaosPolicy, PLANE_CLIENT};
use crate::protocol::{
    lits_to_clauses, put_tagged_frame, read_any_frame, read_frame, write_frame, write_tagged_frame,
    ProtoError, Request, Response, StatsSummary,
};
use crate::router::{mix64, NodeId, Ring};
use crate::sharded::{ProblemId, SolveReply};
use crate::stats::FleetStats;

/// Typed payload of the error a client call returns when the server
/// closed the connection **cleanly between frames** (daemon shutdown,
/// idle reap). Distinct from `UnexpectedEof`, which means the stream
/// died *mid-frame* — a truncation, never a clean goodbye.
///
/// ```
/// # use lwsnap_service::Disconnected;
/// fn is_clean_shutdown(e: &std::io::Error) -> bool {
///     e.get_ref().is_some_and(|inner| inner.is::<Disconnected>())
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server closed the connection")
    }
}

impl std::error::Error for Disconnected {}

pub(crate) fn disconnected() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionAborted, Disconnected)
}

/// A blocking client for the `lwsnapd` wire protocol: one
/// request/response exchange at a time, in order (legacy v1 frames).
pub struct TcpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream.try_clone()?),
            stream,
        })
    }

    /// Bounds how long a [`TcpClient::call`] may block waiting for the
    /// server's reply (`None` = wait forever). On expiry the call fails
    /// with a `WouldBlock`/`TimedOut` error; the connection may then
    /// hold a half-read frame, so treat a timed-out client as dead and
    /// reconnect — the timeout is for *detecting* a hung server, not
    /// for retrying on a live connection.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// One request/response exchange.
    ///
    /// Error taxonomy: a clean server close between frames is
    /// `ConnectionAborted` carrying [`Disconnected`]; a stream that
    /// dies mid-frame is `UnexpectedEof` (truncation); a configured
    /// read timeout surfaces as `WouldBlock`/`TimedOut`.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(disconnected)?;
        Response::decode(&payload).map_err(io::Error::from)
    }

    /// The root problem for a session id.
    pub fn session_root(&mut self, session: u64) -> io::Result<u64> {
        match self.call(&Request::Root { session })? {
            Response::Root { problem } => Ok(problem),
            other => Err(unexpected(other)),
        }
    }

    /// Solves `parent ∧ clauses` (DIMACS literals); returns the full
    /// [`Response::Solved`] payload or the server's error as `io::Error`.
    pub fn solve(&mut self, parent: u64, clauses: &[Vec<i64>]) -> io::Result<Response> {
        let response = self.call(&Request::Solve {
            parent,
            clauses: clauses.to_vec(),
        })?;
        match response {
            Response::Solved { .. } => Ok(response),
            Response::Error(msg) => Err(io::Error::new(io::ErrorKind::NotFound, msg)),
            other => Err(unexpected(other)),
        }
    }

    /// Releases a problem snapshot.
    pub fn release(&mut self, problem: u64) -> io::Result<()> {
        match self.call(&Request::Release { problem })? {
            Response::Released => Ok(()),
            Response::Error(msg) => Err(io::Error::new(io::ErrorKind::NotFound, msg)),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the aggregated service statistics.
    pub fn stats(&mut self) -> io::Result<StatsSummary> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to shut down; returns its final stats snapshot.
    pub fn shutdown_server(&mut self) -> io::Result<StatsSummary> {
        match self.call(&Request::Shutdown)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(response: Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        ProtoError::BadTag(match response {
            Response::Root { .. } => 1,
            Response::Solved { .. } => 2,
            Response::Released => 3,
            Response::Stats(_) => 4,
            Response::Error(_) => 5,
            Response::Promoted { .. } => 6,
            Response::Pong { .. } => 7,
            Response::Metrics(_) => 8,
            Response::Trace(_) => 9,
        }),
    )
}

// ---------------------------------------------------------------------
// The pipelined client.
// ---------------------------------------------------------------------

/// Shared completion state between waiting threads.
struct PipeState {
    /// Responses that arrived for tags nobody has claimed yet.
    done: HashMap<u64, Response>,
    /// Tags whose responses should be dropped on arrival
    /// (fire-and-forget requests like release).
    forgotten: HashSet<u64>,
    /// A terminal transport error: once set, every wait fails with it.
    dead: Option<(io::ErrorKind, String)>,
}

/// A pipelined client: many tagged requests in flight on one
/// connection, completions redeemed in any order.
///
/// `send`-many/`await`-many is the intended shape —
///
/// ```no_run
/// # use lwsnap_service::{PipelinedClient, SolverBackend};
/// # fn main() -> std::io::Result<()> {
/// let client = PipelinedClient::connect("127.0.0.1:7557")?;
/// let root = client.session_root(1)?;
/// let tickets: Vec<_> = (1..=8i64)
///     .map(|v| client.submit(root, vec![vec![lwsnap_solver::Lit::from_dimacs(v)]]))
///     .collect::<std::io::Result<_>>()?;
/// for t in tickets {
///     let reply = client.wait(t)?.expect("live root");
/// }
/// # Ok(()) }
/// ```
///
/// — eight solves cost one round trip plus the slowest solve, not
/// eight round trips. All methods take `&self`; the client may be
/// shared across threads (waits coordinate through a condvar, with one
/// thread at a time elected to read the socket).
pub struct PipelinedClient {
    stream: TcpStream,
    reader: Mutex<BufReader<TcpStream>>,
    writer: Mutex<BufWriter<TcpStream>>,
    state: Mutex<PipeState>,
    arrived: Condvar,
    next_tag: AtomicU64,
}

impl PipelinedClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<PipelinedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(PipelinedClient {
            reader: Mutex::new(BufReader::new(stream.try_clone()?)),
            // The writer buffer IS the cork window: sized to the
            // server's backpressure high-water mark so a corked batch
            // ([`PipelinedClient::submit_batch`]) really does reach the
            // socket in HIGH_WATER-sized writes — a default 8 KiB
            // BufWriter would spill long before the window closed.
            writer: Mutex::new(BufWriter::with_capacity(
                crate::net::HIGH_WATER,
                stream.try_clone()?,
            )),
            stream,
            state: Mutex::new(PipeState {
                done: HashMap::new(),
                forgotten: HashSet::new(),
                dead: None,
            }),
            arrived: Condvar::new(),
            next_tag: AtomicU64::new(1),
        })
    }

    /// Bounds how long a blocked wait may sit on the socket before
    /// failing (`None` = wait forever); see
    /// [`TcpClient::set_read_timeout`] for the caveats.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Writes one tagged request and returns its correlation tag.
    pub fn submit_request(&self, request: &Request) -> io::Result<u64> {
        // Encode before taking the writer lock: threads sharing this
        // client serialize only on the socket write, not on each
        // other's request serialization.
        let payload = request.encode();
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let mut writer = self.writer.lock().unwrap();
        write_tagged_frame(&mut *writer, tag, &payload)?;
        Ok(tag)
    }

    /// Writes a whole window of tagged requests **corked**: frames
    /// accumulate in the buffered writer and the socket is flushed once
    /// per window (or whenever the buffered bytes cross the server's
    /// backpressure high-water mark, [`crate::net::HIGH_WATER`] —
    /// matching the bound the reactor applies on its side) instead of
    /// once per submit. Returns the correlation tags in request order.
    ///
    /// This is what makes [`SolverBackend::solve_batch`] on a pipelined
    /// connection cost one syscall per window: submitting k requests
    /// uncorked is k `write(2)`s; corked it is ⌈bytes / high-water⌉.
    pub fn submit_batch(&self, requests: &[Request]) -> io::Result<Vec<u64>> {
        // Encode the whole window before taking the writer lock, so a
        // concurrent submitter waits on socket writes only.
        let payloads: Vec<Vec<u8>> = requests.iter().map(Request::encode).collect();
        let mut writer = self.writer.lock().unwrap();
        let mut tags = Vec::with_capacity(requests.len());
        let mut since_flush = 0usize;
        for payload in &payloads {
            let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
            put_tagged_frame(&mut *writer, tag, payload)?;
            tags.push(tag);
            since_flush += payload.len() + 12;
            if since_flush >= crate::net::HIGH_WATER {
                writer.flush()?;
                since_flush = 0;
            }
        }
        writer.flush()?;
        Ok(tags)
    }

    /// Submits a request whose response should be discarded on arrival
    /// (fire-and-forget). Crate-visible: the server's own forwarding
    /// plane ([`crate::net`]) ships `Forward` frames through it too.
    pub(crate) fn submit_forgotten(&self, request: &Request) -> io::Result<()> {
        let tag = self.submit_request(request)?;
        let mut st = self.state.lock().unwrap();
        // The response may have raced in already.
        if st.done.remove(&tag).is_none() {
            st.forgotten.insert(tag);
        }
        Ok(())
    }

    /// Blocks until the response for `tag` arrives, reading the socket
    /// if no other thread currently is.
    pub fn wait_response(&self, tag: u64) -> io::Result<Response> {
        loop {
            {
                let mut st = self.state.lock().unwrap();
                if let Some(resp) = st.done.remove(&tag) {
                    return Ok(resp);
                }
                if let Some((kind, msg)) = &st.dead {
                    return Err(io::Error::new(*kind, msg.clone()));
                }
            }
            match self.reader.try_lock() {
                Ok(mut reader) => {
                    let read = read_any_frame(&mut *reader);
                    let mut st = self.state.lock().unwrap();
                    match read {
                        Ok(Some(frame)) => {
                            let Some(frame_tag) = frame.tag else {
                                st.dead =
                                    Some((io::ErrorKind::InvalidData, "untagged reply".into()));
                                self.arrived.notify_all();
                                continue;
                            };
                            if st.forgotten.remove(&frame_tag) {
                                continue;
                            }
                            match Response::decode(&frame.payload) {
                                Ok(resp) => {
                                    st.done.insert(frame_tag, resp);
                                }
                                Err(e) => {
                                    st.dead = Some((io::ErrorKind::InvalidData, e.to_string()));
                                }
                            }
                            self.arrived.notify_all();
                        }
                        Ok(None) => {
                            st.dead =
                                Some((io::ErrorKind::ConnectionAborted, Disconnected.to_string()));
                            self.arrived.notify_all();
                        }
                        Err(e) => {
                            st.dead = Some((e.kind(), e.to_string()));
                            self.arrived.notify_all();
                        }
                    }
                }
                Err(TryLockError::WouldBlock) => {
                    // Someone else is reading; wait for them to deliver.
                    // The timeout re-checks for a reader that bailed out
                    // between our try_lock and their notify.
                    let st = self.state.lock().unwrap();
                    if st.done.contains_key(&tag) || st.dead.is_some() {
                        continue;
                    }
                    let _ = self
                        .arrived
                        .wait_timeout(st, Duration::from_millis(50))
                        .unwrap();
                }
                Err(TryLockError::Poisoned(e)) => panic!("reader lock poisoned: {e}"),
            }
        }
    }

    /// Submit + wait for one request (no overlap).
    pub fn call(&self, request: &Request) -> io::Result<Response> {
        let tag = self.submit_request(request)?;
        self.wait_response(tag)
    }

    /// Asks the daemon to shut down; returns its final stats snapshot.
    pub fn shutdown_server(&self) -> io::Result<StatsSummary> {
        match self.call(&Request::Shutdown)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the node's full metrics snapshot (named counters, gauges
    /// and latency histograms) — the mergeable scrape-plane view.
    pub fn metrics(&self) -> io::Result<MetricsSnapshot> {
        match self.call(&Request::Stats2)? {
            Response::Metrics(m) => Ok(m),
            other => Err(unexpected(other)),
        }
    }

    /// Drains the node's trace rings and returns the merged,
    /// time-ordered event stream. Consuming: each event is exported to
    /// exactly one caller.
    pub fn trace_dump(&self) -> io::Result<Vec<Event>> {
        match self.call(&Request::TraceDump)? {
            Response::Trace(events) => Ok(events),
            other => Err(unexpected(other)),
        }
    }
}

impl SolverBackend for PipelinedClient {
    fn session_root(&self, session: u64) -> io::Result<ProblemId> {
        match self.call(&Request::Root { session })? {
            Response::Root { problem } => Ok(ProblemId::from_wire(problem)),
            other => Err(unexpected(other)),
        }
    }

    fn submit(&self, parent: ProblemId, clauses: Vec<Vec<Lit>>) -> io::Result<Ticket> {
        let tag = self.submit_request(&Request::Solve {
            parent: parent.to_wire(),
            clauses: lits_to_clauses(&clauses),
        })?;
        Ok(Ticket(TicketInner::Tagged(tag)))
    }

    fn wait(&self, ticket: Ticket) -> io::Result<Option<SolveReply>> {
        let TicketInner::Tagged(tag) = ticket.0 else {
            return Err(foreign_ticket());
        };
        solved_reply(self.wait_response(tag)?)
    }

    fn release(&self, id: ProblemId) -> io::Result<()> {
        self.submit_forgotten(&Request::Release {
            problem: id.to_wire(),
        })
    }

    fn stats(&self) -> io::Result<StatsSummary> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// The daemon's node id rides in every id it mints, so a read-only
    /// root lookup labels the stats with the REAL node id (the trait
    /// default would hardcode 0, misattributing a `--node-id 2`
    /// daemon's counters).
    fn node_stats(&self) -> io::Result<FleetStats> {
        let node = SolverBackend::session_root(self, 0)?.node();
        Ok(FleetStats {
            nodes: vec![(node, SolverBackend::stats(self)?)],
        })
    }

    /// One corked window: all frames written under one writer lock,
    /// the socket flushed once (see [`PipelinedClient::submit_batch`]),
    /// replies redeemed in request order.
    fn solve_batch(
        &self,
        requests: Vec<(ProblemId, Vec<Vec<Lit>>)>,
    ) -> io::Result<Vec<Option<SolveReply>>> {
        let window: Vec<Request> = requests
            .into_iter()
            .map(|(parent, clauses)| Request::Solve {
                parent: parent.to_wire(),
                clauses: lits_to_clauses(&clauses),
            })
            .collect();
        self.submit_batch(&window)?
            .into_iter()
            .map(|tag| solved_reply(self.wait_response(tag)?))
            .collect()
    }
}

/// Maps a solve response to the trait's reply contract: `Solved`
/// decodes, a server-side `Error` (dead/unknown reference) is the
/// `Ok(None)` answer in-process backends give, anything else is a
/// protocol violation.
fn solved_reply(response: Response) -> io::Result<Option<SolveReply>> {
    match response {
        Response::Solved {
            problem,
            sat,
            rederived,
            conflicts,
            model,
        } => Ok(Some(SolveReply {
            problem: ProblemId::from_wire(problem),
            result: if sat {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            },
            model,
            conflicts,
            rederived,
        })),
        Response::Error(_) => Ok(None),
        other => Err(unexpected(other)),
    }
}

// ---------------------------------------------------------------------
// The cluster backend.
// ---------------------------------------------------------------------

/// Typed payload identifying *which cluster node* an error came from.
/// Every transport failure a [`ClusterBackend`] surfaces wraps the
/// underlying error in one of these, so a caller can tell "node 2
/// died" from "the cluster is misconfigured" without string matching:
///
/// ```
/// # use lwsnap_service::NodeError;
/// fn failed_node(e: &std::io::Error) -> Option<u16> {
///     e.get_ref()?.downcast_ref::<NodeError>().map(|n| n.node)
/// }
/// ```
#[derive(Debug)]
pub struct NodeError {
    /// The node the failed operation was routed to.
    pub node: NodeId,
    /// The underlying failure, rendered (io::Error is not Clone).
    pub message: String,
    /// How many attempts (initial try + failover retries, each against
    /// a different surviving home) the operation burned before giving
    /// up. `1` means the very first try failed unrecoverably.
    pub attempts: u32,
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster node {}: {}", self.node, self.message)?;
        if self.attempts > 1 {
            write!(f, " (after {} attempts)", self.attempts)?;
        }
        Ok(())
    }
}

impl std::error::Error for NodeError {}

/// Wraps a node-local failure, preserving its `ErrorKind`.
fn node_error(node: NodeId, e: io::Error) -> io::Error {
    node_error_after(node, e, 1)
}

/// [`node_error`] carrying the retry-loop attempt count.
fn node_error_after(node: NodeId, e: io::Error, attempts: u32) -> io::Error {
    io::Error::new(
        e.kind(),
        NodeError {
            node,
            message: e.to_string(),
            attempts,
        },
    )
}

/// "The id names a node this cluster does not have."
fn unknown_node(node: NodeId) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        NodeError {
            node,
            message: "not a member of this cluster".into(),
            attempts: 1,
        },
    )
}

/// One member node: its id, address (the heartbeat thread probes it on
/// a dedicated connection) and the pipelined connection to it.
struct ClusterNode {
    id: NodeId,
    addr: SocketAddr,
    client: PipelinedClient,
}

/// Bounded exponential backoff between failover retries: 1 ms doubling
/// to a 32 ms cap, plus up to +50% seeded jitter ([`mix64`] of the
/// attempt and the node it just buried) so a herd of clients that
/// watched the same node die does not stampede the successor in
/// lockstep.
fn failover_backoff(attempt: usize, buried: NodeId) {
    let base_ms = 1u64 << (attempt.saturating_sub(1)).min(5);
    let jitter_us = mix64(0xb0ff ^ ((buried as u64) << 32) ^ attempt as u64) % (base_ms * 500 + 1);
    std::thread::sleep(Duration::from_millis(base_ms) + Duration::from_micros(jitter_us));
}

/// Consecutive-miss failure accrual with ack-reset hysteresis: a node
/// is condemned only after `threshold` misses *in a row* — any
/// successful probe zeroes its counter, so a flapping node (slow, but
/// alive) never trips a spurious failover, while a truly dead one is
/// condemned in exactly `threshold` probe intervals.
pub(crate) struct SuspicionTable {
    threshold: u32,
    counts: HashMap<NodeId, u32>,
}

impl SuspicionTable {
    pub(crate) fn new(threshold: u32) -> SuspicionTable {
        SuspicionTable {
            threshold: threshold.max(1),
            counts: HashMap::new(),
        }
    }

    /// A successful probe: resets the node's consecutive-miss count.
    pub(crate) fn ack(&mut self, node: NodeId) {
        self.counts.insert(node, 0);
    }

    /// A missed probe; `true` when the node just crossed the threshold
    /// and should be condemned.
    pub(crate) fn miss(&mut self, node: NodeId) -> bool {
        let count = self.counts.entry(node).or_insert(0);
        *count += 1;
        *count >= self.threshold
    }

    /// Whether the node has at least one un-acked miss.
    pub(crate) fn suspected(&self, node: NodeId) -> bool {
        self.counts.get(&node).copied().unwrap_or(0) > 0
    }

    /// Drops a condemned (or departed) node's counter.
    pub(crate) fn forget(&mut self, node: NodeId) {
        self.counts.remove(&node);
    }
}

/// Whether an error means the node itself is gone (dead, partitioned,
/// or hung past its read timeout) — the failover trigger — as opposed
/// to a protocol-level complaint from a live node.
fn is_node_death(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::UnexpectedEof
            | io::ErrorKind::NotConnected
            | io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
    )
}

/// One recorded derivation of a tracked session: `problem` was derived
/// from `parent` (current-coordinate wire ids) by adding `clauses`.
/// The client-side copy of the path log — the source of truth for
/// (re-)shipping replicas after membership changes.
struct LogEntry {
    problem: u64,
    parent: u64,
    clauses: Vec<Vec<i64>>,
}

/// Where one tracked session lives.
struct SessionState {
    /// The node serving the session right now.
    home: NodeId,
    /// The node holding the session's replica (`None`: nowhere to
    /// replicate — a 1-node cluster, or every candidate died).
    replica: Option<NodeId>,
    /// The session root's wire id, in current coordinates.
    root: u64,
    /// The session's path log, in derivation order.
    log: Vec<LogEntry>,
    /// Released problems whose log entries are *retained* because a
    /// live descendant's replay path runs through them; pruned (with
    /// cascade) by [`prune_log`] when the descendants go too.
    released: HashSet<u64>,
    /// Problem wire id → content-stable chaos key ([`stable_key`] over
    /// the clause lineage). Wire ids are rewritten by failover remaps;
    /// the keys survive unchanged, so chaos decisions stay replayable
    /// across promotions and runs.
    keys: HashMap<u64, u64>,
}

/// Drops released problems' log entries once no live entry replays
/// through them (child-aware, cascading): the client-side mirror of
/// the server's replica GC ([`crate::ReplicaStore::forget`]). Keeps
/// the log — the source of truth for re-shipping replicas — from
/// growing without bound under a solve/release working-set pattern.
fn prune_log(sess: &mut SessionState) {
    loop {
        let live_parents: HashSet<u64> = sess.log.iter().map(|e| e.parent).collect();
        let victim = sess
            .released
            .iter()
            .copied()
            .find(|p| !live_parents.contains(p) && sess.log.iter().any(|e| e.problem == *p));
        let Some(victim) = victim else { break };
        sess.log.retain(|e| e.problem != victim);
        sess.released.remove(&victim);
    }
    // Tombstones for ids with no log entry at all are dead weight.
    sess.released
        .retain(|p| sess.log.iter().any(|e| e.problem == *p));
}

/// The mutable routing state behind a [`ClusterBackend`].
struct ClusterState {
    ring: Ring,
    /// Tracked sessions by session id.
    sessions: HashMap<u64, SessionState>,
    /// Non-root problem wire id → owning session.
    owner: HashMap<u64, u64>,
    /// Root wire id → the session registered for it (sessions sharing
    /// a `(node, shard)` placement share a root; the last registrant
    /// owns attribution — their trees are interchangeable for replay).
    roots: HashMap<u64, u64>,
    /// Old wire id → promoted wire id, accumulated across failovers;
    /// chase with [`resolve`] (chains form when a promoted node dies).
    remap: HashMap<u64, u64>,
    /// Read timeout applied to every connection (including ones added
    /// later by [`ClusterBackend::add_node`]).
    timeout: Option<Duration>,
    /// This client's membership-epoch view: bumped on every failover
    /// and planned membership change, raised to any higher epoch a
    /// `Pong` carries. A higher epoch on the wire means some *other*
    /// router already buried a node this client still believes in —
    /// the heartbeat thread reacts by fast-tracking its own probes.
    epoch: u64,
}

/// Chases `id` through the failover remap (bounded — chains are as
/// long as the failover count, cycles impossible by construction but
/// cheap to guard).
fn resolve(remap: &HashMap<u64, u64>, mut id: u64) -> u64 {
    for _ in 0..64 {
        match remap.get(&id) {
            Some(&next) if next != id => id = next,
            _ => break,
        }
    }
    id
}

/// The multi-node [`SolverBackend`]: N [`PipelinedClient`]s — one per
/// `lwsnapd` node — behind the consistent-hash [`Ring`].
///
/// * **Routing** — session roots go to the ring-chosen node
///   ([`Ring::node_for`]); every subsequent request self-routes by the
///   node id stamped inside its [`ProblemId`], so a session's whole
///   problem tree stays on one node (snapshots never cross the wire).
/// * **Tag spaces** — correlation tags are per-connection, so the N
///   nodes' tag spaces are disjoint by construction; a ticket carries
///   `(node, tag)` and completions merge through the same
///   ticket/wait machinery as a single connection.
/// * **Replication** — after every successful solve of a tracked
///   session, the derivation edge is shipped fire-and-forget to the
///   session's ring successor ([`Ring::successor_for`]), which records
///   it passively ([`crate::ReplicaStore`]). The home node forwards
///   the same edges itself (the server's `Forward` plane, idempotent
///   by sequence number), so a session stays fully replicated even
///   when several clients drive it and each sees only a slice of the
///   solve stream.
/// * **Failover** — when a node dies mid-session, the backend promotes
///   each affected session on its replica (the successor replays the
///   path log — bit-identical verdicts and models, because the solver
///   is deterministic in the clause path), installs an id remap, picks
///   a fresh replica, re-ships the log, and **transparently retries**
///   the interrupted solve, backing off exponentially (with seeded
///   jitter) between attempts. Only sessions with no replica (1-node
///   clusters, double failures) still surface the typed [`NodeError`],
///   which carries the attempt count.
/// * **Heartbeats** — opt-in ([`ClusterBackend::start_heartbeat`]): a
///   probe thread pings every node on dedicated connections (so a
///   half-dead node that still answers pings while its solves stall is
///   NOT condemned here — the per-request read timeout catches that)
///   and fails over any node that misses enough consecutive probes,
///   promoting its sessions *before* a request trips over the corpse.
///   `Pong`s carry the membership epoch; seeing a higher one than our
///   own fast-tracks suspicion, so routers learn of deaths from their
///   peers' failovers instead of waiting out their own thresholds.
/// * **Membership** — [`ClusterBackend::add_node`] joins a node
///   mid-run; [`ClusterBackend::remove_node`] drains one gracefully
///   (sessions promoted onto their replicas — which the rendezvous
///   successor property guarantees are the ring's own post-removal
///   owners — before the daemon is shut down).
/// * **Stats** — [`SolverBackend::stats`] sums the nodes;
///   [`SolverBackend::node_stats`] keeps the per-node split, including
///   the `failovers` / `replica_promotions` / `replica_bytes` counters.
pub struct ClusterBackend {
    /// The shared guts; the heartbeat thread holds its own `Arc`.
    core: Arc<ClusterCore>,
}

impl Drop for ClusterBackend {
    fn drop(&mut self) {
        // The heartbeat thread (if started) holds its own Arc to the
        // core; this flag is how it learns the user-facing handle died.
        self.core.hb_stop.store(true, Ordering::Release);
    }
}

/// Everything behind a [`ClusterBackend`], shareable with the
/// heartbeat thread: the member table, the routing state, the chaos
/// policy and the failure-detection counters.
struct ClusterCore {
    /// Member nodes, sorted by id (binary-searchable). `Arc` so a
    /// connection can be used after the lock is dropped — waits must
    /// not serialize behind membership changes.
    nodes: RwLock<Vec<Arc<ClusterNode>>>,
    state: Mutex<ClusterState>,
    /// Fault-injection policy for this client's replication plane
    /// (`Replicate`/`Unreplicate` fire-and-forget frames only; the
    /// re-shipping done at failover is a healing path and is exempt).
    chaos: Mutex<Option<Arc<ChaosPolicy>>>,
    /// Heartbeat probes that went unanswered.
    hb_misses: AtomicU64,
    /// Failovers the heartbeat thread triggered (vs. a request path
    /// tripping over the dead node first).
    hb_failovers: AtomicU64,
    /// Failover retries burned by request paths.
    retries: AtomicU64,
    /// Single-spawn guard for the heartbeat thread.
    hb_started: AtomicBool,
    /// Tells the heartbeat thread to exit.
    hb_stop: AtomicBool,
}

impl ClusterBackend {
    /// Connects to every node of the cluster map `addrs` (`(node id,
    /// address)` pairs; duplicate ids are an error), ring seed 0.
    pub fn connect<A: ToSocketAddrs>(addrs: &[(NodeId, A)]) -> io::Result<ClusterBackend> {
        ClusterBackend::connect_seeded(addrs, 0)
    }

    /// [`ClusterBackend::connect`] with an explicit ring seed — every
    /// client of one cluster must use the same seed, or their session
    /// placements disagree.
    pub fn connect_seeded<A: ToSocketAddrs>(
        addrs: &[(NodeId, A)],
        seed: u64,
    ) -> io::Result<ClusterBackend> {
        let mut nodes = Vec::with_capacity(addrs.len());
        for (id, addr) in addrs {
            let addr = addr
                .to_socket_addrs()
                .map_err(|e| node_error(*id, e))?
                .next()
                .ok_or_else(|| {
                    node_error(
                        *id,
                        io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"),
                    )
                })?;
            let client = PipelinedClient::connect(addr).map_err(|e| node_error(*id, e))?;
            nodes.push(Arc::new(ClusterNode {
                id: *id,
                addr,
                client,
            }));
        }
        nodes.sort_by_key(|n| n.id);
        if nodes.windows(2).any(|w| w[0].id == w[1].id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "duplicate node id in cluster map",
            ));
        }
        let ring = Ring::new(nodes.iter().map(|n| n.id), seed);
        Ok(ClusterBackend {
            core: Arc::new(ClusterCore {
                nodes: RwLock::new(nodes),
                state: Mutex::new(ClusterState {
                    ring,
                    sessions: HashMap::new(),
                    owner: HashMap::new(),
                    roots: HashMap::new(),
                    remap: HashMap::new(),
                    timeout: None,
                    epoch: 0,
                }),
                chaos: Mutex::new(None),
                hb_misses: AtomicU64::new(0),
                hb_failovers: AtomicU64::new(0),
                retries: AtomicU64::new(0),
                hb_started: AtomicBool::new(false),
                hb_stop: AtomicBool::new(false),
            }),
        })
    }

    /// Number of member nodes.
    pub fn num_nodes(&self) -> usize {
        self.core.num_nodes()
    }

    /// The member node ids, sorted.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.core
            .nodes
            .read()
            .unwrap()
            .iter()
            .map(|n| n.id)
            .collect()
    }

    /// A snapshot of the routing ring (e.g. to predict placements in
    /// tests). A *copy* — the live ring shrinks and grows with
    /// failovers and membership changes.
    pub fn ring(&self) -> Ring {
        self.core.state.lock().unwrap().ring.clone()
    }

    /// Bounds how long any wait on any node connection may block
    /// (`None` = forever), now and for nodes added later. A node that
    /// exceeds it is treated as DEAD — its sessions fail over — so set
    /// it comfortably above the slowest expected solve.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.core.state.lock().unwrap().timeout = timeout;
        for n in self.core.nodes.read().unwrap().iter() {
            n.client.set_read_timeout(timeout)?;
        }
        Ok(())
    }

    /// Installs (or clears) the fault-injection policy for this
    /// client's outgoing replication-plane frames.
    pub fn set_chaos(&self, chaos: Option<Arc<ChaosPolicy>>) {
        *self.core.chaos.lock().unwrap() = chaos;
    }

    /// Starts the heartbeat thread (idempotent): every `interval` (plus
    /// seeded jitter) it pings each member on a short-lived dedicated
    /// connection and fails over any node that misses `threshold`
    /// consecutive probes — promoting its sessions onto their replicas
    /// *before* a request path trips over the dead node. The thread
    /// exits when the backend is dropped.
    pub fn start_heartbeat(&self, interval: Duration, threshold: u32) {
        if self.core.hb_started.swap(true, Ordering::AcqRel) {
            return;
        }
        let core = Arc::clone(&self.core);
        std::thread::spawn(move || heartbeat_loop(core, interval, threshold.max(1)));
    }

    /// Heartbeat probes that went unanswered so far.
    pub fn heartbeat_misses(&self) -> u64 {
        self.core.hb_misses.load(Ordering::Relaxed)
    }

    /// Failovers triggered by the heartbeat thread (not by a request
    /// path hitting the dead node).
    pub fn heartbeat_failovers(&self) -> u64 {
        self.core.hb_failovers.load(Ordering::Relaxed)
    }

    /// Failover retries burned by request paths so far (each one is a
    /// solve or root call re-issued against a surviving node).
    pub fn failover_retries(&self) -> u64 {
        self.core.retries.load(Ordering::Relaxed)
    }

    /// This client's membership-epoch view.
    pub fn epoch(&self) -> u64 {
        self.core.state.lock().unwrap().epoch
    }

    /// Joins a NEW node to the cluster map and the ring mid-run.
    /// Existing sessions stay where they are (rendezvous addition only
    /// *steals* keys, and tracked sessions route by their recorded
    /// home); new sessions and future replica picks may land on it.
    pub fn add_node<A: ToSocketAddrs>(&self, id: NodeId, addr: A) -> io::Result<()> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| node_error(id, e))?
            .next()
            .ok_or_else(|| {
                node_error(
                    id,
                    io::Error::new(io::ErrorKind::InvalidInput, "unresolvable address"),
                )
            })?;
        let client = PipelinedClient::connect(addr).map_err(|e| node_error(id, e))?;
        let mut st = self.core.state.lock().unwrap();
        client
            .set_read_timeout(st.timeout)
            .map_err(|e| node_error(id, e))?;
        let mut nodes = self.core.nodes.write().unwrap();
        match nodes.binary_search_by_key(&id, |n| n.id) {
            Ok(_) => Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "duplicate node id in cluster map",
            )),
            Err(at) => {
                nodes.insert(at, Arc::new(ClusterNode { id, addr, client }));
                st.ring.add_node(id);
                st.epoch += 1;
                Ok(())
            }
        }
    }

    /// Planned membership change: drains `node` out of the cluster.
    /// Its sessions are promoted onto their replicas first (path-log
    /// replay — and the rendezvous successor property means the replica
    /// IS the shrunk ring's owner for each key), then the daemon is
    /// sent a graceful `Shutdown` and its final stats are returned.
    /// Callers should quiesce their own in-flight solves on the node
    /// first; later requests against old ids are remapped transparently.
    pub fn remove_node(&self, node: NodeId) -> io::Result<StatsSummary> {
        let member = self.core.node(node)?;
        {
            let mut st = self.core.state.lock().unwrap();
            if st.ring.remove_node(node) {
                st.epoch += 1;
                self.core.migrate_locked(&mut st, node);
            }
        }
        let stats = member
            .client
            .shutdown_server()
            .map_err(|e| node_error(node, e))?;
        let mut nodes = self.core.nodes.write().unwrap();
        if let Ok(at) = nodes.binary_search_by_key(&node, |n| n.id) {
            nodes.remove(at);
        }
        Ok(stats)
    }

    /// Gracefully drains the whole cluster: each node is sent a
    /// `Shutdown` (the daemon finishes in-flight solves and flushes
    /// every reply before exiting) and its final stats snapshot is
    /// collected. Per-node results, so one dead node never masks the
    /// survivors' clean drain. Nodes already failed over are not
    /// listed — they are no longer members.
    pub fn shutdown(&self) -> Vec<(NodeId, io::Result<StatsSummary>)> {
        let nodes: Vec<Arc<ClusterNode>> = self.core.nodes.read().unwrap().to_vec();
        nodes
            .iter()
            .map(|n| {
                let result = n.client.shutdown_server().map_err(|e| node_error(n.id, e));
                (n.id, result)
            })
            .collect()
    }

    /// One merged metrics snapshot for the whole fleet: every member's
    /// `Stats2` snapshot absorbed by name (counters/histograms sum,
    /// gauges add — a fleet gauge is a fleet total). Caveat: in an
    /// *in-process* test cluster every node shares one process-global
    /// registry, so each node reports the same numbers and the merge
    /// overcounts N×; across real daemon processes each node owns its
    /// registry and the merge is exact.
    pub fn fleet_metrics(&self) -> io::Result<lwsnap_trace::MetricsSnapshot> {
        let members: Vec<Arc<ClusterNode>> = self.core.nodes.read().unwrap().to_vec();
        let mut fleet = MetricsSnapshot::default();
        for n in &members {
            fleet.absorb(&n.client.metrics().map_err(|e| node_error(n.id, e))?);
        }
        Ok(fleet)
    }

    /// Drains every member's trace ring and merges the events into one
    /// globally ordered stream (by timestamp, ties broken by recording
    /// thread) — the single timeline a failover reconstruction reads.
    /// Draining consumes: a second dump returns only newer events. The
    /// in-process-cluster caveat of [`ClusterBackend::fleet_metrics`]
    /// applies here too — shared rings mean the first node drains all.
    pub fn fleet_trace(&self) -> io::Result<Vec<Event>> {
        let members: Vec<Arc<ClusterNode>> = self.core.nodes.read().unwrap().to_vec();
        let mut events: Vec<Event> = Vec::new();
        for n in &members {
            events.extend(n.client.trace_dump().map_err(|e| node_error(n.id, e))?);
        }
        events.sort_by_key(|e| (e.ts_ns, e.tid));
        Ok(events)
    }
}

impl ClusterCore {
    fn num_nodes(&self) -> usize {
        self.nodes.read().unwrap().len()
    }

    /// The members' `(id, address)` pairs — what the heartbeat thread
    /// probes.
    fn members(&self) -> Vec<(NodeId, SocketAddr)> {
        self.nodes
            .read()
            .unwrap()
            .iter()
            .map(|n| (n.id, n.addr))
            .collect()
    }

    /// The connection that owns `node`, or the typed unknown-node error.
    fn node(&self, node: NodeId) -> io::Result<Arc<ClusterNode>> {
        self.node_opt(node).ok_or_else(|| unknown_node(node))
    }

    fn node_opt(&self, node: NodeId) -> Option<Arc<ClusterNode>> {
        let nodes = self.nodes.read().unwrap();
        nodes
            .binary_search_by_key(&node, |n| n.id)
            .ok()
            .map(|at| Arc::clone(&nodes[at]))
    }

    /// Unplanned membership change: `dead` stopped answering. Removes
    /// it from the map and the ring, then migrates its sessions onto
    /// their replicas. Idempotent — concurrent failures of the same
    /// node collapse into one migration; `true` only for the call that
    /// actually buried it.
    fn failover(&self, dead: NodeId) -> bool {
        let mut st = self.state.lock().unwrap();
        if !st.ring.remove_node(dead) {
            return false; // already handled (or never a member)
        }
        st.epoch += 1;
        trace::instant(trace::Kind::Failover, dead as u64, st.epoch);
        {
            let mut nodes = self.nodes.write().unwrap();
            if let Ok(at) = nodes.binary_search_by_key(&dead, |n| n.id) {
                nodes.remove(at);
            }
        }
        self.migrate_locked(&mut st, dead);
        true
    }

    /// Moves every session touching `leaving` (as home: promote on the
    /// replica; as replica: pick a new one) — `leaving` is already out
    /// of `st.ring`. Sessions that cannot be saved (no replica, or the
    /// replica is unreachable too) keep their dead home and surface
    /// typed [`NodeError`]s on use.
    fn migrate_locked(&self, st: &mut ClusterState, leaving: NodeId) {
        let session_ids: Vec<u64> = st.sessions.keys().copied().collect();
        for session in session_ids {
            let (home, replica) = {
                let s = &st.sessions[&session];
                (s.home, s.replica)
            };
            if home == leaving {
                self.promote_session(st, session, leaving);
            } else if replica == Some(leaving) {
                // Home is fine; the replica died. Re-pick and re-ship.
                let new_replica = st.ring.ranked(session).into_iter().find(|&n| n != home);
                let sess = st.sessions.get_mut(&session).unwrap();
                sess.replica = new_replica;
                self.ship_log(st, session);
            }
        }
    }

    /// Fails one session over onto its replica: promote by path replay,
    /// install the id remap, rewrite the log into new coordinates,
    /// re-pick a replica and re-ship the log to it.
    fn promote_session(&self, st: &mut ClusterState, session: u64, leaving: NodeId) {
        let (replica, problems, old_root) = {
            let s = &st.sessions[&session];
            (
                s.replica,
                s.log.iter().map(|e| e.problem).collect::<Vec<u64>>(),
                s.root,
            )
        };
        let target = replica.and_then(|r| self.node_opt(r));
        let Some(member) = target else {
            // Unrecoverable: no replica, or its connection is gone too.
            st.sessions.get_mut(&session).unwrap().replica = None;
            return;
        };
        let new_home = member.id;
        // Heal before promoting: re-ship this client's whole log to the
        // replica first (fire-and-forget, chaos-exempt, on the SAME
        // connection as the `Promote` call — the frames land in order).
        // A lossy network may have eaten an edge on both replication
        // planes; the local log is the copy of last resort, and the
        // store dedupes re-sends by problem id.
        self.ship_log(st, session);
        // Always ask — even with an empty local log. The server may
        // hold edges this client never saw (another client drove the
        // session, or the home node's own Forward plane outran us);
        // `Promote` returns the FULL session mapping, so those edges'
        // promoted ids land in our remap too.
        let mapping = match member.client.call(&Request::Promote { session, problems }) {
            Ok(Response::Promoted { mapping }) => mapping,
            _ => {
                // The replica died mid-promotion (or answered
                // garbage): the session is unrecoverable.
                st.sessions.get_mut(&session).unwrap().replica = None;
                return;
            }
        };
        for &(old, new) in &mapping {
            st.remap.insert(old, new);
            if let Some(owning) = st.owner.remove(&old) {
                st.owner.insert(new, owning);
            }
        }
        // The session root re-roots at the same shard on the new home
        // (roots are local index 0 — every node's fresh root solver is
        // identical, which is what makes replay exact). Only the
        // attribution owner of a shared root installs its remap.
        let new_root = (new_home as u64) << 48 | (old_root & 0x0000_ffff_ffff_ffff);
        if st.roots.get(&old_root) == Some(&session) {
            st.remap.insert(old_root, new_root);
        }
        st.roots.insert(new_root, session);
        {
            let sess = st.sessions.get_mut(&session).unwrap();
            sess.home = new_home;
            sess.root = new_root;
            for e in &mut sess.log {
                e.problem = resolve(&st.remap, e.problem);
                e.parent = resolve(&st.remap, e.parent);
            }
            sess.released = sess
                .released
                .iter()
                .map(|&p| resolve(&st.remap, p))
                .collect();
            sess.keys = sess
                .keys
                .iter()
                .map(|(&p, &k)| (resolve(&st.remap, p), k))
                .collect();
            sess.replica = st.ring.ranked(session).into_iter().find(|&n| n != new_home);
        }
        let _ = leaving;
        self.ship_log(st, session);
    }

    /// Re-ships a session's whole path log to its current replica
    /// (fire-and-forget; a send failure means the replica is dying and
    /// will be handled by its own failover).
    fn ship_log(&self, st: &ClusterState, session: u64) {
        let sess = &st.sessions[&session];
        let Some(member) = sess.replica.and_then(|r| self.node_opt(r)) else {
            return;
        };
        for e in &sess.log {
            let _ = member.client.submit_forgotten(&Request::Replicate {
                session,
                problem: e.problem,
                parent: e.parent,
                clauses: e.clauses.clone(),
            });
        }
    }

    /// Records a successful solve of a tracked session into the path
    /// log and streams the edge to the session's replica.
    fn record(&self, session: u64, problem: u64, parent: u64, clauses: &[Vec<i64>]) {
        let (replica, key) = {
            let mut st = self.state.lock().unwrap();
            let Some(sess) = st.sessions.get_mut(&session) else {
                return;
            };
            // A reply that raced a failover carries stale (dead-node)
            // coordinates; logging it would poison the replayable log.
            if ProblemId::from_wire(problem).node() != sess.home {
                return;
            }
            sess.log.push(LogEntry {
                problem,
                parent,
                clauses: clauses.to_vec(),
            });
            let parent_key = if parent == sess.root {
                root_key(session)
            } else {
                sess.keys
                    .get(&parent)
                    .copied()
                    .unwrap_or_else(|| root_key(session))
            };
            let key = stable_key(parent_key, clauses);
            sess.keys.insert(problem, key);
            let replica = sess.replica;
            st.owner.insert(problem, session);
            (replica, key)
        };
        if let Some(member) = replica.and_then(|r| self.node_opt(r)) {
            let request = Request::Replicate {
                session,
                problem,
                parent,
                clauses: clauses.to_vec(),
            };
            if self.chaos_forgotten(&member, key, &request).is_err() {
                // The replica's connection is dead: migrate everything
                // that depends on it now rather than at the next read.
                self.failover(member.id);
            }
        }
    }

    /// Sends one fire-and-forget replication frame through the chaos
    /// policy (if any): drops swallow it, duplicates send it twice (the
    /// replica store dedupes by problem id), delays sleep briefly
    /// first. Keyed by the edge's content-stable key ([`stable_key`]) —
    /// the same key the server plane computes for the same edge,
    /// decorrelated there by the plane salt.
    fn chaos_forgotten(&self, member: &ClusterNode, key: u64, request: &Request) -> io::Result<()> {
        let chaos = self.chaos.lock().unwrap().clone();
        let action = chaos.map_or(ChaosAction::Deliver, |p| p.decide(PLANE_CLIENT, key));
        if action != ChaosAction::Deliver {
            trace::instant(trace::Kind::ChaosInject, key, PLANE_CLIENT);
            trace::Registry::global().chaos_injections.inc();
        }
        match action {
            ChaosAction::Drop => Ok(()),
            ChaosAction::Deliver => member.client.submit_forgotten(request),
            ChaosAction::Duplicate => {
                member.client.submit_forgotten(request)?;
                member.client.submit_forgotten(request)
            }
            ChaosAction::Delay(pause) => {
                std::thread::sleep(pause);
                member.client.submit_forgotten(request)
            }
        }
    }

    /// Resolves a parent id through the failover remap and attributes
    /// it to its session (`None`: an untracked id — no replica, no
    /// failover retry).
    fn locate(&self, parent: u64) -> (u64, Option<u64>) {
        let st = self.state.lock().unwrap();
        let resolved = resolve(&st.remap, parent);
        let session = st.owner.get(&resolved).copied().or_else(|| {
            // Roots have local index 0; attribution goes through the
            // shared-root registry.
            (resolved as u32 == 0)
                .then(|| st.roots.get(&resolved).copied())
                .flatten()
        });
        (resolved, session)
    }

    /// Submits `parent ∧ clauses` to the parent's current home,
    /// failing over (and re-resolving) if that home is dead; retries
    /// are bounded and separated by [`failover_backoff`].
    fn cluster_submit(&self, parent: u64, clauses: Vec<Vec<i64>>) -> io::Result<Ticket> {
        let budget = self.num_nodes() + 2;
        let mut attempt = 0usize;
        loop {
            let (resolved, session) = self.locate(parent);
            let home = ProblemId::from_wire(resolved).node();
            let member = self.node(home)?;
            let request = Request::Solve {
                parent: resolved,
                clauses: clauses.clone(),
            };
            match member.client.submit_request(&request) {
                Ok(tag) => {
                    return Ok(Ticket(TicketInner::Cluster {
                        node: home,
                        tag,
                        session,
                        parent: resolved,
                        clauses,
                    }))
                }
                Err(e) if is_node_death(&e) && session.is_some() && attempt < budget => {
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    self.failover(home);
                    failover_backoff(attempt, home);
                }
                Err(e) => return Err(node_error_after(home, e, attempt as u32 + 1)),
            }
        }
    }
}

/// One heartbeat probe on a dedicated, short-lived connection: never
/// the pipelined data connection, whose queue a stalled solve could
/// block. Returns the peer's epoch, or `None` for any kind of miss.
fn probe(addr: SocketAddr, epoch: u64, timeout: Duration) -> Option<u64> {
    let mut client = TcpClient::connect(addr).ok()?;
    client.set_read_timeout(Some(timeout)).ok()?;
    match client.call(&Request::Ping {
        sender: u64::MAX,
        epoch,
    }) {
        Ok(Response::Pong { epoch, .. }) => Some(epoch),
        _ => None,
    }
}

/// The client-side failure detector (see
/// [`ClusterBackend::start_heartbeat`]). Probe timeouts are a few
/// intervals long, clamped to [100 ms, 1 s] — long enough that a busy
/// node is a *suspicion*, not a verdict; the [`SuspicionTable`]'s
/// consecutive-miss hysteresis does the rest.
fn heartbeat_loop(core: Arc<ClusterCore>, interval: Duration, threshold: u32) {
    let timeout = (interval * 4)
        .max(Duration::from_millis(100))
        .min(Duration::from_secs(1));
    let mut suspicion = SuspicionTable::new(threshold);
    let mut tick = 0u64;
    while !core.hb_stop.load(Ordering::Acquire) {
        // Jittered nap (seeded — no wall-clock randomness), chunked so
        // a dropped backend is noticed within ~10 ms.
        let half = (interval.as_micros() as u64 / 2).max(1);
        let nap = interval + Duration::from_micros(mix64(0xbea7 ^ tick) % half);
        let mut slept = Duration::ZERO;
        while slept < nap {
            if core.hb_stop.load(Ordering::Acquire) {
                return;
            }
            let chunk = Duration::from_millis(10).min(nap - slept);
            std::thread::sleep(chunk);
            slept += chunk;
        }
        tick += 1;
        let members = core.members();
        if members.is_empty() {
            continue;
        }
        let my_epoch = core.state.lock().unwrap().epoch;
        let mut max_seen = my_epoch;
        let mut condemned: Vec<NodeId> = Vec::new();
        for &(id, addr) in &members {
            match probe(addr, my_epoch, timeout) {
                Some(epoch) => {
                    suspicion.ack(id);
                    max_seen = max_seen.max(epoch);
                }
                None => {
                    core.hb_misses.fetch_add(1, Ordering::Relaxed);
                    if suspicion.miss(id) {
                        condemned.push(id);
                    }
                }
            }
        }
        if max_seen > my_epoch {
            // Gossip: some router already buried a node we may still
            // believe in. Adopt the epoch and fast-track — one more
            // probe, and any *already-suspected* node that misses it
            // is condemned without waiting out the full threshold.
            core.state.lock().unwrap().epoch = max_seen;
            for &(id, addr) in &members {
                if !condemned.contains(&id)
                    && suspicion.suspected(id)
                    && probe(addr, max_seen, timeout).is_none()
                {
                    condemned.push(id);
                }
            }
        }
        for id in condemned {
            if core.failover(id) {
                core.hb_failovers.fetch_add(1, Ordering::Relaxed);
            }
            suspicion.forget(id);
        }
    }
}

impl SolverBackend for ClusterBackend {
    /// The ring places the session on a node; that node's Fibonacci
    /// shard hash places it inside the node. The returned id must carry
    /// the node id the ring chose — a mismatch means the server was
    /// started with the wrong `--node-id` and is caught here, not after
    /// a session's tree has landed on the wrong node. The session's
    /// replica target (its ring successor) is fixed here too.
    fn session_root(&self, session: u64) -> io::Result<ProblemId> {
        let budget = self.num_nodes() + 2;
        let mut attempt = 0usize;
        loop {
            let home = {
                let st = self.core.state.lock().unwrap();
                match st.sessions.get(&session) {
                    Some(s) => s.home,
                    None => st.ring.node_for(session).ok_or_else(|| {
                        io::Error::new(io::ErrorKind::NotConnected, "cluster has no nodes")
                    })?,
                }
            };
            let member = self.core.node(home)?;
            match member.client.session_root(session) {
                Ok(root) => {
                    if root.node() != home {
                        return Err(node_error(
                            home,
                            ProtoError::WrongNode {
                                got: root.node() as u64,
                                expected: home as u64,
                            }
                            .into(),
                        ));
                    }
                    let mut st = self.core.state.lock().unwrap();
                    let replica = st.ring.ranked(session).into_iter().find(|&n| n != home);
                    st.sessions.entry(session).or_insert(SessionState {
                        home,
                        replica,
                        root: root.to_wire(),
                        log: Vec::new(),
                        released: HashSet::new(),
                        keys: HashMap::new(),
                    });
                    st.roots.insert(root.to_wire(), session);
                    return Ok(root);
                }
                Err(e) if is_node_death(&e) && attempt < budget => {
                    attempt += 1;
                    self.core.retries.fetch_add(1, Ordering::Relaxed);
                    self.core.failover(home);
                    failover_backoff(attempt, home);
                }
                Err(e) => return Err(node_error_after(home, e, attempt as u32 + 1)),
            }
        }
    }

    fn submit(&self, parent: ProblemId, clauses: Vec<Vec<Lit>>) -> io::Result<Ticket> {
        self.core
            .cluster_submit(parent.to_wire(), lits_to_clauses(&clauses))
    }

    /// Redeems a cluster ticket. If the ticket's node died before
    /// answering, the session is failed over (replica promoted by path
    /// replay) and the solve is **re-issued transparently** on the new
    /// home — the caller sees the same deterministic reply it would
    /// have gotten, minus one node.
    fn wait(&self, ticket: Ticket) -> io::Result<Option<SolveReply>> {
        let TicketInner::Cluster {
            node,
            tag,
            session,
            parent,
            clauses,
        } = ticket.0
        else {
            return Err(foreign_ticket());
        };
        let outcome = match self.core.node_opt(node) {
            Some(member) => member.client.wait_response(tag),
            // A concurrent failover already removed the node; treat the
            // ticket as lost in the crash and go straight to the retry.
            None => Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "node failed over while the request was in flight",
            )),
        };
        match outcome {
            Ok(response) => {
                let reply = solved_reply(response).map_err(|e| node_error(node, e))?;
                if let (Some(session), Some(r)) = (session, reply.as_ref()) {
                    self.core
                        .record(session, r.problem.to_wire(), parent, &clauses);
                }
                Ok(reply)
            }
            Err(e) if is_node_death(&e) => {
                self.core.failover(node);
                // The remap now covers the parent iff the session was
                // recoverable; an unrecoverable one fails typed below.
                let retry = self.core.cluster_submit(parent, clauses)?;
                if let TicketInner::Cluster { node: new_node, .. } = &retry.0 {
                    trace::instant(trace::Kind::Rerouted, node as u64, *new_node as u64);
                }
                self.wait(retry)
            }
            Err(e) => Err(node_error(node, e)),
        }
    }

    fn release(&self, id: ProblemId) -> io::Result<()> {
        let (resolved, session) = self.core.locate(id.to_wire());
        // A released problem will never be promoted: prune the
        // client-side path log (child-aware — entries a live
        // descendant still replays through are kept) and tell the
        // session's replica to GC its copy of the dead edges
        // (fire-and-forget, like the Replicate that shipped them).
        if let Some(session) = session {
            let (replica, key) = {
                let mut st = self.core.state.lock().unwrap();
                st.owner.remove(&resolved);
                match st.sessions.get_mut(&session) {
                    Some(sess) => {
                        sess.released.insert(resolved);
                        prune_log(sess);
                        let key = sess
                            .keys
                            .remove(&resolved)
                            .unwrap_or_else(|| root_key(session));
                        (sess.replica, key)
                    }
                    None => (None, root_key(session)),
                }
            };
            if let Some(member) = replica.and_then(|r| self.core.node_opt(r)) {
                let _ = self.core.chaos_forgotten(
                    &member,
                    key,
                    &Request::Unreplicate {
                        session,
                        problems: vec![resolved],
                    },
                );
            }
        }
        // Releasing something whose home is gone is a no-op, not an
        // error: the snapshot died with the node.
        let Some(member) = self.core.node_opt(ProblemId::from_wire(resolved).node()) else {
            return Ok(());
        };
        match member.client.release(ProblemId::from_wire(resolved)) {
            Err(e) if is_node_death(&e) => {
                self.core.failover(member.id);
                Ok(())
            }
            other => other.map_err(|e| node_error(member.id, e)),
        }
    }

    fn stats(&self) -> io::Result<StatsSummary> {
        Ok(self.node_stats()?.total())
    }

    fn node_stats(&self) -> io::Result<FleetStats> {
        let members: Vec<Arc<ClusterNode>> = self.core.nodes.read().unwrap().to_vec();
        let nodes = members
            .iter()
            .map(|n| {
                let summary = n.client.stats().map_err(|e| node_error(n.id, e))?;
                Ok((n.id, summary))
            })
            .collect::<io::Result<_>>()?;
        Ok(FleetStats { nodes })
    }

    /// Corked per node: the batch is split by owning node (order
    /// preserved within each node's window), each node's window is
    /// written with one flush ([`PipelinedClient::submit_batch`]), and
    /// replies are redeemed in the original request order. A window
    /// whose node dies falls back to per-request submission through
    /// the failover path.
    fn solve_batch(
        &self,
        requests: Vec<(ProblemId, Vec<Vec<Lit>>)>,
    ) -> io::Result<Vec<Option<SolveReply>>> {
        // Resolve and attribute every request, then split into
        // per-node windows remembering original positions.
        let resolved: Vec<(u64, Option<u64>, Vec<Vec<i64>>)> = requests
            .iter()
            .map(|(parent, clauses)| {
                let (wire, session) = self.core.locate(parent.to_wire());
                (wire, session, lits_to_clauses(clauses))
            })
            .collect();
        let mut windows: Vec<(NodeId, Vec<usize>, Vec<Request>)> = Vec::new();
        for (pos, (wire, _, clauses)) in resolved.iter().enumerate() {
            let node = ProblemId::from_wire(*wire).node();
            self.core.node(node)?; // unknown nodes fail before any write
            let request = Request::Solve {
                parent: *wire,
                clauses: clauses.clone(),
            };
            match windows.iter_mut().find(|(n, ..)| *n == node) {
                Some((_, positions, window)) => {
                    positions.push(pos);
                    window.push(request);
                }
                None => windows.push((node, vec![pos], vec![request])),
            }
        }
        // Submit every node's window corked, then wait in request order.
        let mut tickets: Vec<Option<Ticket>> = Vec::with_capacity(resolved.len());
        tickets.resize_with(resolved.len(), || None);
        for (node, positions, window) in windows {
            let member = self.core.node(node)?;
            match member.client.submit_batch(&window) {
                Ok(tags) => {
                    for (&pos, tag) in positions.iter().zip(tags) {
                        let (wire, session, clauses) = &resolved[pos];
                        tickets[pos] = Some(Ticket(TicketInner::Cluster {
                            node,
                            tag,
                            session: *session,
                            parent: *wire,
                            clauses: clauses.clone(),
                        }));
                    }
                }
                Err(e) if is_node_death(&e) => {
                    // The whole window is lost; re-route each request
                    // individually through the failover machinery.
                    self.core.failover(node);
                    for &pos in &positions {
                        let (wire, _, clauses) = &resolved[pos];
                        tickets[pos] = Some(self.core.cluster_submit(*wire, clauses.clone())?);
                    }
                }
                Err(e) => return Err(node_error(node, e)),
            }
        }
        tickets
            .into_iter()
            .map(|slot| self.wait(slot.expect("every request was submitted")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suspicion_trips_after_consecutive_misses_only() {
        let mut table = SuspicionTable::new(3);
        assert!(!table.miss(7));
        assert!(!table.miss(7));
        assert!(table.miss(7), "third consecutive miss condemns");
    }

    #[test]
    fn a_flapping_node_never_trips() {
        // Miss, ack, miss, ack ... — the ack-reset hysteresis means a
        // node that answers at least one probe per window is never
        // condemned, no matter how long the flapping goes on.
        let mut table = SuspicionTable::new(3);
        for _ in 0..100 {
            assert!(!table.miss(7));
            assert!(!table.miss(7));
            table.ack(7);
        }
        assert!(!table.suspected(7));
    }

    #[test]
    fn suspicion_is_per_node() {
        let mut table = SuspicionTable::new(2);
        assert!(!table.miss(1));
        assert!(!table.miss(2));
        assert!(table.miss(1), "node 1 is condemned on ITS second miss");
        assert!(table.suspected(2));
        table.forget(1);
        assert!(!table.suspected(1));
    }

    #[test]
    fn a_zero_threshold_is_clamped_to_one() {
        let mut table = SuspicionTable::new(0);
        assert!(table.miss(3), "threshold 0 would condemn nobody ever");
    }

    #[test]
    fn node_errors_surface_the_attempt_count() {
        let e = node_error_after(2, io::Error::new(io::ErrorKind::TimedOut, "slow"), 4);
        let inner = e.get_ref().unwrap().downcast_ref::<NodeError>().unwrap();
        assert_eq!(inner.attempts, 4);
        assert!(inner.to_string().contains("after 4 attempts"));
        let first = node_error(2, io::Error::new(io::ErrorKind::TimedOut, "slow"));
        let inner = first
            .get_ref()
            .unwrap()
            .downcast_ref::<NodeError>()
            .unwrap();
        assert_eq!(inner.attempts, 1);
        assert!(!inner.to_string().contains("attempts"));
    }
}
