//! Wire-protocol clients: the blocking one-call-at-a-time
//! [`TcpClient`], the [`PipelinedClient`] that keeps many tagged
//! requests in flight on one connection, and the [`ClusterBackend`]
//! that spreads sessions over N pipelined connections — one per
//! cluster node — through the consistent-hash [`crate::router::Ring`].
//!
//! All of them speak the same `lwsnapd` protocol; the pipelined client
//! uses v2 tagged frames ([`crate::protocol::TAGGED`]) so the server
//! may complete its requests out of order, and both it and the cluster
//! backend implement [`crate::SolverBackend`] so drivers written
//! against the trait can run remotely — on one node or on a whole
//! cluster — unchanged.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, TryLockError};
use std::time::Duration;

use lwsnap_solver::{Lit, SolveResult};

use crate::backend::{foreign_ticket, SolverBackend, Ticket, TicketInner};
use crate::protocol::{
    lits_to_clauses, put_tagged_frame, read_any_frame, read_frame, write_frame, write_tagged_frame,
    ProtoError, Request, Response, StatsSummary,
};
use crate::router::{NodeId, Ring};
use crate::sharded::{ProblemId, SolveReply};
use crate::stats::FleetStats;

/// Typed payload of the error a client call returns when the server
/// closed the connection **cleanly between frames** (daemon shutdown,
/// idle reap). Distinct from `UnexpectedEof`, which means the stream
/// died *mid-frame* — a truncation, never a clean goodbye.
///
/// ```
/// # use lwsnap_service::Disconnected;
/// fn is_clean_shutdown(e: &std::io::Error) -> bool {
///     e.get_ref().is_some_and(|inner| inner.is::<Disconnected>())
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server closed the connection")
    }
}

impl std::error::Error for Disconnected {}

pub(crate) fn disconnected() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionAborted, Disconnected)
}

/// A blocking client for the `lwsnapd` wire protocol: one
/// request/response exchange at a time, in order (legacy v1 frames).
pub struct TcpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream.try_clone()?),
            stream,
        })
    }

    /// Bounds how long a [`TcpClient::call`] may block waiting for the
    /// server's reply (`None` = wait forever). On expiry the call fails
    /// with a `WouldBlock`/`TimedOut` error; the connection may then
    /// hold a half-read frame, so treat a timed-out client as dead and
    /// reconnect — the timeout is for *detecting* a hung server, not
    /// for retrying on a live connection.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// One request/response exchange.
    ///
    /// Error taxonomy: a clean server close between frames is
    /// `ConnectionAborted` carrying [`Disconnected`]; a stream that
    /// dies mid-frame is `UnexpectedEof` (truncation); a configured
    /// read timeout surfaces as `WouldBlock`/`TimedOut`.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(disconnected)?;
        Response::decode(&payload).map_err(io::Error::from)
    }

    /// The root problem for a session id.
    pub fn session_root(&mut self, session: u64) -> io::Result<u64> {
        match self.call(&Request::Root { session })? {
            Response::Root { problem } => Ok(problem),
            other => Err(unexpected(other)),
        }
    }

    /// Solves `parent ∧ clauses` (DIMACS literals); returns the full
    /// [`Response::Solved`] payload or the server's error as `io::Error`.
    pub fn solve(&mut self, parent: u64, clauses: &[Vec<i64>]) -> io::Result<Response> {
        let response = self.call(&Request::Solve {
            parent,
            clauses: clauses.to_vec(),
        })?;
        match response {
            Response::Solved { .. } => Ok(response),
            Response::Error(msg) => Err(io::Error::new(io::ErrorKind::NotFound, msg)),
            other => Err(unexpected(other)),
        }
    }

    /// Releases a problem snapshot.
    pub fn release(&mut self, problem: u64) -> io::Result<()> {
        match self.call(&Request::Release { problem })? {
            Response::Released => Ok(()),
            Response::Error(msg) => Err(io::Error::new(io::ErrorKind::NotFound, msg)),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the aggregated service statistics.
    pub fn stats(&mut self) -> io::Result<StatsSummary> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to shut down; returns its final stats snapshot.
    pub fn shutdown_server(&mut self) -> io::Result<StatsSummary> {
        match self.call(&Request::Shutdown)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(response: Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        ProtoError::BadTag(match response {
            Response::Root { .. } => 1,
            Response::Solved { .. } => 2,
            Response::Released => 3,
            Response::Stats(_) => 4,
            Response::Error(_) => 5,
        }),
    )
}

// ---------------------------------------------------------------------
// The pipelined client.
// ---------------------------------------------------------------------

/// Shared completion state between waiting threads.
struct PipeState {
    /// Responses that arrived for tags nobody has claimed yet.
    done: HashMap<u64, Response>,
    /// Tags whose responses should be dropped on arrival
    /// (fire-and-forget requests like release).
    forgotten: HashSet<u64>,
    /// A terminal transport error: once set, every wait fails with it.
    dead: Option<(io::ErrorKind, String)>,
}

/// A pipelined client: many tagged requests in flight on one
/// connection, completions redeemed in any order.
///
/// `send`-many/`await`-many is the intended shape —
///
/// ```no_run
/// # use lwsnap_service::{PipelinedClient, SolverBackend};
/// # fn main() -> std::io::Result<()> {
/// let client = PipelinedClient::connect("127.0.0.1:7557")?;
/// let root = client.session_root(1)?;
/// let tickets: Vec<_> = (1..=8i64)
///     .map(|v| client.submit(root, vec![vec![lwsnap_solver::Lit::from_dimacs(v)]]))
///     .collect::<std::io::Result<_>>()?;
/// for t in tickets {
///     let reply = client.wait(t)?.expect("live root");
/// }
/// # Ok(()) }
/// ```
///
/// — eight solves cost one round trip plus the slowest solve, not
/// eight round trips. All methods take `&self`; the client may be
/// shared across threads (waits coordinate through a condvar, with one
/// thread at a time elected to read the socket).
pub struct PipelinedClient {
    stream: TcpStream,
    reader: Mutex<BufReader<TcpStream>>,
    writer: Mutex<BufWriter<TcpStream>>,
    state: Mutex<PipeState>,
    arrived: Condvar,
    next_tag: AtomicU64,
}

impl PipelinedClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<PipelinedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(PipelinedClient {
            reader: Mutex::new(BufReader::new(stream.try_clone()?)),
            // The writer buffer IS the cork window: sized to the
            // server's backpressure high-water mark so a corked batch
            // ([`PipelinedClient::submit_batch`]) really does reach the
            // socket in HIGH_WATER-sized writes — a default 8 KiB
            // BufWriter would spill long before the window closed.
            writer: Mutex::new(BufWriter::with_capacity(
                crate::net::HIGH_WATER,
                stream.try_clone()?,
            )),
            stream,
            state: Mutex::new(PipeState {
                done: HashMap::new(),
                forgotten: HashSet::new(),
                dead: None,
            }),
            arrived: Condvar::new(),
            next_tag: AtomicU64::new(1),
        })
    }

    /// Bounds how long a blocked wait may sit on the socket before
    /// failing (`None` = wait forever); see
    /// [`TcpClient::set_read_timeout`] for the caveats.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Writes one tagged request and returns its correlation tag.
    pub fn submit_request(&self, request: &Request) -> io::Result<u64> {
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let mut writer = self.writer.lock().unwrap();
        write_tagged_frame(&mut *writer, tag, &request.encode())?;
        Ok(tag)
    }

    /// Writes a whole window of tagged requests **corked**: frames
    /// accumulate in the buffered writer and the socket is flushed once
    /// per window (or whenever the buffered bytes cross the server's
    /// backpressure high-water mark, [`crate::net::HIGH_WATER`] —
    /// matching the bound the reactor applies on its side) instead of
    /// once per submit. Returns the correlation tags in request order.
    ///
    /// This is what makes [`SolverBackend::solve_batch`] on a pipelined
    /// connection cost one syscall per window: submitting k requests
    /// uncorked is k `write(2)`s; corked it is ⌈bytes / high-water⌉.
    pub fn submit_batch(&self, requests: &[Request]) -> io::Result<Vec<u64>> {
        let mut writer = self.writer.lock().unwrap();
        let mut tags = Vec::with_capacity(requests.len());
        let mut since_flush = 0usize;
        for request in requests {
            let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
            let payload = request.encode();
            put_tagged_frame(&mut *writer, tag, &payload)?;
            tags.push(tag);
            since_flush += payload.len() + 12;
            if since_flush >= crate::net::HIGH_WATER {
                writer.flush()?;
                since_flush = 0;
            }
        }
        writer.flush()?;
        Ok(tags)
    }

    /// Submits a request whose response should be discarded on arrival
    /// (fire-and-forget).
    fn submit_forgotten(&self, request: &Request) -> io::Result<()> {
        let tag = self.submit_request(request)?;
        let mut st = self.state.lock().unwrap();
        // The response may have raced in already.
        if st.done.remove(&tag).is_none() {
            st.forgotten.insert(tag);
        }
        Ok(())
    }

    /// Blocks until the response for `tag` arrives, reading the socket
    /// if no other thread currently is.
    pub fn wait_response(&self, tag: u64) -> io::Result<Response> {
        loop {
            {
                let mut st = self.state.lock().unwrap();
                if let Some(resp) = st.done.remove(&tag) {
                    return Ok(resp);
                }
                if let Some((kind, msg)) = &st.dead {
                    return Err(io::Error::new(*kind, msg.clone()));
                }
            }
            match self.reader.try_lock() {
                Ok(mut reader) => {
                    let read = read_any_frame(&mut *reader);
                    let mut st = self.state.lock().unwrap();
                    match read {
                        Ok(Some(frame)) => {
                            let Some(frame_tag) = frame.tag else {
                                st.dead =
                                    Some((io::ErrorKind::InvalidData, "untagged reply".into()));
                                self.arrived.notify_all();
                                continue;
                            };
                            if st.forgotten.remove(&frame_tag) {
                                continue;
                            }
                            match Response::decode(&frame.payload) {
                                Ok(resp) => {
                                    st.done.insert(frame_tag, resp);
                                }
                                Err(e) => {
                                    st.dead = Some((io::ErrorKind::InvalidData, e.to_string()));
                                }
                            }
                            self.arrived.notify_all();
                        }
                        Ok(None) => {
                            st.dead =
                                Some((io::ErrorKind::ConnectionAborted, Disconnected.to_string()));
                            self.arrived.notify_all();
                        }
                        Err(e) => {
                            st.dead = Some((e.kind(), e.to_string()));
                            self.arrived.notify_all();
                        }
                    }
                }
                Err(TryLockError::WouldBlock) => {
                    // Someone else is reading; wait for them to deliver.
                    // The timeout re-checks for a reader that bailed out
                    // between our try_lock and their notify.
                    let st = self.state.lock().unwrap();
                    if st.done.contains_key(&tag) || st.dead.is_some() {
                        continue;
                    }
                    let _ = self
                        .arrived
                        .wait_timeout(st, Duration::from_millis(50))
                        .unwrap();
                }
                Err(TryLockError::Poisoned(e)) => panic!("reader lock poisoned: {e}"),
            }
        }
    }

    /// Submit + wait for one request (no overlap).
    pub fn call(&self, request: &Request) -> io::Result<Response> {
        let tag = self.submit_request(request)?;
        self.wait_response(tag)
    }

    /// Asks the daemon to shut down; returns its final stats snapshot.
    pub fn shutdown_server(&self) -> io::Result<StatsSummary> {
        match self.call(&Request::Shutdown)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }
}

impl SolverBackend for PipelinedClient {
    fn session_root(&self, session: u64) -> io::Result<ProblemId> {
        match self.call(&Request::Root { session })? {
            Response::Root { problem } => Ok(ProblemId::from_wire(problem)),
            other => Err(unexpected(other)),
        }
    }

    fn submit(&self, parent: ProblemId, clauses: Vec<Vec<Lit>>) -> io::Result<Ticket> {
        let tag = self.submit_request(&Request::Solve {
            parent: parent.to_wire(),
            clauses: lits_to_clauses(&clauses),
        })?;
        Ok(Ticket(TicketInner::Tagged(tag)))
    }

    fn wait(&self, ticket: Ticket) -> io::Result<Option<SolveReply>> {
        let TicketInner::Tagged(tag) = ticket.0 else {
            return Err(foreign_ticket());
        };
        solved_reply(self.wait_response(tag)?)
    }

    fn release(&self, id: ProblemId) -> io::Result<()> {
        self.submit_forgotten(&Request::Release {
            problem: id.to_wire(),
        })
    }

    fn stats(&self) -> io::Result<StatsSummary> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// The daemon's node id rides in every id it mints, so a read-only
    /// root lookup labels the stats with the REAL node id (the trait
    /// default would hardcode 0, misattributing a `--node-id 2`
    /// daemon's counters).
    fn node_stats(&self) -> io::Result<FleetStats> {
        let node = SolverBackend::session_root(self, 0)?.node();
        Ok(FleetStats {
            nodes: vec![(node, SolverBackend::stats(self)?)],
        })
    }

    /// One corked window: all frames written under one writer lock,
    /// the socket flushed once (see [`PipelinedClient::submit_batch`]),
    /// replies redeemed in request order.
    fn solve_batch(
        &self,
        requests: Vec<(ProblemId, Vec<Vec<Lit>>)>,
    ) -> io::Result<Vec<Option<SolveReply>>> {
        let window: Vec<Request> = requests
            .into_iter()
            .map(|(parent, clauses)| Request::Solve {
                parent: parent.to_wire(),
                clauses: lits_to_clauses(&clauses),
            })
            .collect();
        self.submit_batch(&window)?
            .into_iter()
            .map(|tag| solved_reply(self.wait_response(tag)?))
            .collect()
    }
}

/// Maps a solve response to the trait's reply contract: `Solved`
/// decodes, a server-side `Error` (dead/unknown reference) is the
/// `Ok(None)` answer in-process backends give, anything else is a
/// protocol violation.
fn solved_reply(response: Response) -> io::Result<Option<SolveReply>> {
    match response {
        Response::Solved {
            problem,
            sat,
            rederived,
            conflicts,
            model,
        } => Ok(Some(SolveReply {
            problem: ProblemId::from_wire(problem),
            result: if sat {
                SolveResult::Sat
            } else {
                SolveResult::Unsat
            },
            model,
            conflicts,
            rederived,
        })),
        Response::Error(_) => Ok(None),
        other => Err(unexpected(other)),
    }
}

// ---------------------------------------------------------------------
// The cluster backend.
// ---------------------------------------------------------------------

/// Typed payload identifying *which cluster node* an error came from.
/// Every transport failure a [`ClusterBackend`] surfaces wraps the
/// underlying error in one of these, so a caller can tell "node 2
/// died" from "the cluster is misconfigured" without string matching:
///
/// ```
/// # use lwsnap_service::NodeError;
/// fn failed_node(e: &std::io::Error) -> Option<u16> {
///     e.get_ref()?.downcast_ref::<NodeError>().map(|n| n.node)
/// }
/// ```
#[derive(Debug)]
pub struct NodeError {
    /// The node the failed operation was routed to.
    pub node: NodeId,
    /// The underlying failure, rendered (io::Error is not Clone).
    pub message: String,
}

impl std::fmt::Display for NodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cluster node {}: {}", self.node, self.message)
    }
}

impl std::error::Error for NodeError {}

/// Wraps a node-local failure, preserving its `ErrorKind`.
fn node_error(node: NodeId, e: io::Error) -> io::Error {
    io::Error::new(
        e.kind(),
        NodeError {
            node,
            message: e.to_string(),
        },
    )
}

/// "The id names a node this cluster does not have."
fn unknown_node(node: NodeId) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        NodeError {
            node,
            message: "not a member of this cluster".into(),
        },
    )
}

/// One member node: its id and the pipelined connection to it.
struct ClusterNode {
    id: NodeId,
    client: PipelinedClient,
}

/// The multi-node [`SolverBackend`]: N [`PipelinedClient`]s — one per
/// `lwsnapd` node — behind the consistent-hash [`Ring`].
///
/// * **Routing** — session roots go to the ring-chosen node
///   ([`Ring::node_for`]); every subsequent request self-routes by the
///   node id stamped inside its [`ProblemId`], so a session's whole
///   problem tree stays on one node (snapshots never cross the wire).
/// * **Tag spaces** — correlation tags are per-connection, so the N
///   nodes' tag spaces are disjoint by construction; a ticket carries
///   `(node, tag)` and completions merge through the same
///   ticket/wait machinery as a single connection.
/// * **Stats** — [`SolverBackend::stats`] sums the nodes;
///   [`SolverBackend::node_stats`] keeps the per-node split.
/// * **Failure** — a dead or misbehaving node surfaces as a typed
///   [`NodeError`] naming it; sessions on other nodes are unaffected,
///   and [`ClusterBackend::shutdown`] still drains the survivors
///   gracefully.
pub struct ClusterBackend {
    /// Member nodes, sorted by id (binary-searchable).
    nodes: Vec<ClusterNode>,
    ring: Ring,
}

impl ClusterBackend {
    /// Connects to every node of the cluster map `addrs` (`(node id,
    /// address)` pairs; duplicate ids are an error), ring seed 0.
    pub fn connect<A: ToSocketAddrs>(addrs: &[(NodeId, A)]) -> io::Result<ClusterBackend> {
        ClusterBackend::connect_seeded(addrs, 0)
    }

    /// [`ClusterBackend::connect`] with an explicit ring seed — every
    /// client of one cluster must use the same seed, or their session
    /// placements disagree.
    pub fn connect_seeded<A: ToSocketAddrs>(
        addrs: &[(NodeId, A)],
        seed: u64,
    ) -> io::Result<ClusterBackend> {
        let mut nodes = Vec::with_capacity(addrs.len());
        for (id, addr) in addrs {
            let client = PipelinedClient::connect(addr).map_err(|e| node_error(*id, e))?;
            nodes.push(ClusterNode { id: *id, client });
        }
        nodes.sort_by_key(|n| n.id);
        if nodes.windows(2).any(|w| w[0].id == w[1].id) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "duplicate node id in cluster map",
            ));
        }
        let ring = Ring::new(nodes.iter().map(|n| n.id), seed);
        Ok(ClusterBackend { nodes, ring })
    }

    /// Number of member nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The member node ids, sorted.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|n| n.id).collect()
    }

    /// The routing ring (e.g. to predict placements in tests).
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The connection that owns `node`, or the typed unknown-node error.
    fn node(&self, node: NodeId) -> io::Result<&ClusterNode> {
        self.nodes
            .binary_search_by_key(&node, |n| n.id)
            .map(|at| &self.nodes[at])
            .map_err(|_| unknown_node(node))
    }

    /// Gracefully drains the whole cluster: each node is sent a
    /// `Shutdown` (the daemon finishes in-flight solves and flushes
    /// every reply before exiting) and its final stats snapshot is
    /// collected. Per-node results, so one dead node never masks the
    /// survivors' clean drain.
    pub fn shutdown(&self) -> Vec<(NodeId, io::Result<StatsSummary>)> {
        self.nodes
            .iter()
            .map(|n| {
                let result = n.client.shutdown_server().map_err(|e| node_error(n.id, e));
                (n.id, result)
            })
            .collect()
    }
}

impl SolverBackend for ClusterBackend {
    /// The ring places the session on a node; that node's Fibonacci
    /// shard hash places it inside the node. The returned id must carry
    /// the node id the ring chose — a mismatch means the server was
    /// started with the wrong `--node-id` and is caught here, not after
    /// a session's tree has landed on the wrong node.
    fn session_root(&self, session: u64) -> io::Result<ProblemId> {
        let node = self
            .ring
            .node_for(session)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "cluster has no nodes"))?;
        let member = self.node(node)?;
        let root = member
            .client
            .session_root(session)
            .map_err(|e| node_error(node, e))?;
        if root.node() != node {
            return Err(node_error(
                node,
                ProtoError::WrongNode {
                    got: root.node() as u64,
                    expected: node as u64,
                }
                .into(),
            ));
        }
        Ok(root)
    }

    fn submit(&self, parent: ProblemId, clauses: Vec<Vec<Lit>>) -> io::Result<Ticket> {
        let member = self.node(parent.node())?;
        let tag = member
            .client
            .submit_request(&Request::Solve {
                parent: parent.to_wire(),
                clauses: lits_to_clauses(&clauses),
            })
            .map_err(|e| node_error(member.id, e))?;
        Ok(Ticket(TicketInner::Cluster {
            node: member.id,
            tag,
        }))
    }

    fn wait(&self, ticket: Ticket) -> io::Result<Option<SolveReply>> {
        let TicketInner::Cluster { node, tag } = ticket.0 else {
            return Err(foreign_ticket());
        };
        let member = self.node(node)?;
        let response = member
            .client
            .wait_response(tag)
            .map_err(|e| node_error(node, e))?;
        solved_reply(response).map_err(|e| node_error(node, e))
    }

    fn release(&self, id: ProblemId) -> io::Result<()> {
        let member = self.node(id.node())?;
        member
            .client
            .release(id)
            .map_err(|e| node_error(member.id, e))
    }

    fn stats(&self) -> io::Result<StatsSummary> {
        Ok(self.node_stats()?.total())
    }

    fn node_stats(&self) -> io::Result<FleetStats> {
        let nodes = self
            .nodes
            .iter()
            .map(|n| {
                let summary = n.client.stats().map_err(|e| node_error(n.id, e))?;
                Ok((n.id, summary))
            })
            .collect::<io::Result<_>>()?;
        Ok(FleetStats { nodes })
    }

    /// Corked per node: the batch is split by owning node (order
    /// preserved within each node's window), each node's window is
    /// written with one flush ([`PipelinedClient::submit_batch`]), and
    /// replies are redeemed in the original request order.
    fn solve_batch(
        &self,
        requests: Vec<(ProblemId, Vec<Vec<Lit>>)>,
    ) -> io::Result<Vec<Option<SolveReply>>> {
        // Split into per-node windows, remembering each request's
        // original position.
        let mut windows: Vec<(NodeId, Vec<usize>, Vec<Request>)> = Vec::new();
        for (pos, (parent, clauses)) in requests.iter().enumerate() {
            let node = parent.node();
            self.node(node)?; // unknown nodes fail before any write
            let request = Request::Solve {
                parent: parent.to_wire(),
                clauses: lits_to_clauses(clauses),
            };
            match windows.iter_mut().find(|(n, ..)| *n == node) {
                Some((_, positions, window)) => {
                    positions.push(pos);
                    window.push(request);
                }
                None => windows.push((node, vec![pos], vec![request])),
            }
        }
        // Submit every node's window corked, then wait in request order.
        let mut tickets: Vec<Option<(NodeId, u64)>> = vec![None; requests.len()];
        for (node, positions, window) in &windows {
            let member = self.node(*node)?;
            let tags = member
                .client
                .submit_batch(window)
                .map_err(|e| node_error(*node, e))?;
            for (&pos, tag) in positions.iter().zip(tags) {
                tickets[pos] = Some((*node, tag));
            }
        }
        tickets
            .into_iter()
            .map(|slot| {
                let (node, tag) = slot.expect("every request was submitted");
                self.wait(Ticket(TicketInner::Cluster { node, tag }))
            })
            .collect()
    }
}
