//! Wire-protocol clients: the blocking one-call-at-a-time
//! [`TcpClient`] and the [`PipelinedClient`] that keeps many tagged
//! requests in flight on one connection.
//!
//! Both speak the same `lwsnapd` protocol; the pipelined client uses
//! v2 tagged frames ([`crate::protocol::TAGGED`]) so the server may
//! complete its requests out of order, and implements
//! [`crate::SolverBackend`] so drivers written against the trait can
//! run remotely unchanged.

use std::collections::{HashMap, HashSet};
use std::io::{self, BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, TryLockError};
use std::time::Duration;

use lwsnap_solver::{Lit, SolveResult};

use crate::backend::{foreign_ticket, SolverBackend, Ticket, TicketInner};
use crate::protocol::{
    lits_to_clauses, read_any_frame, read_frame, write_frame, write_tagged_frame, ProtoError,
    Request, Response, StatsSummary,
};
use crate::sharded::{ProblemId, SolveReply};

/// Typed payload of the error a client call returns when the server
/// closed the connection **cleanly between frames** (daemon shutdown,
/// idle reap). Distinct from `UnexpectedEof`, which means the stream
/// died *mid-frame* — a truncation, never a clean goodbye.
///
/// ```
/// # use lwsnap_service::Disconnected;
/// fn is_clean_shutdown(e: &std::io::Error) -> bool {
///     e.get_ref().is_some_and(|inner| inner.is::<Disconnected>())
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disconnected;

impl std::fmt::Display for Disconnected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "server closed the connection")
    }
}

impl std::error::Error for Disconnected {}

pub(crate) fn disconnected() -> io::Error {
    io::Error::new(io::ErrorKind::ConnectionAborted, Disconnected)
}

/// A blocking client for the `lwsnapd` wire protocol: one
/// request/response exchange at a time, in order (legacy v1 frames).
pub struct TcpClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<TcpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(TcpClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream.try_clone()?),
            stream,
        })
    }

    /// Bounds how long a [`TcpClient::call`] may block waiting for the
    /// server's reply (`None` = wait forever). On expiry the call fails
    /// with a `WouldBlock`/`TimedOut` error; the connection may then
    /// hold a half-read frame, so treat a timed-out client as dead and
    /// reconnect — the timeout is for *detecting* a hung server, not
    /// for retrying on a live connection.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// One request/response exchange.
    ///
    /// Error taxonomy: a clean server close between frames is
    /// `ConnectionAborted` carrying [`Disconnected`]; a stream that
    /// dies mid-frame is `UnexpectedEof` (truncation); a configured
    /// read timeout surfaces as `WouldBlock`/`TimedOut`.
    pub fn call(&mut self, request: &Request) -> io::Result<Response> {
        write_frame(&mut self.writer, &request.encode())?;
        let payload = read_frame(&mut self.reader)?.ok_or_else(disconnected)?;
        Response::decode(&payload).map_err(io::Error::from)
    }

    /// The root problem for a session id.
    pub fn session_root(&mut self, session: u64) -> io::Result<u64> {
        match self.call(&Request::Root { session })? {
            Response::Root { problem } => Ok(problem),
            other => Err(unexpected(other)),
        }
    }

    /// Solves `parent ∧ clauses` (DIMACS literals); returns the full
    /// [`Response::Solved`] payload or the server's error as `io::Error`.
    pub fn solve(&mut self, parent: u64, clauses: &[Vec<i64>]) -> io::Result<Response> {
        let response = self.call(&Request::Solve {
            parent,
            clauses: clauses.to_vec(),
        })?;
        match response {
            Response::Solved { .. } => Ok(response),
            Response::Error(msg) => Err(io::Error::new(io::ErrorKind::NotFound, msg)),
            other => Err(unexpected(other)),
        }
    }

    /// Releases a problem snapshot.
    pub fn release(&mut self, problem: u64) -> io::Result<()> {
        match self.call(&Request::Release { problem })? {
            Response::Released => Ok(()),
            Response::Error(msg) => Err(io::Error::new(io::ErrorKind::NotFound, msg)),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the aggregated service statistics.
    pub fn stats(&mut self) -> io::Result<StatsSummary> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the daemon to shut down; returns its final stats snapshot.
    pub fn shutdown_server(&mut self) -> io::Result<StatsSummary> {
        match self.call(&Request::Shutdown)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(response: Response) -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidData,
        ProtoError::BadTag(match response {
            Response::Root { .. } => 1,
            Response::Solved { .. } => 2,
            Response::Released => 3,
            Response::Stats(_) => 4,
            Response::Error(_) => 5,
        }),
    )
}

// ---------------------------------------------------------------------
// The pipelined client.
// ---------------------------------------------------------------------

/// Shared completion state between waiting threads.
struct PipeState {
    /// Responses that arrived for tags nobody has claimed yet.
    done: HashMap<u64, Response>,
    /// Tags whose responses should be dropped on arrival
    /// (fire-and-forget requests like release).
    forgotten: HashSet<u64>,
    /// A terminal transport error: once set, every wait fails with it.
    dead: Option<(io::ErrorKind, String)>,
}

/// A pipelined client: many tagged requests in flight on one
/// connection, completions redeemed in any order.
///
/// `send`-many/`await`-many is the intended shape —
///
/// ```no_run
/// # use lwsnap_service::{PipelinedClient, SolverBackend};
/// # fn main() -> std::io::Result<()> {
/// let client = PipelinedClient::connect("127.0.0.1:7557")?;
/// let root = client.session_root(1)?;
/// let tickets: Vec<_> = (1..=8i64)
///     .map(|v| client.submit(root, vec![vec![lwsnap_solver::Lit::from_dimacs(v)]]))
///     .collect::<std::io::Result<_>>()?;
/// for t in tickets {
///     let reply = client.wait(t)?.expect("live root");
/// }
/// # Ok(()) }
/// ```
///
/// — eight solves cost one round trip plus the slowest solve, not
/// eight round trips. All methods take `&self`; the client may be
/// shared across threads (waits coordinate through a condvar, with one
/// thread at a time elected to read the socket).
pub struct PipelinedClient {
    stream: TcpStream,
    reader: Mutex<BufReader<TcpStream>>,
    writer: Mutex<BufWriter<TcpStream>>,
    state: Mutex<PipeState>,
    arrived: Condvar,
    next_tag: AtomicU64,
}

impl PipelinedClient {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<PipelinedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(PipelinedClient {
            reader: Mutex::new(BufReader::new(stream.try_clone()?)),
            writer: Mutex::new(BufWriter::new(stream.try_clone()?)),
            stream,
            state: Mutex::new(PipeState {
                done: HashMap::new(),
                forgotten: HashSet::new(),
                dead: None,
            }),
            arrived: Condvar::new(),
            next_tag: AtomicU64::new(1),
        })
    }

    /// Bounds how long a blocked wait may sit on the socket before
    /// failing (`None` = wait forever); see
    /// [`TcpClient::set_read_timeout`] for the caveats.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Writes one tagged request and returns its correlation tag.
    pub fn submit_request(&self, request: &Request) -> io::Result<u64> {
        let tag = self.next_tag.fetch_add(1, Ordering::Relaxed);
        let mut writer = self.writer.lock().unwrap();
        write_tagged_frame(&mut *writer, tag, &request.encode())?;
        Ok(tag)
    }

    /// Submits a request whose response should be discarded on arrival
    /// (fire-and-forget).
    fn submit_forgotten(&self, request: &Request) -> io::Result<()> {
        let tag = self.submit_request(request)?;
        let mut st = self.state.lock().unwrap();
        // The response may have raced in already.
        if st.done.remove(&tag).is_none() {
            st.forgotten.insert(tag);
        }
        Ok(())
    }

    /// Blocks until the response for `tag` arrives, reading the socket
    /// if no other thread currently is.
    pub fn wait_response(&self, tag: u64) -> io::Result<Response> {
        loop {
            {
                let mut st = self.state.lock().unwrap();
                if let Some(resp) = st.done.remove(&tag) {
                    return Ok(resp);
                }
                if let Some((kind, msg)) = &st.dead {
                    return Err(io::Error::new(*kind, msg.clone()));
                }
            }
            match self.reader.try_lock() {
                Ok(mut reader) => {
                    let read = read_any_frame(&mut *reader);
                    let mut st = self.state.lock().unwrap();
                    match read {
                        Ok(Some(frame)) => {
                            let Some(frame_tag) = frame.tag else {
                                st.dead =
                                    Some((io::ErrorKind::InvalidData, "untagged reply".into()));
                                self.arrived.notify_all();
                                continue;
                            };
                            if st.forgotten.remove(&frame_tag) {
                                continue;
                            }
                            match Response::decode(&frame.payload) {
                                Ok(resp) => {
                                    st.done.insert(frame_tag, resp);
                                }
                                Err(e) => {
                                    st.dead = Some((io::ErrorKind::InvalidData, e.to_string()));
                                }
                            }
                            self.arrived.notify_all();
                        }
                        Ok(None) => {
                            st.dead =
                                Some((io::ErrorKind::ConnectionAborted, Disconnected.to_string()));
                            self.arrived.notify_all();
                        }
                        Err(e) => {
                            st.dead = Some((e.kind(), e.to_string()));
                            self.arrived.notify_all();
                        }
                    }
                }
                Err(TryLockError::WouldBlock) => {
                    // Someone else is reading; wait for them to deliver.
                    // The timeout re-checks for a reader that bailed out
                    // between our try_lock and their notify.
                    let st = self.state.lock().unwrap();
                    if st.done.contains_key(&tag) || st.dead.is_some() {
                        continue;
                    }
                    let _ = self
                        .arrived
                        .wait_timeout(st, Duration::from_millis(50))
                        .unwrap();
                }
                Err(TryLockError::Poisoned(e)) => panic!("reader lock poisoned: {e}"),
            }
        }
    }

    /// Submit + wait for one request (no overlap).
    pub fn call(&self, request: &Request) -> io::Result<Response> {
        let tag = self.submit_request(request)?;
        self.wait_response(tag)
    }

    /// Asks the daemon to shut down; returns its final stats snapshot.
    pub fn shutdown_server(&self) -> io::Result<StatsSummary> {
        match self.call(&Request::Shutdown)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }
}

impl SolverBackend for PipelinedClient {
    fn session_root(&self, session: u64) -> io::Result<ProblemId> {
        match self.call(&Request::Root { session })? {
            Response::Root { problem } => Ok(ProblemId::from_wire(problem)),
            other => Err(unexpected(other)),
        }
    }

    fn submit(&self, parent: ProblemId, clauses: Vec<Vec<Lit>>) -> io::Result<Ticket> {
        let tag = self.submit_request(&Request::Solve {
            parent: parent.to_wire(),
            clauses: lits_to_clauses(&clauses),
        })?;
        Ok(Ticket(TicketInner::Tagged(tag)))
    }

    fn wait(&self, ticket: Ticket) -> io::Result<Option<SolveReply>> {
        let TicketInner::Tagged(tag) = ticket.0 else {
            return Err(foreign_ticket());
        };
        match self.wait_response(tag)? {
            Response::Solved {
                problem,
                sat,
                rederived,
                conflicts,
                model,
            } => Ok(Some(SolveReply {
                problem: ProblemId::from_wire(problem),
                result: if sat {
                    SolveResult::Sat
                } else {
                    SolveResult::Unsat
                },
                model,
                conflicts,
                rederived,
            })),
            // Dead/unknown references answer None, like the in-process
            // backends (the server's message is not worth a transport
            // error).
            Response::Error(_) => Ok(None),
            other => Err(unexpected(other)),
        }
    }

    fn release(&self, id: ProblemId) -> io::Result<()> {
        self.submit_forgotten(&Request::Release {
            problem: id.to_wire(),
        })
    }

    fn stats(&self) -> io::Result<StatsSummary> {
        match self.call(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }
}
