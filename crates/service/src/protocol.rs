//! The wire protocol: length-prefixed binary frames over any
//! `Read`/`Write` transport.
//!
//! Every message is one frame: a little-endian `u32` header word
//! followed by the payload; payloads start with a one-byte tag. The
//! encoding is hand-rolled (the workspace builds offline, without serde)
//! and deliberately boring: LE fixed-width integers, `u32`-prefixed
//! sequences, bit-packed models.
//!
//! ## Frame versions
//!
//! * **v1 (legacy)** — header bit 31 clear: the low 31 bits are the
//!   payload length and the payload is the bare message. Responses to
//!   v1 requests come back in request order.
//! * **v2 (tagged)** — header bit 31 ([`TAGGED`]) set: the payload
//!   starts with a little-endian `u64` *correlation tag* chosen by the
//!   client, followed by the message. The server echoes the tag on the
//!   reply and may complete tagged requests **out of order**, which is
//!   what lets one connection pipeline many in-flight solves.
//!
//! Both versions coexist on one connection; old clients keep working
//! against new servers unchanged.
//!
//! Clause literals travel in DIMACS convention (non-zero `i64`, sign =
//! negation) so the protocol stays independent of the solver's internal
//! literal encoding.

use std::io::{self, Read, Write};

use lwsnap_solver::Lit;
use lwsnap_trace::{Event, HistogramSnapshot, Kind, MetricsSnapshot};

/// Upper bound on a frame payload (guards against hostile or corrupt
/// length prefixes before any allocation happens).
pub const MAX_FRAME: u32 = 64 << 20;

/// Header bit marking a v2 tagged frame.
pub const TAGGED: u32 = 1 << 31;

/// Protocol-level decode failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// Payload ended before the message did.
    Truncated,
    /// Unknown message tag.
    BadTag(u8),
    /// A length prefix exceeded [`MAX_FRAME`] or its container.
    BadLength(u64),
    /// A string field was not UTF-8.
    BadUtf8,
    /// A clause literal was zero (forbidden in DIMACS convention).
    ZeroLiteral,
    /// A wire problem id named a shard the service does not have.
    BadShard(u64),
    /// A wire problem id was routed to the wrong cluster node (stale
    /// cluster map, or a router bug).
    WrongNode {
        /// The node id the problem id names.
        got: u64,
        /// The node id of the service that received it.
        expected: u64,
    },
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated message"),
            ProtoError::BadTag(t) => write!(f, "unknown message tag {t}"),
            ProtoError::BadLength(n) => write!(f, "implausible length {n}"),
            ProtoError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            ProtoError::ZeroLiteral => write!(f, "zero literal in clause"),
            ProtoError::BadShard(s) => write!(f, "shard index {s} out of range"),
            ProtoError::WrongNode { got, expected } => {
                write!(
                    f,
                    "problem id routed to node {got}, this is node {expected}"
                )
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<ProtoError> for io::Error {
    fn from(e: ProtoError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// A client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// The root problem for a client session (the service hashes the
    /// session id onto a shard).
    Root {
        /// Client-chosen session identifier.
        session: u64,
    },
    /// Solve `parent ∧ clauses`.
    Solve {
        /// Wire id of the parent problem ([`crate::ProblemId::to_wire`]).
        parent: u64,
        /// Incremental constraint, DIMACS literals.
        clauses: Vec<Vec<i64>>,
    },
    /// Release a problem snapshot.
    Release {
        /// Wire id of the problem to release.
        problem: u64,
    },
    /// Fetch aggregated service statistics.
    Stats,
    /// Ask the daemon to shut down (connection close follows).
    Shutdown,
    /// Ship one edge of a session's constraint path log to its ring
    /// successor: "on the session's home node, `problem` was derived
    /// from `parent` by adding `clauses`". The receiving node records
    /// the edge in its passive replica store ([`crate::ReplicaStore`])
    /// without solving anything; clients send these fire-and-forget
    /// after each successful solve. Acked with [`Response::Released`].
    Replicate {
        /// The session whose path log this edge extends.
        session: u64,
        /// Wire id of the derived problem (on its HOME node).
        problem: u64,
        /// Wire id of the parent it was derived from.
        parent: u64,
        /// The incremental constraint, DIMACS literals.
        clauses: Vec<Vec<i64>>,
    },
    /// Promote the replica of `session`: replay the recorded constraint
    /// paths of `problems` onto this node's own problem tree (the home
    /// node died, or is draining out). Answered with
    /// [`Response::Promoted`] mapping each old wire id to its promoted
    /// local id.
    Promote {
        /// The session being failed over onto this node.
        session: u64,
        /// The home-node wire ids to materialize here, oldest first.
        problems: Vec<u64>,
    },
    /// Drop replicated path-log edges for released problems: the
    /// client released `problems` on the session's home node, so their
    /// edges in this node's passive replica store are dead weight —
    /// they will never be promoted. The replica GC counterpart of
    /// [`Request::Replicate`], sent fire-and-forget on release; acked
    /// with [`Response::Released`]. Edges that still have recorded
    /// children are kept (the child's replay path runs through them).
    Unreplicate {
        /// The session whose replicated edges are being pruned.
        session: u64,
        /// Home-node wire ids of the released problems.
        problems: Vec<u64>,
    },
    /// Server-to-server path-log replication: the session's HOME node
    /// forwards the derivation edge to the ring successor itself, so a
    /// session is replicated correctly no matter how many clients drive
    /// it. Identical in effect to [`Request::Replicate`] but carries a
    /// per-session sequence number assigned by the home node, making
    /// the frame idempotent — the client-fanned and server-fanned paths
    /// can coexist during a rollout without double-recording, and a
    /// chaos-duplicated frame is a no-op. Acked with
    /// [`Response::Released`].
    Forward {
        /// The session whose path log this edge extends.
        session: u64,
        /// Home-node-assigned edge sequence number (dedup key).
        seq: u64,
        /// Wire id of the derived problem (on its HOME node).
        problem: u64,
        /// Wire id of the parent it was derived from.
        parent: u64,
        /// The incremental constraint, DIMACS literals.
        clauses: Vec<Vec<i64>>,
    },
    /// Liveness probe for the heartbeat/gossip layer. Sent on a
    /// jittered timer by peers (server-to-server) and routers
    /// (client-to-server) over dedicated lightweight connections, so a
    /// stalled solve pipeline never masks — or fakes — liveness.
    /// Carries the sender's membership epoch; the receiver remembers
    /// the highest epoch it has seen and echoes it in
    /// [`Response::Pong`], which is how a stale router learns the
    /// membership moved on without it.
    Ping {
        /// Sender identity: a node id for server peers, `u64::MAX` for
        /// client routers.
        sender: u64,
        /// The sender's membership epoch (bumped on every add, remove
        /// or failover the sender has locally applied).
        epoch: u64,
    },
    /// Fetch the node's full metrics snapshot (named counters, gauges
    /// and latency histograms with their buckets) — the scrape plane's
    /// wire form, answered with [`Response::Metrics`]. Unlike
    /// [`Request::Stats`], histograms survive aggregation: a client
    /// absorbs per-node snapshots into fleet quantiles.
    Stats2,
    /// Drain the node's trace rings and ship the merged event stream,
    /// answered with [`Response::Trace`]. Draining is consuming: each
    /// event is exported once, to one caller.
    TraceDump,
}

/// Aggregated counters carried by [`Response::Stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSummary {
    /// Number of shards.
    pub shards: u32,
    /// Queries served.
    pub queries: u64,
    /// Live (unreleased) problems.
    pub live_problems: u64,
    /// Resident (unevicted) solver snapshots.
    pub resident_snapshots: u64,
    /// Queries served straight from a resident snapshot.
    pub snapshot_hits: u64,
    /// Queries that re-derived an evicted parent.
    pub rederivations: u64,
    /// Clauses replayed during re-derivations.
    pub replayed_clauses: u64,
    /// Conflicts spent inside re-derivations.
    pub rederive_conflicts: u64,
    /// Snapshots evicted by the LRU policy.
    pub evictions: u64,
    /// Conflicts across all queries.
    pub total_conflicts: u64,
    /// Promote requests served (sessions failed over ONTO this node).
    pub failovers: u64,
    /// Problems materialized by replica-promotion replay.
    pub replica_promotions: u64,
    /// Payload bytes held in the passive replica store.
    pub replica_bytes: u64,
    /// Bytes resident in the snapshot stores, shared storage counted
    /// **once** (what the eviction byte budget compares against).
    pub resident_bytes: u64,
    /// Physical pages mapped by two or more resident snapshots (0 on
    /// the deep-clone store).
    pub shared_pages: u64,
    /// Physical pages private to exactly one resident snapshot (0 on
    /// the deep-clone store).
    pub private_pages: u64,
    /// Heartbeat probes to peers that went unanswered (server-to-server
    /// gossip layer; 0 on nodes with no peers configured).
    pub heartbeat_misses: u64,
    /// Linear path-log chains collapsed into composite edges by the
    /// replica store's byte-budget compaction policy.
    pub compactions: u64,
    /// Shared pages copied on first divergent write by snapshot puts
    /// (0 on the deep-clone store).
    pub cow_page_copies: u64,
    /// Fresh pages materialized from the zero page by snapshot puts
    /// (0 on the deep-clone store).
    pub zero_fills: u64,
    /// Bytes written into page frames by snapshot puts (0 on the
    /// deep-clone store).
    pub bytes_written: u64,
}

impl StatsSummary {
    /// Folds another node's summary into this one (counter-wise sum;
    /// `shards` adds too, giving the cluster-total shard count). The
    /// lossy step cross-node aggregation takes — keep
    /// [`crate::stats::FleetStats`] around when per-node attribution
    /// matters.
    pub fn absorb(&mut self, other: &StatsSummary) {
        self.shards += other.shards;
        self.queries += other.queries;
        self.live_problems += other.live_problems;
        self.resident_snapshots += other.resident_snapshots;
        self.snapshot_hits += other.snapshot_hits;
        self.rederivations += other.rederivations;
        self.replayed_clauses += other.replayed_clauses;
        self.rederive_conflicts += other.rederive_conflicts;
        self.evictions += other.evictions;
        self.total_conflicts += other.total_conflicts;
        self.failovers += other.failovers;
        self.replica_promotions += other.replica_promotions;
        self.replica_bytes += other.replica_bytes;
        self.resident_bytes += other.resident_bytes;
        self.shared_pages += other.shared_pages;
        self.private_pages += other.private_pages;
        self.heartbeat_misses += other.heartbeat_misses;
        self.compactions += other.compactions;
        self.cow_page_copies += other.cow_page_copies;
        self.zero_fills += other.zero_fills;
        self.bytes_written += other.bytes_written;
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Root`].
    Root {
        /// Wire id of the session's root problem.
        problem: u64,
    },
    /// Reply to [`Request::Solve`].
    Solved {
        /// Wire id of the new problem `p∧q`.
        problem: u64,
        /// `true` = SAT (then `model` is `Some`), `false` = UNSAT.
        sat: bool,
        /// Whether the parent was re-derived from an evicted snapshot.
        rederived: bool,
        /// Conflicts the query cost.
        conflicts: u64,
        /// The model, if SAT.
        model: Option<Vec<bool>>,
    },
    /// Reply to [`Request::Release`] (idempotent).
    Released,
    /// Reply to [`Request::Stats`].
    Stats(StatsSummary),
    /// The request could not be served (dead reference, bad shard, ...).
    Error(String),
    /// Reply to [`Request::Promote`]: `(old home-node wire id, promoted
    /// wire id on this node)` for every problem whose path could be
    /// replayed (problems with no recorded path are omitted).
    Promoted {
        /// Old-to-new wire id pairs, in the request's problem order.
        mapping: Vec<(u64, u64)>,
    },
    /// Reply to [`Request::Ping`]: the responder is alive. `epoch` is
    /// the highest membership epoch the responder has observed from any
    /// pinger — a router seeing an epoch above its own knows its
    /// membership view is stale and must re-verify every member.
    Pong {
        /// Responder identity (its cluster node id).
        node: u64,
        /// Highest membership epoch the responder has observed.
        epoch: u64,
    },
    /// Reply to [`Request::Stats2`]: the node's named metrics with
    /// full histogram buckets (mergeable across nodes).
    Metrics(MetricsSnapshot),
    /// Reply to [`Request::TraceDump`]: the node's merged,
    /// time-ordered trace events drained so far.
    Trace(Vec<Event>),
}

// ---------------------------------------------------------------------
// Frame I/O.
// ---------------------------------------------------------------------

/// One decoded frame: the optional v2 correlation tag plus the message
/// payload (tag bytes already stripped).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// The correlation tag (`None` for legacy v1 frames).
    pub tag: Option<u64>,
    /// The message payload.
    pub payload: Vec<u8>,
}

fn check_len(len: usize) -> Result<u32, ProtoError> {
    u32::try_from(len)
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or(ProtoError::BadLength(len as u64))
}

/// Writes one legacy (v1) length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = check_len(payload.len())?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Writes one v2 tagged frame: header bit 31 set, payload prefixed with
/// the little-endian correlation tag.
pub fn write_tagged_frame(w: &mut impl Write, tag: u64, payload: &[u8]) -> io::Result<()> {
    put_tagged_frame(w, tag, payload)?;
    w.flush()
}

/// Writes one v2 tagged frame **without flushing** — the corked form
/// batching clients use to put a whole window of frames on a buffered
/// writer and flush the socket once (see
/// [`crate::PipelinedClient::submit_batch`]).
pub fn put_tagged_frame(w: &mut impl Write, tag: u64, payload: &[u8]) -> io::Result<()> {
    let len = check_len(payload.len().saturating_add(8))?;
    w.write_all(&(len | TAGGED).to_le_bytes())?;
    w.write_all(&tag.to_le_bytes())?;
    w.write_all(payload)
}

/// Reads exactly `buf.len()` bytes. `Ok(false)` if the stream ended
/// cleanly *before the first byte*; an EOF after a partial read is an
/// `UnexpectedEof` error (truncation is never silently a clean close).
fn read_exact_or_clean_eof(r: &mut impl Read, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(false),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Reads one legacy (v1) frame. `Ok(None)` on clean EOF at a frame
/// boundary (peer closed the connection); a v2 header here is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    match read_any_frame(r)? {
        None => Ok(None),
        Some(Frame { tag: None, payload }) => Ok(Some(payload)),
        Some(Frame { tag: Some(_), .. }) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "unexpected tagged frame on a v1 stream",
        )),
    }
}

/// Reads one frame of either version. `Ok(None)` on clean EOF at a
/// frame boundary; an EOF inside a frame (even inside the 4-byte
/// header) is an `UnexpectedEof` error.
pub fn read_any_frame(r: &mut impl Read) -> io::Result<Option<Frame>> {
    let mut header = [0u8; 4];
    if !read_exact_or_clean_eof(r, &mut header)? {
        return Ok(None);
    }
    let word = u32::from_le_bytes(header);
    let tagged = word & TAGGED != 0;
    let len = word & !TAGGED;
    if len > MAX_FRAME || (tagged && len < 8) {
        return Err(ProtoError::BadLength(len as u64).into());
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let tag = if tagged {
        let tag = u64::from_le_bytes(payload[..8].try_into().unwrap());
        payload.drain(..8);
        Some(tag)
    } else {
        None
    };
    Ok(Some(Frame { tag, payload }))
}

/// One decoded frame whose payload **borrows** the receive buffer it
/// was parsed from — the zero-copy twin of [`Frame`]. The reactor's
/// pooled read path parses frames in place off its block and decodes
/// the [`Request`] straight out of the borrow, so payload bytes are
/// never staged through an intermediate `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameRef<'a> {
    /// The correlation tag (`None` for legacy v1 frames).
    pub tag: Option<u64>,
    /// The message payload, borrowed from the receive buffer.
    pub payload: &'a [u8],
}

impl FrameRef<'_> {
    /// An owning copy (the compatibility bridge to [`Frame`]).
    pub fn to_owned(self) -> Frame {
        Frame {
            tag: self.tag,
            payload: self.payload.to_vec(),
        }
    }
}

/// Total size (header + body) of the frame starting at the front of
/// `buf`, or `Ok(None)` if fewer than 4 header bytes are present yet.
/// The spill path of the pooled reader uses this to copy *exactly* the
/// bytes a block-spanning frame still needs, and not one more.
pub fn frame_len(buf: &[u8]) -> Result<Option<usize>, ProtoError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let word = u32::from_le_bytes(buf[..4].try_into().unwrap());
    let tagged = word & TAGGED != 0;
    let len = (word & !TAGGED) as usize;
    if len > MAX_FRAME as usize || (tagged && len < 8) {
        return Err(ProtoError::BadLength(len as u64));
    }
    Ok(Some(4 + len))
}

/// Incremental (non-blocking) frame extraction for readiness-loop
/// servers: examines the front of `buf` and returns the first complete
/// frame plus the number of bytes it consumed, `Ok(None)` if more bytes
/// are needed, or a [`ProtoError`] for a malformed header. Never blocks
/// and never consumes a partial frame. The payload borrows `buf`; see
/// [`parse_frame`] for the owning form.
pub fn parse_frame_ref(buf: &[u8]) -> Result<Option<(FrameRef<'_>, usize)>, ProtoError> {
    let Some(total) = frame_len(buf)? else {
        return Ok(None);
    };
    if buf.len() < total {
        return Ok(None);
    }
    let body = &buf[4..total];
    let tagged = u32::from_le_bytes(buf[..4].try_into().unwrap()) & TAGGED != 0;
    let (tag, payload) = if tagged {
        (
            Some(u64::from_le_bytes(body[..8].try_into().unwrap())),
            &body[8..],
        )
    } else {
        (None, body)
    };
    Ok(Some((FrameRef { tag, payload }, total)))
}

/// [`parse_frame_ref`] with an owning payload, for callers that keep
/// the frame past the buffer's lifetime.
pub fn parse_frame(buf: &[u8]) -> Result<Option<(Frame, usize)>, ProtoError> {
    Ok(parse_frame_ref(buf)?.map(|(f, used)| (f.to_owned(), used)))
}

// ---------------------------------------------------------------------
// Payload encoding.
// ---------------------------------------------------------------------

struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let end = self.pos.checked_add(n).ok_or(ProtoError::Truncated)?;
        if end > self.buf.len() {
            return Err(ProtoError::Truncated);
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, ProtoError> {
        Ok(i64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    /// A `u32` used as an element count: bounded by what the remaining
    /// payload could possibly hold (`min_elem_size` bytes per element).
    fn count(&mut self, min_elem_size: usize) -> Result<usize, ProtoError> {
        let n = self.u32()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(min_elem_size.max(1)) > remaining {
            return Err(ProtoError::BadLength(n as u64));
        }
        Ok(n)
    }

    fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::BadLength((self.buf.len() - self.pos) as u64))
        }
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn encode_clauses(out: &mut Vec<u8>, clauses: &[Vec<i64>]) {
    put_u32(out, clauses.len() as u32);
    for clause in clauses {
        put_u32(out, clause.len() as u32);
        for &lit in clause {
            out.extend_from_slice(&lit.to_le_bytes());
        }
    }
}

fn decode_clauses(d: &mut Decoder<'_>) -> Result<Vec<Vec<i64>>, ProtoError> {
    let nclauses = d.count(4)?;
    let mut clauses = Vec::with_capacity(nclauses);
    for _ in 0..nclauses {
        let nlits = d.count(8)?;
        let mut clause = Vec::with_capacity(nlits);
        for _ in 0..nlits {
            let lit = d.i64()?;
            if lit == 0 {
                return Err(ProtoError::ZeroLiteral);
            }
            clause.push(lit);
        }
        clauses.push(clause);
    }
    Ok(clauses)
}

fn encode_model(out: &mut Vec<u8>, model: &Option<Vec<bool>>) {
    match model {
        None => out.push(0),
        Some(bits) => {
            out.push(1);
            put_u32(out, bits.len() as u32);
            let mut byte = 0u8;
            for (i, &b) in bits.iter().enumerate() {
                if b {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    out.push(byte);
                    byte = 0;
                }
            }
            if bits.len() % 8 != 0 {
                out.push(byte);
            }
        }
    }
}

fn decode_model(d: &mut Decoder<'_>) -> Result<Option<Vec<bool>>, ProtoError> {
    match d.u8()? {
        0 => Ok(None),
        1 => {
            let nbits = d.u32()? as usize;
            let nbytes = nbits.div_ceil(8);
            let packed = d.bytes(nbytes)?;
            Ok(Some(
                (0..nbits)
                    .map(|i| packed[i / 8] >> (i % 8) & 1 == 1)
                    .collect(),
            ))
        }
        t => Err(ProtoError::BadTag(t)),
    }
}

impl Request {
    /// Encodes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Root { session } => {
                out.push(1);
                put_u64(&mut out, *session);
            }
            Request::Solve { parent, clauses } => {
                out.push(2);
                put_u64(&mut out, *parent);
                encode_clauses(&mut out, clauses);
            }
            Request::Release { problem } => {
                out.push(3);
                put_u64(&mut out, *problem);
            }
            Request::Stats => out.push(4),
            Request::Shutdown => out.push(5),
            Request::Replicate {
                session,
                problem,
                parent,
                clauses,
            } => {
                out.push(6);
                put_u64(&mut out, *session);
                put_u64(&mut out, *problem);
                put_u64(&mut out, *parent);
                encode_clauses(&mut out, clauses);
            }
            Request::Promote { session, problems } => {
                out.push(7);
                put_u64(&mut out, *session);
                put_u32(&mut out, problems.len() as u32);
                for &p in problems {
                    put_u64(&mut out, p);
                }
            }
            Request::Unreplicate { session, problems } => {
                out.push(8);
                put_u64(&mut out, *session);
                put_u32(&mut out, problems.len() as u32);
                for &p in problems {
                    put_u64(&mut out, p);
                }
            }
            Request::Forward {
                session,
                seq,
                problem,
                parent,
                clauses,
            } => {
                out.push(9);
                put_u64(&mut out, *session);
                put_u64(&mut out, *seq);
                put_u64(&mut out, *problem);
                put_u64(&mut out, *parent);
                encode_clauses(&mut out, clauses);
            }
            Request::Ping { sender, epoch } => {
                out.push(10);
                put_u64(&mut out, *sender);
                put_u64(&mut out, *epoch);
            }
            Request::Stats2 => out.push(11),
            Request::TraceDump => out.push(12),
        }
        out
    }

    /// Decodes a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtoError> {
        let mut d = Decoder::new(payload);
        let req = match d.u8()? {
            1 => Request::Root { session: d.u64()? },
            2 => Request::Solve {
                parent: d.u64()?,
                clauses: decode_clauses(&mut d)?,
            },
            3 => Request::Release { problem: d.u64()? },
            4 => Request::Stats,
            5 => Request::Shutdown,
            6 => Request::Replicate {
                session: d.u64()?,
                problem: d.u64()?,
                parent: d.u64()?,
                clauses: decode_clauses(&mut d)?,
            },
            7 => Request::Promote {
                session: d.u64()?,
                problems: {
                    let n = d.count(8)?;
                    (0..n).map(|_| d.u64()).collect::<Result<_, _>>()?
                },
            },
            8 => Request::Unreplicate {
                session: d.u64()?,
                problems: {
                    let n = d.count(8)?;
                    (0..n).map(|_| d.u64()).collect::<Result<_, _>>()?
                },
            },
            9 => Request::Forward {
                session: d.u64()?,
                seq: d.u64()?,
                problem: d.u64()?,
                parent: d.u64()?,
                clauses: decode_clauses(&mut d)?,
            },
            10 => Request::Ping {
                sender: d.u64()?,
                epoch: d.u64()?,
            },
            11 => Request::Stats2,
            12 => Request::TraceDump,
            t => return Err(ProtoError::BadTag(t)),
        };
        d.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Encodes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Root { problem } => {
                out.push(1);
                put_u64(&mut out, *problem);
            }
            Response::Solved {
                problem,
                sat,
                rederived,
                conflicts,
                model,
            } => {
                out.push(2);
                put_u64(&mut out, *problem);
                out.push(*sat as u8);
                out.push(*rederived as u8);
                put_u64(&mut out, *conflicts);
                encode_model(&mut out, model);
            }
            Response::Released => out.push(3),
            Response::Stats(s) => {
                out.push(4);
                put_u32(&mut out, s.shards);
                for v in [
                    s.queries,
                    s.live_problems,
                    s.resident_snapshots,
                    s.snapshot_hits,
                    s.rederivations,
                    s.replayed_clauses,
                    s.rederive_conflicts,
                    s.evictions,
                    s.total_conflicts,
                    s.failovers,
                    s.replica_promotions,
                    s.replica_bytes,
                    s.resident_bytes,
                    s.shared_pages,
                    s.private_pages,
                    s.heartbeat_misses,
                    s.compactions,
                    s.cow_page_copies,
                    s.zero_fills,
                    s.bytes_written,
                ] {
                    put_u64(&mut out, v);
                }
            }
            Response::Error(msg) => {
                out.push(5);
                put_u32(&mut out, msg.len() as u32);
                out.extend_from_slice(msg.as_bytes());
            }
            Response::Promoted { mapping } => {
                out.push(6);
                put_u32(&mut out, mapping.len() as u32);
                for &(old, new) in mapping {
                    put_u64(&mut out, old);
                    put_u64(&mut out, new);
                }
            }
            Response::Pong { node, epoch } => {
                out.push(7);
                put_u64(&mut out, *node);
                put_u64(&mut out, *epoch);
            }
            Response::Metrics(m) => {
                out.push(8);
                encode_metrics(&mut out, m);
            }
            Response::Trace(events) => {
                out.push(9);
                encode_events(&mut out, events);
            }
        }
        out
    }

    /// Decodes a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtoError> {
        let mut d = Decoder::new(payload);
        let resp = match d.u8()? {
            1 => Response::Root { problem: d.u64()? },
            2 => Response::Solved {
                problem: d.u64()?,
                sat: d.u8()? != 0,
                rederived: d.u8()? != 0,
                conflicts: d.u64()?,
                model: decode_model(&mut d)?,
            },
            3 => Response::Released,
            4 => Response::Stats(StatsSummary {
                shards: d.u32()?,
                queries: d.u64()?,
                live_problems: d.u64()?,
                resident_snapshots: d.u64()?,
                snapshot_hits: d.u64()?,
                rederivations: d.u64()?,
                replayed_clauses: d.u64()?,
                rederive_conflicts: d.u64()?,
                evictions: d.u64()?,
                total_conflicts: d.u64()?,
                failovers: d.u64()?,
                replica_promotions: d.u64()?,
                replica_bytes: d.u64()?,
                resident_bytes: d.u64()?,
                shared_pages: d.u64()?,
                private_pages: d.u64()?,
                heartbeat_misses: d.u64()?,
                compactions: d.u64()?,
                cow_page_copies: d.u64()?,
                zero_fills: d.u64()?,
                bytes_written: d.u64()?,
            }),
            5 => {
                let len = d.count(1)?;
                let bytes = d.bytes(len)?;
                Response::Error(
                    std::str::from_utf8(bytes)
                        .map_err(|_| ProtoError::BadUtf8)?
                        .to_owned(),
                )
            }
            6 => Response::Promoted {
                mapping: {
                    let n = d.count(16)?;
                    (0..n)
                        .map(|_| Ok((d.u64()?, d.u64()?)))
                        .collect::<Result<_, ProtoError>>()?
                },
            },
            7 => Response::Pong {
                node: d.u64()?,
                epoch: d.u64()?,
            },
            8 => Response::Metrics(decode_metrics(&mut d)?),
            9 => Response::Trace(decode_events(&mut d)?),
            t => return Err(ProtoError::BadTag(t)),
        };
        d.finish()?;
        Ok(resp)
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn decode_str(d: &mut Decoder<'_>) -> Result<String, ProtoError> {
    let len = d.count(1)?;
    let bytes = d.bytes(len)?;
    Ok(std::str::from_utf8(bytes)
        .map_err(|_| ProtoError::BadUtf8)?
        .to_owned())
}

fn encode_metrics(out: &mut Vec<u8>, m: &MetricsSnapshot) {
    put_u32(out, m.counters.len() as u32);
    for (name, v) in &m.counters {
        put_str(out, name);
        put_u64(out, *v);
    }
    put_u32(out, m.gauges.len() as u32);
    for (name, v) in &m.gauges {
        put_str(out, name);
        put_u64(out, *v as u64);
    }
    put_u32(out, m.histograms.len() as u32);
    for (name, h) in &m.histograms {
        put_str(out, name);
        put_u64(out, h.count);
        put_u64(out, h.sum);
        put_u32(out, h.buckets.len() as u32);
        for &(idx, n) in &h.buckets {
            out.push(idx);
            put_u64(out, n);
        }
    }
}

fn decode_metrics(d: &mut Decoder<'_>) -> Result<MetricsSnapshot, ProtoError> {
    // Every entry carries at least a name length (4) plus a value (8).
    let ncounters = d.count(12)?;
    let counters = (0..ncounters)
        .map(|_| Ok((decode_str(d)?, d.u64()?)))
        .collect::<Result<_, ProtoError>>()?;
    let ngauges = d.count(12)?;
    let gauges = (0..ngauges)
        .map(|_| Ok((decode_str(d)?, d.u64()? as i64)))
        .collect::<Result<_, ProtoError>>()?;
    let nhists = d.count(24)?;
    let histograms = (0..nhists)
        .map(|_| {
            let name = decode_str(d)?;
            let count = d.u64()?;
            let sum = d.u64()?;
            let nbuckets = d.count(9)?;
            let buckets = (0..nbuckets)
                .map(|_| Ok((d.u8()?, d.u64()?)))
                .collect::<Result<_, ProtoError>>()?;
            Ok((
                name,
                HistogramSnapshot {
                    count,
                    sum,
                    buckets,
                },
            ))
        })
        .collect::<Result<_, ProtoError>>()?;
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

/// Fixed wire size of one trace event: ts + dur + kind + tid + a + b.
const EVENT_WIRE_SIZE: usize = 8 + 8 + 2 + 4 + 8 + 8;

fn encode_events(out: &mut Vec<u8>, events: &[Event]) {
    put_u32(out, events.len() as u32);
    for e in events {
        put_u64(out, e.ts_ns);
        put_u64(out, e.dur_ns);
        out.extend_from_slice(&e.kind.code().to_le_bytes());
        put_u32(out, e.tid);
        put_u64(out, e.a);
        put_u64(out, e.b);
    }
}

fn decode_events(d: &mut Decoder<'_>) -> Result<Vec<Event>, ProtoError> {
    let n = d.count(EVENT_WIRE_SIZE)?;
    (0..n)
        .map(|_| {
            let ts_ns = d.u64()?;
            let dur_ns = d.u64()?;
            let code = u16::from_le_bytes(d.bytes(2)?.try_into().unwrap());
            let kind = Kind::from_code(code).ok_or(ProtoError::BadTag(code as u8))?;
            Ok(Event {
                ts_ns,
                dur_ns,
                kind,
                tid: d.u32()?,
                a: d.u64()?,
                b: d.u64()?,
            })
        })
        .collect()
}

/// Converts wire clauses (DIMACS `i64`) to solver literals.
pub fn clauses_to_lits(clauses: &[Vec<i64>]) -> Vec<Vec<Lit>> {
    clauses
        .iter()
        .map(|c| c.iter().map(|&v| Lit::from_dimacs(v)).collect())
        .collect()
}

/// Converts solver literals to wire clauses.
pub fn lits_to_clauses(clauses: &[Vec<Lit>]) -> Vec<Vec<i64>> {
    clauses
        .iter()
        .map(|c| c.iter().map(|l| l.to_dimacs()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let payload = req.encode();
        assert_eq!(Request::decode(&payload), Ok(req));
    }

    fn roundtrip_response(resp: Response) {
        let payload = resp.encode();
        assert_eq!(Response::decode(&payload), Ok(resp));
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Root { session: 99 });
        roundtrip_request(Request::Solve {
            parent: 7 << 32 | 3,
            clauses: vec![vec![1, -2, 3], vec![-4], vec![]],
        });
        roundtrip_request(Request::Release { problem: 12 });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Shutdown);
        roundtrip_request(Request::Replicate {
            session: 42,
            problem: 1 << 48 | 7 << 32 | 3,
            parent: 1 << 48 | 7 << 32,
            clauses: vec![vec![1, -2], vec![3]],
        });
        roundtrip_request(Request::Promote {
            session: 42,
            problems: vec![1 << 48 | 3, 1 << 48 | 4, u64::MAX],
        });
        roundtrip_request(Request::Promote {
            session: 0,
            problems: vec![],
        });
        roundtrip_request(Request::Unreplicate {
            session: 42,
            problems: vec![1 << 48 | 7 << 32 | 3, 9],
        });
        roundtrip_request(Request::Unreplicate {
            session: 1,
            problems: vec![],
        });
        roundtrip_request(Request::Forward {
            session: 42,
            seq: 17,
            problem: 1 << 48 | 7 << 32 | 3,
            parent: 1 << 48 | 7 << 32,
            clauses: vec![vec![1, -2], vec![3]],
        });
        roundtrip_request(Request::Forward {
            session: 0,
            seq: u64::MAX,
            problem: 0,
            parent: 0,
            clauses: vec![],
        });
        roundtrip_request(Request::Ping {
            sender: 3,
            epoch: 12,
        });
        roundtrip_request(Request::Ping {
            sender: u64::MAX,
            epoch: 0,
        });
        roundtrip_request(Request::Stats2);
        roundtrip_request(Request::TraceDump);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Root { problem: 1 << 32 });
        roundtrip_response(Response::Solved {
            problem: 5,
            sat: true,
            rederived: true,
            conflicts: 42,
            model: Some(vec![
                true, false, true, true, false, false, true, true, true,
            ]),
        });
        roundtrip_response(Response::Solved {
            problem: 6,
            sat: false,
            rederived: false,
            conflicts: 17,
            model: None,
        });
        roundtrip_response(Response::Released);
        roundtrip_response(Response::Stats(StatsSummary {
            shards: 4,
            queries: 100,
            live_problems: 50,
            resident_snapshots: 12,
            snapshot_hits: 90,
            rederivations: 10,
            replayed_clauses: 333,
            rederive_conflicts: 21,
            evictions: 38,
            total_conflicts: 1234,
            failovers: 2,
            replica_promotions: 9,
            replica_bytes: 4096,
            resident_bytes: 1 << 20,
            shared_pages: 77,
            private_pages: 33,
            heartbeat_misses: 6,
            compactions: 11,
            cow_page_copies: 44,
            zero_fills: 55,
            bytes_written: 1 << 18,
        }));
        roundtrip_response(Response::Error("dead reference".into()));
        roundtrip_response(Response::Promoted {
            mapping: vec![(1 << 48 | 3, 2 << 48 | 11), (7, 8)],
        });
        roundtrip_response(Response::Promoted { mapping: vec![] });
        roundtrip_response(Response::Pong { node: 2, epoch: 9 });
        roundtrip_response(Response::Metrics(MetricsSnapshot {
            counters: vec![("requests_total".into(), 7), ("evictions_total".into(), 0)],
            gauges: vec![("resident_bytes".into(), -3)],
            histograms: vec![(
                "solve_ns".into(),
                HistogramSnapshot {
                    count: 4,
                    sum: 900,
                    buckets: vec![(0, 1), (17, 3)],
                },
            )],
        }));
        roundtrip_response(Response::Metrics(MetricsSnapshot::default()));
        roundtrip_response(Response::Trace(vec![
            Event {
                ts_ns: 1_000,
                dur_ns: 250,
                kind: Kind::ReqSolve,
                tid: 3,
                a: 42,
                b: 0,
            },
            Event {
                ts_ns: 2_000,
                dur_ns: 0,
                kind: Kind::ChaosInject,
                tid: 1,
                a: u64::MAX,
                b: 7,
            },
        ]));
        roundtrip_response(Response::Trace(vec![]));
    }

    #[test]
    fn trace_events_with_unknown_kinds_are_rejected() {
        let mut payload = vec![9u8];
        put_u32(&mut payload, 1);
        put_u64(&mut payload, 1); // ts
        put_u64(&mut payload, 0); // dur
        payload.extend_from_slice(&999u16.to_le_bytes()); // bad kind
        put_u32(&mut payload, 0); // tid
        put_u64(&mut payload, 0); // a
        put_u64(&mut payload, 0); // b
        assert!(Response::decode(&payload).is_err());
    }

    #[test]
    fn stats_absorb_sums_replication_counters() {
        let mut a = StatsSummary {
            shards: 2,
            failovers: 1,
            replica_promotions: 3,
            replica_bytes: 100,
            resident_bytes: 4096,
            shared_pages: 5,
            private_pages: 7,
            heartbeat_misses: 4,
            compactions: 2,
            ..Default::default()
        };
        let b = StatsSummary {
            shards: 2,
            failovers: 2,
            replica_promotions: 5,
            replica_bytes: 50,
            resident_bytes: 8192,
            shared_pages: 1,
            private_pages: 2,
            heartbeat_misses: 1,
            compactions: 3,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.shards, 4);
        assert_eq!(a.failovers, 3);
        assert_eq!(a.replica_promotions, 8);
        assert_eq!(a.replica_bytes, 150);
        assert_eq!(a.resident_bytes, 12288);
        assert_eq!(a.shared_pages, 6);
        assert_eq!(a.private_pages, 9);
        assert_eq!(a.heartbeat_misses, 5);
        assert_eq!(a.compactions, 5);
    }

    #[test]
    fn stats_absorb_sums_mem_counters() {
        let mut a = StatsSummary {
            cow_page_copies: 10,
            zero_fills: 3,
            bytes_written: 4096,
            ..Default::default()
        };
        let b = StatsSummary {
            cow_page_copies: 5,
            zero_fills: 1,
            bytes_written: 512,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.cow_page_copies, 15);
        assert_eq!(a.zero_fills, 4);
        assert_eq!(a.bytes_written, 4608);
    }

    #[test]
    fn frames_roundtrip_over_a_buffer() {
        let mut wire = Vec::new();
        let reqs = [
            Request::Root { session: 1 },
            Request::Solve {
                parent: 0,
                clauses: vec![vec![1, 2]],
            },
            Request::Shutdown,
        ];
        for req in &reqs {
            write_frame(&mut wire, &req.encode()).unwrap();
        }
        let mut r = wire.as_slice();
        for req in &reqs {
            let payload = read_frame(&mut r).unwrap().expect("frame present");
            assert_eq!(Request::decode(&payload).unwrap(), *req);
        }
        assert_eq!(read_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncation_and_garbage_are_errors() {
        let payload = Request::Solve {
            parent: 3,
            clauses: vec![vec![1, -2]],
        }
        .encode();
        for cut in 1..payload.len() {
            assert!(
                Request::decode(&payload[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
        assert_eq!(Request::decode(&[99]), Err(ProtoError::BadTag(99)));
        // Trailing junk is rejected too.
        let mut long = Request::Stats.encode();
        long.push(0);
        assert!(Request::decode(&long).is_err());
        // Zero literals never cross the boundary.
        let mut zero = Vec::new();
        zero.push(2);
        put_u64(&mut zero, 0);
        put_u32(&mut zero, 1);
        put_u32(&mut zero, 1);
        zero.extend_from_slice(&0i64.to_le_bytes());
        assert_eq!(Request::decode(&zero), Err(ProtoError::ZeroLiteral));
    }

    #[test]
    fn tagged_frames_roundtrip_and_interleave_with_v1() {
        let mut wire = Vec::new();
        write_tagged_frame(&mut wire, 42, &Request::Stats.encode()).unwrap();
        write_frame(&mut wire, &Request::Shutdown.encode()).unwrap();
        write_tagged_frame(&mut wire, u64::MAX, &Request::Root { session: 9 }.encode()).unwrap();
        let mut r = wire.as_slice();
        let f1 = read_any_frame(&mut r).unwrap().unwrap();
        assert_eq!(f1.tag, Some(42));
        assert_eq!(Request::decode(&f1.payload), Ok(Request::Stats));
        let f2 = read_any_frame(&mut r).unwrap().unwrap();
        assert_eq!(f2.tag, None);
        assert_eq!(Request::decode(&f2.payload), Ok(Request::Shutdown));
        let f3 = read_any_frame(&mut r).unwrap().unwrap();
        assert_eq!(f3.tag, Some(u64::MAX));
        assert_eq!(
            Request::decode(&f3.payload),
            Ok(Request::Root { session: 9 })
        );
        assert_eq!(read_any_frame(&mut r).unwrap(), None, "clean EOF");
    }

    #[test]
    fn truncated_header_is_an_error_not_clean_eof() {
        // v1 read path: 2 of 4 header bytes then EOF must be an error.
        let wire = [7u8, 0];
        let mut r = wire.as_slice();
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        // Same through read_any_frame.
        let mut r = wire.as_slice();
        assert!(read_any_frame(&mut r).is_err());
        // Truncated payload mid-frame too.
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Stats.encode()).unwrap();
        wire.pop();
        let mut r = wire.as_slice();
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn incremental_parser_matches_blocking_reader() {
        let mut wire = Vec::new();
        write_tagged_frame(&mut wire, 7, &Request::Stats.encode()).unwrap();
        write_frame(&mut wire, &Request::Shutdown.encode()).unwrap();
        // Every prefix short of the first full frame yields None.
        let first_len = 4 + 8 + Request::Stats.encode().len();
        for cut in 0..first_len {
            assert_eq!(
                parse_frame(&wire[..cut]).unwrap(),
                None,
                "prefix {cut} is incomplete"
            );
        }
        let (f1, used1) = parse_frame(&wire).unwrap().unwrap();
        assert_eq!(f1.tag, Some(7));
        assert_eq!(used1, first_len);
        let (f2, used2) = parse_frame(&wire[used1..]).unwrap().unwrap();
        assert_eq!(f2.tag, None);
        assert_eq!(Request::decode(&f2.payload), Ok(Request::Shutdown));
        assert_eq!(used1 + used2, wire.len());
    }

    #[test]
    fn tagged_header_shorter_than_its_tag_is_rejected() {
        // A v2 header whose length can't even hold the 8-byte tag.
        let word = TAGGED | 3;
        let mut wire = word.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0, 0, 0]);
        assert!(parse_frame(&wire).is_err());
        let mut r = wire.as_slice();
        assert!(read_any_frame(&mut r).is_err());
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_allocation() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut r = wire.as_slice();
        assert!(read_frame(&mut r).is_err());
        // An absurd element count inside a tiny payload is caught too.
        let mut payload = vec![2u8];
        put_u64(&mut payload, 0);
        put_u32(&mut payload, u32::MAX);
        assert!(Request::decode(&payload).is_err());
    }
}
