//! Pooled receive buffers and the zero-copy frame assembler.
//!
//! Every reactor owns a [`BufferPool`]: a freelist of fixed-size
//! 64 KiB blocks. Each connection leases one block ([`Lease`]) and
//! reads socket bytes straight into it; [`FrameAssembler::next`] then
//! parses frames **in place** ([`protocol::parse_frame_ref`]) and hands
//! the caller a payload that borrows the block — no
//! `extend_from_slice` staging copy on the hot path. When the
//! connection closes, its lease drops and the block returns to the
//! freelist (counted by the `net.pool_recycle` trace counter), so a
//! reactor's steady-state allocation rate for receive buffers is zero.
//!
//! The one place bytes still move is a frame that straddles a block
//! boundary: the partial tail is copied into a per-connection spill
//! buffer and completed from the next block fill, copying *exactly*
//! the bytes the frame still needs ([`protocol::frame_len`]). Those
//! copies — and only those — are counted by the `net.rx_copy_bytes`
//! trace counter, which is how the benches assert the zero-copy path
//! really is one: on small-frame traffic the counter stays at a few
//! bytes per thousand requests, not a few hundred per request.

use std::io::Read;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use lwsnap_trace as trace;

use crate::protocol::{self, FrameRef, ProtoError};

/// Size of one pooled receive block. Large enough that typical solve
/// frames (tens to hundreds of bytes) cross a boundary rarely; small
/// enough that a thousand idle connections hold 64 MiB, not gigabytes.
pub const BLOCK_SIZE: usize = 64 * 1024;

/// Blocks kept on the freelist past which returned blocks are freed
/// outright (bounds a reactor's memory after a connection burst).
const FREELIST_CAP: usize = 64;

/// A freelist of fixed-size receive blocks, one pool per reactor.
pub struct BufferPool {
    free: Mutex<Vec<Box<[u8]>>>,
    outstanding: AtomicUsize,
    recycled: AtomicU64,
    copied: AtomicU64,
}

impl BufferPool {
    /// An empty pool; blocks are allocated on first lease and recycled
    /// thereafter.
    pub fn new() -> Arc<BufferPool> {
        Arc::new(BufferPool {
            free: Mutex::new(Vec::new()),
            outstanding: AtomicUsize::new(0),
            recycled: AtomicU64::new(0),
            copied: AtomicU64::new(0),
        })
    }

    /// Takes a block from the freelist (or allocates a fresh one).
    pub fn lease(self: &Arc<BufferPool>) -> Lease {
        let block = self
            .free
            .lock()
            .unwrap()
            .pop()
            .unwrap_or_else(|| vec![0u8; BLOCK_SIZE].into_boxed_slice());
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        Lease {
            block: Some(block),
            pool: Arc::clone(self),
        }
    }

    /// Blocks currently leased out (the leak-audit number: zero once
    /// every connection has drained and closed).
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// Blocks sitting on the freelist.
    pub fn free_blocks(&self) -> usize {
        self.free.lock().unwrap().len()
    }

    /// Blocks returned to the freelist over the pool's lifetime.
    pub fn recycled(&self) -> u64 {
        self.recycled.load(Ordering::Relaxed)
    }

    /// Receive bytes copied by every assembler over this pool
    /// (block-boundary spills only — the per-reactor twin of the
    /// process-wide `net.rx_copy_bytes` trace counter).
    pub fn copied_bytes(&self) -> u64 {
        self.copied.load(Ordering::Relaxed)
    }
}

/// An exclusive lease on one pool block; returns it on drop.
pub struct Lease {
    block: Option<Box<[u8]>>,
    pool: Arc<BufferPool>,
}

impl Deref for Lease {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.block.as_deref().expect("lease holds its block")
    }
}

impl DerefMut for Lease {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.block.as_deref_mut().expect("lease holds its block")
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        let block = self.block.take().expect("lease dropped once");
        self.pool.outstanding.fetch_sub(1, Ordering::Relaxed);
        let mut free = self.pool.free.lock().unwrap();
        if free.len() < FREELIST_CAP {
            free.push(block);
            drop(free);
            self.pool.recycled.fetch_add(1, Ordering::Relaxed);
            trace::Registry::global().pool_recycles.inc();
        }
    }
}

/// Per-connection receive state: one leased block being filled and
/// parsed in place, plus the spill buffer for block-spanning frames.
pub struct FrameAssembler {
    pool: Arc<BufferPool>,
    lease: Option<Lease>,
    /// Bytes of the block holding socket data (`pos..filled` unparsed).
    filled: usize,
    /// Parse cursor into the block.
    pos: usize,
    /// A partial frame carried across a block boundary (the only
    /// copied bytes on the receive path).
    spill: Vec<u8>,
    copied: u64,
}

impl FrameAssembler {
    /// A fresh assembler over `pool`; the first [`fill`](Self::fill)
    /// takes its block lease.
    pub fn new(pool: Arc<BufferPool>) -> FrameAssembler {
        FrameAssembler {
            pool,
            lease: None,
            filled: 0,
            pos: 0,
            spill: Vec::new(),
            copied: 0,
        }
    }

    /// Performs **one** read from `r` into the block's free space
    /// (spilling an unparsed tail first if the block is full), exactly
    /// like reading into a stack buffer — same return contract as
    /// [`Read::read`]. `Ok(0)` means EOF.
    pub fn fill(&mut self, r: &mut impl Read) -> std::io::Result<usize> {
        if self.lease.is_none() {
            self.lease = Some(self.pool.lease());
        }
        if self.filled == BLOCK_SIZE {
            self.spill_tail();
        }
        let lease = self.lease.as_mut().expect("leased above");
        let n = r.read(&mut lease[self.filled..])?;
        self.filled += n;
        Ok(n)
    }

    /// Moves the unparsed block tail into the spill buffer and resets
    /// the block (the boundary-crossing copy, counted).
    fn spill_tail(&mut self) {
        let lease = self.lease.as_ref().expect("spill_tail under a lease");
        let tail = &lease[self.pos..self.filled];
        if !tail.is_empty() {
            self.spill.extend_from_slice(tail);
            self.count_copy(tail.len());
        }
        self.pos = 0;
        self.filled = 0;
    }

    fn count_copy(&mut self, n: usize) {
        self.copied += n as u64;
        self.pool.copied.fetch_add(n as u64, Ordering::Relaxed);
        trace::Registry::global().rx_copy_bytes.add(n as u64);
    }

    /// Extracts the next complete frame, if any, invoking `f` on a
    /// payload that borrows this assembler's buffers (zero-copy for
    /// frames that sit wholly inside the block — the common case).
    /// `Ok(None)` means more socket bytes are needed; errors are
    /// unrecoverable framing faults. `f` runs at most once per call.
    pub fn next<R>(
        &mut self,
        mut f: impl FnMut(FrameRef<'_>) -> R,
    ) -> Result<Option<R>, ProtoError> {
        loop {
            if !self.spill.is_empty() {
                // A block-spanning frame: top the spill up with exactly
                // the bytes it still needs, then parse it from there.
                let need = match protocol::frame_len(&self.spill)? {
                    Some(total) => total.saturating_sub(self.spill.len()),
                    None => 4 - self.spill.len(),
                };
                if need > 0 {
                    let avail = self.filled - self.pos;
                    if avail == 0 {
                        return Ok(None);
                    }
                    let take = need.min(avail);
                    let lease = self.lease.as_ref().expect("bytes imply a lease");
                    let chunk = &lease[self.pos..self.pos + take];
                    self.spill.extend_from_slice(chunk);
                    self.pos += take;
                    self.count_copy(take);
                    if self.pos == self.filled {
                        self.pos = 0;
                        self.filled = 0;
                    }
                    continue; // 4 header bytes may now reveal the length
                }
                let (frame, used) = protocol::parse_frame_ref(&self.spill)?
                    .expect("spill topped up to a whole frame");
                debug_assert_eq!(used, self.spill.len());
                let out = f(frame);
                self.spill.clear();
                return Ok(Some(out));
            }
            // The zero-copy path: parse straight off the block.
            let Some(lease) = self.lease.as_ref() else {
                return Ok(None);
            };
            let buf = &lease[self.pos..self.filled];
            if buf.is_empty() {
                return Ok(None);
            }
            match protocol::parse_frame_ref(buf)? {
                Some((frame, used)) => {
                    let out = f(frame);
                    self.pos += used;
                    if self.pos == self.filled {
                        self.pos = 0;
                        self.filled = 0;
                    }
                    return Ok(Some(out));
                }
                None => {
                    if self.filled == BLOCK_SIZE {
                        // Mid-frame with no room to read more: carry the
                        // tail over so the block can take fresh bytes.
                        self.spill_tail();
                    }
                    return Ok(None);
                }
            }
        }
    }

    /// Unparsed bytes currently buffered (block tail + spill). Nonzero
    /// means a partial frame is waiting on more socket bytes, or —
    /// when dispatch stopped early under backpressure — whole frames
    /// are waiting for capacity.
    pub fn pending(&self) -> usize {
        (self.filled - self.pos) + self.spill.len()
    }

    /// Bytes this assembler has copied (block-boundary spills only).
    pub fn copied_bytes(&self) -> u64 {
        self.copied
    }

    /// Returns the leased block to the pool early (e.g. a long-idle
    /// connection); the next [`fill`](Self::fill) re-leases.
    pub fn release_block(&mut self) {
        debug_assert_eq!(self.filled, self.pos, "releasing unparsed bytes");
        self.pos = 0;
        self.filled = 0;
        self.lease = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{put_tagged_frame, write_frame};

    fn drain(asm: &mut FrameAssembler) -> Vec<(Option<u64>, Vec<u8>)> {
        let mut out = Vec::new();
        while let Some(frame) = asm
            .next(|f| (f.tag, f.payload.to_vec()))
            .expect("well-formed stream")
        {
            out.push(frame);
        }
        out
    }

    #[test]
    fn whole_frames_parse_in_place_without_copies() {
        let pool = BufferPool::new();
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        put_tagged_frame(&mut wire, 7, b"world").unwrap();
        let mut asm = FrameAssembler::new(Arc::clone(&pool));
        let mut r = wire.as_slice();
        while asm.fill(&mut r).unwrap() > 0 {}
        let frames = drain(&mut asm);
        assert_eq!(
            frames,
            vec![(None, b"hello".to_vec()), (Some(7), b"world".to_vec())]
        );
        assert_eq!(asm.copied_bytes(), 0, "in-block frames copy nothing");
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn block_spanning_frame_reassembles_and_counts_copies() {
        let pool = BufferPool::new();
        // One frame bigger than a block: every byte must spill, and the
        // result must still be bit-identical.
        let payload: Vec<u8> = (0..BLOCK_SIZE + 1234).map(|i| (i % 251) as u8).collect();
        let mut wire = Vec::new();
        put_tagged_frame(&mut wire, 42, &payload).unwrap();
        write_frame(&mut wire, b"after").unwrap();
        let mut asm = FrameAssembler::new(Arc::clone(&pool));
        let mut r = wire.as_slice();
        let mut frames = Vec::new();
        loop {
            let n = asm.fill(&mut r).unwrap();
            frames.extend(drain(&mut asm));
            if n == 0 {
                break;
            }
        }
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0], (Some(42), payload));
        assert_eq!(frames[1], (None, b"after".to_vec()));
        assert!(asm.copied_bytes() > 0, "spanning frames are counted");
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn leases_return_to_the_freelist() {
        let pool = BufferPool::new();
        {
            let _a = pool.lease();
            let _b = pool.lease();
            assert_eq!(pool.outstanding(), 2);
            assert_eq!(pool.free_blocks(), 0);
        }
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.free_blocks(), 2);
        assert_eq!(pool.recycled(), 2);
        // Reuse: a fresh lease comes off the freelist.
        let _c = pool.lease();
        assert_eq!(pool.free_blocks(), 1);
    }

    #[test]
    fn assembler_drop_recycles_its_block() {
        let pool = BufferPool::new();
        let mut asm = FrameAssembler::new(Arc::clone(&pool));
        let mut r = &b"\x01\x00\x00\x00"[..3]; // partial header
        asm.fill(&mut r).unwrap();
        assert_eq!(pool.outstanding(), 1);
        drop(asm);
        assert_eq!(pool.outstanding(), 0, "drop returns the block");
        assert_eq!(pool.free_blocks(), 1);
    }
}
