//! Deterministic fault injection at the protocol boundary.
//!
//! Chaos that cannot be replayed is noise; chaos that changes verdicts
//! is a broken harness. This module threads both needles:
//!
//! * **Determinism** — every decision is a pure function of a seed and
//!   the *content* of the frame it applies to ([`ChaosPolicy::decide`]
//!   hashes `seed ⊕ plane ⊕ key` through [`mix64`]). Nothing depends on
//!   wall-clock time, thread interleaving, or how many frames happened
//!   to come before — so a seeded run injects the same faults no matter
//!   how the scheduler slices it, and a failure reproduces from its
//!   seed alone.
//! * **Verdict safety** — faults apply ONLY to fire-and-forget
//!   replication-plane frames (`Replicate`, `Unreplicate`, `Forward`)
//!   whose loss the system is *designed* to absorb (the client reships
//!   its whole log at failover, and the client/server planes are
//!   redundant). Data-plane `Solve` frames are never touched: dropping
//!   one would change the verdict stream, which is the invariant the
//!   harness exists to check.
//!
//! The two replication planes carry distinct plane salts
//! ([`PLANE_CLIENT`], [`PLANE_SERVER`]) so the client-fanned and
//! server-fanned copies of the SAME edge never share a fate: a drop
//! decision that kills one leaves the other alive, which is exactly the
//! redundancy a real lossy network gives you.
//!
//! Node kills are scheduled by [`ChaosPlan`], the loadgen-facing
//! wrapper that parses a `--chaos-mode` list and derives the victim
//! from the seed.

use std::time::Duration;

use crate::router::mix64;

/// Plane salt for client-fanned replication frames.
pub const PLANE_CLIENT: u64 = 1;

/// Plane salt for server-fanned (`Forward`) replication frames.
pub const PLANE_SERVER: u64 = 2;

/// Content-stable chaos key of a session root. Wire problem ids are
/// allocation-order artifacts — two runs (or the two replication
/// planes) can mint different ids for the same logical problem — so
/// chaos decisions key on a hash of what the problem *is* instead:
/// the session for a root, and the clause path for every derivation
/// ([`stable_key`]).
pub fn root_key(session: u64) -> u64 {
    mix64(session ^ 0x726f_6f74) // "root"
}

/// Folds one derivation edge's content into its parent's stable key:
/// the child's key hashes the parent's key with the added clauses, so
/// the same logical edge gets the same fate on every run and on both
/// replication planes (modulo the plane salt), no matter what wire ids
/// were allocated for it.
pub fn stable_key(parent_key: u64, clauses: &[Vec<i64>]) -> u64 {
    let mut h = mix64(parent_key ^ 0x6564_6765); // "edge"
    for clause in clauses {
        h = mix64(h ^ clause.len() as u64);
        for &lit in clause {
            h = mix64(h ^ lit as u64);
        }
    }
    h
}

/// What to do with one replication-plane frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosAction {
    /// Send it, once, now.
    Deliver,
    /// Pretend the network ate it.
    Drop,
    /// Send it twice (the receiver must deduplicate).
    Duplicate,
    /// Hold it for the given pause, then send it.
    Delay(Duration),
}

/// A seeded, content-keyed fault-injection policy; see the module docs.
#[derive(Debug, Clone)]
pub struct ChaosPolicy {
    seed: u64,
    /// Per-256 probability weights for each fault; the remainder of
    /// the roll space delivers cleanly.
    drop_w: u32,
    duplicate_w: u32,
    delay_w: u32,
    max_delay: Duration,
}

impl ChaosPolicy {
    /// A policy that injects nothing (every decision is `Deliver`).
    pub fn quiet(seed: u64) -> ChaosPolicy {
        ChaosPolicy {
            seed,
            drop_w: 0,
            duplicate_w: 0,
            delay_w: 0,
            max_delay: Duration::from_millis(2),
        }
    }

    /// Enables frame drops at `w`/256 probability.
    pub fn with_drops(mut self, w: u32) -> ChaosPolicy {
        self.drop_w = w;
        self
    }

    /// Enables frame duplication at `w`/256 probability.
    pub fn with_duplicates(mut self, w: u32) -> ChaosPolicy {
        self.duplicate_w = w;
        self
    }

    /// Enables frame delays at `w`/256 probability, each at most
    /// `max_delay` long.
    pub fn with_delays(mut self, w: u32, max_delay: Duration) -> ChaosPolicy {
        self.delay_w = w;
        self.max_delay = max_delay;
        self
    }

    /// The fate of the frame identified by `key` on `plane`. Pure: the
    /// same `(seed, plane, key)` always decides the same fate.
    pub fn decide(&self, plane: u64, key: u64) -> ChaosAction {
        let h = mix64(self.seed ^ mix64(plane) ^ key);
        let roll = (h & 0xff) as u32;
        if roll < self.drop_w {
            ChaosAction::Drop
        } else if roll < self.drop_w + self.duplicate_w {
            ChaosAction::Duplicate
        } else if roll < self.drop_w + self.duplicate_w + self.delay_w {
            let span = self.max_delay.as_micros().max(1) as u64;
            ChaosAction::Delay(Duration::from_micros((h >> 8) % span))
        } else {
            ChaosAction::Deliver
        }
    }

    /// Whether any fault has nonzero weight.
    pub fn is_active(&self) -> bool {
        self.drop_w + self.duplicate_w + self.delay_w > 0
    }
}

/// A loadgen/CI-facing chaos schedule: which fault classes a run
/// enables and (seeded) which node dies at the midpoint barrier.
#[derive(Debug, Clone)]
pub struct ChaosPlan {
    /// The schedule seed every decision derives from.
    pub seed: u64,
    /// Kill one node at the midpoint barrier.
    pub kill: bool,
    /// Drop replication-plane frames.
    pub drop: bool,
    /// Duplicate replication-plane frames.
    pub duplicate: bool,
    /// Delay replication-plane frames.
    pub delay: bool,
}

impl ChaosPlan {
    /// Parses a comma-separated `--chaos-mode` list (`kill`, `drop`,
    /// `duplicate`, `delay`; e.g. `"kill,drop"`). `None` on an unknown
    /// mode name.
    pub fn parse(seed: u64, modes: &str) -> Option<ChaosPlan> {
        let mut plan = ChaosPlan {
            seed,
            kill: false,
            drop: false,
            duplicate: false,
            delay: false,
        };
        for mode in modes.split(',').map(str::trim).filter(|m| !m.is_empty()) {
            match mode {
                "kill" => plan.kill = true,
                "drop" => plan.drop = true,
                "duplicate" => plan.duplicate = true,
                "delay" => plan.delay = true,
                _ => return None,
            }
        }
        Some(plan)
    }

    /// The frame-level policy this plan implies (inactive if only
    /// `kill` is enabled — kills are scheduled, not rolled per frame).
    pub fn policy(&self) -> ChaosPolicy {
        let mut policy = ChaosPolicy::quiet(self.seed);
        if self.drop {
            policy = policy.with_drops(32);
        }
        if self.duplicate {
            policy = policy.with_duplicates(32);
        }
        if self.delay {
            policy = policy.with_delays(32, Duration::from_millis(2));
        }
        policy
    }

    /// The seeded victim choice: which of `candidates` sessions' home
    /// nodes dies at the midpoint (the caller maps it onto the ring).
    pub fn victim_index(&self, candidates: usize) -> usize {
        (mix64(self.seed ^ 0x6b69_6c6c) % candidates.max(1) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_functions_of_seed_plane_and_key() {
        let policy = ChaosPolicy::quiet(42)
            .with_drops(32)
            .with_duplicates(32)
            .with_delays(32, Duration::from_millis(2));
        for key in 0..512u64 {
            assert_eq!(
                policy.decide(PLANE_CLIENT, key),
                policy.decide(PLANE_CLIENT, key),
                "chaos must be deterministic"
            );
        }
        // A different seed decides differently somewhere.
        let other = ChaosPolicy::quiet(43)
            .with_drops(32)
            .with_duplicates(32)
            .with_delays(32, Duration::from_millis(2));
        assert!(
            (0..512u64).any(|k| policy.decide(PLANE_CLIENT, k) != other.decide(PLANE_CLIENT, k)),
            "seeds must matter"
        );
    }

    #[test]
    fn planes_never_share_a_fate_everywhere() {
        // The same edge on both planes must not be dropped by the same
        // roll for EVERY key — redundancy is the drop-safety argument.
        let policy = ChaosPolicy::quiet(7).with_drops(64);
        let both_dropped = (0..4096u64)
            .filter(|&k| {
                policy.decide(PLANE_CLIENT, k) == ChaosAction::Drop
                    && policy.decide(PLANE_SERVER, k) == ChaosAction::Drop
            })
            .count();
        let client_dropped = (0..4096u64)
            .filter(|&k| policy.decide(PLANE_CLIENT, k) == ChaosAction::Drop)
            .count();
        assert!(client_dropped > 0, "drops do happen");
        assert!(
            both_dropped < client_dropped,
            "plane salts decorrelate the copies"
        );
    }

    #[test]
    fn rolls_hit_every_enabled_fault_class() {
        let policy = ChaosPolicy::quiet(1)
            .with_drops(32)
            .with_duplicates(32)
            .with_delays(32, Duration::from_millis(2));
        let decisions: Vec<ChaosAction> = (0..2048u64)
            .map(|k| policy.decide(PLANE_SERVER, k))
            .collect();
        assert!(decisions.contains(&ChaosAction::Drop));
        assert!(decisions.contains(&ChaosAction::Duplicate));
        assert!(decisions.iter().any(|d| matches!(d, ChaosAction::Delay(_))));
        assert!(decisions.contains(&ChaosAction::Deliver));
        // And every delay respects the cap.
        for d in &decisions {
            if let ChaosAction::Delay(pause) = d {
                assert!(*pause <= Duration::from_millis(2));
            }
        }
    }

    #[test]
    fn stable_keys_depend_on_content_not_allocation_order() {
        let root = root_key(42);
        assert_eq!(root, root_key(42), "pure in the session");
        assert_ne!(root, root_key(43));
        let a = stable_key(root, &[vec![1, -2]]);
        // Recomputing the same edge from the same parent is stable —
        // no wire id, counter, or ordering feeds the key.
        assert_eq!(a, stable_key(root, &[vec![1, -2]]));
        // Content matters: different clauses, different key.
        assert_ne!(a, stable_key(root, &[vec![1, 2]]));
        assert_ne!(a, stable_key(root, &[vec![1], vec![-2]]));
        // Lineage matters: the same clauses under another parent.
        assert_ne!(a, stable_key(stable_key(root, &[vec![3]]), &[vec![1, -2]]));
    }

    #[test]
    fn plans_parse_and_reject_unknown_modes() {
        let plan = ChaosPlan::parse(9, "kill,drop").unwrap();
        assert!(plan.kill && plan.drop && !plan.duplicate && !plan.delay);
        assert!(plan.policy().is_active());
        let quiet = ChaosPlan::parse(9, "kill").unwrap();
        assert!(!quiet.policy().is_active(), "kill alone rolls no frames");
        assert!(ChaosPlan::parse(9, "explode").is_none());
        let all = ChaosPlan::parse(9, "kill, drop, duplicate, delay").unwrap();
        assert!(all.kill && all.drop && all.duplicate && all.delay);
    }
}
