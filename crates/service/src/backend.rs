//! The transport-agnostic [`SolverBackend`] API.
//!
//! Every way of reaching the solver service — calling the
//! [`ShardedService`] in-process, queueing through a [`WorkerPool`], or
//! speaking the wire protocol to a remote `lwsnapd` — exposes the same
//! **completion-based** contract: [`SolverBackend::submit`] hands in a
//! solve request and returns a [`Ticket`]; [`SolverBackend::wait`]
//! redeems the ticket for the reply. Between submit and wait the caller
//! is free to submit more work, which is what lets exploration drivers
//! batch and overlap feasibility queries regardless of the transport
//! underneath. Blocking convenience wrappers ([`SolverBackend::solve`],
//! [`SolverBackend::solve_batch`]) are provided for closed-loop
//! callers.
//!
//! | backend | `submit` | `wait` | overlap |
//! |---|---|---|---|
//! | [`ShardedService`] | solves inline on the caller's thread | returns the stored reply | none (degenerate, in-process) |
//! | [`WorkerPool`] / [`PoolClient`] | queues on the lock-free injector | blocks on the worker's completion | across pool workers |
//! | [`crate::PipelinedClient`] | writes a tagged frame | reads frames until the tag answers | across the wire *and* pool workers |
//!
//! Transport errors (`io::Error`) can only come from remote backends;
//! in-process backends are infallible and always return `Ok`. A dead
//! or unknown problem reference is *not* an error — it answers
//! `Ok(None)`, matching [`ShardedService::solve`].

use std::io;
use std::sync::mpsc;

use lwsnap_solver::Lit;

use crate::pool::{PoolClient, WorkerPool};
use crate::protocol::StatsSummary;
use crate::sharded::{ProblemId, ShardedService, SolveReply};

/// A claim on one submitted solve request, redeemed with
/// [`SolverBackend::wait`]. Tickets are single-use and must be waited
/// on the backend that issued them.
pub struct Ticket(pub(crate) TicketInner);

pub(crate) enum TicketInner {
    /// The reply is already known (in-process eager execution).
    Ready(Option<SolveReply>),
    /// The reply arrives on a worker-pool completion channel.
    Pending(mpsc::Receiver<Option<SolveReply>>),
    /// The reply arrives on the wire under this correlation tag.
    Tagged(u64),
    /// The reply arrives on cluster node `node`'s connection under
    /// `tag`. Tag spaces are per-connection, so `(node, tag)` is the
    /// cluster-unique correlation key. The ticket also carries enough
    /// of the request to RE-ISSUE it after a failover: if `node` dies
    /// before answering, [`crate::ClusterBackend`] promotes the
    /// session's replica and retries `parent ∧ clauses` on the new
    /// home instead of surfacing the node error.
    Cluster {
        /// The node whose connection carries the reply.
        node: crate::router::NodeId,
        /// The correlation tag on that connection.
        tag: u64,
        /// The session the solve belongs to (`None` = untracked parent;
        /// no replica exists, so no failover retry either).
        session: Option<u64>,
        /// The parent's wire id as submitted (pre-failover coordinates).
        parent: u64,
        /// The incremental constraint, wire form.
        clauses: Vec<Vec<i64>>,
    },
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            TicketInner::Ready(_) => write!(f, "Ticket(ready)"),
            TicketInner::Pending(_) => write!(f, "Ticket(pending)"),
            TicketInner::Tagged(tag) => write!(f, "Ticket(tag={tag})"),
            TicketInner::Cluster { node, tag, .. } => write!(f, "Ticket(node={node}, tag={tag})"),
        }
    }
}

/// The unified solver-service API; see the module docs.
pub trait SolverBackend: Send + Sync {
    /// The root problem a session should branch from.
    fn session_root(&self, session: u64) -> io::Result<ProblemId>;

    /// Submits `parent ∧ clauses` for solving; returns immediately with
    /// a ticket. More submissions may follow before any wait — remote
    /// backends pipeline them on one connection.
    fn submit(&self, parent: ProblemId, clauses: Vec<Vec<Lit>>) -> io::Result<Ticket>;

    /// Blocks until the submitted request completes. `Ok(None)` means
    /// the parent reference was dead or unknown (or the backend shut
    /// down before serving it).
    fn wait(&self, ticket: Ticket) -> io::Result<Option<SolveReply>>;

    /// Releases a problem snapshot (idempotent, possibly asynchronous).
    fn release(&self, id: ProblemId) -> io::Result<()>;

    /// Aggregated service statistics.
    fn stats(&self) -> io::Result<StatsSummary>;

    /// Statistics with the **node dimension** kept: one `(node id,
    /// summary)` entry per cluster node, so callers can see per-node
    /// hit/rederive/evict counts instead of a silently summed blur.
    /// Single-node backends answer one entry; [`crate::ClusterBackend`]
    /// answers one per member node. The default labels the single
    /// entry node 0 — backends that can learn their real node id
    /// override it (all the in-tree impls do).
    fn node_stats(&self) -> io::Result<crate::stats::FleetStats> {
        Ok(crate::stats::FleetStats {
            nodes: vec![(0, self.stats()?)],
        })
    }

    /// Blocking convenience: submit then wait.
    fn solve(&self, parent: ProblemId, clauses: Vec<Vec<Lit>>) -> io::Result<Option<SolveReply>> {
        let ticket = self.submit(parent, clauses)?;
        self.wait(ticket)
    }

    /// Blocking convenience: submit the whole batch, then wait for all
    /// replies in request order. On pipelined backends the requests
    /// overlap; the aggregate latency is one round trip plus the
    /// slowest solve rather than the sum of round trips.
    fn solve_batch(
        &self,
        requests: Vec<(ProblemId, Vec<Vec<Lit>>)>,
    ) -> io::Result<Vec<Option<SolveReply>>> {
        let tickets: Vec<Ticket> = requests
            .into_iter()
            .map(|(parent, clauses)| self.submit(parent, clauses))
            .collect::<io::Result<_>>()?;
        tickets.into_iter().map(|t| self.wait(t)).collect()
    }
}

// ---------------------------------------------------------------------
// In-process backend: the sharded service itself.
// ---------------------------------------------------------------------

impl SolverBackend for ShardedService {
    fn session_root(&self, session: u64) -> io::Result<ProblemId> {
        Ok(ShardedService::session_root(self, session))
    }

    /// Executes eagerly on the calling thread; the ticket carries the
    /// finished reply. No overlap — this backend is the zero-transport
    /// baseline the others are measured against.
    fn submit(&self, parent: ProblemId, clauses: Vec<Vec<Lit>>) -> io::Result<Ticket> {
        Ok(Ticket(TicketInner::Ready(ShardedService::solve(
            self, parent, &clauses,
        ))))
    }

    fn wait(&self, ticket: Ticket) -> io::Result<Option<SolveReply>> {
        match ticket.0 {
            TicketInner::Ready(reply) => Ok(reply),
            _ => Err(foreign_ticket()),
        }
    }

    fn release(&self, id: ProblemId) -> io::Result<()> {
        ShardedService::release(self, id);
        Ok(())
    }

    fn stats(&self) -> io::Result<StatsSummary> {
        Ok((&ShardedService::stats(self)).into())
    }

    fn node_stats(&self) -> io::Result<crate::stats::FleetStats> {
        Ok(crate::stats::FleetStats {
            nodes: vec![(self.node_id(), SolverBackend::stats(self)?)],
        })
    }
}

// ---------------------------------------------------------------------
// Worker-pool backend: queued execution, overlap across workers.
// ---------------------------------------------------------------------

impl SolverBackend for PoolClient {
    fn session_root(&self, session: u64) -> io::Result<ProblemId> {
        Ok(self.service().session_root(session))
    }

    fn submit(&self, parent: ProblemId, clauses: Vec<Vec<Lit>>) -> io::Result<Ticket> {
        Ok(Ticket(TicketInner::Pending(PoolClient::submit(
            self, parent, clauses,
        ))))
    }

    fn wait(&self, ticket: Ticket) -> io::Result<Option<SolveReply>> {
        match ticket.0 {
            // A recv error means the pool shut down before serving the
            // job — the same "dead" answer the blocking path gives.
            TicketInner::Pending(rx) => Ok(rx.recv().unwrap_or(None)),
            _ => Err(foreign_ticket()),
        }
    }

    fn release(&self, id: ProblemId) -> io::Result<()> {
        PoolClient::release(self, id);
        Ok(())
    }

    fn stats(&self) -> io::Result<StatsSummary> {
        Ok((&self.service().stats()).into())
    }

    fn node_stats(&self) -> io::Result<crate::stats::FleetStats> {
        Ok(crate::stats::FleetStats {
            nodes: vec![(self.service().node_id(), self.stats()?)],
        })
    }

    /// One injector operation for the whole batch (single atomic tail
    /// swap), then in-order waits.
    fn solve_batch(
        &self,
        requests: Vec<(ProblemId, Vec<Vec<Lit>>)>,
    ) -> io::Result<Vec<Option<SolveReply>>> {
        Ok(PoolClient::solve_batch(self, requests))
    }
}

impl SolverBackend for WorkerPool {
    fn session_root(&self, session: u64) -> io::Result<ProblemId> {
        Ok(self.service().session_root(session))
    }

    fn submit(&self, parent: ProblemId, clauses: Vec<Vec<Lit>>) -> io::Result<Ticket> {
        SolverBackend::submit(&self.client(), parent, clauses)
    }

    fn wait(&self, ticket: Ticket) -> io::Result<Option<SolveReply>> {
        SolverBackend::wait(&self.client(), ticket)
    }

    fn release(&self, id: ProblemId) -> io::Result<()> {
        SolverBackend::release(&self.client(), id)
    }

    fn stats(&self) -> io::Result<StatsSummary> {
        Ok((&self.service().stats()).into())
    }

    fn node_stats(&self) -> io::Result<crate::stats::FleetStats> {
        Ok(crate::stats::FleetStats {
            nodes: vec![(self.service().node_id(), SolverBackend::stats(self)?)],
        })
    }

    fn solve_batch(
        &self,
        requests: Vec<(ProblemId, Vec<Vec<Lit>>)>,
    ) -> io::Result<Vec<Option<SolveReply>>> {
        SolverBackend::solve_batch(&self.client(), requests)
    }
}

pub(crate) fn foreign_ticket() -> io::Error {
    io::Error::new(
        io::ErrorKind::InvalidInput,
        "ticket was issued by a different backend",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sharded::ServiceConfig;
    use lwsnap_solver::SolveResult;
    use std::sync::Arc;

    fn lits(c: &[i64]) -> Vec<Vec<Lit>> {
        vec![c.iter().map(|&v| Lit::from_dimacs(v)).collect()]
    }

    /// The generic session exercised identically over every backend.
    fn chain_session(backend: &dyn SolverBackend, session: u64) {
        let root = backend.session_root(session).unwrap();
        let p = backend.solve(root, lits(&[1, 2])).unwrap().unwrap();
        assert_eq!(p.result, SolveResult::Sat);
        // Overlapped submissions complete independently.
        let t1 = backend.submit(p.problem, lits(&[-1])).unwrap();
        let t2 = backend.submit(p.problem, lits(&[1])).unwrap();
        let r1 = backend.wait(t1).unwrap().unwrap();
        let r2 = backend.wait(t2).unwrap().unwrap();
        assert_eq!(r1.result, SolveResult::Sat);
        assert_eq!(r2.result, SolveResult::Sat);
        assert!(!r1.model.as_ref().unwrap()[0]);
        assert!(r2.model.as_ref().unwrap()[0]);
        backend.release(r1.problem).unwrap();
        backend.release(r2.problem).unwrap();
        assert!(backend.solve(r1.problem, lits(&[2])).unwrap().is_none());
        assert!(backend.stats().unwrap().queries >= 3);
    }

    #[test]
    fn in_process_backend_conforms() {
        let service = ShardedService::new(ServiceConfig::new(2));
        chain_session(&service, 7);
    }

    #[test]
    fn pool_backend_conforms() {
        let service = Arc::new(ShardedService::new(ServiceConfig::new(2)));
        let pool = WorkerPool::new(Arc::clone(&service), 2);
        chain_session(&pool, 7);
        chain_session(&pool.client(), 8);
        pool.shutdown();
    }

    #[test]
    fn batch_waits_in_request_order() {
        let service = Arc::new(ShardedService::new(ServiceConfig::new(4)));
        let pool = WorkerPool::new(Arc::clone(&service), 4);
        let client = pool.client();
        let requests: Vec<_> = (0..4)
            .map(|s| (service.root(s).unwrap(), lits(&[s as i64 + 1])))
            .collect();
        let replies = SolverBackend::solve_batch(&client, requests).unwrap();
        for (s, reply) in replies.iter().enumerate() {
            assert_eq!(reply.as_ref().unwrap().problem.shard(), s);
        }
        pool.shutdown();
    }

    #[test]
    fn foreign_tickets_are_rejected() {
        let service = Arc::new(ShardedService::new(ServiceConfig::new(1)));
        let pool = WorkerPool::new(Arc::clone(&service), 1);
        let root = service.root(0).unwrap();
        let pool_ticket = SolverBackend::submit(&pool, root, lits(&[1])).unwrap();
        let err = SolverBackend::wait(&*service, pool_ticket).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        pool.shutdown();
    }
}
