//! `lwsnapd` — the sharded multi-path incremental solver daemon.
//!
//! ```sh
//! lwsnapd [--addr 127.0.0.1:7557] [--shards N] [--workers M] \
//!         [--capacity K] [--budget BYTES] [--node-id ID] \
//!         [--store cow|deep-clone]
//! ```
//!
//! Serves the `lwsnap-service` wire protocol (legacy in-order frames
//! and pipelined tagged frames on the same port, multiplexed by one
//! epoll reactor thread) until a client sends a `Shutdown` request,
//! then prints the final service and worker statistics. `--capacity`
//! bounds the resident solver snapshots *per shard* by count,
//! `--budget` by byte cost (clause + assignment footprint); evicted
//! problems are re-derived transparently by constraint replay.
//!
//! ## Cluster mode
//!
//! `--node-id ID` makes this daemon node `ID` of a cluster: every
//! problem id it mints carries the node id, and ids routed to it that
//! name a *different* node are rejected at decode time with a typed
//! `WrongNode` error instead of aliasing into a dead reference. Stand
//! up one daemon per node (distinct `--node-id`s, any addresses) and
//! point a `ClusterBackend` at the full `(id, addr)` map — the
//! client-side consistent-hash ring does the rest; nodes never talk to
//! each other (sessions are partitioned, snapshots never cross the
//! wire).

use lwsnap_service::{Server, ServiceConfig, StoreKind};

fn usage() -> ! {
    eprintln!(
        "usage: lwsnapd [--addr HOST:PORT] [--shards N] [--workers M] \
         [--capacity K] [--budget BYTES] [--node-id ID] [--store KIND]\n\
         \n\
         --addr      listen address (default 127.0.0.1:7557)\n\
         --shards    independently locked problem-tree shards (default 8)\n\
         --workers   solver worker threads (default: available parallelism)\n\
         --capacity  max resident snapshots per shard (default: unbounded)\n\
         --budget    max resident snapshot bytes per shard (default: unbounded)\n\
         --node-id   cluster node id stamped into problem ids (default 0);\n\
         \u{20}           run one daemon per id and give a ClusterBackend the map\n\
         --store     snapshot store backend: cow (page-granular CoW deltas,\n\
         \u{20}           the default) or deep-clone (full images, baseline)"
    );
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7557".to_owned();
    let mut shards = 8usize;
    let mut workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut capacity: Option<usize> = None;
    let mut budget: Option<usize> = None;
    let mut node_id: u16 = 0;
    let mut store = StoreKind::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--shards" => shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--capacity" => {
                capacity = Some(value("--capacity").parse().unwrap_or_else(|_| usage()))
            }
            "--budget" => budget = Some(value("--budget").parse().unwrap_or_else(|_| usage())),
            "--node-id" => node_id = value("--node-id").parse().unwrap_or_else(|_| usage()),
            "--store" => store = StoreKind::parse(&value("--store")).unwrap_or_else(|| usage()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let mut config = ServiceConfig::new(shards)
        .with_node_id(node_id)
        .with_store(store);
    config.snapshot_capacity = capacity;
    config.snapshot_budget_bytes = budget;
    let server = match Server::start(&addr, config, workers) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("lwsnapd: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "lwsnapd node {} listening on {} ({} shards, {} workers, capacity {}, {} store)",
        node_id,
        server.local_addr(),
        shards,
        workers,
        capacity.map_or("unbounded".to_owned(), |c| c.to_string()),
        server.service().store_name(),
    );

    let service = server.service().clone();
    let replicas = server.replicas().clone();
    let worker_stats = server.wait();
    let (replica_bytes, replica_promotions, failovers) = replicas.counters();

    let total = service.stats().total();
    println!(
        "served {} queries ({} conflicts): {} snapshot hits, {} rederivations \
         ({} clauses replayed, {} conflicts), {} evictions, {} live problems",
        total.queries,
        total.total_conflicts,
        total.snapshot_hits,
        total.rederivations,
        total.replayed_clauses,
        total.rederive_conflicts,
        total.evictions,
        total.live_problems,
    );
    println!(
        "snapshot store ({}): {} resident bytes, {} shared / {} private pages",
        service.store_name(),
        total.resident_bytes,
        total.shared_pages,
        total.private_pages,
    );
    println!(
        "replication: {replica_bytes} replica bytes held, {replica_promotions} promotions \
         across {failovers} failovers served",
    );
    for (i, w) in worker_stats.iter().enumerate() {
        println!("worker {i}: {} jobs, {:.3?} busy", w.jobs, w.busy);
    }
}
