//! `lwsnapd` — the sharded multi-path incremental solver daemon.
//!
//! ```sh
//! lwsnapd [--addr 127.0.0.1:7557] [--shards N] [--workers M] \
//!         [--reactors R] [--capacity K] [--budget BYTES] \
//!         [--node-id ID] [--store cow|deep-clone] \
//!         [--peer ID=HOST:PORT ...] [--ring-seed SEED] \
//!         [--replica-budget BYTES] [--metrics-addr HOST:PORT]
//! ```
//!
//! Serves the `lwsnap-service` wire protocol (legacy in-order frames
//! and pipelined tagged frames on the same port, multiplexed by
//! `--reactors` epoll reactor threads — one per core by default, each
//! with its own `SO_REUSEPORT` listener so the kernel shards accepted
//! connections across them) until a client sends a `Shutdown` request,
//! then prints the final service and worker statistics. `--capacity`
//! bounds the resident solver snapshots *per shard* by count,
//! `--budget` by byte cost (clause + assignment footprint); evicted
//! problems are re-derived transparently by constraint replay.
//!
//! ## Cluster mode
//!
//! `--node-id ID` makes this daemon node `ID` of a cluster: every
//! problem id it mints carries the node id, and ids routed to it that
//! name a *different* node are rejected at decode time with a typed
//! `WrongNode` error instead of aliasing into a dead reference. Stand
//! up one daemon per node (distinct `--node-id`s, any addresses) and
//! point a `ClusterBackend` at the full `(id, addr)` map — the
//! client-side consistent-hash ring routes sessions.
//!
//! With `--peer` flags (one per other node) the daemons also talk to
//! *each other*: every tracked session's derivation edges are forwarded
//! by the home node to the session's ring successor (redundant with the
//! clients' own replication fan-out — a session stays replicated even
//! when no single client sees its whole solve stream), and a heartbeat
//! thread probes the peers, promoting a dead node's sessions from their
//! replicas before clients notice. `--ring-seed` must match the
//! clients' seed; `--replica-budget` bounds the replica store, above
//! which linear path-log chains are compacted in place.
//!
//! ## Observability
//!
//! `--metrics-addr HOST:PORT` starts the scrape exporter: `GET
//! /metrics` serves the plaintext counter/gauge/histogram snapshot and
//! `GET /trace` drains the event rings as chrome://tracing JSON. The
//! same data is available in-band via the `Stats2` and `TraceDump`
//! wire requests, so clusters can be scraped through a
//! `ClusterBackend` without any HTTP exposure.

use lwsnap_service::{NodeId, Server, ServiceConfig, StoreKind};

use std::net::SocketAddr;

fn usage() -> ! {
    eprintln!(
        "usage: lwsnapd [--addr HOST:PORT] [--shards N] [--workers M] \
         [--reactors R] [--capacity K] [--budget BYTES] [--node-id ID] [--store KIND] \
         [--peer ID=HOST:PORT ...] [--ring-seed SEED] [--replica-budget BYTES] \
         [--metrics-addr HOST:PORT]\n\
         \n\
         --addr      listen address (default 127.0.0.1:7557)\n\
         --shards    independently locked problem-tree shards (default 8)\n\
         --workers   solver worker threads (default: available parallelism)\n\
         --reactors  epoll reactor threads, each with its own SO_REUSEPORT\n\
         \u{20}           listener (default: available parallelism; falls back\n\
         \u{20}           to 1 where SO_REUSEPORT is unavailable)\n\
         --capacity  max resident snapshots per shard (default: unbounded)\n\
         --budget    max resident snapshot bytes per shard (default: unbounded)\n\
         --node-id   cluster node id stamped into problem ids (default 0);\n\
         \u{20}           run one daemon per id and give a ClusterBackend the map\n\
         --store     snapshot store backend: cow (page-granular CoW deltas,\n\
         \u{20}           the default) or deep-clone (full images, baseline)\n\
         --peer      another node of the cluster, as ID=HOST:PORT (repeat per\n\
         \u{20}           peer); turns on server-side edge forwarding + heartbeats\n\
         --ring-seed consistent-hash ring seed (default 0) — must match every\n\
         \u{20}           client and peer of this cluster\n\
         --replica-budget  replica-store byte budget; past it, linear path-log\n\
         \u{20}           chains are compacted (default: unbounded)\n\
         --metrics-addr  serve GET /metrics (plaintext scrape) and GET /trace\n\
         \u{20}           (chrome://tracing JSON) on this address (default: off)"
    );
    std::process::exit(2);
}

/// Parses one `--peer` value: `ID=HOST:PORT`.
fn parse_peer(value: &str) -> Option<(NodeId, SocketAddr)> {
    let (id, addr) = value.split_once('=')?;
    Some((id.trim().parse().ok()?, addr.trim().parse().ok()?))
}

fn main() {
    let mut addr = "127.0.0.1:7557".to_owned();
    let mut shards = 8usize;
    let mut workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let mut reactors = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut capacity: Option<usize> = None;
    let mut budget: Option<usize> = None;
    let mut node_id: u16 = 0;
    let mut store = StoreKind::default();
    let mut peers: Vec<(NodeId, SocketAddr)> = Vec::new();
    let mut ring_seed: u64 = 0;
    let mut replica_budget: Option<usize> = None;
    let mut metrics_addr: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--shards" => shards = value("--shards").parse().unwrap_or_else(|_| usage()),
            "--workers" => workers = value("--workers").parse().unwrap_or_else(|_| usage()),
            "--reactors" => reactors = value("--reactors").parse().unwrap_or_else(|_| usage()),
            "--capacity" => {
                capacity = Some(value("--capacity").parse().unwrap_or_else(|_| usage()))
            }
            "--budget" => budget = Some(value("--budget").parse().unwrap_or_else(|_| usage())),
            "--node-id" => node_id = value("--node-id").parse().unwrap_or_else(|_| usage()),
            "--store" => store = StoreKind::parse(&value("--store")).unwrap_or_else(|| usage()),
            "--peer" => peers.push(parse_peer(&value("--peer")).unwrap_or_else(|| usage())),
            "--ring-seed" => ring_seed = value("--ring-seed").parse().unwrap_or_else(|_| usage()),
            "--replica-budget" => {
                replica_budget = Some(
                    value("--replica-budget")
                        .parse()
                        .unwrap_or_else(|_| usage()),
                )
            }
            "--metrics-addr" => metrics_addr = Some(value("--metrics-addr")),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }

    let mut config = ServiceConfig::new(shards)
        .with_node_id(node_id)
        .with_store(store);
    config.snapshot_capacity = capacity;
    config.snapshot_budget_bytes = budget;
    config.replica_budget_bytes = replica_budget;
    let server = match Server::start_with(&addr, config, workers, reactors) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("lwsnapd: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(scrape) = &metrics_addr {
        match lwsnap_trace::export::serve(scrape) {
            Ok(bound) => println!("lwsnapd node {node_id}: metrics on http://{bound}/metrics"),
            Err(e) => {
                eprintln!("lwsnapd: cannot bind metrics exporter {scrape}: {e}");
                std::process::exit(1);
            }
        }
    }
    if !peers.is_empty() {
        server.set_peers(&peers, ring_seed);
        println!(
            "lwsnapd node {node_id}: forwarding + heartbeats to {} peer(s), ring seed {ring_seed}",
            peers.len(),
        );
    }
    println!(
        "lwsnapd node {} listening on {} ({} shards, {} workers, {} reactor(s), \
         capacity {}, {} store)",
        node_id,
        server.local_addr(),
        shards,
        workers,
        server.reactors(),
        capacity.map_or("unbounded".to_owned(), |c| c.to_string()),
        server.service().store_name(),
    );

    let service = server.service().clone();
    let replicas = server.replicas().clone();
    let heartbeat_misses = server.heartbeat_miss_handle();
    let worker_stats = server.wait();
    let (replica_bytes, replica_promotions, failovers) = replicas.counters();

    let total = service.stats().total();
    println!(
        "served {} queries ({} conflicts): {} snapshot hits, {} rederivations \
         ({} clauses replayed, {} conflicts), {} evictions, {} live problems",
        total.queries,
        total.total_conflicts,
        total.snapshot_hits,
        total.rederivations,
        total.replayed_clauses,
        total.rederive_conflicts,
        total.evictions,
        total.live_problems,
    );
    println!(
        "snapshot store ({}): {} resident bytes, {} shared / {} private pages",
        service.store_name(),
        total.resident_bytes,
        total.shared_pages,
        total.private_pages,
    );
    println!(
        "replication: {replica_bytes} replica bytes held, {replica_promotions} promotions \
         across {failovers} failovers served, {} compactions, {} heartbeat misses",
        replicas.compactions(),
        heartbeat_misses.load(std::sync::atomic::Ordering::Relaxed),
    );
    for (i, w) in worker_stats.iter().enumerate() {
        println!("worker {i}: {} jobs, {:.3?} busy", w.jobs, w.busy);
    }
}
