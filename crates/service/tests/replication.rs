//! Replication and self-healing membership, end to end: path logs
//! stream to the ring successor, promotion by replay is lossless
//! (proptested — bit-identical verdicts AND witnesses), planned drains
//! migrate sessions before the node exits, joins serve new sessions,
//! and a silent node can never hang a bounded client.

use std::io::ErrorKind;
use std::net::TcpListener;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use lwsnap_service::protocol::clauses_to_lits;
use lwsnap_service::{
    Cluster, ClusterBackend, ProblemId, ReplicaStore, ServiceConfig, ShardedService, SolverBackend,
};
use lwsnap_solver::Lit;

fn lits(c: &[i64]) -> Vec<Vec<Lit>> {
    vec![c.iter().map(|&v| Lit::from_dimacs(v)).collect()]
}

/// One generated derivation step: which earlier problem to extend
/// (index modulo the problems so far) and the incremental constraint.
fn steps_strategy() -> impl Strategy<Value = Vec<(usize, Vec<Vec<i64>>)>> {
    let lit = (1i64..=6, any::<bool>()).prop_map(|(v, neg)| if neg { -v } else { v });
    let clause = proptest::collection::vec(lit, 1..4);
    let clauses = proptest::collection::vec(clause, 1..3);
    proptest::collection::vec((0usize..32, clauses), 1..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole's correctness core, as a property: for ARBITRARY
    /// path logs, promoting a replica by replay yields problems whose
    /// verdicts and witness models are bit-identical to the originals
    /// — including under further probe extensions on both sides.
    #[test]
    fn replica_promotion_is_lossless(
        session in any::<u64>(),
        steps in steps_strategy(),
    ) {
        let origin = ShardedService::new(ServiceConfig::new(2));
        let replica = ShardedService::new(ServiceConfig::new(2).with_node_id(1));
        let compacted = ShardedService::new(ServiceConfig::new(2).with_node_id(2));
        let store = ReplicaStore::new();
        // The same log under MAXIMUM compaction pressure: a 1-byte
        // budget forces every record to collapse whatever linear chain
        // it can — promotion from composite edges must be exactly as
        // lossless as from pristine ones.
        let tight = ReplicaStore::with_budget(Some(1));

        // Grow an arbitrary derivation tree on the origin, recording
        // every edge into the replica stores — exactly what the cluster
        // backend streams to the ring successor.
        let root = origin.session_root(session);
        let mut problems = vec![root];
        for (pick, clauses) in &steps {
            let parent = problems[pick % problems.len()];
            let reply = origin
                .solve(parent, &clauses_to_lits(clauses))
                .expect("origin chain stays live");
            for s in [&store, &tight] {
                s.record(
                    session,
                    reply.problem.to_wire(),
                    parent.to_wire(),
                    clauses.clone(),
                );
            }
            problems.push(reply.problem);
        }

        // Promote EVERY derived problem onto both replica nodes.
        let wires: Vec<u64> = problems[1..].iter().map(|p| p.to_wire()).collect();
        let mapping = store.promote(&replica, session, &wires);
        prop_assert_eq!(mapping.len(), wires.len(), "complete logs promote completely");
        let tight_mapping = tight.promote(&compacted, session, &wires);
        prop_assert_eq!(
            tight_mapping.len(),
            wires.len(),
            "compacted logs promote completely"
        );

        for (&(old, new), &(t_old, t_new)) in mapping.iter().zip(&tight_mapping) {
            prop_assert_eq!(old, t_old, "both stores promote the same problems in order");
            let old_id = ProblemId::from_wire(old);
            let new_id = ProblemId::from_wire(new);
            let tight_id = ProblemId::from_wire(t_new);
            prop_assert_eq!(new_id.node(), 1, "promoted ids live on the replica");
            prop_assert_eq!(
                origin.result_of(old_id),
                replica.result_of(new_id),
                "verdicts split after promotion"
            );
            prop_assert_eq!(
                origin.result_of(old_id),
                compacted.result_of(tight_id),
                "verdicts split after compacted promotion"
            );
            // Witnesses: probe all sides with the same extension; the
            // solver is deterministic in the clause path, so models
            // must agree bit for bit.
            let probe = lits(&[7, -7]);
            let lhs = origin.solve(old_id, &probe).expect("origin probe");
            let rhs = replica.solve(new_id, &probe).expect("replica probe");
            let via_tight = compacted.solve(tight_id, &probe).expect("compacted probe");
            prop_assert_eq!(lhs.result, rhs.result, "probe verdicts split");
            prop_assert_eq!(&lhs.model, &rhs.model, "probe witnesses split");
            prop_assert_eq!(via_tight.result, lhs.result, "compacted probe verdicts split");
            prop_assert_eq!(&via_tight.model, &lhs.model, "compacted probe witnesses split");
        }
    }
}

/// The two-client under-replication regression (satellite a): a session
/// driven by two `ClusterBackend`s in alternation leaves each client
/// holding only HALF the path log (a client does not track edges it
/// did not drive), so client-fanned replication alone cannot replay the
/// whole session. The home node's own `Forward` plane carries every
/// edge regardless of who drove it: kill the home, and BOTH clients
/// fail over to bit-identical verdicts and witnesses — through ids the
/// other client minted.
#[test]
fn two_clients_driving_one_session_survive_the_home_nodes_death() {
    let mut cluster = Cluster::start_local(3, ServiceConfig::new(2), 1).unwrap();
    let a = cluster.connect().unwrap();
    let b = cluster.connect().unwrap();
    let mirror = ShardedService::new(ServiceConfig::new(2));

    let session = 11u64;
    let home = a.ring().node_for(session).unwrap();
    let root_a = a.session_root(session).unwrap();
    let root_b = b.session_root(session).unwrap();
    assert_eq!(root_a, root_b, "one session, one root, two clients");

    let mut cur = root_a;
    let mut l = mirror.session_root(session);
    for step in 0..6i64 {
        let v = step % 5 + 1;
        let driver: &lwsnap_service::ClusterBackend = if step % 2 == 0 { &a } else { &b };
        cur = driver.solve(cur, lits(&[v])).unwrap().unwrap().problem;
        l = mirror.solve(l, &lits(&[v])).unwrap().problem;
    }

    cluster.kill_node(home);

    // Both clients continue from the SAME tip — minted by client B, so
    // client A never logged it — and each fails over independently.
    for (client, name) in [(&a, "a"), (&b, "b")] {
        let r = client.solve(cur, lits(&[-2])).unwrap().unwrap();
        let e = mirror.solve(l, &lits(&[-2])).unwrap();
        assert_eq!(r.result, e.result, "client {name} verdict split after kill");
        assert_eq!(r.model, e.model, "client {name} witness split after kill");
        assert_ne!(r.problem.node(), home, "client {name} left the dead home");
    }

    drop(b);
    a.shutdown();
    cluster.shutdown();
}

/// Every successful solve of a tracked session streams its derivation
/// edge to the session's ring successor, where it sits as passive
/// bytes (`replica_bytes`) — no failover, no promotions.
#[test]
fn path_logs_stream_to_the_ring_successor() {
    let cluster = Cluster::start_local(3, ServiceConfig::new(2), 1).unwrap();
    let backend = cluster.connect().unwrap();
    let session = 7u64;
    let home = backend.ring().node_for(session).unwrap();
    let successor = backend.ring().successor_for(session).unwrap();
    assert_ne!(home, successor);

    let mut cur = backend.session_root(session).unwrap();
    for v in 1..=4i64 {
        cur = backend.solve(cur, lits(&[v])).unwrap().unwrap().problem;
    }

    // The stats request rides the same connections as the replicate
    // frames, so in-order processing makes the counters visible.
    let fleet = backend.node_stats().unwrap();
    let at_successor = fleet.node(successor).unwrap();
    assert!(at_successor.replica_bytes > 0, "successor holds the log");
    assert_eq!(fleet.total().failovers, 0, "nothing failed over");
    assert_eq!(fleet.total().replica_promotions, 0, "nothing replayed");
    for (node, summary) in &fleet.nodes {
        if *node != successor {
            assert_eq!(summary.replica_bytes, 0, "only the successor records");
        }
    }
    backend.shutdown();
    cluster.shutdown();
}

/// Replica GC (satellite): releasing problems fans out to the
/// session's replica, which drops the dead path-log edges and their
/// bytes — child-aware, so releasing a whole chain leaf-first empties
/// the replica completely, while releasing an interior problem with
/// live descendants keeps its edge until the descendants go too.
#[test]
fn release_garbage_collects_the_replica() {
    let cluster = Cluster::start_local(3, ServiceConfig::new(2), 1).unwrap();
    let backend = cluster.connect().unwrap();
    let session = 7u64;
    let successor = backend.ring().successor_for(session).unwrap();

    // A chain root → p1 → p2 → p3.
    let root = backend.session_root(session).unwrap();
    let mut chain = vec![root];
    for v in 1..=3i64 {
        let cur = *chain.last().unwrap();
        chain.push(backend.solve(cur, lits(&[v])).unwrap().unwrap().problem);
    }
    let full = backend
        .node_stats()
        .unwrap()
        .node(successor)
        .unwrap()
        .replica_bytes;
    assert!(full > 0, "successor holds the chain's log");

    // Releasing the interior p1 keeps its edge: p2/p3 replay through
    // it. (Stats ride the same in-order connection as the unreplicate
    // frames, so the counters are visible by the time they answer.)
    backend.release(chain[1]).unwrap();
    let after_interior = backend
        .node_stats()
        .unwrap()
        .node(successor)
        .unwrap()
        .replica_bytes;
    assert_eq!(after_interior, full, "interior edge retained for replay");

    // Releasing the leaves cascades the whole tombstoned chain out.
    backend.release(chain[3]).unwrap();
    backend.release(chain[2]).unwrap();
    let after_all = backend
        .node_stats()
        .unwrap()
        .node(successor)
        .unwrap()
        .replica_bytes;
    assert_eq!(
        after_all, 0,
        "released chain fully collected: {full} → {after_all}"
    );

    backend.shutdown();
    cluster.shutdown();
}

/// Planned membership change: draining a node promotes its sessions
/// onto their replicas FIRST (the rendezvous successor property makes
/// the replica the shrunk ring's owner), then shuts the daemon down —
/// and the continued chains answer bit-identically to an in-process
/// mirror that never saw a membership change.
#[test]
fn planned_drain_replays_sessions_onto_survivors() {
    let cluster = Cluster::start_local(3, ServiceConfig::new(2), 1).unwrap();
    let backend = cluster.connect().unwrap();
    let mirror = ShardedService::new(ServiceConfig::new(2));

    // A handful of sessions across all nodes, a few steps deep.
    let sessions: Vec<u64> = (0..8).collect();
    let mut remote: Vec<ProblemId> = Vec::new();
    let mut local: Vec<ProblemId> = Vec::new();
    for &s in &sessions {
        let mut r = backend.session_root(s).unwrap();
        let mut l = mirror.session_root(s);
        for step in 0..3i64 {
            let v = (s as i64 + step) % 5 + 1;
            r = backend.solve(r, lits(&[v])).unwrap().unwrap().problem;
            l = mirror.solve(l, &lits(&[v])).unwrap().problem;
        }
        remote.push(r);
        local.push(l);
    }

    // Drain the node that owns session 0.
    let victim = backend.ring().node_for(sessions[0]).unwrap();
    let final_stats = backend.remove_node(victim).unwrap();
    assert_eq!(
        final_stats.shards, 2,
        "the drained daemon answered its stats"
    );
    assert_eq!(backend.num_nodes(), 2);
    assert!(backend.ring().node_for(sessions[0]).unwrap() != victim);

    // Every chain continues — via its OLD ids — and answers exactly
    // what the mirror answers.
    for (i, &s) in sessions.iter().enumerate() {
        let v = (s as i64) % 5 + 1;
        let r = backend.solve(remote[i], lits(&[-v])).unwrap().unwrap();
        let l = mirror.solve(local[i], &lits(&[-v])).unwrap();
        assert_eq!(r.result, l.result, "session {s} verdict split after drain");
        assert_eq!(r.model, l.model, "session {s} witness split after drain");
        assert_ne!(r.problem.node(), victim, "session {s} left the victim");
    }

    // The survivors' counters show the promotions happened.
    let fleet = backend.node_stats().unwrap();
    assert!(
        fleet.total().failovers > 0,
        "drain promoted via the replicas"
    );
    backend.shutdown();
    cluster.shutdown();
}

/// Mid-run join: a node added to a live cluster starts serving new
/// sessions the ring hands it, and existing sessions are undisturbed.
#[test]
fn mid_run_join_serves_new_sessions() {
    let mut cluster = Cluster::start_local(2, ServiceConfig::new(2), 1).unwrap();
    let backend = cluster.connect().unwrap();

    let old_session = 1u64;
    let mut chain = backend.session_root(old_session).unwrap();
    chain = backend.solve(chain, lits(&[1])).unwrap().unwrap().problem;

    let (id, addr) = cluster.add_node(ServiceConfig::new(2), 1).unwrap();
    assert_eq!(id, 2);
    backend.add_node(id, addr).unwrap();
    assert_eq!(backend.num_nodes(), 3);

    // Some new session lands on the joined node and solves there.
    let newcomer = (0..256u64)
        .find(|&s| backend.ring().node_for(s) == Some(id))
        .expect("the ring hands the new node some sessions");
    let root = backend.session_root(newcomer).unwrap();
    assert_eq!(root.node(), id);
    let reply = backend.solve(root, lits(&[2])).unwrap().unwrap();
    assert_eq!(reply.problem.node(), id);

    // The pre-join session keeps extending where it was.
    let more = backend.solve(chain, lits(&[2])).unwrap().unwrap();
    assert_ne!(
        more.problem.node(),
        id,
        "tracked sessions do not move on join"
    );

    backend.shutdown();
    cluster.shutdown();
}

/// Regression (satellite d): a node that accepts connections but never
/// answers must not hang a bounded client forever. With a read
/// timeout, the wait times out, the node is treated as dead, and the
/// error is fast and typed — never a hang.
#[test]
fn waiting_on_a_silent_node_times_out() {
    // A listener that accepts and then says nothing, ever.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let backend = ClusterBackend::connect(&[(0u16, addr)]).unwrap();
    backend
        .set_read_timeout(Some(Duration::from_millis(300)))
        .unwrap();

    let started = Instant::now();
    let err = backend.session_root(5).unwrap_err();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "bounded clients do not hang: took {:?}",
        started.elapsed()
    );
    // The silent node was failed over out; with no members left the
    // placement itself reports the empty ring.
    assert!(
        matches!(
            err.kind(),
            ErrorKind::NotConnected | ErrorKind::TimedOut | ErrorKind::WouldBlock
        ),
        "unexpected error: {err}"
    );
    assert_eq!(backend.num_nodes(), 0);
    drop(listener);
}
