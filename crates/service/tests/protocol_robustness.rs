//! Protocol robustness: property-based round-trips for both frame
//! versions (legacy v1 and tagged v2), decode hardening against
//! truncated, oversized and garbage payloads, and the zero-copy
//! borrowed-payload assembler: arbitrarily split reads — mid-header,
//! mid-payload, across pool-block boundaries — must reassemble
//! bit-identically to a whole-buffer parse, and every pooled block
//! must return to the freelist once connections drain.

use std::io::Read;

use lwsnap_service::bufpool::{BufferPool, FrameAssembler, BLOCK_SIZE};
use lwsnap_service::protocol::{
    parse_frame, read_any_frame, read_frame, write_frame, write_tagged_frame, Frame, Request,
    Response, StatsSummary, MAX_FRAME, TAGGED,
};
use proptest::prelude::*;

// -------------------------------------------------------------------
// The zero-copy assembler under adversarial read splits.
// -------------------------------------------------------------------

/// A reader that hands out the wire bytes in a caller-chosen cycle of
/// chunk sizes — the socket-fragmentation simulator.
struct ChunkedReader<'a> {
    data: &'a [u8],
    pos: usize,
    chunks: &'a [usize],
    next: usize,
}

impl Read for ChunkedReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.data.len() {
            return Ok(0);
        }
        let chunk = self.chunks.get(self.next).copied().unwrap_or(97).max(1);
        self.next = (self.next + 1) % self.chunks.len().max(1);
        let n = chunk.min(buf.len()).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A decoded frame: its tag (v2 only) and an owned copy of its payload.
type DecodedFrame = (Option<u64>, Vec<u8>);

/// Runs `wire` through a [`FrameAssembler`] fed by chunked reads;
/// returns the decoded frames and the byte count the assembler copied.
fn assemble_chunked(wire: &[u8], chunks: &[usize]) -> (Vec<DecodedFrame>, u64) {
    let pool = BufferPool::new();
    let mut asm = FrameAssembler::new(pool);
    let mut reader = ChunkedReader {
        data: wire,
        pos: 0,
        chunks,
        next: 0,
    };
    let mut out = Vec::new();
    loop {
        while let Some(frame) = asm
            .next(|f| (f.tag, f.payload.to_vec()))
            .expect("well-formed stream")
        {
            out.push(frame);
        }
        if asm.fill(&mut reader).expect("in-memory read") == 0 {
            break;
        }
    }
    while let Some(frame) = asm
        .next(|f| (f.tag, f.payload.to_vec()))
        .expect("well-formed stream")
    {
        out.push(frame);
    }
    assert_eq!(asm.pending(), 0, "no bytes left behind");
    (out, asm.copied_bytes())
}

/// The whole-buffer reference parse the assembler must match.
fn parse_whole(wire: &[u8]) -> Vec<DecodedFrame> {
    let mut expect = Vec::new();
    let mut pos = 0usize;
    while let Some((frame, used)) = parse_frame(&wire[pos..]).unwrap() {
        expect.push((frame.tag, frame.payload));
        pos += used;
    }
    assert_eq!(pos, wire.len());
    expect
}

// -------------------------------------------------------------------
// Strategies for random protocol values.
// -------------------------------------------------------------------

fn clauses_strategy() -> impl Strategy<Value = Vec<Vec<i64>>> {
    let lit = (1i64..=40, any::<bool>()).prop_map(|(v, neg)| if neg { -v } else { v });
    proptest::collection::vec(proptest::collection::vec(lit, 0..6), 0..5)
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        any::<u64>().prop_map(|session| Request::Root { session }),
        (any::<u64>(), clauses_strategy())
            .prop_map(|(parent, clauses)| Request::Solve { parent, clauses }),
        any::<u64>().prop_map(|problem| Request::Release { problem }),
        Just(Request::Stats),
        Just(Request::Shutdown),
    ]
}

fn model_strategy() -> impl Strategy<Value = Option<Vec<bool>>> {
    prop_oneof![
        Just(None),
        proptest::collection::vec(any::<bool>(), 0..40).prop_map(Some),
    ]
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        any::<u64>().prop_map(|problem| Response::Root { problem }),
        (
            any::<u64>(),
            any::<bool>(),
            any::<bool>(),
            any::<u64>(),
            model_strategy()
        )
            .prop_map(
                |(problem, sat, rederived, conflicts, model)| Response::Solved {
                    problem,
                    sat,
                    rederived,
                    conflicts,
                    model,
                }
            ),
        Just(Response::Released),
        (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(shards, queries, evictions)| {
            Response::Stats(StatsSummary {
                shards,
                queries,
                evictions,
                ..Default::default()
            })
        }),
        proptest::collection::vec(0u8..128, 0..24)
            .prop_map(|bytes| Response::Error(String::from_utf8(bytes).unwrap())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// v2 tagged frames round-trip through both the blocking reader and
    /// the incremental parser, tag preserved exactly.
    #[test]
    fn tagged_request_frames_roundtrip(req in request_strategy(), tag in any::<u64>()) {
        let mut wire = Vec::new();
        write_tagged_frame(&mut wire, tag, &req.encode()).unwrap();

        let mut r = wire.as_slice();
        let frame = read_any_frame(&mut r).unwrap().unwrap();
        prop_assert_eq!(frame.tag, Some(tag));
        prop_assert_eq!(Request::decode(&frame.payload), Ok(req.clone()));

        let (frame, used) = parse_frame(&wire).unwrap().unwrap();
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(frame.tag, Some(tag));
        prop_assert_eq!(Request::decode(&frame.payload), Ok(req));
    }

    /// Responses round-trip under both frame versions; the v1 path is
    /// byte-identical to what the pre-tagging protocol produced.
    #[test]
    fn response_frames_roundtrip_both_versions(resp in response_strategy(), tag in any::<u64>()) {
        let payload = resp.encode();
        prop_assert_eq!(Response::decode(&payload), Ok(resp.clone()));

        let mut v1 = Vec::new();
        write_frame(&mut v1, &payload).unwrap();
        let mut r = v1.as_slice();
        prop_assert_eq!(read_frame(&mut r).unwrap().unwrap(), payload.clone());

        let mut v2 = Vec::new();
        write_tagged_frame(&mut v2, tag, &payload).unwrap();
        let mut r = v2.as_slice();
        let frame = read_any_frame(&mut r).unwrap().unwrap();
        prop_assert_eq!(frame, Frame { tag: Some(tag), payload });
    }

    /// A mixed v1/v2 frame sequence over one buffer parses back in
    /// order, each frame keeping its version.
    #[test]
    fn mixed_version_streams_parse_in_order(
        frames in proptest::collection::vec((request_strategy(), any::<u64>(), any::<bool>()), 1..6)
    ) {
        let mut wire = Vec::new();
        for (req, tag, tagged) in &frames {
            if *tagged {
                write_tagged_frame(&mut wire, *tag, &req.encode()).unwrap();
            } else {
                write_frame(&mut wire, &req.encode()).unwrap();
            }
        }
        let mut pos = 0usize;
        for (req, tag, tagged) in &frames {
            let (frame, used) = parse_frame(&wire[pos..]).unwrap().unwrap();
            pos += used;
            prop_assert_eq!(frame.tag, tagged.then_some(*tag));
            prop_assert_eq!(Request::decode(&frame.payload), Ok(req.clone()));
        }
        prop_assert_eq!(pos, wire.len());
    }

    /// Truncating a frame at ANY byte boundary must never decode as a
    /// complete frame: the incremental parser asks for more bytes and
    /// the blocking reader reports UnexpectedEof (clean EOF only at
    /// offset zero). Holds for both versions.
    #[test]
    fn truncation_never_yields_a_frame(req in request_strategy(), tag in any::<u64>(), tagged in any::<bool>()) {
        let mut wire = Vec::new();
        if tagged {
            write_tagged_frame(&mut wire, tag, &req.encode()).unwrap();
        } else {
            write_frame(&mut wire, &req.encode()).unwrap();
        }
        for cut in 0..wire.len() {
            prop_assert_eq!(parse_frame(&wire[..cut]).unwrap(), None, "cut at {}", cut);
            let mut r = &wire[..cut];
            match read_any_frame(&mut r) {
                Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at a frame boundary"),
                Ok(Some(_)) => prop_assert!(false, "truncated frame decoded at {}", cut),
                Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
            }
        }
    }

    /// Oversized length words are rejected up front, in both versions,
    /// before any payload allocation happens.
    #[test]
    fn oversized_headers_are_rejected(extra in 1u32..1024, tagged in any::<bool>()) {
        let len = MAX_FRAME + extra;
        let word = if tagged { len | TAGGED } else { len };
        let mut wire = word.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 16]);
        prop_assert!(parse_frame(&wire).is_err());
        let mut r = wire.as_slice();
        prop_assert!(read_any_frame(&mut r).is_err());
    }

    /// Garbage payloads never decode successfully into a request or
    /// response unless they happen to re-encode to exactly themselves
    /// (i.e. decode is the inverse of encode, never a lossy guess).
    #[test]
    fn garbage_decode_is_exact_or_error(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        if let Ok(req) = Request::decode(&payload) {
            prop_assert_eq!(req.encode(), payload.clone());
        }
        if let Ok(resp) = Response::decode(&payload) {
            prop_assert_eq!(resp.encode(), payload);
        }
    }

    /// Any chunking of a mixed v1/v2 stream — cuts mid-header,
    /// mid-payload, wherever the cycle lands — reassembles through the
    /// pooled assembler bit-identically to a whole-buffer parse.
    #[test]
    fn split_reads_reassemble_bit_identically(
        frames in proptest::collection::vec((request_strategy(), any::<u64>(), any::<bool>()), 1..8),
        chunks in proptest::collection::vec(1usize..4096, 1..12),
    ) {
        let mut wire = Vec::new();
        for (req, tag, tagged) in &frames {
            if *tagged {
                write_tagged_frame(&mut wire, *tag, &req.encode()).unwrap();
            } else {
                write_frame(&mut wire, &req.encode()).unwrap();
            }
        }
        let expect = parse_whole(&wire);
        let (got, _copied) = assemble_chunked(&wire, &chunks);
        prop_assert_eq!(got, expect);
    }

    /// A stream that fits in one pool block is parsed fully in place:
    /// zero bytes copied, regardless of how the reads were split.
    #[test]
    fn single_block_streams_copy_nothing(
        frames in proptest::collection::vec((request_strategy(), any::<u64>()), 1..6),
        chunks in proptest::collection::vec(1usize..512, 1..8),
    ) {
        let mut wire = Vec::new();
        for (req, tag) in &frames {
            write_tagged_frame(&mut wire, *tag, &req.encode()).unwrap();
        }
        prop_assert!(wire.len() <= BLOCK_SIZE, "strategy stays well under a block");
        let (got, copied) = assemble_chunked(&wire, &chunks);
        prop_assert_eq!(got.len(), frames.len());
        prop_assert_eq!(copied, 0, "in-block frames must not copy");
    }

    /// Frames sized around the 64 KiB pool-block boundary force the
    /// spill path — the header itself can straddle two blocks — and
    /// the payload still comes back byte-exact, with every copied byte
    /// accounted (each wire byte spills at most once).
    #[test]
    fn block_boundary_frames_reassemble(
        delta in -32i64..32,
        tag in any::<u64>(),
        chunk in 512usize..8192,
        lead in 0usize..64,
    ) {
        let len = (BLOCK_SIZE as i64 + delta).max(1) as usize;
        let payload: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let mut wire = Vec::new();
        // A small leading frame shifts the big frame's header off the
        // block origin, so the length word itself can straddle blocks.
        write_frame(&mut wire, &vec![0xab; lead]).unwrap();
        write_tagged_frame(&mut wire, tag, &payload).unwrap();
        let (got, copied) = assemble_chunked(&wire, &[chunk]);
        prop_assert_eq!(got.len(), 2);
        prop_assert_eq!(got[0].1.len(), lead);
        prop_assert_eq!(got[1].0, Some(tag));
        prop_assert_eq!(&got[1].1, &payload);
        if wire.len() > BLOCK_SIZE {
            prop_assert!(copied > 0, "a block-spanning frame must spill");
        } else {
            prop_assert_eq!(copied, 0, "an in-block wire must not spill");
        }
        prop_assert!(copied as usize <= wire.len(), "each byte copies at most once");
    }
}

// -------------------------------------------------------------------
// Buffer-pool leak audit through a live server.
// -------------------------------------------------------------------

/// Every pooled block returns to the freelist once connections drain:
/// the reactor leak audit behind `ReactorStatsView::pool_outstanding`.
#[test]
fn buffer_pool_blocks_all_return_after_drain() {
    use lwsnap_service::{PipelinedClient, Server, ServiceConfig, SolverBackend};
    use lwsnap_solver::Lit;

    let server = Server::start_with("127.0.0.1:0", ServiceConfig::new(2), 2, 2).unwrap();
    let addr = server.local_addr();
    let clients: Vec<PipelinedClient> = (0..8)
        .map(|_| PipelinedClient::connect(addr).unwrap())
        .collect();
    for (i, client) in clients.iter().enumerate() {
        let root = client.session_root(i as u64).unwrap();
        let ticket = client
            .submit(root, vec![vec![Lit::from_dimacs(1)]])
            .unwrap();
        client.wait(ticket).unwrap().expect("live root");
    }

    let stats = server.reactor_stats();
    assert_eq!(stats.iter().map(|s| s.accepted).sum::<u64>(), 8);
    assert!(
        stats.iter().map(|s| s.pool_outstanding).sum::<usize>() >= 1,
        "live connections hold leased blocks"
    );

    drop(clients);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let stats = server.reactor_stats();
        let outstanding: usize = stats.iter().map(|s| s.pool_outstanding).sum();
        if outstanding == 0 {
            let recycled: u64 = stats.iter().map(|s| s.pool_recycled).sum();
            assert!(recycled >= 1, "drained blocks land on the freelist");
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "leaked {outstanding} pool blocks after client drain"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    server.shutdown();
}
