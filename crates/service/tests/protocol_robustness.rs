//! Protocol robustness: property-based round-trips for both frame
//! versions (legacy v1 and tagged v2) and decode hardening against
//! truncated, oversized and garbage payloads.

use lwsnap_service::protocol::{
    parse_frame, read_any_frame, read_frame, write_frame, write_tagged_frame, Frame, Request,
    Response, StatsSummary, MAX_FRAME, TAGGED,
};
use proptest::prelude::*;

// -------------------------------------------------------------------
// Strategies for random protocol values.
// -------------------------------------------------------------------

fn clauses_strategy() -> impl Strategy<Value = Vec<Vec<i64>>> {
    let lit = (1i64..=40, any::<bool>()).prop_map(|(v, neg)| if neg { -v } else { v });
    proptest::collection::vec(proptest::collection::vec(lit, 0..6), 0..5)
}

fn request_strategy() -> impl Strategy<Value = Request> {
    prop_oneof![
        any::<u64>().prop_map(|session| Request::Root { session }),
        (any::<u64>(), clauses_strategy())
            .prop_map(|(parent, clauses)| Request::Solve { parent, clauses }),
        any::<u64>().prop_map(|problem| Request::Release { problem }),
        Just(Request::Stats),
        Just(Request::Shutdown),
    ]
}

fn model_strategy() -> impl Strategy<Value = Option<Vec<bool>>> {
    prop_oneof![
        Just(None),
        proptest::collection::vec(any::<bool>(), 0..40).prop_map(Some),
    ]
}

fn response_strategy() -> impl Strategy<Value = Response> {
    prop_oneof![
        any::<u64>().prop_map(|problem| Response::Root { problem }),
        (
            any::<u64>(),
            any::<bool>(),
            any::<bool>(),
            any::<u64>(),
            model_strategy()
        )
            .prop_map(
                |(problem, sat, rederived, conflicts, model)| Response::Solved {
                    problem,
                    sat,
                    rederived,
                    conflicts,
                    model,
                }
            ),
        Just(Response::Released),
        (any::<u32>(), any::<u64>(), any::<u64>()).prop_map(|(shards, queries, evictions)| {
            Response::Stats(StatsSummary {
                shards,
                queries,
                evictions,
                ..Default::default()
            })
        }),
        proptest::collection::vec(0u8..128, 0..24)
            .prop_map(|bytes| Response::Error(String::from_utf8(bytes).unwrap())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// v2 tagged frames round-trip through both the blocking reader and
    /// the incremental parser, tag preserved exactly.
    #[test]
    fn tagged_request_frames_roundtrip(req in request_strategy(), tag in any::<u64>()) {
        let mut wire = Vec::new();
        write_tagged_frame(&mut wire, tag, &req.encode()).unwrap();

        let mut r = wire.as_slice();
        let frame = read_any_frame(&mut r).unwrap().unwrap();
        prop_assert_eq!(frame.tag, Some(tag));
        prop_assert_eq!(Request::decode(&frame.payload), Ok(req.clone()));

        let (frame, used) = parse_frame(&wire).unwrap().unwrap();
        prop_assert_eq!(used, wire.len());
        prop_assert_eq!(frame.tag, Some(tag));
        prop_assert_eq!(Request::decode(&frame.payload), Ok(req));
    }

    /// Responses round-trip under both frame versions; the v1 path is
    /// byte-identical to what the pre-tagging protocol produced.
    #[test]
    fn response_frames_roundtrip_both_versions(resp in response_strategy(), tag in any::<u64>()) {
        let payload = resp.encode();
        prop_assert_eq!(Response::decode(&payload), Ok(resp.clone()));

        let mut v1 = Vec::new();
        write_frame(&mut v1, &payload).unwrap();
        let mut r = v1.as_slice();
        prop_assert_eq!(read_frame(&mut r).unwrap().unwrap(), payload.clone());

        let mut v2 = Vec::new();
        write_tagged_frame(&mut v2, tag, &payload).unwrap();
        let mut r = v2.as_slice();
        let frame = read_any_frame(&mut r).unwrap().unwrap();
        prop_assert_eq!(frame, Frame { tag: Some(tag), payload });
    }

    /// A mixed v1/v2 frame sequence over one buffer parses back in
    /// order, each frame keeping its version.
    #[test]
    fn mixed_version_streams_parse_in_order(
        frames in proptest::collection::vec((request_strategy(), any::<u64>(), any::<bool>()), 1..6)
    ) {
        let mut wire = Vec::new();
        for (req, tag, tagged) in &frames {
            if *tagged {
                write_tagged_frame(&mut wire, *tag, &req.encode()).unwrap();
            } else {
                write_frame(&mut wire, &req.encode()).unwrap();
            }
        }
        let mut pos = 0usize;
        for (req, tag, tagged) in &frames {
            let (frame, used) = parse_frame(&wire[pos..]).unwrap().unwrap();
            pos += used;
            prop_assert_eq!(frame.tag, tagged.then_some(*tag));
            prop_assert_eq!(Request::decode(&frame.payload), Ok(req.clone()));
        }
        prop_assert_eq!(pos, wire.len());
    }

    /// Truncating a frame at ANY byte boundary must never decode as a
    /// complete frame: the incremental parser asks for more bytes and
    /// the blocking reader reports UnexpectedEof (clean EOF only at
    /// offset zero). Holds for both versions.
    #[test]
    fn truncation_never_yields_a_frame(req in request_strategy(), tag in any::<u64>(), tagged in any::<bool>()) {
        let mut wire = Vec::new();
        if tagged {
            write_tagged_frame(&mut wire, tag, &req.encode()).unwrap();
        } else {
            write_frame(&mut wire, &req.encode()).unwrap();
        }
        for cut in 0..wire.len() {
            prop_assert_eq!(parse_frame(&wire[..cut]).unwrap(), None, "cut at {}", cut);
            let mut r = &wire[..cut];
            match read_any_frame(&mut r) {
                Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only at a frame boundary"),
                Ok(Some(_)) => prop_assert!(false, "truncated frame decoded at {}", cut),
                Err(e) => prop_assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof),
            }
        }
    }

    /// Oversized length words are rejected up front, in both versions,
    /// before any payload allocation happens.
    #[test]
    fn oversized_headers_are_rejected(extra in 1u32..1024, tagged in any::<bool>()) {
        let len = MAX_FRAME + extra;
        let word = if tagged { len | TAGGED } else { len };
        let mut wire = word.to_le_bytes().to_vec();
        wire.extend_from_slice(&[0u8; 16]);
        prop_assert!(parse_frame(&wire).is_err());
        let mut r = wire.as_slice();
        prop_assert!(read_any_frame(&mut r).is_err());
    }

    /// Garbage payloads never decode successfully into a request or
    /// response unless they happen to re-encode to exactly themselves
    /// (i.e. decode is the inverse of encode, never a lossy guess).
    #[test]
    fn garbage_decode_is_exact_or_error(payload in proptest::collection::vec(any::<u8>(), 0..64)) {
        if let Ok(req) = Request::decode(&payload) {
            prop_assert_eq!(req.encode(), payload.clone());
        }
        if let Ok(resp) = Response::decode(&payload) {
            prop_assert_eq!(resp.encode(), payload);
        }
    }
}
