//! End-to-end tests of cluster mode: a 3-node in-process cluster
//! behind a [`ClusterBackend`], exercising ring routing, corked batch
//! windows, per-node stats, misrouted-id rejection, node failure and
//! graceful drain.

use std::collections::HashSet;
use std::io::ErrorKind;

use lwsnap_service::{
    protocol, Cluster, NodeError, ProblemId, Request, Response, Ring, ServiceConfig, SolverBackend,
};
use lwsnap_solver::{Lit, SolveResult};

fn lits(c: &[i64]) -> Vec<Vec<Lit>> {
    vec![c.iter().map(|&v| Lit::from_dimacs(v)).collect()]
}

/// Which node an error names, via the typed [`NodeError`] payload.
fn failed_node(e: &std::io::Error) -> Option<u16> {
    e.get_ref()?.downcast_ref::<NodeError>().map(|n| n.node)
}

#[test]
fn three_node_cluster_serves_spread_sessions() {
    let cluster = Cluster::start_local(3, ServiceConfig::new(4), 2).unwrap();
    let backend = cluster.connect().unwrap();
    assert_eq!(backend.num_nodes(), 3);
    assert_eq!(backend.node_ids(), vec![0, 1, 2]);

    // Sessions land on ring-chosen nodes; with 64 sessions all three
    // nodes serve some, and every minted id carries its home node.
    let mut nodes_hit = HashSet::new();
    for session in 0..64u64 {
        let root = backend.session_root(session).unwrap();
        assert_eq!(
            Some(root.node()),
            backend.ring().node_for(session),
            "server placement agrees with the client-side ring"
        );
        nodes_hit.insert(root.node());
    }
    assert_eq!(nodes_hit.len(), 3, "64 sessions hit all 3 nodes");

    // A full chain session: children stay on the session's node.
    let root = backend.session_root(7).unwrap();
    let p = backend.solve(root, lits(&[1, 2])).unwrap().unwrap();
    assert_eq!(p.result, SolveResult::Sat);
    assert_eq!(p.problem.node(), root.node(), "children inherit the node");
    let t1 = backend.submit(p.problem, lits(&[-1])).unwrap();
    let t2 = backend.submit(p.problem, lits(&[1])).unwrap();
    let r1 = backend.wait(t1).unwrap().unwrap();
    let r2 = backend.wait(t2).unwrap().unwrap();
    assert!(!r1.model.as_ref().unwrap()[0]);
    assert!(r2.model.as_ref().unwrap()[0]);
    backend.release(r1.problem).unwrap();
    assert!(backend.solve(r1.problem, lits(&[2])).unwrap().is_none());

    // Per-node stats keep the node dimension; the aggregate sums it.
    let fleet = backend.node_stats().unwrap();
    assert_eq!(fleet.nodes.len(), 3);
    let total = fleet.total();
    assert_eq!(total.shards, 12, "3 nodes × 4 shards");
    assert!(total.queries >= 3);
    let home = fleet.node(root.node()).unwrap();
    assert!(home.queries >= 3, "the chain's node served its queries");

    // Graceful drain: every node answers its final stats.
    for (node, result) in backend.shutdown() {
        let summary = result.unwrap_or_else(|e| panic!("node {node} failed to drain: {e}"));
        assert_eq!(summary.shards, 4);
    }
    cluster.shutdown();
}

/// The cross-backend conformance bar: the same deterministic chain on a
/// 3-node cluster and on a plain in-process service yields bit-identical
/// verdicts AND models (the solver is deterministic in the constraint
/// path, wherever the snapshot lives).
#[test]
fn cluster_verdicts_are_bit_identical_to_in_process() {
    let cluster = Cluster::start_local(3, ServiceConfig::new(4), 2).unwrap();
    let backend = cluster.connect().unwrap();
    let local = lwsnap_service::ShardedService::new(ServiceConfig::new(4));

    for session in 0..6u64 {
        let mut remote_cur = backend.session_root(session).unwrap();
        let mut local_cur = local.session_root(session);
        for step in 0..5i64 {
            let v = (session as i64 * 5 + step) % 9 + 1;
            let clauses = vec![
                vec![Lit::from_dimacs(v), Lit::from_dimacs(v + 1)],
                vec![Lit::from_dimacs(-v), Lit::from_dimacs(v + 2)],
            ];
            let remote = backend
                .solve(remote_cur, clauses.clone())
                .unwrap()
                .expect("live remote chain");
            let local_reply = local.solve(local_cur, &clauses).expect("live local chain");
            assert_eq!(remote.result, local_reply.result, "verdicts split");
            assert_eq!(remote.model, local_reply.model, "models split bit-wise");
            remote_cur = remote.problem;
            local_cur = local_reply.problem;
        }
    }
    cluster.shutdown();
}

#[test]
fn corked_batches_span_nodes_and_answer_in_order() {
    let cluster = Cluster::start_local(3, ServiceConfig::new(2), 2).unwrap();
    let backend = cluster.connect().unwrap();

    // Roots across all three nodes, interleaved in one batch window.
    let roots: Vec<ProblemId> = (0..12u64)
        .map(|s| backend.session_root(s).unwrap())
        .collect();
    assert!(
        roots.iter().map(|r| r.node()).collect::<HashSet<_>>().len() >= 2,
        "batch spans multiple nodes"
    );
    let requests: Vec<_> = roots
        .iter()
        .enumerate()
        .map(|(i, &root)| (root, lits(&[i as i64 % 7 + 1])))
        .collect();
    let replies = backend.solve_batch(requests).unwrap();
    assert_eq!(replies.len(), 12);
    for (i, (reply, root)) in replies.iter().zip(&roots).enumerate() {
        let reply = reply.as_ref().expect("live root");
        assert_eq!(reply.result, SolveResult::Sat);
        assert_eq!(
            reply.problem.node(),
            root.node(),
            "reply {i} answers its own node's request"
        );
        assert!(reply.model.as_ref().unwrap()[i % 7], "reply {i} in order");
    }
    backend.shutdown();
    cluster.shutdown();
}

/// Tentpole: killing one node mid-session is **transparent**. The
/// session fails over onto its replica (the ring successor, which held
/// its path log), the interrupted solve is retried there, and the
/// answers — verdicts AND models — are the ones the dead node would
/// have given. The survivor's stats show the promotion happened.
#[test]
fn node_failure_fails_over_transparently() {
    let mut cluster = Cluster::start_local(3, ServiceConfig::new(2), 2).unwrap();
    let backend = cluster.connect().unwrap();

    // Find sessions homed on node 1 (the victim) and elsewhere.
    let on_victim = (0..64u64)
        .find(|&s| backend.ring().node_for(s) == Some(1))
        .expect("some session lands on node 1");
    let survivor_session = (0..64u64)
        .find(|&s| backend.ring().node_for(s) != Some(1))
        .expect("some session avoids node 1");
    let replica = backend
        .ring()
        .successor_for(on_victim)
        .expect("3-node ring has a successor");

    let victim_root = backend.session_root(on_victim).unwrap();
    let survivor_root = backend.session_root(survivor_session).unwrap();
    let p = backend.solve(victim_root, lits(&[1])).unwrap().unwrap();
    assert_eq!(p.problem.node(), 1);

    // Kill node 1 with a request in flight *afterwards*: the submit may
    // land in a dead socket or the wait may see the FIN — either way
    // the session must fail over and the solve must still answer.
    cluster.kill_node(1);
    assert_eq!(cluster.live_nodes(), 2);
    let reply = backend
        .submit(p.problem, lits(&[2]))
        .and_then(|t| backend.wait(t))
        .expect("failover is transparent")
        .expect("live chain after failover");
    assert_eq!(reply.result, SolveResult::Sat);
    assert_eq!(
        reply.problem.node(),
        replica,
        "the session moved to its ring successor"
    );
    let model = reply.model.as_ref().expect("sat model");
    assert!(
        model[0] && model[1],
        "replayed chain x1∧x2 answers its model"
    );

    // The chain keeps extending on the new home, and OLD ids keep
    // working — the remap follows the whole subtree.
    let deeper = backend.solve(reply.problem, lits(&[3])).unwrap().unwrap();
    assert_eq!(deeper.problem.node(), replica);
    let via_old_id = backend.solve(p.problem, lits(&[-3])).unwrap().unwrap();
    assert_eq!(via_old_id.problem.node(), replica, "old ids remap");
    assert!(!via_old_id.model.as_ref().unwrap()[2]);

    // Sessions on surviving nodes are untouched.
    let ok = backend.solve(survivor_root, lits(&[3])).unwrap().unwrap();
    assert_eq!(ok.result, SolveResult::Sat);

    // The promotion is visible in the new home's counters.
    let fleet = backend.node_stats().unwrap();
    let at_replica = fleet.node(replica).unwrap();
    assert!(at_replica.failovers >= 1, "promote served");
    assert!(at_replica.replica_promotions >= 1, "path replayed");
    assert!(at_replica.replica_bytes > 0, "edges were recorded");

    // Per-node drain: the dead node is no longer a member; the two
    // survivors drain clean.
    let drained = backend.shutdown();
    assert_eq!(drained.len(), 2, "failed node left the member list");
    for (node, result) in drained {
        assert_ne!(node, 1);
        result.unwrap_or_else(|e| panic!("survivor {node} failed to drain: {e}"));
    }
    cluster.shutdown();
}

/// With nowhere to replicate (a 1-node cluster), node death still
/// surfaces the typed per-node error — fast, no hang (the failed_node
/// helper proves the NodeError payload survives the failover path).
#[test]
fn failover_without_a_replica_stays_a_typed_error() {
    let mut cluster = Cluster::start_local(1, ServiceConfig::new(2), 1).unwrap();
    let backend = cluster.connect().unwrap();
    let root = backend.session_root(3).unwrap();
    let p = backend.solve(root, lits(&[1])).unwrap().unwrap();

    cluster.kill_node(0);
    let err = backend
        .submit(p.problem, lits(&[2]))
        .and_then(|t| backend.wait(t))
        .expect_err("no replica to fail over to");
    assert_eq!(failed_node(&err), Some(0), "typed per-node error: {err}");
    // And new sessions cannot be placed on an empty ring.
    let err = backend.session_root(99).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::NotConnected);
    cluster.shutdown();
}

/// A request routed to the wrong node is rejected by the SERVER with
/// the typed `WrongNode` protocol error — the id never aliases into a
/// dead reference on the wrong node's tree.
#[test]
fn misrouted_ids_are_rejected_by_the_server() {
    let cluster = Cluster::start_local(2, ServiceConfig::new(2), 1).unwrap();
    let addrs = cluster.addrs();
    let node1 = addrs.iter().find(|(id, _)| *id == 1).unwrap().1;
    let direct = lwsnap_service::PipelinedClient::connect(node1).unwrap();

    // A direct client labels its stats with the daemon's REAL node id,
    // not a hardcoded 0.
    let fleet = direct.node_stats().unwrap();
    assert_eq!(fleet.nodes.len(), 1);
    assert_eq!(fleet.nodes[0].0, 1, "stats attributed to node 1");

    // An id stamped node 0, sent straight to node 1.
    let foreign = ProblemId::from_wire(0).to_wire(); // node 0, shard 0, root
    let response = direct
        .call(&Request::Solve {
            parent: foreign,
            clauses: vec![vec![1]],
        })
        .unwrap();
    let Response::Error(msg) = response else {
        panic!("expected a WrongNode error, got {response:?}");
    };
    assert!(
        msg.contains("routed to node 0") && msg.contains("this is node 1"),
        "typed routing diagnosis: {msg}"
    );
    // Releases are checked the same way.
    let response = direct.call(&Request::Release { problem: foreign }).unwrap();
    assert!(matches!(response, Response::Error(m) if m.contains("node")));

    // The ClusterBackend itself refuses ids for nodes it has no
    // connection to, before anything touches a socket.
    let backend = cluster.connect().unwrap();
    let unknown = ProblemId::from_wire(9u64 << 48).to_wire();
    let err = backend
        .submit(ProblemId::from_wire(unknown), lits(&[1]))
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::InvalidInput);
    assert_eq!(failed_node(&err), Some(9));

    cluster.shutdown();
}

/// The ISSUE's rebalance acceptance bound, at the public-API level:
/// removing 1 of N nodes from the ring moves ≤ 2/N of 4096 session
/// keys, and no surviving node's keys move at all.
#[test]
fn ring_rebalance_bound_holds_at_the_public_api() {
    for n in 2..=6u16 {
        let ring = Ring::new(0..n, 0x5eed);
        let mut shrunk = ring.clone();
        shrunk.remove_node(n - 1);
        let mut moved = 0u64;
        for key in 0..4096u64 {
            let before = ring.node_for(key).unwrap();
            let after = shrunk.node_for(key).unwrap();
            if before == n - 1 {
                moved += 1;
            } else {
                assert_eq!(before, after, "key {key} moved off a survivor");
            }
        }
        assert!(
            moved <= 2 * 4096 / n as u64,
            "{moved}/4096 keys moved at N={n}"
        );
    }
}

/// Protocol-level check that the placement-aware id keeps its
/// pre-cluster wire compatibility (node 0 ids are the old packing).
#[test]
fn wire_ids_stay_backward_compatible() {
    let id = ProblemId::from_wire(3u64 << 32 | 17);
    assert_eq!(id.node(), 0);
    assert_eq!(id.shard(), 3);
    assert_eq!(id.to_wire(), 3u64 << 32 | 17);
    assert_eq!(
        ProblemId::from_wire_checked(id.to_wire(), 0, 4),
        Ok(id),
        "old ids decode on a node-0 (single-node) service"
    );
    assert_eq!(
        ProblemId::from_wire_checked(id.to_wire(), 2, 4),
        Err(protocol::ProtoError::WrongNode {
            got: 0,
            expected: 2
        })
    );
}
